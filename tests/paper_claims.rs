//! Reduced-scale checks of the paper's qualitative results (Section 6):
//! the full-scale numbers live in `cargo run -p stagger-bench --bin fig7/fig8`
//! and EXPERIMENTS.md; these tests pin the directional claims so a
//! regression in the mechanism is caught by `cargo test`.

use stagger_core::Mode;
use workloads::run_benchmark;

/// Result 3: "Staggered Transactions reduce contention ... for most
/// applications" — abort reduction on the contended benchmarks.
#[test]
fn result3_abort_reduction_on_contended_benchmarks() {
    let w = workloads::intruder::Intruder::tiny();
    let base = run_benchmark(&w, Mode::Htm, 8, 17);
    let stag = run_benchmark(&w, Mode::Staggered, 8, 17);
    let b = base.out.sim.aborts_per_commit();
    let s = stag.out.sim.aborts_per_commit();
    assert!(b > 0.5, "intruder must contend at 8 threads ({b:.2})");
    assert!(
        s < b * 0.5,
        "staggering must cut intruder aborts by >50%: {b:.2} -> {s:.2}"
    );
}

/// Result 1 (second half): no slowdown for low-contention applications.
#[test]
fn result1_no_slowdown_for_low_contention() {
    let mut w = workloads::ssca2::Ssca2::tiny();
    w.total_ops = 2048;
    let base = run_benchmark(&w, Mode::Htm, 8, 19);
    let stag = run_benchmark(&w, Mode::Staggered, 8, 19);
    let ratio = stag.cycles() as f64 / base.cycles() as f64;
    assert!(ratio < 1.1, "low-contention slowdown {ratio:.3} too high");
}

/// Result 2: conflicting addresses stable (intruder) → precise mode works;
/// wandering addresses (kmeans) → coarse-grain activation engages.
#[test]
fn result2_policy_uses_both_precise_and_coarse() {
    let w = workloads::intruder::Intruder::tiny();
    let stag = run_benchmark(&w, Mode::Staggered, 8, 23);
    assert!(
        stag.out.rt.act_precise > 0,
        "intruder's stable queue addresses should trigger precise mode"
    );

    let mut k = workloads::kmeans::Kmeans::tiny();
    k.n_points = 600;
    k.n_clusters = 8;
    let stag = run_benchmark(&k, Mode::Staggered, 8, 29);
    assert!(
        stag.out.rt.act_coarse > 0,
        "kmeans' wandering cluster addresses should trigger coarse mode"
    );
}

/// Section 6.1: instrumentation is a small subset of loads/stores and the
/// runtime identifies the right anchor for nearly all aborts.
#[test]
fn instrumentation_accuracy_above_95_percent() {
    let w = workloads::memcached::Memcached::tiny();
    let stag = run_benchmark(&w, Mode::Staggered, 8, 31);
    let acc = stag.out.rt.accuracy();
    assert!(
        acc > 0.95,
        "anchor identification accuracy {acc:.3} below the paper's 95% floor"
    );
}

/// The hardware-CPC mode must identify anchors at least as well as the
/// software alternative (Section 6.2's Staggered vs Staggered+SW gap).
#[test]
fn hardware_cpc_attribution_beats_software() {
    let w = workloads::list::ListBench::tiny(60, 20);
    let hw = run_benchmark(&w, Mode::Staggered, 8, 37);
    let sw = run_benchmark(&w, Mode::StaggeredSw, 8, 37);
    assert!(
        hw.out.rt.accuracy() >= sw.out.rt.accuracy(),
        "hw {:.3} vs sw {:.3}",
        hw.out.rt.accuracy(),
        sw.out.rt.accuracy()
    );
}

/// Capacity-bound transactions always complete via the irrevocable path —
/// the fallback the paper's runtime guarantees forward progress with.
#[test]
fn forward_progress_under_pathological_contention() {
    // A single hot counter with maximum threads: everything conflicts, yet
    // every transaction completes.
    let mut w = workloads::kmeans::Kmeans::tiny();
    w.n_points = 320;
    w.n_clusters = 1; // all points hit one accumulator
    for mode in Mode::ALL {
        let r = run_benchmark(&w, mode, 8, 41);
        assert_eq!(
            r.out.exec.committed_txns + r.out.exec.irrevocable_txns,
            320,
            "{}",
            mode.name()
        );
    }
}
