//! Randomized serializability tests: random programs and op mixes must
//! preserve their invariants in every execution mode. Inputs come from a
//! fixed-seed in-tree PRNG sweep, so every run checks the same cases.
//!
//! These drive the whole stack — builder → DSA → compiler pass →
//! interpreter → HTM simulator → Staggered Transactions runtime — with
//! randomized inputs, checking the one property that must never break:
//! committed transactions are serializable.

use stagger_core::{Mode, RuntimeConfig};
use tm_interp::{run_workload, ThreadPlan};
use tm_ir::{FuncBuilder, FuncKind, Module};

/// Build a module where each transaction adds a thread-specific constant to
/// `n_slots` shared accumulators chosen pseudo-randomly.
fn accumulator_module(n_slots: u64, adds_per_txn: u64) -> Module {
    let mut m = Module::new();

    // tx_add(slots, n_slots, delta, adds)
    let mut b = FuncBuilder::new("tx_add", 4, FuncKind::Atomic { ab_id: 0 });
    let (slots, n_slots_r, delta, adds) = (b.param(0), b.param(1), b.param(2), b.param(3));
    let i = b.const_(0);
    b.while_(
        |b| b.lt(i, adds),
        |b| {
            let idx0 = b.rand(n_slots_r);
            let eight = b.const_(8);
            let idx = b.mul(idx0, eight); // one line per slot
            let v = b.load_idx(slots, idx, 0);
            b.compute(10);
            let v2 = b.add(v, delta);
            b.store_idx(v2, slots, idx, 0);
            let nx = b.addi(i, 1);
            b.assign(i, nx);
        },
    );
    b.ret(None);
    let tx = m.add_function(b.finish());

    // thread_main(slots, n_slots, delta, adds, rounds) -> rounds
    let mut b = FuncBuilder::new("thread_main", 5, FuncKind::Normal);
    let (slots, n_slots_r, delta, adds, rounds) =
        (b.param(0), b.param(1), b.param(2), b.param(3), b.param(4));
    let i = b.const_(0);
    b.while_(
        |b| b.lt(i, rounds),
        |b| {
            b.call_void(tx, &[slots, n_slots_r, delta, adds]);
            let nx = b.addi(i, 1);
            b.assign(i, nx);
        },
    );
    b.ret(Some(i));
    m.add_function(b.finish());
    let _ = n_slots;
    let _ = adds_per_txn;
    m
}

fn run_accumulator(
    mode: Mode,
    n_threads: usize,
    n_slots: u64,
    adds: u64,
    rounds: u64,
    seed: u64,
) -> u64 {
    let module = accumulator_module(n_slots, adds);
    let compiled = stagger_compiler::compile(&module);
    let machine = htm_sim::Machine::new(htm_sim::MachineConfig::cores(n_threads).small());
    let slots = machine.host_alloc(n_slots * 8, true);
    let plans: Vec<ThreadPlan> = (0..n_threads)
        .map(|t| ThreadPlan {
            func: compiled.module.expect("thread_main"),
            args: vec![slots, n_slots, t as u64 + 1, adds, rounds],
        })
        .collect();
    let rt_cfg = RuntimeConfig::with_mode(mode);
    run_workload(&machine, &compiled, &rt_cfg, &plans, seed);
    (0..n_slots)
        .map(|s| machine.host_load(slots + s * 64))
        .sum()
}

/// The sum over all accumulators must equal the total of all deltas
/// applied, for any thread count / slot count / transaction size.
/// Deterministic seeded sweep over random thread/op mixes.
#[test]
fn accumulators_conserve_sum() {
    let mut rng = stagger_prng::Xoshiro256StarStar::seed_from_u64(0x5345_5249_414C);
    for _case in 0..6 {
        let n_threads = rng.gen_range(2, 5) as usize;
        let n_slots = rng.gen_range(1, 6);
        let adds = rng.gen_range(1, 5);
        let rounds = rng.gen_range(1, 12);
        let seed = rng.below(1000);
        let expected: u64 = (1..=n_threads as u64).sum::<u64>() * adds * rounds;
        for mode in [Mode::Htm, Mode::Staggered] {
            let total = run_accumulator(mode, n_threads, n_slots, adds, rounds, seed);
            assert_eq!(
                total,
                expected,
                "mode {} threads {n_threads} slots {n_slots} adds {adds} rounds {rounds} seed {seed}",
                mode.name()
            );
        }
    }
}

/// The list workload's internal validation (sorted, unique, length
/// conservation) must hold for arbitrary operation mixes.
#[test]
fn list_invariants_hold_for_any_mix() {
    let mut rng = stagger_prng::Xoshiro256StarStar::seed_from_u64(0x4C49_5354);
    for _case in 0..6 {
        let lookup_pct = rng.gen_range(0, 101);
        let insert_slack = rng.gen_range(0, 101);
        let seed = rng.below(500);
        let insert_pct = (100 - lookup_pct) * insert_slack / 100;
        let w = workloads::list::ListBench::tiny(lookup_pct, insert_pct);
        // run_benchmark panics if validation fails.
        workloads::run_benchmark(&w, Mode::Staggered, 3, seed);
    }
}

#[test]
fn accumulator_conserves_under_heavy_contention() {
    // One slot, many adds: the worst case for lost updates.
    let total = run_accumulator(Mode::Staggered, 4, 1, 4, 20, 9);
    assert_eq!(total, (1 + 2 + 3 + 4) * 4 * 20);
}

#[test]
fn accumulator_conserves_in_sw_mode() {
    let total = run_accumulator(Mode::StaggeredSw, 4, 2, 3, 15, 11);
    assert_eq!(total, (1 + 2 + 3 + 4) * 3 * 15);
}
