//! Cross-crate integration tests: every benchmark compiles, runs in every
//! execution mode, and passes its own serializability validation (which
//! `run_benchmark` enforces by panicking on violation).

use stagger_core::Mode;
use workloads::{all_workloads, run_benchmark};

/// Tiny versions of all ten workloads.
fn tiny_set() -> Vec<Box<dyn workloads::Workload>> {
    use workloads::*;
    vec![
        Box::new(genome::Genome::tiny()),
        Box::new(intruder::Intruder::tiny()),
        Box::new(kmeans::Kmeans::tiny()),
        Box::new(labyrinth::Labyrinth::tiny()),
        Box::new(ssca2::Ssca2::tiny()),
        Box::new(vacation::Vacation::tiny()),
        Box::new(list::ListBench::tiny(60, 20)),
        Box::new(tsp::Tsp::tiny()),
        Box::new(memcached::Memcached::tiny()),
    ]
}

#[test]
fn all_workloads_validate_in_baseline_mode() {
    for w in tiny_set() {
        let r = run_benchmark(w.as_ref(), Mode::Htm, 4, 101);
        assert!(
            r.out.exec.committed_txns + r.out.exec.irrevocable_txns > 0,
            "{} ran no transactions",
            w.name()
        );
    }
}

#[test]
fn all_workloads_validate_in_staggered_mode() {
    for w in tiny_set() {
        let r = run_benchmark(w.as_ref(), Mode::Staggered, 4, 103);
        assert!(
            r.out.exec.committed_txns + r.out.exec.irrevocable_txns > 0,
            "{}",
            w.name()
        );
    }
}

#[test]
fn all_workloads_validate_in_sw_and_addronly_modes() {
    for w in tiny_set() {
        run_benchmark(w.as_ref(), Mode::StaggeredSw, 2, 107);
        run_benchmark(w.as_ref(), Mode::AddrOnly, 2, 109);
    }
}

#[test]
fn default_registry_has_ten_benchmarks_with_unique_names() {
    let all = all_workloads();
    assert_eq!(all.len(), 10);
    let mut names: Vec<&str> = all.iter().map(|w| w.name()).collect();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), 10);
}

#[test]
fn single_thread_equals_across_modes() {
    // With one thread there is no contention: every mode must do exactly
    // the same committed work.
    let w = workloads::list::ListBench::tiny(80, 10);
    let mut commit_counts = Vec::new();
    for mode in Mode::ALL {
        let r = run_benchmark(&w, mode, 1, 113);
        commit_counts.push(r.out.exec.committed_txns + r.out.exec.irrevocable_txns);
    }
    assert!(
        commit_counts.windows(2).all(|w| w[0] == w[1]),
        "modes disagree single-threaded: {commit_counts:?}"
    );
}

#[test]
fn runs_are_reproducible_across_invocations() {
    let w = workloads::tsp::Tsp::tiny();
    let a = run_benchmark(&w, Mode::Staggered, 4, 127);
    let b = run_benchmark(&w, Mode::Staggered, 4, 127);
    assert_eq!(a.out.sim.exec_cycles, b.out.sim.exec_cycles);
    assert_eq!(a.out.exec.insts, b.out.exec.insts);
    assert_eq!(
        a.out.sim.aggregate().conflict_aborts,
        b.out.sim.aggregate().conflict_aborts
    );
    // And a different seed genuinely changes the run.
    let c = run_benchmark(&w, Mode::Staggered, 4, 131);
    assert_ne!(a.out.sim.exec_cycles, c.out.sim.exec_cycles);
}

#[test]
fn thread_scaling_increases_throughput_when_uncontended() {
    let w = workloads::ssca2::Ssca2::tiny();
    let t1 = run_benchmark(&w, Mode::Htm, 1, 137);
    let t4 = run_benchmark(&w, Mode::Htm, 4, 137);
    let s = t1.cycles() as f64 / t4.cycles() as f64;
    assert!(s > 2.0, "ssca2 must scale (got {s:.2}x at 4 threads)");
}
