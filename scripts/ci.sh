#!/usr/bin/env bash
# Offline CI gate for the reproduction.
#
#   scripts/ci.sh
#
# Steps: format check, release build (workspace root + exhibit binaries),
# tier-1 tests, workspace tests, a speculative-vs-cooperative scheduler
# byte-identity gate (plus a --host-threads 1 smoke), a 128-core scaling
# smoke plus a 64-core cross-scheduler identity gate, a parallel-harness
# smoke run of fig7 --quick whose output (including the machine-readable
# results/BENCH_fig7.json) is recorded under results/, a profile
# --quick smoke run whose text report and JSONL event dump are recorded
# and sanity-checked, a serve smoke gating the request-latency capture's
# byte-identity across schedulers, the lazy-subscription window
# regression gate, per-fallback-protocol cross-scheduler identity gates,
# and a protocols-exhibit smoke over the full variant matrix.
#
# Everything runs with --offline: the workspace has no external
# dependencies by design, and CI must not depend on a registry.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy --workspace -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release (workspace root)"
cargo build --release --offline

echo "== cargo build --release -p stagger-bench (exhibit binaries)"
cargo build --release --offline -p stagger-bench

echo "== cargo test -q (tier-1)"
cargo test -q --offline

echo "== cargo test -q --workspace"
cargo test -q --offline --workspace

echo "== interp_equivalence (bytecode vs legacy walker, quick matrix)"
# Runs as part of the workspace suite above too; the explicit invocation
# keeps the bit-identity gate visible in CI logs and fails fast on its own.
cargo test -q --offline -p stagger-bench --test interp_equivalence

echo "== scheduler byte-identity gate (speculative vs cooperative)"
# The speculative (Block-STM-style) core driver must be invisible: the
# full quick exhibit, minus the host-timing self-report lines, must match
# the cooperative driver byte for byte. Also covered at the artifact
# level by scheduler_equivalence and spec_stress; this gates the CLI path
# (flag parsing, config plumbing, report integration) end to end.
mkdir -p results
./target/release/fig7 --quick --scheduler cooperative \
  | grep -v '^harness:' > results/ci_fig7_coop.txt
./target/release/fig7 --quick --scheduler speculative --host-threads 2 \
  | grep -v '^harness:' > results/ci_fig7_spec.txt
cmp results/ci_fig7_coop.txt results/ci_fig7_spec.txt

echo "== --host-threads 1 smoke (speculative on a single-core host)"
# Degenerate worker count must still work (serial speculation) and still
# be byte-identical.
./target/release/fig7 --quick --scheduler speculative --host-threads 1 \
  | grep -v '^harness:' | cmp - results/ci_fig7_coop.txt

echo "== scaling 128-core smoke (quick, both modes)"
# The wide-bitset + indexed-scheduler path past the single-word CoreSet
# fast path (n_cores > 64) must stay runnable: list-hi and memcached in
# both modes at 128 cores.
./target/release/scaling --quick --cores 128 --jobs 2 \
  | tee results/ci_scaling_128.txt
test "$(awk '$3 == 128' results/ci_scaling_128.txt | wc -l)" -eq 4

echo "== scaling 64-core byte-identity gate (speculative vs cooperative)"
# At 64 cores, all simulated quantities must match across drivers byte
# for byte. Host-side columns (ns/inst, Minsts/s, and the
# cooperative-only sched counters) legitimately differ, so compare the
# simulated projection of the table: benchmark, mode, cores, sim_cycles,
# aborts/cm.
sim_cols() { grep -v '^harness:' | awk '{print $1, $2, $3, $4, $5}'; }
./target/release/scaling --quick --cores 64 --jobs 2 \
  | sim_cols > results/ci_scaling_coop.txt
./target/release/scaling --quick --cores 64 \
    --scheduler speculative --host-threads 2 --jobs 2 \
  | sim_cols > results/ci_scaling_spec.txt
cmp results/ci_scaling_coop.txt results/ci_scaling_spec.txt

echo "== fig7 --quick --jobs 2 --json (harness smoke)"
mkdir -p results
./target/release/fig7 --quick --jobs 2 --json | tee results/ci_fig7_quick.txt

echo "== fig7 --quick --jobs 1 --json (ns_per_inst regression tripwire)"
# Interpreter-performance tripwire: the median per-run ns_per_inst of the
# quick suite must stay within 1.25x of the recorded baseline
# (BENCH_harness.json fig7_quick.jobs_1.median_ns_per_inst). Pinned to
# --jobs 1: oversubscribed workers inflate per-run wall time, not the
# interpreter. The 1.25 slack absorbs host-load noise; a genuine
# interpreter regression (losing the u-op or permission-cache fast paths)
# costs ~2x and trips this hard.
NS_BASELINE=59.6
NS_SLACK=1.25
./target/release/fig7 --quick --jobs 1 --json >/dev/null
NS_MEDIAN=$(grep -o '"ns_per_inst": [0-9.]*' results/BENCH_fig7.json \
  | awk '{print $2}' | sort -n | awk '{a[NR]=$1} END {print a[int((NR+1)/2)]}')
echo "median ns_per_inst: $NS_MEDIAN (baseline $NS_BASELINE, slack ${NS_SLACK}x)"
awk -v m="$NS_MEDIAN" -v b="$NS_BASELINE" -v s="$NS_SLACK" \
  'BEGIN { exit !(m <= b * s) }' || {
    echo "ci.sh: interpreter regression: median ns_per_inst $NS_MEDIAN > $NS_BASELINE * $NS_SLACK" >&2
    exit 1
  }

echo "== profile --quick --trace-out (observability smoke)"
./target/release/profile --quick --trace-out results/profile_events.jsonl \
  | tee results/profile_list-hi.txt
# The JSONL event dump must be non-empty, line-oriented JSON objects
# carrying the documented keys.
test -s results/profile_events.jsonl
head -n 1 results/profile_events.jsonl | grep -q '"clock"'
head -n 1 results/profile_events.jsonl | grep -q '"kind"'
if grep -qv '^{.*}$' results/profile_events.jsonl; then
    echo "ci.sh: malformed JSONL line in results/profile_events.jsonl" >&2
    exit 1
fi
grep -q 'list_find_prev' results/profile_list-hi.txt

echo "== serve smoke (latency capture byte-identity + JSONL sanity)"
# Small open-loop ramp, both modes: the per-request latency tables
# (derived from the observability event stream) must be byte-identical
# across the cooperative and speculative schedulers — latency capture is
# a pure observer over simulated quantities. The jsonl filenames differ
# between the runs, so the "serve: wrote" echo is filtered with the
# host-timing lines.
serve_sim() { grep -v -e '^harness:' -e '^serve: wrote '; }
./target/release/serve --quick --cores 8 --loads 24000,8000 \
    --jsonl results/ci_serve_coop.jsonl \
  | serve_sim > results/ci_serve_coop.txt
./target/release/serve --quick --cores 8 --loads 24000,8000 \
    --scheduler speculative --host-threads 2 \
    --jsonl results/ci_serve_spec.jsonl \
  | serve_sim > results/ci_serve_spec.txt
cmp results/ci_serve_coop.txt results/ci_serve_spec.txt
cmp results/ci_serve_coop.jsonl results/ci_serve_spec.jsonl
# The per-request JSONL export must be non-empty, line-oriented JSON
# objects carrying the documented keys.
test -s results/ci_serve_coop.jsonl
head -n 1 results/ci_serve_coop.jsonl | grep -q '"latency"'
head -n 1 results/ci_serve_coop.jsonl | grep -q '"dominant"'
if grep -qv '^{.*}$' results/ci_serve_coop.jsonl; then
    echo "ci.sh: malformed JSONL line in results/ci_serve_coop.jsonl" >&2
    exit 1
fi
grep -q '^SLO: ' results/ci_serve_coop.txt
rm -f results/ci_serve_coop.jsonl results/ci_serve_spec.jsonl

echo "== lazy-subscription window regression gate"
# The deliberately unsafe lazy-subscription policy must keep reproducing
# the Dice-et-al. torn-commit window deterministically, and the safe
# variant must keep closing it with a commit-time subscription abort.
# Runs as part of the workspace suite above too; the explicit invocation
# keeps the safety gate visible in CI logs.
cargo test -q --offline -p stagger-core --test lazy_subscription

echo "== fallback-protocol byte-identity gates (speculative vs cooperative)"
# The fallback policy is a *simulated* knob: each protocol must stay
# bit-identical across host schedulers through the CLI path too. Compare
# the simulated projection of the scaling table at 16 cores per policy.
for fb in hybrid-stm lazy-subscription-safe; do
  ./target/release/scaling --quick --cores 16 --fallback "$fb" --jobs 2 \
    | sim_cols > "results/ci_fb_${fb}_coop.txt"
  ./target/release/scaling --quick --cores 16 --fallback "$fb" \
      --scheduler speculative --host-threads 2 --jobs 2 \
    | sim_cols > "results/ci_fb_${fb}_spec.txt"
  cmp "results/ci_fb_${fb}_coop.txt" "results/ci_fb_${fb}_spec.txt"
done

echo "== protocols exhibit smoke (full variant matrix, quick)"
# All 80 cells of the protocol matrix must run clean — workload
# validation passes under every variant — and the new abort causes must
# actually engage: bounded-set rows report capacity aborts,
# lazy-subscription-safe rows report subscription aborts.
./target/release/protocols --quick --jobs 2 | tee results/ci_protocols.txt
test "$(grep -Ec '[0-9]\.[0-9]{2}x$' results/ci_protocols.txt)" -eq 80
awk '$3 == "bounded-set" { c += $8 } END { exit !(c > 0) }' \
  results/ci_protocols.txt
awk '$3 == "lazy-subscription-safe" { s += $9 } END { exit !(s > 0) }' \
  results/ci_protocols.txt

echo "== sweep --quick --spec smoke (ablation-sweep cache smoke)"
# Cold run: the two-cell smoke sweep computes both cells and populates the
# content-hashed cell cache.
rm -rf results/sweeps-ci
./target/release/sweep --quick --spec smoke --dir results/sweeps-ci \
  | tee results/ci_sweep_smoke.txt
grep -q 'sweep smoke: 2 cells total, 0 cached, 2 computed, 0 remaining' \
  results/ci_sweep_smoke.txt
test "$(ls results/sweeps-ci/smoke/cells/*.cell | wc -l)" -eq 2
test -s results/sweeps-ci/smoke/smoke.json
test -s results/sweeps-ci/smoke/smoke.csv
# Warm re-run: every cell must come from the cache (100% hit, zero
# recomputation) and the emitted tables must be byte-identical.
cp results/sweeps-ci/smoke/smoke.json results/sweeps-ci/smoke.json.cold
cp results/sweeps-ci/smoke/smoke.csv results/sweeps-ci/smoke.csv.cold
./target/release/sweep --quick --spec smoke --dir results/sweeps-ci \
  | tee results/ci_sweep_smoke_rerun.txt
grep -q 'sweep smoke: 2 cells total, 2 cached, 0 computed, 0 remaining' \
  results/ci_sweep_smoke_rerun.txt
cmp results/sweeps-ci/smoke/smoke.json results/sweeps-ci/smoke.json.cold
cmp results/sweeps-ci/smoke/smoke.csv results/sweeps-ci/smoke.csv.cold

echo "== ci.sh: all gates passed"
