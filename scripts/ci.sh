#!/usr/bin/env bash
# Offline CI gate for the reproduction.
#
#   scripts/ci.sh
#
# Steps: format check, release build (workspace root + exhibit binaries),
# tier-1 tests, workspace tests, and a parallel-harness smoke run of
# fig7 --quick whose output (including the machine-readable
# results/BENCH_fig7.json) is recorded under results/.
#
# Everything runs with --offline: the workspace has no external
# dependencies by design, and CI must not depend on a registry.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy --workspace -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release (workspace root)"
cargo build --release --offline

echo "== cargo build --release -p stagger-bench (exhibit binaries)"
cargo build --release --offline -p stagger-bench

echo "== cargo test -q (tier-1)"
cargo test -q --offline

echo "== cargo test -q --workspace"
cargo test -q --offline --workspace

echo "== fig7 --quick --jobs 2 --json (harness smoke)"
mkdir -p results
./target/release/fig7 --quick --jobs 2 --json | tee results/ci_fig7_quick.txt

echo "== ci.sh: all gates passed"
