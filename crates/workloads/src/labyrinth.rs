//! labyrinth (STAMP): transactional grid routing (Lee's algorithm,
//! simplified).
//!
//! Each transaction routes a two-segment (x-then-y) rectilinear path across
//! a shared grid: it first reads every cell on the path, and — if all are
//! free — claims them all. Transactions are *long* and their footprints
//! overlap often: the paper's high-W/U, high-contention datapoint (3.47
//! aborts/commit, speedup only 1.9). STAMP uses privatization + early
//! release to shrink read sets; we keep the fully transactional variant and
//! a 2-D grid (documented in DESIGN.md) — the conflict pattern (wandering
//! addresses, stable PCs) is the same.
//!
//! Layout: row-major grid of W×H words, 0 = free, otherwise marker id.

use crate::{alloc_stat_slots, stat_slot, sum_slots, Workload};
use htm_sim::Machine;
use tm_interp::RunOutcome;
use tm_ir::{FuncBuilder, FuncKind, Module};

/// The labyrinth benchmark (paper input: `random-x16-y16-z3-n64`, scaled
/// to 2-D).
#[derive(Debug, Clone)]
pub struct Labyrinth {
    pub width: u64,
    pub height: u64,
    /// Route attempts across all threads.
    pub total_ops: u64,
    /// Path-planning work per attempt, in cycles.
    pub plan_cycles: u32,
}

impl Default for Labyrinth {
    fn default() -> Self {
        Labyrinth {
            width: 24,
            height: 24,
            total_ops: 1024,
            plan_cycles: 300,
        }
    }
}

impl Labyrinth {
    pub fn tiny() -> Labyrinth {
        Labyrinth {
            width: 12,
            height: 12,
            total_ops: 192,
            plan_cycles: 80,
        }
    }
}

impl Workload for Labyrinth {
    fn name(&self) -> &'static str {
        "labyrinth"
    }

    fn contention_source(&self) -> &'static str {
        "grid cells along routed paths"
    }

    fn build_module(&self) -> Module {
        let mut m = Module::new();

        // step_toward(cur, dst) -> cur±1 (or cur when equal)
        let mut b = FuncBuilder::new("step_toward", 2, FuncKind::Normal);
        let (cur, dst) = (b.param(0), b.param(1));
        let lt = b.lt(cur, dst);
        b.if_(lt, |b| {
            let n = b.addi(cur, 1);
            b.ret(Some(n));
        });
        let gt = b.gt(cur, dst);
        b.if_(gt, |b| {
            let n = b.subi(cur, 1);
            b.ret(Some(n));
        });
        b.ret(Some(cur));
        let step = m.add_function(b.finish());

        // scan_path(grid, w, sx, sy, dx, dy, marker) -> cells touched, or 0
        // if blocked; marker == 0 means "check only", nonzero writes.
        let mut b = FuncBuilder::new("scan_path", 7, FuncKind::Normal);
        let grid = b.param(0);
        let w = b.param(1);
        let sx = b.param(2);
        let sy = b.param(3);
        let dx = b.param(4);
        let dy = b.param(5);
        let marker = b.param(6);
        let x = b.mov(sx);
        let y = b.mov(sy);
        let cells = b.const_(0);
        let writing = b.nei(marker, 0);

        // Visit (x, y), then step x toward dx; when x == dx step y.
        let l = b.begin_loop();
        let row = b.mul(y, w);
        let off = b.add(row, x);
        let cell = b.gep(grid, off, 0);
        b.if_else(
            writing,
            |b| b.store(marker, cell, 0),
            |b| {
                let v = b.load(cell, 0);
                let busy = b.nei(v, 0);
                b.if_(busy, |b| b.ret_const(0));
            },
        );
        let c2 = b.addi(cells, 1);
        b.assign(cells, c2);
        let x_done = b.eq(x, dx);
        let y_done = b.eq(y, dy);
        let both = b.bin(tm_ir::BinOp::And, x_done, y_done);
        b.break_if(l, both);
        b.if_else(
            x_done,
            |b| {
                let ny = b.call(step, &[y, dy]);
                b.assign(y, ny);
            },
            |b| {
                let nx = b.call(step, &[x, dx]);
                b.assign(x, nx);
            },
        );
        b.end_loop(l);
        b.ret(Some(cells));
        let scan = m.add_function(b.finish());

        // erase_path(grid, w, sx, sy, dx, dy) -> cells freed: the rip-up
        // half of rip-up-and-reroute; walks the same x-then-y path writing
        // zeros (all cells belong to the calling thread's previous route).
        let mut b = FuncBuilder::new("erase_path", 6, FuncKind::Normal);
        let grid = b.param(0);
        let w = b.param(1);
        let sx = b.param(2);
        let sy = b.param(3);
        let dx = b.param(4);
        let dy = b.param(5);
        let x = b.mov(sx);
        let y = b.mov(sy);
        let cells = b.const_(0);
        let l = b.begin_loop();
        let row = b.mul(y, w);
        let off = b.add(row, x);
        let cell = b.gep(grid, off, 0);
        b.store_const(0, cell, 0);
        let c2 = b.addi(cells, 1);
        b.assign(cells, c2);
        let x_done = b.eq(x, dx);
        let y_done = b.eq(y, dy);
        let both = b.bin(tm_ir::BinOp::And, x_done, y_done);
        b.break_if(l, both);
        b.if_else(
            x_done,
            |b| {
                let ny = b.call(step, &[y, dy]);
                b.assign(y, ny);
            },
            |b| {
                let nx = b.call(step, &[x, dx]);
                b.assign(x, nx);
            },
        );
        b.end_loop(l);
        b.ret(Some(cells));
        let erase = m.add_function(b.finish());

        // atomic tx_route(grid, w, sx, sy, dx, dy, marker) -> cells claimed
        let mut b = FuncBuilder::new("tx_route", 7, FuncKind::Atomic { ab_id: 0 });
        let args: Vec<_> = (0..7).map(|i| b.param(i)).collect();
        let zero = b.const_(0);
        let free = b.call(
            scan,
            &[args[0], args[1], args[2], args[3], args[4], args[5], zero],
        );
        let blocked = b.eqi(free, 0);
        b.if_(blocked, |b| b.ret_const(0));
        let claimed = b.call(
            scan,
            &[
                args[0], args[1], args[2], args[3], args[4], args[5], args[6],
            ],
        );
        b.ret(Some(claimed));
        let tx_route = m.add_function(b.finish());

        // atomic tx_rip_up(grid, w, sx, sy, dx, dy) -> cells freed
        let mut b = FuncBuilder::new("tx_rip_up", 6, FuncKind::Atomic { ab_id: 1 });
        let args: Vec<_> = (0..6).map(|i| b.param(i)).collect();
        let freed = b.call(
            erase,
            &[args[0], args[1], args[2], args[3], args[4], args[5]],
        );
        b.ret(Some(freed));
        let tx_rip_up = m.add_function(b.finish());

        // thread_main(grid, w, h, ops, marker, slot) -> routes done
        //
        // Rip-up-and-reroute: each successful route replaces the thread's
        // previous one (previous path freed in its own transaction), so the
        // grid reaches a contended steady state instead of saturating.
        let mut b = FuncBuilder::new("thread_main", 6, FuncKind::Normal);
        let grid = b.param(0);
        let w = b.param(1);
        let h = b.param(2);
        let ops = b.param(3);
        let marker = b.param(4);
        let slot = b.param(5);
        let i = b.const_(0);
        let routed = b.const_(0);
        let cells = b.const_(0);
        let freed = b.const_(0);
        let have_prev = b.const_(0);
        let psx = b.const_(0);
        let psy = b.const_(0);
        let pdx = b.const_(0);
        let pdy = b.const_(0);
        b.while_(
            |b| b.lt(i, ops),
            |b| {
                let sx = b.rand(w);
                let sy = b.rand(h);
                let dx = b.rand(w);
                let dy = b.rand(h);
                b.compute(self.plan_cycles); // path planning outside txn
                let got = b.call(tx_route, &[grid, w, sx, sy, dx, dy, marker]);
                let okc = b.nei(got, 0);
                b.if_(okc, |b| {
                    let r2 = b.addi(routed, 1);
                    b.assign(routed, r2);
                    let s = b.add(cells, got);
                    b.assign(cells, s);
                    // Rip up the previous route, then remember this one.
                    let had = b.nei(have_prev, 0);
                    b.if_(had, |b| {
                        let fr = b.call(tx_rip_up, &[grid, w, psx, psy, pdx, pdy]);
                        let f2 = b.add(freed, fr);
                        b.assign(freed, f2);
                    });
                    b.assign(psx, sx);
                    b.assign(psy, sy);
                    b.assign(pdx, dx);
                    b.assign(pdy, dy);
                    b.assign_const(have_prev, 1);
                });
                let nx = b.addi(i, 1);
                b.assign(i, nx);
            },
        );
        b.store(routed, slot, 0);
        b.store(cells, slot, 1);
        b.store(freed, slot, 2);
        b.ret(Some(i));
        m.add_function(b.finish());

        tm_ir::verify_module(&m).expect("labyrinth module verifies");
        m
    }

    fn setup(&self, machine: &Machine, n_threads: usize) -> Vec<Vec<u64>> {
        let grid = machine.host_alloc(self.width * self.height, true);
        let slots = alloc_stat_slots(machine, n_threads);
        let per = self.total_ops / n_threads as u64;
        (0..n_threads)
            .map(|t| {
                vec![
                    grid,
                    self.width,
                    self.height,
                    per,
                    t as u64 + 1, // nonzero per-thread marker
                    stat_slot(slots, t),
                ]
            })
            .collect()
    }

    fn validate(
        &self,
        machine: &Machine,
        thread_args: &[Vec<u64>],
        _out: &RunOutcome,
    ) -> Result<(), String> {
        let grid = thread_args[0][0];
        let slots_base = thread_args[0][5];
        let n_threads = thread_args.len();

        // Disjoint claims: every nonzero cell carries a valid thread
        // marker (x-then-y paths are self-avoiding, and a route only
        // claims cells it saw free, so no cell is ever double-claimed).
        // Conservation: occupied cells == claimed − ripped-up.
        let mut occupied = 0u64;
        for i in 0..self.width * self.height {
            let v = machine.host_load(grid + i * 8);
            if v != 0 {
                if v > n_threads as u64 {
                    return Err(format!("cell {i} has bad marker {v}"));
                }
                occupied += 1;
            }
        }
        let claimed = sum_slots(machine, slots_base, n_threads, 1);
        let freed = sum_slots(machine, slots_base, n_threads, 2);
        if occupied != claimed - freed {
            return Err(format!(
                "grid has {occupied} occupied cells, claimed {claimed} - freed {freed} = {}",
                claimed - freed
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_benchmark;
    use stagger_core::Mode;

    #[test]
    fn labyrinth_correct_in_all_modes() {
        let w = Labyrinth::tiny();
        for mode in Mode::ALL {
            let r = run_benchmark(&w, mode, 4, 71);
            // One route attempt per op, plus a rip-up txn per success.
            assert!(
                r.out.exec.committed_txns + r.out.exec.irrevocable_txns >= 192,
                "{}",
                mode.name()
            );
        }
    }

    #[test]
    fn labyrinth_contends_with_long_transactions() {
        let w = Labyrinth::tiny();
        let r = run_benchmark(&w, Mode::Htm, 8, 73);
        assert!(
            r.out.sim.aborts_per_commit() > 0.3,
            "overlapping paths must contend, got {:.2}",
            r.out.sim.aborts_per_commit()
        );
    }
}
