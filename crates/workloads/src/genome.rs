//! genome (STAMP): segment deduplication through a fixed-size hash table.
//!
//! The most time-consuming atomic block inserts a handful of segments into
//! a shared, deliberately overloaded chained hash table (paper Figure 3
//! shows this exact block and its anchor table). Conflict *chains* arise
//! when concurrent transactions insert into overlapping bucket sets; the
//! policy escapes them through **locking promotion**: the bucket-list
//! anchor's parent is the table anchor, so persistent coarse-grain
//! contention ends up serializing on the table as a whole (Section 6.2).
//!
//! Layout: vector `{0: size, 1..: elems}`; hashtable `{0: numBucket,
//! 1..: bucket heads}`; chain node `{0: key, 1: next}` (sorted chains, as
//! in STAMP's `TMlist_insert`).

use crate::{alloc_stat_slots, stat_slot, sum_slots, Workload};
use htm_sim::Machine;
use std::collections::HashSet;
use tm_interp::RunOutcome;
use tm_ir::{FuncBuilder, FuncKind, Module};

/// The genome benchmark (paper input: `-g1024 -s16 -n16384`, scaled).
#[derive(Debug, Clone)]
pub struct Genome {
    /// Total segments in the input vector (with duplicates).
    pub n_segments: u64,
    /// Distinct segment values.
    pub n_distinct: u64,
    /// Hash-table buckets — small on purpose: STAMP's table "ends up
    /// overloaded and prone to contention".
    pub n_buckets: u64,
    /// Segments inserted per transaction (the `ii..ii_stop` chunk).
    pub segs_per_txn: u64,
}

impl Default for Genome {
    fn default() -> Self {
        Genome {
            n_segments: 4096,
            n_distinct: 1024,
            n_buckets: 512,
            segs_per_txn: 2,
        }
    }
}

impl Genome {
    pub fn tiny() -> Genome {
        Genome {
            n_segments: 256,
            n_distinct: 64,
            n_buckets: 16,
            segs_per_txn: 4,
        }
    }
}

impl Workload for Genome {
    fn name(&self) -> &'static str {
        "genome"
    }

    fn contention_source(&self) -> &'static str {
        "hash table of segment lists"
    }

    fn build_module(&self) -> Module {
        let mut m = Module::new();

        // vector_at(vec, i) -> element (0 if out of range) — lib/vector.c
        let mut b = FuncBuilder::new("vector_at", 2, FuncKind::Normal);
        let (vec, i) = (b.param(0), b.param(1));
        let sz = b.load(vec, 0);
        let oob = b.ge(i, sz);
        b.if_(oob, |b| b.ret_const(0));
        let v = b.load_idx(vec, i, 1);
        b.ret(Some(v));
        let vector_at = m.add_function(b.finish());

        // hashtable_insert(ht, key) -> 1 if inserted (sorted chain) —
        // lib/hashtable.c + lib/list.c
        let mut b = FuncBuilder::new("hashtable_insert", 2, FuncKind::Normal);
        let (ht, key) = (b.param(0), b.param(1));
        let nb = b.load(ht, 0);
        let idx = b.bin(tm_ir::BinOp::Rem, key, nb);
        let head = b.load_idx(ht, idx, 1);
        // Find insertion point: prev == 0 means "insert at bucket head".
        let prev = b.const_(0);
        let cur = b.mov(head);
        let l = b.begin_loop();
        let is_null = b.eqi(cur, 0);
        b.break_if(l, is_null);
        let ckey = b.load(cur, 0);
        let dup = b.eq(ckey, key);
        b.if_(dup, |b| b.ret_const(0));
        let ge = b.gt(ckey, key);
        b.break_if(l, ge);
        b.assign(prev, cur);
        let nx = b.load(cur, 1);
        b.assign(cur, nx);
        b.end_loop(l);
        let node = b.alloc_const(2, true);
        b.store(key, node, 0);
        b.store(cur, node, 1);
        let at_head = b.eqi(prev, 0);
        b.if_else(
            at_head,
            |b| b.store_idx(node, ht, idx, 1),
            |b| b.store(node, prev, 1),
        );
        b.ret_const(1);
        let ht_insert = m.add_function(b.finish());

        // atomic tx_insert_segments(ht, vec, start, stop) -> inserted count
        // — genome/sequencer.c:292
        let mut b = FuncBuilder::new("tx_insert_segments", 4, FuncKind::Atomic { ab_id: 0 });
        let ht = b.param(0);
        let vec = b.param(1);
        let ii = b.mov(b.param(2));
        let stop = b.param(3);
        let inserted = b.const_(0);
        b.while_(
            |b| b.lt(ii, stop),
            |b| {
                let seg = b.call(vector_at, &[vec, ii]);
                let ok = b.call(ht_insert, &[ht, seg]);
                let s = b.add(inserted, ok);
                b.assign(inserted, s);
                let nx = b.addi(ii, 1);
                b.assign(ii, nx);
            },
        );
        b.ret(Some(inserted));
        let tx_insert = m.add_function(b.finish());

        // thread_main(ht, vec, start, count, chunk, slot) -> txns run
        let mut b = FuncBuilder::new("thread_main", 6, FuncKind::Normal);
        let ht = b.param(0);
        let vec = b.param(1);
        let start = b.param(2);
        let count = b.param(3);
        let chunk = b.param(4);
        let slot = b.param(5);
        let i = b.mov(start);
        let end = b.add(start, count);
        let inserted = b.const_(0);
        let txns = b.const_(0);
        b.while_(
            |b| b.lt(i, end),
            |b| {
                let stop0 = b.add(i, chunk);
                let over = b.gt(stop0, end);
                let stop = b.reg();
                b.if_else(over, |b| b.assign(stop, end), |b| b.assign(stop, stop0));
                let ok = b.call(tx_insert, &[ht, vec, i, stop]);
                let s = b.add(inserted, ok);
                b.assign(inserted, s);
                let t = b.addi(txns, 1);
                b.assign(txns, t);
                b.compute(400); // the non-insert phases of genome (matching, building)
                b.assign(i, stop);
            },
        );
        b.store(inserted, slot, 0);
        b.ret(Some(txns));
        m.add_function(b.finish());

        tm_ir::verify_module(&m).expect("genome module verifies");
        m
    }

    fn setup(&self, machine: &Machine, n_threads: usize) -> Vec<Vec<u64>> {
        let mut rng = stagger_prng::Xoshiro256StarStar::seed_from_u64(0x67656E6F6D65);

        // Segment vector: values drawn from `n_distinct` keys (nonzero so 0
        // can mean "null").
        let vec = machine.host_alloc(1 + self.n_segments, true);
        machine.host_store(vec, self.n_segments);
        for s in 0..self.n_segments {
            let key = rng.below(self.n_distinct) * 8 + 1;
            machine.host_store(vec + 8 * (1 + s), key);
        }
        // Empty hashtable.
        let ht = machine.host_alloc(1 + self.n_buckets, true);
        machine.host_store(ht, self.n_buckets);

        let slots = alloc_stat_slots(machine, n_threads);
        let per = self.n_segments / n_threads as u64;
        (0..n_threads)
            .map(|t| {
                vec![
                    ht,
                    vec,
                    t as u64 * per,
                    per,
                    self.segs_per_txn,
                    stat_slot(slots, t),
                ]
            })
            .collect()
    }

    fn validate(
        &self,
        machine: &Machine,
        thread_args: &[Vec<u64>],
        _out: &RunOutcome,
    ) -> Result<(), String> {
        let ht = thread_args[0][0];
        let vec = thread_args[0][1];
        let slots_base = thread_args[0][5];
        let n_threads = thread_args.len();

        // Expected: the distinct set of segments across processed ranges
        // (threads process their whole range).
        let per = self.n_segments / n_threads as u64;
        let mut expect: HashSet<u64> = HashSet::new();
        for t in 0..n_threads as u64 {
            for s in t * per..(t + 1) * per {
                expect.insert(machine.host_load(vec + 8 * (1 + s)));
            }
        }

        let mut found: HashSet<u64> = HashSet::new();
        for bkt in 0..self.n_buckets {
            let mut cur = machine.host_load(ht + 8 * (1 + bkt));
            let mut last = 0u64;
            let mut steps = 0u64;
            while cur != 0 {
                let k = machine.host_load(cur);
                if k <= last {
                    return Err(format!(
                        "bucket {bkt} not strictly sorted: {k} after {last}"
                    ));
                }
                if k % self.n_buckets != bkt {
                    return Err(format!("key {k} in wrong bucket {bkt}"));
                }
                if !found.insert(k) {
                    return Err(format!("duplicate key {k} across buckets"));
                }
                last = k;
                cur = machine.host_load(cur + 8);
                steps += 1;
                if steps > self.n_segments + 1 {
                    return Err("chain too long — cycle?".into());
                }
            }
        }
        if found != expect {
            return Err(format!(
                "table has {} keys, expected {} distinct segments",
                found.len(),
                expect.len()
            ));
        }
        let inserted = sum_slots(machine, slots_base, n_threads, 0);
        if inserted != found.len() as u64 {
            return Err(format!(
                "successful inserts {inserted} != table size {}",
                found.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_benchmark;
    use stagger_core::Mode;

    #[test]
    fn genome_correct_in_all_modes() {
        let w = Genome::tiny();
        for mode in Mode::ALL {
            let r = run_benchmark(&w, mode, 4, 21);
            let txns = 256 / 4; // segments / chunk
            assert_eq!(
                r.out.exec.committed_txns + r.out.exec.irrevocable_txns,
                txns,
                "{}",
                mode.name()
            );
        }
    }

    #[test]
    fn genome_promotion_can_fire() {
        // Under heavy chain contention the policy should reach coarse or
        // promoted activations at least sometimes.
        let mut w = Genome::tiny();
        w.n_buckets = 4;
        w.n_segments = 512;
        w.n_distinct = 128;
        let r = run_benchmark(&w, Mode::Staggered, 8, 23);
        assert!(
            r.out.rt.act_coarse > 0 || r.out.rt.act_precise > 0,
            "contended genome must activate ALPs"
        );
    }
}
