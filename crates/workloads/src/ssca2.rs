//! ssca2 (STAMP): graph kernel 1 — parallel edge insertion.
//!
//! Threads add random edges to per-node adjacency records in tiny
//! transactions (the paper reports 3.1 µ-ops per transaction and 0.02
//! aborts/commit — the low-contention anchor of the benchmark set, used to
//! show Staggered Transactions do not slow uncontended programs down).
//!
//! Layout: one line-aligned record per node:
//! `{0: degree, 1..=max_degree: edge targets}`.

use crate::{alloc_stat_slots, stat_slot, sum_slots, Workload};
use htm_sim::Machine;
use tm_interp::RunOutcome;
use tm_ir::{FuncBuilder, FuncKind, Module};

/// The ssca2 benchmark (paper input: `-s13 -i1.0 -u1.0 -l3 -p3`).
#[derive(Debug, Clone)]
pub struct Ssca2 {
    pub n_nodes: u64,
    pub max_degree: u64,
    pub total_ops: u64,
}

impl Default for Ssca2 {
    fn default() -> Self {
        Ssca2 {
            n_nodes: 4096,
            max_degree: 7,
            total_ops: 8192,
        }
    }
}

impl Ssca2 {
    pub fn tiny() -> Ssca2 {
        Ssca2 {
            n_nodes: 128,
            max_degree: 7,
            total_ops: 512,
        }
    }

    /// Words per adjacency record (degree + slots), line-padded.
    fn stride(&self) -> u64 {
        (self.max_degree + 1).div_ceil(8) * 8
    }
}

impl Workload for Ssca2 {
    fn name(&self) -> &'static str {
        "ssca2"
    }

    fn contention_source(&self) -> &'static str {
        "adjacency arrays"
    }

    fn build_module(&self) -> Module {
        let mut m = Module::new();

        // atomic tx_add_edge(rec, v, max_degree) -> 1 if added
        let mut b = FuncBuilder::new("tx_add_edge", 3, FuncKind::Atomic { ab_id: 0 });
        let (rec, v, maxd) = (b.param(0), b.param(1), b.param(2));
        let deg = b.load(rec, 0);
        let full = b.ge(deg, maxd);
        b.if_(full, |b| b.ret_const(0));
        b.store_idx(v, rec, deg, 1);
        let d2 = b.addi(deg, 1);
        b.store(d2, rec, 0);
        b.ret_const(1);
        let tx_add = m.add_function(b.finish());

        // thread_main(adj, n_nodes, stride, ops, maxd, slot) -> edges added
        let mut b = FuncBuilder::new("thread_main", 6, FuncKind::Normal);
        let adj = b.param(0);
        let n_nodes = b.param(1);
        let stride = b.param(2);
        let ops = b.param(3);
        let maxd = b.param(4);
        let slot = b.param(5);

        let i = b.const_(0);
        let added = b.const_(0);
        b.while_(
            |b| b.lt(i, ops),
            |b| {
                let u = b.rand(n_nodes);
                let v = b.rand(n_nodes);
                let off = b.mul(u, stride);
                let rec = b.gep(adj, off, 0);
                let ok = b.call(tx_add, &[rec, v, maxd]);
                let s = b.add(added, ok);
                b.assign(added, s);
                b.compute(20);
                let nx = b.addi(i, 1);
                b.assign(i, nx);
            },
        );
        b.store(added, slot, 0);
        b.ret(Some(i));
        m.add_function(b.finish());

        tm_ir::verify_module(&m).expect("ssca2 module verifies");
        m
    }

    fn setup(&self, machine: &Machine, n_threads: usize) -> Vec<Vec<u64>> {
        let stride = self.stride();
        let adj = machine.host_alloc(self.n_nodes * stride, true);
        let slots = alloc_stat_slots(machine, n_threads);
        let per = self.total_ops / n_threads as u64;
        (0..n_threads)
            .map(|t| {
                vec![
                    adj,
                    self.n_nodes,
                    stride,
                    per,
                    self.max_degree,
                    stat_slot(slots, t),
                ]
            })
            .collect()
    }

    fn validate(
        &self,
        machine: &Machine,
        thread_args: &[Vec<u64>],
        _out: &RunOutcome,
    ) -> Result<(), String> {
        let adj = thread_args[0][0];
        let slots_base = thread_args[0][5];
        let n_threads = thread_args.len();
        let stride = self.stride();

        let added = sum_slots(machine, slots_base, n_threads, 0);
        let mut total_degree = 0u64;
        for u in 0..self.n_nodes {
            let deg = machine.host_load(adj + u * stride * 8);
            if deg > self.max_degree {
                return Err(format!("node {u} degree {deg} > max {}", self.max_degree));
            }
            // Every filled slot holds a valid target.
            for s in 0..deg {
                let v = machine.host_load(adj + (u * stride + 1 + s) * 8);
                if v >= self.n_nodes {
                    return Err(format!("node {u} slot {s}: bad target {v}"));
                }
            }
            total_degree += deg;
        }
        if total_degree != added {
            return Err(format!(
                "total degree {total_degree} != successful adds {added}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_benchmark;
    use stagger_core::Mode;

    #[test]
    fn ssca2_correct_in_all_modes() {
        let w = Ssca2::tiny();
        for mode in Mode::ALL {
            let r = run_benchmark(&w, mode, 4, 11);
            assert_eq!(
                r.out.exec.committed_txns + r.out.exec.irrevocable_txns,
                512,
                "{}",
                mode.name()
            );
        }
    }

    #[test]
    fn ssca2_is_low_contention() {
        let w = Ssca2::default();
        let r = run_benchmark(&w, Mode::Htm, 8, 11);
        assert!(
            r.out.sim.aborts_per_commit() < 0.2,
            "ssca2 must be low-contention, got {:.3}",
            r.out.sim.aborts_per_commit()
        );
    }

    #[test]
    fn staggered_does_not_slow_ssca2() {
        // Result 1 of the paper: no slowdown for low-contention apps.
        let mut w = Ssca2::tiny();
        w.total_ops = 2048;
        let base = run_benchmark(&w, Mode::Htm, 8, 11);
        let stag = run_benchmark(&w, Mode::Staggered, 8, 11);
        let ratio = stag.cycles() as f64 / base.cycles() as f64;
        assert!(
            ratio < 1.15,
            "staggered must not slow down ssca2: ratio {ratio:.3}"
        );
    }
}
