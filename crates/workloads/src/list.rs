//! Sorted linked-list microbenchmark (RSTM IntSet \[22\]).
//!
//! Threads search/insert/delete over one shared, sorted singly-linked list
//! of 64 nodes. `list-lo` runs the paper's 90/5/5 lookup/insert/delete mix,
//! `list-hi` the 60/20/20 mix (the paper's worst case: it "stops scaling
//! after 4 threads").
//!
//! The contention pattern is Table 1's `LA = N, LP = Y` class: the PC of
//! the first node access recurs, but the conflicting node address wanders —
//! so the policy must fall back to coarse-grain mode, locking from the
//! first node touched (the sentinel ⇒ effectively the whole list), which
//! is exactly what Section 6.2 reports for list-hi.
//!
//! Layout: list object `{0: head}`; node `{0: key, 1: next}`, each
//! line-aligned. A sentinel node with key 0 heads the list; real keys are
//! `1..=key_range`.

use crate::{alloc_stat_slots, stat_slot, sum_slots, Workload};
use htm_sim::Machine;
use tm_interp::RunOutcome;
use tm_ir::{FuncBuilder, FuncKind, Module};

const OFF_KEY: u32 = 0;
const OFF_NEXT: u32 = 1;

/// The list microbenchmark; `lo()`/`hi()` select the paper's two mixes.
#[derive(Debug, Clone)]
pub struct ListBench {
    pub name: &'static str,
    pub lookup_pct: u64,
    pub insert_pct: u64,
    /// Number of possible keys (initial population fills every other key).
    pub key_range: u64,
    pub total_ops: u64,
    /// Modeled non-transactional work between operations, in cycles.
    pub think_cycles: u32,
}

impl ListBench {
    /// 90% lookup / 5% insert / 5% delete over 64 nodes.
    pub fn lo() -> ListBench {
        ListBench {
            name: "list-lo",
            lookup_pct: 90,
            insert_pct: 5,
            key_range: 128,
            total_ops: 4096,
            think_cycles: 100,
        }
    }

    /// 60% lookup / 20% insert / 20% delete over 64 nodes.
    pub fn hi() -> ListBench {
        ListBench {
            name: "list-hi",
            lookup_pct: 60,
            insert_pct: 20,
            key_range: 128,
            total_ops: 4096,
            think_cycles: 100,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny(lookup_pct: u64, insert_pct: u64) -> ListBench {
        ListBench {
            name: "list-tiny",
            lookup_pct,
            insert_pct,
            key_range: 32,
            total_ops: 256,
            think_cycles: 40,
        }
    }
}

impl Workload for ListBench {
    fn name(&self) -> &'static str {
        self.name
    }

    fn contention_source(&self) -> &'static str {
        "linked-list"
    }

    fn build_module(&self) -> Module {
        let mut m = Module::new();

        // list_find_prev(list, key) -> node with greatest key < `key`
        // (at least the sentinel).
        let mut b = FuncBuilder::new("list_find_prev", 2, FuncKind::Normal);
        let (list, key) = (b.param(0), b.param(1));
        let prev = b.load(list, 0); // sentinel
        let cur = b.load(prev, OFF_NEXT);
        let l = b.begin_loop();
        let is_null = b.eqi(cur, 0);
        b.break_if(l, is_null);
        let ckey = b.load(cur, OFF_KEY);
        let ge = b.ge(ckey, key);
        b.break_if(l, ge);
        b.compute(6); // per-node comparison work (widens the window, as in
                      // the RSTM IntSet where keys are compared via calls)
        b.assign(prev, cur);
        let nx = b.load(cur, OFF_NEXT);
        b.assign(cur, nx);
        b.end_loop(l);
        b.ret(Some(prev));
        let find_prev = m.add_function(b.finish());

        // atomic tx_lookup(list, key) -> 1 if present
        let mut b = FuncBuilder::new("tx_lookup", 2, FuncKind::Atomic { ab_id: 0 });
        let (list, key) = (b.param(0), b.param(1));
        let prev = b.call(find_prev, &[list, key]);
        let cur = b.load(prev, OFF_NEXT);
        let is_null = b.eqi(cur, 0);
        b.if_(is_null, |b| b.ret_const(0));
        let ckey = b.load(cur, OFF_KEY);
        let found = b.eq(ckey, key);
        b.ret(Some(found));
        m.add_function(b.finish());

        // atomic tx_insert(list, key) -> 1 if inserted
        let mut b = FuncBuilder::new("tx_insert", 2, FuncKind::Atomic { ab_id: 1 });
        let (list, key) = (b.param(0), b.param(1));
        let prev = b.call(find_prev, &[list, key]);
        let cur = b.load(prev, OFF_NEXT);
        let nonnull = b.nei(cur, 0);
        b.if_(nonnull, |b| {
            let ckey = b.load(cur, OFF_KEY);
            let dup = b.eq(ckey, key);
            b.if_(dup, |b| b.ret_const(0));
        });
        let node = b.alloc_const(2, true); // line-aligned, as the paper's Lockless allocator
        b.store(key, node, OFF_KEY);
        b.store(cur, node, OFF_NEXT);
        b.store(node, prev, OFF_NEXT);
        b.ret_const(1);
        m.add_function(b.finish());

        // atomic tx_delete(list, key) -> 1 if removed
        let mut b = FuncBuilder::new("tx_delete", 2, FuncKind::Atomic { ab_id: 2 });
        let (list, key) = (b.param(0), b.param(1));
        let prev = b.call(find_prev, &[list, key]);
        let cur = b.load(prev, OFF_NEXT);
        let is_null = b.eqi(cur, 0);
        b.if_(is_null, |b| b.ret_const(0));
        let ckey = b.load(cur, OFF_KEY);
        let miss = b.ne(ckey, key);
        b.if_(miss, |b| b.ret_const(0));
        let nn = b.load(cur, OFF_NEXT);
        b.store(nn, prev, OFF_NEXT);
        b.ret_const(1);
        m.add_function(b.finish());

        // thread_main(list, n_ops, key_range, lookup_pct, ins_pct, slot,
        //             think) -> ops done
        let mut b = FuncBuilder::new("thread_main", 7, FuncKind::Normal);
        let list = b.param(0);
        let n_ops = b.param(1);
        let key_range = b.param(2);
        let lpct = b.param(3);
        let ipct = b.param(4);
        let slot = b.param(5);
        let _think = b.param(6); // reserved: think time is compiled in
        let tx_lookup = m.expect("tx_lookup");
        let tx_insert = m.expect("tx_insert");
        let tx_delete = m.expect("tx_delete");

        let i = b.const_(0);
        let ins = b.const_(0);
        let del = b.const_(0);
        let li_pct = b.add(lpct, ipct);
        b.while_(
            |b| b.lt(i, n_ops),
            |b| {
                let r = b.rand_below(100);
                let k0 = b.rand(key_range);
                let key = b.addi(k0, 1);
                let is_lookup = b.lt(r, lpct);
                b.if_else(
                    is_lookup,
                    |b| {
                        b.call_void(tx_lookup, &[list, key]);
                    },
                    |b| {
                        let is_ins = b.lt(r, li_pct);
                        b.if_else(
                            is_ins,
                            |b| {
                                let ok = b.call(tx_insert, &[list, key]);
                                let s = b.add(ins, ok);
                                b.assign(ins, s);
                            },
                            |b| {
                                let ok = b.call(tx_delete, &[list, key]);
                                let s = b.add(del, ok);
                                b.assign(del, s);
                            },
                        );
                    },
                );
                // Non-critical think time between operations.
                b.compute(self.think_cycles);
                let nx = b.addi(i, 1);
                b.assign(i, nx);
            },
        );
        b.store(ins, slot, 0);
        b.store(del, slot, 1);
        b.ret(Some(i));
        m.add_function(b.finish());

        tm_ir::verify_module(&m).expect("list module verifies");
        m
    }

    fn setup(&self, machine: &Machine, n_threads: usize) -> Vec<Vec<u64>> {
        // Build: sentinel + every other key, sorted.
        let list = machine.host_alloc(1, true);
        // The header and sentinel are line-aligned "static" structures;
        // only interior nodes are packed like malloc'd objects.
        let sentinel = machine.host_alloc(8, true);
        machine.host_store(list, sentinel);
        machine.host_store(sentinel + 8 * OFF_KEY as u64, 0);
        let mut prev = sentinel;
        let mut initial = 0u64;
        let mut k = 2;
        while k <= self.key_range {
            let node = machine.host_alloc(8, true);
            machine.host_store(node + 8 * OFF_KEY as u64, k);
            machine.host_store(node + 8 * OFF_NEXT as u64, 0);
            machine.host_store(prev + 8 * OFF_NEXT as u64, node);
            prev = node;
            initial += 1;
            k += 2;
        }
        let _ = initial;
        let slots = alloc_stat_slots(machine, n_threads);
        let per_thread = self.total_ops / n_threads as u64;
        (0..n_threads)
            .map(|t| {
                vec![
                    list,
                    per_thread,
                    self.key_range,
                    self.lookup_pct,
                    self.insert_pct,
                    stat_slot(slots, t),
                    self.think_cycles as u64,
                ]
            })
            .collect()
    }

    fn validate(
        &self,
        machine: &Machine,
        thread_args: &[Vec<u64>],
        _out: &RunOutcome,
    ) -> Result<(), String> {
        let list = thread_args[0][0];
        let slots_base = thread_args[0][5];
        let n_threads = thread_args.len();

        // Walk: strictly ascending keys within range.
        let sentinel = machine.host_load(list);
        let mut cur = machine.host_load(sentinel + 8 * OFF_NEXT as u64);
        let mut last = 0u64;
        let mut len = 0u64;
        while cur != 0 {
            let k = machine.host_load(cur + 8 * OFF_KEY as u64);
            if k <= last {
                return Err(format!("list not strictly sorted: {k} after {last}"));
            }
            if k > self.key_range {
                return Err(format!("key {k} out of range"));
            }
            last = k;
            len += 1;
            cur = machine.host_load(cur + 8 * OFF_NEXT as u64);
            if len > self.key_range + 1 {
                return Err("list longer than key range — cycle?".into());
            }
        }

        let initial = self.key_range / 2;
        let ins = sum_slots(machine, slots_base, n_threads, 0);
        let del = sum_slots(machine, slots_base, n_threads, 1);
        let expected = initial + ins - del;
        if len != expected {
            return Err(format!(
                "length {len} != initial {initial} + ins {ins} - del {del} = {expected}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_benchmark;
    use stagger_core::Mode;

    #[test]
    fn list_correct_in_all_modes() {
        let w = ListBench::tiny(60, 20);
        for mode in Mode::ALL {
            let r = run_benchmark(&w, mode, 4, 1);
            assert_eq!(
                r.out.exec.committed_txns + r.out.exec.irrevocable_txns,
                256,
                "{}",
                mode.name()
            );
        }
    }

    #[test]
    fn list_hi_contends_and_staggered_reduces_aborts() {
        let mut w = ListBench::hi();
        w.total_ops = 1024;
        let base = run_benchmark(&w, Mode::Htm, 8, 3);
        let stag = run_benchmark(&w, Mode::Staggered, 8, 3);
        let b = base.out.sim.aborts_per_commit();
        let s = stag.out.sim.aborts_per_commit();
        assert!(b > 0.3, "list-hi must contend at 8 threads (got {b:.2})");
        assert!(
            s < b,
            "staggering must reduce aborts: baseline {b:.2} vs staggered {s:.2}"
        );
    }

    #[test]
    fn list_single_thread_identical_results() {
        let w = ListBench::tiny(90, 5);
        let a = run_benchmark(&w, Mode::Htm, 1, 7);
        let b = run_benchmark(&w, Mode::Htm, 1, 7);
        assert_eq!(a.out.sim.exec_cycles, b.out.sim.exec_cycles);
    }

    #[test]
    fn list_module_compiles_with_few_anchors() {
        let w = ListBench::lo();
        let m = w.build_module();
        let c = stagger_compiler::compile(&m);
        // Instrumentation stays a small fraction of loads/stores.
        assert!(c.stats.anchors > 0);
        assert!(c.stats.anchor_fraction() < 0.7);
        assert_eq!(c.stats.atomic_blocks, 3);
    }
}
