//! Serving-scenario load generator: the memcached model driven by a
//! deterministic stream of timestamped requests.
//!
//! The paper's evaluation reports throughput-style aggregates; a serving
//! deployment judges the same contention by *per-request latency under
//! offered load*. This workload keeps memcached's data structures and
//! contention source (the global statistics block updated mid-transaction,
//! Table 1's "statistics information") and replaces the unthrottled
//! `rand`-driven loop with a request schedule generated host-side at setup:
//!
//! * **Open loop** — each request carries an arrival timestamp in simulated
//!   cycles; the serving core parks on [`tm_ir::Inst::IdleUntil`] until the
//!   arrival, so queueing delay (arrival → first attempt) is real and
//!   latency diverges when service time exceeds the interarrival gap.
//! * **Closed loop** — arrivals are all zero and the core instead spends a
//!   fixed think time between requests; latency is then pure service time.
//!
//! Key-choice distributions (all integer-only and seeded from the in-tree
//! PRNG, so a schedule is a pure function of the config and core id):
//!
//! * `zipf` — geometric octave skew: popularity halves each octave, an
//!   integer stand-in for a Zipfian popularity curve.
//! * `hot` — 90% of requests hit a hot set of `keys_per_tenant / 64` keys.
//! * `flash` — a flash crowd: the middle third of each core's schedule
//!   sends 95% of requests to tenant 0's tiny hot set
//!   (`keys_per_tenant / 1024`, at least one line) *and* quadruples the
//!   arrival rate; the outer thirds behave like `zipf`.
//!
//! Requests are spread over `n_tenants` disjoint key spaces (tenant chosen
//! uniformly per request), so baseline traffic is spread while the flash
//! crowd concentrates on one tenant — the scenario where advisory-lock
//! staggering should hold a latency SLO that plain HTM retry storms
//! violate.
//!
//! Unlike the ten table workloads, total work scales *with* the core
//! count (each core serves its own `requests_per_core` stream): the serve
//! exhibits measure latency against per-core offered load, not speedup
//! against a 1-thread run.

use crate::{alloc_stat_slots, stat_slot, sum_slots, Workload};
use htm_sim::Machine;
use stagger_prng::Xoshiro256StarStar;
use tm_interp::RunOutcome;
use tm_ir::{BinOp, FuncBuilder, FuncKind, Module};

const IT_KEY: u32 = 0;
const IT_NEXT: u32 = 1;
const IT_VAL: u32 = 2;
const IT_LAST: u32 = 3;

const ST_HITS: u32 = 0;
const ST_MISSES: u32 = 1;
const ST_SETS: u32 = 2;
const ST_OPS: u32 = 3;
const ST_BYTES: u32 = 4;

/// Words per request record in the simulated-memory schedule array.
const REQ_WORDS: u64 = 4;

/// Key-popularity distribution of the generated traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dist {
    Zipf,
    Hot,
    Flash,
}

impl Dist {
    pub fn name(self) -> &'static str {
        match self {
            Dist::Zipf => "zipf",
            Dist::Hot => "hot",
            Dist::Flash => "flash",
        }
    }
}

/// One generated request: what the schedule arrays hold, and what the
/// latency observer needs back (`arrival`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Arrival timestamp in simulated cycles (0 in closed loop).
    pub arrival: u64,
    pub is_get: bool,
    pub key: u64,
    /// Value stored when `!is_get`.
    pub val: u64,
}

/// The serving workload: memcached's tables under generated traffic.
#[derive(Debug, Clone)]
pub struct Serve {
    pub dist: Dist,
    /// Open loop: park until each request's arrival. Closed loop: fixed
    /// think time between requests.
    pub open_loop: bool,
    /// Mean interarrival gap per core, simulated cycles (open loop).
    pub interarrival: u64,
    /// Think time per request, simulated cycles (closed loop).
    pub think: u64,
    pub requests_per_core: u64,
    pub n_tenants: u64,
    pub keys_per_tenant: u64,
    pub n_buckets: u64,
    pub get_pct: u64,
    /// GETs touch an item's LRU timestamp only when it is at least this
    /// stale (memcached 1.4's sampled LRU update) — flash-crowd reads of
    /// a viral key stay read-only on the item line instead of turning
    /// into all-pairs write conflicts.
    pub lru_every: u64,
    /// Schedule seed — part of the config so the schedule is regenerable
    /// after a run (the serve exhibit re-derives arrivals from it).
    pub schedule_seed: u64,
    name: &'static str,
}

impl Serve {
    /// Parse a registry name of the form `serve-<dist>-i<cycles>` (open
    /// loop, mean interarrival `<cycles>`) or `serve-<dist>-c<cycles>`
    /// (closed loop, think time `<cycles>`), with `<dist>` one of
    /// `zipf`/`hot`/`flash`. `quick` shrinks the per-core request count
    /// to smoke scale.
    pub fn parse_name(name: &str, quick: bool) -> Option<Serve> {
        let rest = name.strip_prefix("serve-")?;
        let (dist_s, load_s) = rest.split_once('-')?;
        let dist = match dist_s {
            "zipf" => Dist::Zipf,
            "hot" => Dist::Hot,
            "flash" => Dist::Flash,
            _ => return None,
        };
        let cycles: u64 = load_s[1..].parse().ok()?;
        if cycles == 0 {
            return None;
        }
        let (open_loop, interarrival, think) = match load_s.as_bytes()[0] {
            b'i' => (true, cycles, 0),
            b'c' => (false, 0, cycles),
            _ => return None,
        };
        Some(Serve {
            dist,
            open_loop,
            interarrival,
            think,
            requests_per_core: if quick { 24 } else { 96 },
            n_tenants: 4,
            keys_per_tenant: if quick { 256 } else { 1024 },
            n_buckets: if quick { 256 } else { 1024 },
            get_pct: 90,
            lru_every: 20_000,
            schedule_seed: 0x5345_5256, // "SERV"
            name: Box::leak(name.to_owned().into_boxed_str()),
        })
    }

    fn total_keys(&self) -> u64 {
        self.n_tenants * self.keys_per_tenant
    }

    /// Is request `i` of a schedule inside the flash-crowd window (the
    /// middle third)?
    fn in_flash(&self, i: u64) -> bool {
        let n = self.requests_per_core;
        self.dist == Dist::Flash && i >= n / 3 && i < 2 * n / 3
    }

    /// Geometric-octave skewed key draw in `[0, range)`: each octave of
    /// keys is half as popular as the previous — an integer Zipf
    /// stand-in.
    fn zipf_key(rng: &mut Xoshiro256StarStar, range: u64) -> u64 {
        let level = (rng.next_u64().trailing_zeros() as u64).min(10);
        rng.below((range >> level).max(1))
    }

    /// Core `core`'s request schedule — a pure function of the config and
    /// core id, so exhibits can regenerate arrival timestamps after a
    /// run without carrying them through the machine.
    pub fn schedule(&self, core: usize) -> Vec<Request> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(
            self.schedule_seed ^ (core as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut t = 0u64;
        (0..self.requests_per_core)
            .map(|i| {
                let flash = self.in_flash(i);
                // Key choice: tenant-local draw, except the flash crowd,
                // which hammers tenant 0's tiny hot set.
                let key_in_space = if flash && rng.below(100) < 95 {
                    rng.below((self.keys_per_tenant / 1024).max(1))
                } else {
                    let tenant = rng.below(self.n_tenants);
                    let local = match self.dist {
                        Dist::Zipf | Dist::Flash => Self::zipf_key(&mut rng, self.keys_per_tenant),
                        Dist::Hot => {
                            if rng.below(100) < 90 {
                                rng.below((self.keys_per_tenant / 64).max(1))
                            } else {
                                rng.below(self.keys_per_tenant)
                            }
                        }
                    };
                    tenant * self.keys_per_tenant + local
                };
                let arrival = if self.open_loop {
                    // Jittered gap with mean ~`base`: base/2 + U[0, base).
                    let base = if flash {
                        (self.interarrival / 4).max(1)
                    } else {
                        self.interarrival
                    };
                    t += base / 2 + rng.below(base.max(1));
                    t
                } else {
                    0
                };
                // The flash crowd is a pure read burst (a viral key):
                // with the paper's one-advisory-lock-per-transaction
                // limit, keeping the burst read-only on the item line
                // leaves the global stats block as the single line the
                // lock must cover.
                let get_pct = if flash { 100 } else { self.get_pct };
                Request {
                    arrival,
                    is_get: rng.below(100) < get_pct,
                    key: key_in_space + 1, // keys are 1-based
                    val: rng.below(1 << 30),
                }
            })
            .collect()
    }
}

impl Workload for Serve {
    fn name(&self) -> &'static str {
        self.name
    }

    fn contention_source(&self) -> &'static str {
        "statistics information + flash-crowd hot keys"
    }

    fn build_module(&self) -> Module {
        let lru_every = self.lru_every;
        let mut m = Module::new();

        // assoc_find / tx_get / tx_set mirror the memcached module (same
        // ab_ids, same mid-transaction stats tail — the contention the
        // advisory-lock policy learns on).
        let mut b = FuncBuilder::new("assoc_find", 2, FuncKind::Normal);
        let (ht, key) = (b.param(0), b.param(1));
        let nb = b.load(ht, 0);
        let idx = b.bin(BinOp::Rem, key, nb);
        let cur = b.load_idx(ht, idx, 1);
        let l = b.begin_loop();
        let is_null = b.eqi(cur, 0);
        b.break_if(l, is_null);
        let ckey = b.load(cur, IT_KEY);
        let hit = b.eq(ckey, key);
        b.if_(hit, |b| b.ret(Some(cur)));
        let nx = b.load(cur, IT_NEXT);
        b.assign(cur, nx);
        b.end_loop(l);
        b.ret_const(0);
        let assoc_find = m.add_function(b.finish());

        // atomic tx_get(ht, stats, key, now) -> value (0 on miss)
        let mut b = FuncBuilder::new("tx_get", 4, FuncKind::Atomic { ab_id: 0 });
        let (ht, stats, key, now) = (b.param(0), b.param(1), b.param(2), b.param(3));
        let item = b.call(assoc_find, &[ht, key]);
        b.compute(150); // command processing inside the atomic block
        let out = b.const_(0);
        let found = b.nei(item, 0);
        b.if_else(
            found,
            |b| {
                let v = b.load(item, IT_VAL);
                b.assign(out, v);
                // Sampled LRU touch (memcached 1.4): only refresh a
                // stale timestamp, so hot-key reads stay read-only on
                // the item line.
                let last = b.load(item, IT_LAST);
                let age = b.bin(BinOp::Sub, now, last);
                let lim = b.const_(lru_every);
                let stale = b.ge(age, lim);
                b.if_(stale, |b| {
                    b.store(now, item, IT_LAST);
                });
                let h = b.load(stats, ST_HITS);
                let h2 = b.addi(h, 1);
                b.store(h2, stats, ST_HITS);
            },
            |b| {
                let ms = b.load(stats, ST_MISSES);
                let ms2 = b.addi(ms, 1);
                b.store(ms2, stats, ST_MISSES);
            },
        );
        let t = b.load(stats, ST_OPS);
        let t2 = b.addi(t, 1);
        b.store(t2, stats, ST_OPS);
        b.ret(Some(out));
        let tx_get = m.add_function(b.finish());

        // atomic tx_set(ht, stats, key, val) -> 1 if new item
        let mut b = FuncBuilder::new("tx_set", 4, FuncKind::Atomic { ab_id: 1 });
        let (ht, stats, key, val) = (b.param(0), b.param(1), b.param(2), b.param(3));
        let item = b.call(assoc_find, &[ht, key]);
        b.compute(150);
        let created = b.const_(0);
        let found = b.nei(item, 0);
        b.if_else(
            found,
            |b| {
                b.store(val, item, IT_VAL);
            },
            |b| {
                let nb = b.load(ht, 0);
                let idx = b.bin(BinOp::Rem, key, nb);
                let head = b.load_idx(ht, idx, 1);
                let node = b.alloc_const(4, true);
                b.store(key, node, IT_KEY);
                b.store(head, node, IT_NEXT);
                b.store(val, node, IT_VAL);
                b.store_const(0, node, IT_LAST);
                b.store_idx(node, ht, idx, 1);
                b.assign_const(created, 1);
            },
        );
        let s = b.load(stats, ST_SETS);
        let s2 = b.addi(s, 1);
        b.store(s2, stats, ST_SETS);
        let by = b.load(stats, ST_BYTES);
        let by2 = b.addi(by, 8);
        b.store(by2, stats, ST_BYTES);
        let t = b.load(stats, ST_OPS);
        let t2 = b.addi(t, 1);
        b.store(t2, stats, ST_OPS);
        b.ret(Some(created));
        let tx_set = m.add_function(b.finish());

        // thread_main(ht, stats, reqs, n_reqs, slot) -> n_reqs
        //
        // The serving loop: read the next request record from this core's
        // schedule array, park until its arrival (open loop) or burn the
        // think time (closed loop), dispatch to tx_get/tx_set, then a
        // small response-serialization cost outside the transaction.
        let mut b = FuncBuilder::new("thread_main", 5, FuncKind::Normal);
        let ht = b.param(0);
        let stats = b.param(1);
        let reqs = b.param(2);
        let n_reqs = b.param(3);
        let slot = b.param(4);
        let i = b.const_(0);
        let created = b.const_(0);
        let gets = b.const_(0);
        let four = b.const_(REQ_WORDS);
        b.while_(
            |b| b.lt(i, n_reqs),
            |b| {
                let rec = b.bin(BinOp::Mul, i, four);
                let arrival = b.load_idx(reqs, rec, 0);
                let is_get_v = b.load_idx(reqs, rec, 1);
                let key = b.load_idx(reqs, rec, 2);
                let val = b.load_idx(reqs, rec, 3);
                if self.open_loop {
                    b.idle_until(arrival);
                } else if self.think > 0 {
                    b.compute(self.think as u32);
                }
                b.compute(100); // request parsing, outside the txn
                let is_get = b.nei(is_get_v, 0);
                b.if_else(
                    is_get,
                    |b| {
                        b.call_void(tx_get, &[ht, stats, key, arrival]);
                        let g2 = b.addi(gets, 1);
                        b.assign(gets, g2);
                    },
                    |b| {
                        let c = b.call(tx_set, &[ht, stats, key, val]);
                        let c2 = b.add(created, c);
                        b.assign(created, c2);
                    },
                );
                b.compute(50); // response serialization, outside the txn
                let nx = b.addi(i, 1);
                b.assign(i, nx);
            },
        );
        b.store(created, slot, 0);
        b.store(gets, slot, 1);
        b.ret(Some(i));
        m.add_function(b.finish());

        tm_ir::verify_module(&m).expect("serve module verifies");
        m
    }

    fn setup(&self, machine: &Machine, n_threads: usize) -> Vec<Vec<u64>> {
        let ht = machine.host_alloc(1 + self.n_buckets, true);
        machine.host_store(ht, self.n_buckets);
        // Pre-populate every key, so gets hit and chains are warm.
        for k in 1..=self.total_keys() {
            let idx = k % self.n_buckets;
            let head = machine.host_load(ht + 8 * (1 + idx));
            let node = machine.host_alloc(8, true);
            machine.host_store(node + 8 * IT_KEY as u64, k);
            machine.host_store(node + 8 * IT_NEXT as u64, head);
            machine.host_store(node + 8 * IT_VAL as u64, k * 10);
            machine.host_store(ht + 8 * (1 + idx), node);
        }
        let stats = machine.host_alloc(8, true);
        let slots = alloc_stat_slots(machine, n_threads);
        // Write each core's schedule into its own line-aligned array.
        (0..n_threads)
            .map(|t| {
                let sched = self.schedule(t);
                let reqs = machine.host_alloc(sched.len() as u64 * REQ_WORDS, true);
                for (i, r) in sched.iter().enumerate() {
                    let base = reqs + 8 * REQ_WORDS * i as u64;
                    machine.host_store(base, r.arrival);
                    machine.host_store(base + 8, r.is_get as u64);
                    machine.host_store(base + 16, r.key);
                    machine.host_store(base + 24, r.val);
                }
                vec![ht, stats, reqs, sched.len() as u64, stat_slot(slots, t)]
            })
            .collect()
    }

    fn validate(
        &self,
        machine: &Machine,
        thread_args: &[Vec<u64>],
        _out: &RunOutcome,
    ) -> Result<(), String> {
        let ht = thread_args[0][0];
        let stats = thread_args[0][1];
        let slots_base = thread_args[0][4];
        let n_threads = thread_args.len();
        let total: u64 = thread_args.iter().map(|a| a[3]).sum();

        let ops = machine.host_load(stats + 8 * ST_OPS as u64);
        if ops != total {
            return Err(format!("stats.total_ops {ops} != {total}"));
        }
        let gets = sum_slots(machine, slots_base, n_threads, 1);
        let hits = machine.host_load(stats + 8 * ST_HITS as u64);
        let misses = machine.host_load(stats + 8 * ST_MISSES as u64);
        if hits + misses != gets {
            return Err(format!("hits {hits} + misses {misses} != gets {gets}"));
        }
        // Every key is pre-populated, so gets never miss.
        if misses != 0 {
            return Err(format!("{misses} misses despite full pre-population"));
        }
        let sets = machine.host_load(stats + 8 * ST_SETS as u64);
        if gets + sets != total {
            return Err(format!("gets {gets} + sets {sets} != {total}"));
        }

        // Table integrity, as in memcached.
        let created = sum_slots(machine, slots_base, n_threads, 0);
        let mut count = 0u64;
        let mut seen = std::collections::HashSet::new();
        for bkt in 0..self.n_buckets {
            let mut cur = machine.host_load(ht + 8 * (1 + bkt));
            while cur != 0 {
                let k = machine.host_load(cur + 8 * IT_KEY as u64);
                if k % self.n_buckets != bkt {
                    return Err(format!("key {k} in wrong bucket {bkt}"));
                }
                if !seen.insert(k) {
                    return Err(format!("duplicate item {k}"));
                }
                count += 1;
                cur = machine.host_load(cur + 8 * IT_NEXT as u64);
                if count > self.total_keys() + total + 1 {
                    return Err("chain cycle".into());
                }
            }
        }
        // Sets only overwrite pre-populated keys, so nothing is created.
        if created != 0 || count != self.total_keys() {
            return Err(format!(
                "items {count} != keys {} (created {created})",
                self.total_keys()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_benchmark;
    use stagger_core::Mode;

    #[test]
    fn serve_names_parse_and_reject() {
        for (name, open) in [
            ("serve-flash-i800", true),
            ("serve-zipf-c200", false),
            ("serve-hot-i1500", true),
        ] {
            let w = Serve::parse_name(name, true).expect(name);
            assert_eq!(w.name(), name);
            assert_eq!(w.open_loop, open);
        }
        for bad in [
            "serve",
            "serve-",
            "serve-flash",
            "serve-warm-i800",
            "serve-flash-x800",
            "serve-flash-i0",
            "serve-flash-iNaN",
        ] {
            assert!(Serve::parse_name(bad, true).is_none(), "{bad}");
        }
    }

    #[test]
    fn schedules_are_deterministic_and_shaped() {
        let w = Serve::parse_name("serve-flash-i800", false).unwrap();
        let a = w.schedule(3);
        let b = w.schedule(3);
        assert_eq!(a, b, "schedule is a pure function of (config, core)");
        assert_ne!(a, w.schedule(4), "cores draw distinct streams");
        assert_eq!(a.len() as u64, w.requests_per_core);
        // Arrivals strictly increase (every gap is >= 1 cycle) and the
        // flash window's gaps are ~4x denser than the outer thirds.
        let n = a.len();
        let mut prev = 0;
        for r in &a {
            assert!(r.arrival > prev);
            prev = r.arrival;
        }
        let span = |lo: usize, hi: usize| a[hi - 1].arrival - a[lo].arrival;
        let calm = span(0, n / 3);
        let flash = span(n / 3, 2 * n / 3);
        assert!(
            flash * 2 < calm,
            "flash window must be denser: {flash} vs {calm}"
        );
        // The flash window concentrates keys on tenant 0's hot set.
        let hot = a[n / 3..2 * n / 3]
            .iter()
            .filter(|r| r.key <= (w.keys_per_tenant / 1024).max(1))
            .count();
        assert!(hot * 2 > n / 3, "flash crowd must hit the hot set: {hot}");
    }

    #[test]
    fn serve_correct_in_all_modes_open_and_closed() {
        for name in ["serve-flash-i600", "serve-zipf-c150"] {
            let w = Serve::parse_name(name, true).unwrap();
            for mode in Mode::ALL {
                let r = run_benchmark(&w, mode, 4, 51);
                assert_eq!(
                    r.out.exec.committed_txns + r.out.exec.irrevocable_txns,
                    4 * w.requests_per_core,
                    "{name} under {}",
                    mode.name()
                );
            }
        }
    }
}
