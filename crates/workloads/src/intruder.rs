//! intruder (STAMP): network intrusion detection pipeline.
//!
//! Three atomic blocks, as in STAMP: `tx_get_packet` pops a fragment from
//! the shared input queue; `tx_process` reassembles it into the fragment
//! map **and enqueues the decoded packet onto the output queue near the end
//! of a long transaction** — the paper singles this out: "the improvement
//! in intruder comes from serializing the modifications to a global queue,
//! especially an enqueue that occurs near the end of a long transaction";
//! `tx_complete` bumps the completed counter.
//!
//! Layout: FIFO queue `{0: head, 1: tail}` of nodes `{0: val, 1: next}`;
//! fragment map = chained hash table `{0: numBucket, 1..: heads}` with
//! nodes `{0: key, 1: next}`.

use crate::{alloc_stat_slots, stat_slot, sum_slots, Workload};
use htm_sim::Machine;
use tm_interp::RunOutcome;
use tm_ir::{FuncBuilder, FuncKind, Module};

/// The intruder benchmark (paper input: `-a10 -l4 -n2038 -s1`, scaled).
#[derive(Debug, Clone)]
pub struct Intruder {
    pub n_packets: u64,
    pub map_buckets: u64,
    /// In-transaction decode work, in cycles (makes `tx_process` long).
    pub decode_cycles: u32,
}

impl Default for Intruder {
    fn default() -> Self {
        Intruder {
            n_packets: 2048,
            map_buckets: 64,
            decode_cycles: 250,
        }
    }
}

impl Intruder {
    pub fn tiny() -> Intruder {
        Intruder {
            n_packets: 256,
            map_buckets: 16,
            decode_cycles: 80,
        }
    }
}

/// Emit `queue_pop(q) -> val (0 if empty)` into `m`.
fn build_queue_pop(m: &mut Module) -> tm_ir::FuncId {
    let mut b = FuncBuilder::new("queue_pop", 1, FuncKind::Normal);
    let q = b.param(0);
    let head = b.load(q, 0);
    let empty = b.eqi(head, 0);
    b.if_(empty, |b| b.ret_const(0));
    let val = b.load(head, 0);
    let next = b.load(head, 1);
    b.store(next, q, 0);
    let now_empty = b.eqi(next, 0);
    b.if_(now_empty, |b| {
        let z = b.const_(0);
        b.store(z, q, 1); // tail = null
    });
    b.ret(Some(val));
    m.add_function(b.finish())
}

/// Emit `queue_push(q, val)` into `m`.
fn build_queue_push(m: &mut Module) -> tm_ir::FuncId {
    let mut b = FuncBuilder::new("queue_push", 2, FuncKind::Normal);
    let (q, val) = (b.param(0), b.param(1));
    let node = b.alloc_const(2, true);
    b.store(val, node, 0);
    b.store_const(0, node, 1);
    let tail = b.load(q, 1);
    let empty = b.eqi(tail, 0);
    b.if_else(
        empty,
        |b| b.store(node, q, 0),    // head = node
        |b| b.store(node, tail, 1), // tail->next = node
    );
    b.store(node, q, 1); // tail = node
    b.ret(None);
    m.add_function(b.finish())
}

impl Workload for Intruder {
    fn name(&self) -> &'static str {
        "intruder"
    }

    fn contention_source(&self) -> &'static str {
        "task queue"
    }

    fn build_module(&self) -> Module {
        let mut m = Module::new();
        let queue_pop = build_queue_pop(&mut m);
        let queue_push = build_queue_push(&mut m);

        // map_insert(map, key) -> 1 if inserted (unsorted push-front after
        // duplicate scan)
        let mut b = FuncBuilder::new("map_insert", 2, FuncKind::Normal);
        let (map, key) = (b.param(0), b.param(1));
        let nb = b.load(map, 0);
        let idx = b.bin(tm_ir::BinOp::Rem, key, nb);
        let head = b.load_idx(map, idx, 1);
        let cur = b.mov(head);
        let l = b.begin_loop();
        let is_null = b.eqi(cur, 0);
        b.break_if(l, is_null);
        let ckey = b.load(cur, 0);
        let dup = b.eq(ckey, key);
        b.if_(dup, |b| b.ret_const(0));
        let nx = b.load(cur, 1);
        b.assign(cur, nx);
        b.end_loop(l);
        let node = b.alloc_const(2, true);
        b.store(key, node, 0);
        b.store(head, node, 1);
        b.store_idx(node, map, idx, 1);
        b.ret_const(1);
        let map_insert = m.add_function(b.finish());

        // atomic tx_get_packet(inq) -> packet id (0 if drained)
        let mut b = FuncBuilder::new("tx_get_packet", 1, FuncKind::Atomic { ab_id: 0 });
        let q = b.param(0);
        let v = b.call(queue_pop, &[q]);
        b.ret(Some(v));
        let tx_get = m.add_function(b.finish());

        // atomic tx_process(map, outq, key, decode_cycles):
        //   reassemble (map insert), decode (long), enqueue near the end.
        let mut b = FuncBuilder::new("tx_process", 3, FuncKind::Atomic { ab_id: 1 });
        let (map, outq, key) = (b.param(0), b.param(1), b.param(2));
        let ins = b.call(map_insert, &[map, key]);
        b.compute(self.decode_cycles); // long decode inside the txn
        b.call_void(queue_push, &[outq, key]); // the contended tail write
        b.ret(Some(ins));
        let tx_process = m.add_function(b.finish());

        // atomic tx_complete(counter_obj)
        let mut b = FuncBuilder::new("tx_complete", 1, FuncKind::Atomic { ab_id: 2 });
        let cnt = b.param(0);
        let v = b.load(cnt, 0);
        let v2 = b.addi(v, 1);
        b.store(v2, cnt, 0);
        b.ret(None);
        let tx_complete = m.add_function(b.finish());

        // thread_main(inq, map, outq, counter, slot) -> packets processed
        let mut b = FuncBuilder::new("thread_main", 5, FuncKind::Normal);
        let inq = b.param(0);
        let map = b.param(1);
        let outq = b.param(2);
        let counter = b.param(3);
        let slot = b.param(4);
        let processed = b.const_(0);
        let inserted = b.const_(0);
        let l = b.begin_loop();
        let pkt = b.call(tx_get, &[inq]);
        let drained = b.eqi(pkt, 0);
        b.break_if(l, drained);
        b.compute(60); // header parse outside the long txn
        let ins = b.call(tx_process, &[map, outq, pkt]);
        let s = b.add(inserted, ins);
        b.assign(inserted, s);
        b.call_void(tx_complete, &[counter]);
        let p2 = b.addi(processed, 1);
        b.assign(processed, p2);
        b.end_loop(l);
        b.store(processed, slot, 0);
        b.store(inserted, slot, 1);
        b.ret(Some(processed));
        m.add_function(b.finish());

        tm_ir::verify_module(&m).expect("intruder module verifies");
        m
    }

    fn setup(&self, machine: &Machine, n_threads: usize) -> Vec<Vec<u64>> {
        // Input queue pre-filled with n_packets fragments (keys 1..=n).
        let inq = machine.host_alloc(2, true);
        let mut prev = 0u64;
        for p in 0..self.n_packets {
            let node = machine.host_alloc(8, true);
            machine.host_store(node, p * 2 + 1); // odd keys, nonzero
            machine.host_store(node + 8, 0);
            if prev == 0 {
                machine.host_store(inq, node);
            } else {
                machine.host_store(prev + 8, node);
            }
            prev = node;
        }
        machine.host_store(inq + 8, prev);

        let map = machine.host_alloc(1 + self.map_buckets, true);
        machine.host_store(map, self.map_buckets);
        let outq = machine.host_alloc(2, true);
        let counter = machine.host_alloc(8, true);
        let slots = alloc_stat_slots(machine, n_threads);
        (0..n_threads)
            .map(|t| vec![inq, map, outq, counter, stat_slot(slots, t)])
            .collect()
    }

    fn validate(
        &self,
        machine: &Machine,
        thread_args: &[Vec<u64>],
        _out: &RunOutcome,
    ) -> Result<(), String> {
        let inq = thread_args[0][0];
        let outq = thread_args[0][2];
        let counter = thread_args[0][3];
        let slots_base = thread_args[0][4];
        let n_threads = thread_args.len();

        if machine.host_load(inq) != 0 {
            return Err("input queue not drained".into());
        }
        let processed = sum_slots(machine, slots_base, n_threads, 0);
        if processed != self.n_packets {
            return Err(format!(
                "processed {processed} != {} packets",
                self.n_packets
            ));
        }
        if machine.host_load(counter) != self.n_packets {
            return Err("completed counter mismatch".into());
        }
        // Output queue holds each packet exactly once.
        let mut seen = std::collections::HashSet::new();
        let mut cur = machine.host_load(outq);
        while cur != 0 {
            let k = machine.host_load(cur);
            if !seen.insert(k) {
                return Err(format!("packet {k} enqueued twice"));
            }
            cur = machine.host_load(cur + 8);
        }
        if seen.len() as u64 != self.n_packets {
            return Err(format!(
                "output queue has {} packets, expected {}",
                seen.len(),
                self.n_packets
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_benchmark;
    use stagger_core::Mode;

    #[test]
    fn intruder_correct_in_all_modes() {
        let w = Intruder::tiny();
        for mode in Mode::ALL {
            let r = run_benchmark(&w, mode, 4, 31);
            // 3 txns per packet (get, process, complete) + one drained
            // pop per thread.
            assert_eq!(
                r.out.exec.committed_txns + r.out.exec.irrevocable_txns,
                3 * 256 + 4,
                "{}",
                mode.name()
            );
        }
    }

    #[test]
    fn intruder_is_high_contention_and_staggered_helps() {
        let w = Intruder::tiny();
        let base = run_benchmark(&w, Mode::Htm, 8, 33);
        let stag = run_benchmark(&w, Mode::Staggered, 8, 33);
        let b = base.out.sim.aborts_per_commit();
        let s = stag.out.sim.aborts_per_commit();
        assert!(b > 0.5, "intruder must contend hard, got {b:.2}");
        assert!(s < b, "staggering must help: {b:.2} -> {s:.2}");
    }
}
