//! tsp: branch-and-bound travelling-salesman solver (the paper's own
//! C++ benchmark).
//!
//! All candidate tours live in a shared priority queue. The paper used an
//! STX B+ tree with the contended `size` field removed; we substitute an
//! **array-backed binary min-heap** (documented in DESIGN.md): conflicts
//! concentrate on the root/size line with secondary conflicts along
//! sift paths — the same "stable first-access PC, mostly-stable address"
//! pattern ("Staggered Transactions successfully discover that the head of
//! the priority queue ... is the most contended object", Section 6.2).
//!
//! Layout: heap `{0: size, 1: cap, 2..: priorities}`; shared incumbent
//! bound `{0: best}`.

use crate::{alloc_stat_slots, stat_slot, sum_slots, Workload};
use htm_sim::Machine;
use tm_interp::RunOutcome;
use tm_ir::{FuncBuilder, FuncKind, Module};

/// The tsp benchmark (paper: 17 cities; here op-count driven).
#[derive(Debug, Clone)]
pub struct Tsp {
    /// Tasks initially in the queue.
    pub initial_tasks: u64,
    pub heap_capacity: u64,
    /// Pop/expand/push rounds across all threads.
    pub total_ops: u64,
    /// Tour-evaluation work between queue operations, in cycles.
    pub eval_cycles: u32,
}

impl Default for Tsp {
    fn default() -> Self {
        Tsp {
            initial_tasks: 1024,
            heap_capacity: 16384,
            total_ops: 2048,
            eval_cycles: 5000,
        }
    }
}

impl Tsp {
    pub fn tiny() -> Tsp {
        Tsp {
            initial_tasks: 64,
            heap_capacity: 4096,
            total_ops: 256,
            eval_cycles: 80,
        }
    }
}

impl Workload for Tsp {
    fn name(&self) -> &'static str {
        "tsp"
    }

    fn contention_source(&self) -> &'static str {
        "priority queue"
    }

    fn build_module(&self) -> Module {
        let mut m = Module::new();

        // atomic tx_pop_min(heap) -> min priority (u64::MAX if empty)
        let mut b = FuncBuilder::new("tx_pop_min", 1, FuncKind::Atomic { ab_id: 0 });
        let heap = b.param(0);
        let sz = b.load(heap, 0);
        let empty = b.eqi(sz, 0);
        b.if_(empty, |b| {
            let max = b.const_(u64::MAX);
            b.ret(Some(max));
        });
        let zero = b.const_(0);
        let min = b.load_idx(heap, zero, 2);
        let last_i = b.subi(sz, 1);
        let last = b.load_idx(heap, last_i, 2);
        b.store(last_i, heap, 0); // size -= 1
                                  // Sift the moved-up last element down from the root.
        let hole = b.const_(0);
        let val = b.mov(last);
        let n = b.mov(last_i); // new size
        let l = b.begin_loop();
        let two = b.const_(2);
        let lc0 = b.mul(hole, two);
        let lc = b.addi(lc0, 1);
        let done = b.ge(lc, n);
        b.break_if(l, done);
        // pick the smaller child
        let rc = b.addi(lc, 1);
        let child = b.reg();
        b.assign(child, lc);
        let has_rc = b.lt(rc, n);
        b.if_(has_rc, |b| {
            let lv = b.load_idx(heap, lc, 2);
            let rv = b.load_idx(heap, rc, 2);
            let r_smaller = b.lt(rv, lv);
            b.if_(r_smaller, |b| b.assign(child, rc));
        });
        let cv = b.load_idx(heap, child, 2);
        let stop = b.le(val, cv);
        b.break_if(l, stop);
        b.store_idx(cv, heap, hole, 2);
        b.assign(hole, child);
        b.end_loop(l);
        let nonempty = b.gt(n, zero);
        b.if_(nonempty, |b| b.store_idx(val, heap, hole, 2));
        b.ret(Some(min));
        let tx_pop = m.add_function(b.finish());

        // atomic tx_push(heap, pri) -> 1 if pushed (0 when full)
        let mut b = FuncBuilder::new("tx_push", 2, FuncKind::Atomic { ab_id: 1 });
        let (heap, pri) = (b.param(0), b.param(1));
        let sz = b.load(heap, 0);
        let cap = b.load(heap, 1);
        let full = b.ge(sz, cap);
        b.if_(full, |b| b.ret_const(0));
        let i = b.mov(sz);
        // Sift up.
        let l = b.begin_loop();
        let at_root = b.eqi(i, 0);
        b.break_if(l, at_root);
        let im1 = b.subi(i, 1);
        let two = b.const_(2);
        let parent = b.bin(tm_ir::BinOp::Div, im1, two);
        let pv = b.load_idx(heap, parent, 2);
        let stop = b.le(pv, pri);
        b.break_if(l, stop);
        b.store_idx(pv, heap, i, 2);
        b.assign(i, parent);
        b.end_loop(l);
        b.store_idx(pri, heap, i, 2);
        let sz2 = b.addi(sz, 1);
        b.store(sz2, heap, 0);
        b.ret_const(1);
        let tx_push = m.add_function(b.finish());

        // atomic tx_update_best(best, v) -> 1 if improved
        let mut b = FuncBuilder::new("tx_update_best", 2, FuncKind::Atomic { ab_id: 2 });
        let (best, v) = (b.param(0), b.param(1));
        let cur = b.load(best, 0);
        let better = b.lt(v, cur);
        b.if_(better, |b| {
            b.store(v, best, 0);
            b.ret_const(1);
        });
        b.ret_const(0);
        let tx_best = m.add_function(b.finish());

        // thread_main(heap, best, ops, eval, slot) -> ops done
        let mut b = FuncBuilder::new("thread_main", 5, FuncKind::Normal);
        let heap = b.param(0);
        let best = b.param(1);
        let ops = b.param(2);
        let _eval = b.param(3);
        let slot = b.param(4);
        let i = b.const_(0);
        let pops = b.const_(0);
        let pushes = b.const_(0);
        b.while_(
            |b| b.lt(i, ops),
            |b| {
                let t = b.call(tx_pop, &[heap]);
                let empty = b.eqi(t, u64::MAX);
                b.if_else(
                    empty,
                    |b| {
                        // Queue drained: reseed a fresh task so work
                        // continues (branch-and-bound would generate more).
                        let seed = b.rand_below(1 << 20);
                        let ok = b.call(tx_push, &[heap, seed]);
                        let s = b.add(pushes, ok);
                        b.assign(pushes, s);
                    },
                    |b| {
                        let p = b.addi(pops, 1);
                        b.assign(pops, p);
                        // Evaluate the partial tour (parallel work).
                        b.compute(self.eval_cycles);
                        // Expand: push 1–2 children with larger bounds.
                        let d1 = b.rand_below(1000);
                        let c1a = b.add(t, d1);
                        let c1 = b.addi(c1a, 1);
                        let ok1 = b.call(tx_push, &[heap, c1]);
                        let s1 = b.add(pushes, ok1);
                        b.assign(pushes, s1);
                        let coin = b.rand_below(100);
                        let fifty = b.const_(50);
                        let second = b.lt(coin, fifty);
                        b.if_(second, |b| {
                            let d2 = b.rand_below(1000);
                            let c2a = b.add(t, d2);
                            let c2 = b.addi(c2a, 1);
                            let ok2 = b.call(tx_push, &[heap, c2]);
                            let s2 = b.add(pushes, ok2);
                            b.assign(pushes, s2);
                        });
                        // Occasionally try to improve the incumbent.
                        let coin2 = b.rand_below(100);
                        let five = b.const_(5);
                        let improve = b.lt(coin2, five);
                        b.if_(improve, |b| {
                            b.call_void(tx_best, &[best, t]);
                        });
                    },
                );
                let nx = b.addi(i, 1);
                b.assign(i, nx);
            },
        );
        b.store(pops, slot, 0);
        b.store(pushes, slot, 1);
        b.ret(Some(i));
        m.add_function(b.finish());

        tm_ir::verify_module(&m).expect("tsp module verifies");
        m
    }

    fn setup(&self, machine: &Machine, n_threads: usize) -> Vec<Vec<u64>> {
        let mut rng = stagger_prng::Xoshiro256StarStar::seed_from_u64(0x747370);
        let heap = machine.host_alloc(2 + self.heap_capacity, true);
        machine.host_store(heap + 8, self.heap_capacity);
        // Host-side heapify by sorted insert (ascending values are already
        // a valid min-heap).
        let mut tasks: Vec<u64> = (0..self.initial_tasks)
            .map(|_| rng.gen_range(1, 1_000_000))
            .collect();
        tasks.sort_unstable();
        machine.host_store(heap, self.initial_tasks);
        for (i, t) in tasks.iter().enumerate() {
            machine.host_store(heap + 8 * (2 + i as u64), *t);
        }
        let best = machine.host_alloc(8, true);
        machine.host_store(best, u64::MAX);
        let slots = alloc_stat_slots(machine, n_threads);
        let per = self.total_ops / n_threads as u64;
        (0..n_threads)
            .map(|t| {
                vec![
                    heap,
                    best,
                    per,
                    self.eval_cycles as u64,
                    stat_slot(slots, t),
                ]
            })
            .collect()
    }

    fn validate(
        &self,
        machine: &Machine,
        thread_args: &[Vec<u64>],
        _out: &RunOutcome,
    ) -> Result<(), String> {
        let heap = thread_args[0][0];
        let slots_base = thread_args[0][4];
        let n_threads = thread_args.len();
        let size = machine.host_load(heap);
        let cap = machine.host_load(heap + 8);
        if size > cap {
            return Err(format!("heap size {size} > capacity {cap}"));
        }
        // Min-heap property.
        for i in 1..size {
            let parent = (i - 1) / 2;
            let pv = machine.host_load(heap + 8 * (2 + parent));
            let cv = machine.host_load(heap + 8 * (2 + i));
            if pv > cv {
                return Err(format!("heap violated at {i}: parent {pv} > child {cv}"));
            }
        }
        // Conservation: initial + pushes - pops == final size.
        let pops = sum_slots(machine, slots_base, n_threads, 0);
        let pushes = sum_slots(machine, slots_base, n_threads, 1);
        let expected = self.initial_tasks + pushes - pops;
        if size != expected {
            return Err(format!(
                "size {size} != initial {} + pushes {pushes} - pops {pops}",
                self.initial_tasks
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_benchmark;
    use stagger_core::Mode;

    #[test]
    fn tsp_correct_in_all_modes() {
        let w = Tsp::tiny();
        for mode in Mode::ALL {
            let r = run_benchmark(&w, mode, 4, 41);
            assert!(
                r.out.exec.committed_txns + r.out.exec.irrevocable_txns >= 256,
                "{}: every op runs at least one txn",
                mode.name()
            );
        }
    }

    #[test]
    fn tsp_contends_on_heap_root() {
        let w = Tsp::tiny();
        let base = run_benchmark(&w, Mode::Htm, 8, 43);
        let stag = run_benchmark(&w, Mode::Staggered, 8, 43);
        let b = base.out.sim.aborts_per_commit();
        let s = stag.out.sim.aborts_per_commit();
        assert!(b > 0.3, "heap root must contend at 8 threads, got {b:.2}");
        assert!(s < b, "staggering must help: {b:.2} -> {s:.2}");
    }
}
