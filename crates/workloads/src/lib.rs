//! # workloads — the paper's ten benchmark programs, authored in `tm-ir`
//!
//! | name | source (paper Table 4) | contention source (Table 1) |
//! |---|---|---|
//! | genome | STAMP | fixed-size hash table of segment lists |
//! | intruder | STAMP | shared task queues (enqueue near txn end) |
//! | kmeans | STAMP | cluster-center accumulator arrays |
//! | labyrinth | STAMP | grid cells along routed paths |
//! | ssca2 | STAMP | per-node adjacency arrays (tiny txns) |
//! | vacation | STAMP | search trees (substituted: unbalanced BSTs) |
//! | list-lo | RSTM IntSet | sorted linked list, 90/5/5 mix |
//! | list-hi | RSTM IntSet | sorted linked list, 60/20/20 mix |
//! | tsp | authors' own | priority queue (substituted: binary heap) |
//! | memcached | memcached 1.4.9 | global statistics updated mid-txn |
//!
//! Each workload provides a [`Workload`] implementation: an IR module whose
//! entry function is named `thread_main`, host-side setup of the shared
//! data structures, and a post-run validation of the workload's invariants
//! (the HTM serializability check for that data structure).
//!
//! Structural substitutions versus the original C programs are documented
//! per-module and in `DESIGN.md`; the *contention pattern* each benchmark
//! contributes to the evaluation (Table 1's LA/LP locality classes) is
//! preserved, because that is what the Staggered Transactions policy reacts
//! to.

pub mod genome;
pub mod intruder;
pub mod kmeans;
pub mod labyrinth;
pub mod list;
pub mod memcached;
pub mod runner;
pub mod serve;
pub mod ssca2;
pub mod tsp;
pub mod vacation;

pub use runner::{run_benchmark, run_benchmark_cfg, BenchResult, PreparedWorkload};

use htm_sim::Machine;
use tm_interp::RunOutcome;
use tm_ir::Module;

/// A benchmark program: IR module + host-side setup + invariants.
pub trait Workload: Sync {
    /// Short name (matches the paper's tables).
    fn name(&self) -> &'static str;

    /// The contended structure, as described in the paper's Table 1.
    fn contention_source(&self) -> &'static str;

    /// Build the (uninstrumented) IR module. Must contain a `Normal`
    /// function named `thread_main`; its per-thread arguments come from
    /// [`Workload::setup`].
    fn build_module(&self) -> Module;

    /// Allocate and initialize shared data in `machine` (host-side, zero
    /// simulated cycles); returns `thread_main` argument vectors, one per
    /// thread. Implementations must divide total work across threads so
    /// runs at different thread counts do the same total work (speedup is
    /// measured against the 1-thread run).
    fn setup(&self, machine: &Machine, n_threads: usize) -> Vec<Vec<u64>>;

    /// Check the workload's serializability invariants after a run.
    /// `thread_args` are the vectors returned by `setup`.
    fn validate(
        &self,
        machine: &Machine,
        thread_args: &[Vec<u64>],
        out: &RunOutcome,
    ) -> Result<(), String>;
}

/// All ten benchmarks with their default (bench-scale) parameters, in the
/// paper's Table 4 order.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(genome::Genome::default()),
        Box::new(intruder::Intruder::default()),
        Box::new(kmeans::Kmeans::default()),
        Box::new(labyrinth::Labyrinth::default()),
        Box::new(ssca2::Ssca2::default()),
        Box::new(vacation::Vacation::default()),
        Box::new(list::ListBench::lo()),
        Box::new(list::ListBench::hi()),
        Box::new(tsp::Tsp::default()),
        Box::new(memcached::Memcached::default()),
    ]
}

/// The ten benchmarks at smoke scale (the harnesses' `--quick` set), in
/// the same order and under the same names as [`all_workloads`].
pub fn quick_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(genome::Genome::tiny()),
        Box::new(intruder::Intruder::tiny()),
        Box::new(kmeans::Kmeans::tiny()),
        Box::new(labyrinth::Labyrinth::tiny()),
        Box::new(ssca2::Ssca2::tiny()),
        Box::new(vacation::Vacation::tiny()),
        Box::new(list::ListBench::lo()),
        Box::new(list::ListBench::hi()),
        Box::new(tsp::Tsp::tiny()),
        Box::new(memcached::Memcached::tiny()),
    ]
}

/// Registry lookup: the workload called `name` (as printed in the paper's
/// tables) at bench scale, or at smoke scale with `quick`. This is how
/// serialized experiment specs resolve their `workload` field back to a
/// runnable program.
pub fn workload_by_name(name: &str, quick: bool) -> Option<Box<dyn Workload>> {
    // Parameterized serving workloads (`serve-<dist>-i<N>` / `-c<N>`) are
    // constructed from the name rather than enumerated.
    if name.starts_with("serve-") {
        return serve::Serve::parse_name(name, quick).map(|w| Box::new(w) as Box<dyn Workload>);
    }
    let set = if quick {
        quick_workloads()
    } else {
        all_workloads()
    };
    set.into_iter().find(|w| w.name() == name)
}

/// Every registered workload name, in table order (both scales share the
/// same names).
pub fn workload_names() -> Vec<&'static str> {
    all_workloads().iter().map(|w| w.name()).collect()
}

/// Per-thread statistics slots: each thread reports counters back to the
/// host in its own cache line (8 words), so the reporting itself never
/// contends. Returns the base address; thread `t` owns
/// `[base + t*64, base + t*64 + 64)`.
pub(crate) fn alloc_stat_slots(machine: &Machine, n_threads: usize) -> u64 {
    machine.host_alloc(n_threads as u64 * 8, true)
}

/// Address of thread `t`'s stats slot.
pub(crate) fn stat_slot(base: u64, t: usize) -> u64 {
    base + t as u64 * 64
}

/// Host-side sum of word `off` (0..8) over all threads' slots.
pub(crate) fn sum_slots(machine: &Machine, base: u64, n_threads: usize, off: u64) -> u64 {
    (0..n_threads)
        .map(|t| machine.host_load(stat_slot(base, t) + off * 8))
        .sum()
}
