//! memcached (1.4.9 model): in-memory key-value store with global
//! statistics.
//!
//! The paper elides memcached's network stack and injects memslap-style
//! get/set commands directly into the command-processing functions. The
//! dominant contention is **global shared statistics accessed in the middle
//! of transactions** (Table 1: "statistics information", `LA = Y, LP = Y`):
//! the policy learns a *precise* activation on the stats line, serializing
//! just the stats-update tails of transactions while the hash-table walks
//! stay parallel.
//!
//! Layout: hash table `{0: numBucket, 1..: heads}` with item nodes
//! `{0: key, 1: next, 2: value, 3: last_access}`; stats block (one line):
//! `{0: get_hits, 1: get_misses, 2: sets, 3: total_ops, 4: bytes}`.

use crate::{alloc_stat_slots, stat_slot, sum_slots, Workload};
use htm_sim::Machine;
use tm_interp::RunOutcome;
use tm_ir::{FuncBuilder, FuncKind, Module};

/// The memcached benchmark (memslap-style 90/10 get/set mix).
#[derive(Debug, Clone)]
pub struct Memcached {
    pub n_buckets: u64,
    pub key_range: u64,
    /// Keys pre-populated at setup.
    pub initial_items: u64,
    pub total_ops: u64,
    pub get_pct: u64,
}

impl Default for Memcached {
    fn default() -> Self {
        Memcached {
            n_buckets: 128,
            key_range: 1024,
            initial_items: 512,
            total_ops: 4096,
            get_pct: 90,
        }
    }
}

impl Memcached {
    pub fn tiny() -> Memcached {
        Memcached {
            n_buckets: 16,
            key_range: 64,
            initial_items: 32,
            total_ops: 256,
            get_pct: 80,
        }
    }
}

const IT_KEY: u32 = 0;
const IT_NEXT: u32 = 1;
const IT_VAL: u32 = 2;
const IT_LAST: u32 = 3;

const ST_HITS: u32 = 0;
const ST_MISSES: u32 = 1;
const ST_SETS: u32 = 2;
const ST_OPS: u32 = 3;
const ST_BYTES: u32 = 4;

impl Workload for Memcached {
    fn name(&self) -> &'static str {
        "memcached"
    }

    fn contention_source(&self) -> &'static str {
        "statistics information"
    }

    fn build_module(&self) -> Module {
        let mut m = Module::new();

        // assoc_find(ht, key) -> item ptr or 0
        let mut b = FuncBuilder::new("assoc_find", 2, FuncKind::Normal);
        let (ht, key) = (b.param(0), b.param(1));
        let nb = b.load(ht, 0);
        let idx = b.bin(tm_ir::BinOp::Rem, key, nb);
        let cur = b.load_idx(ht, idx, 1);
        let l = b.begin_loop();
        let is_null = b.eqi(cur, 0);
        b.break_if(l, is_null);
        let ckey = b.load(cur, IT_KEY);
        let hit = b.eq(ckey, key);
        b.if_(hit, |b| b.ret(Some(cur)));
        let nx = b.load(cur, IT_NEXT);
        b.assign(cur, nx);
        b.end_loop(l);
        b.ret_const(0);
        let assoc_find = m.add_function(b.finish());

        // atomic tx_get(ht, stats, key, now) -> value (0 on miss)
        // process_get_command: hash walk, LRU touch, then the mid-txn
        // global stats update that the paper identifies as the bottleneck.
        let mut b = FuncBuilder::new("tx_get", 4, FuncKind::Atomic { ab_id: 0 });
        let (ht, stats, key, now) = (b.param(0), b.param(1), b.param(2), b.param(3));
        let item = b.call(assoc_find, &[ht, key]);
        // Command processing inside the atomic block (value copy, flags):
        // this is the parallel prefix the paper's staggering preserves
        // while serializing only the stats tail below.
        b.compute(150);
        let out = b.const_(0);
        let found = b.nei(item, 0);
        b.if_else(
            found,
            |b| {
                let v = b.load(item, IT_VAL);
                b.assign(out, v);
                b.store(now, item, IT_LAST); // LRU touch
                let h = b.load(stats, ST_HITS);
                let h2 = b.addi(h, 1);
                b.store(h2, stats, ST_HITS);
            },
            |b| {
                let ms = b.load(stats, ST_MISSES);
                let ms2 = b.addi(ms, 1);
                b.store(ms2, stats, ST_MISSES);
            },
        );
        let t = b.load(stats, ST_OPS);
        let t2 = b.addi(t, 1);
        b.store(t2, stats, ST_OPS);
        b.ret(Some(out));
        let tx_get = m.add_function(b.finish());

        // atomic tx_set(ht, stats, key, val) -> 1 if new item
        let mut b = FuncBuilder::new("tx_set", 4, FuncKind::Atomic { ab_id: 1 });
        let (ht, stats, key, val) = (b.param(0), b.param(1), b.param(2), b.param(3));
        let item = b.call(assoc_find, &[ht, key]);
        b.compute(150); // item assembly inside the atomic block
        let created = b.const_(0);
        let found = b.nei(item, 0);
        b.if_else(
            found,
            |b| {
                b.store(val, item, IT_VAL);
            },
            |b| {
                let nb = b.load(ht, 0);
                let idx = b.bin(tm_ir::BinOp::Rem, key, nb);
                let head = b.load_idx(ht, idx, 1);
                let node = b.alloc_const(4, true);
                b.store(key, node, IT_KEY);
                b.store(head, node, IT_NEXT);
                b.store(val, node, IT_VAL);
                b.store_const(0, node, IT_LAST);
                b.store_idx(node, ht, idx, 1);
                b.assign_const(created, 1);
            },
        );
        let s = b.load(stats, ST_SETS);
        let s2 = b.addi(s, 1);
        b.store(s2, stats, ST_SETS);
        let by = b.load(stats, ST_BYTES);
        let by2 = b.addi(by, 8);
        b.store(by2, stats, ST_BYTES);
        let t = b.load(stats, ST_OPS);
        let t2 = b.addi(t, 1);
        b.store(t2, stats, ST_OPS);
        b.ret(Some(created));
        let tx_set = m.add_function(b.finish());

        // thread_main(ht, stats, ops, key_range, get_pct, slot) -> ops
        let mut b = FuncBuilder::new("thread_main", 6, FuncKind::Normal);
        let ht = b.param(0);
        let stats = b.param(1);
        let ops = b.param(2);
        let key_range = b.param(3);
        let get_pct = b.param(4);
        let slot = b.param(5);
        let i = b.const_(0);
        let created = b.const_(0);
        let gets = b.const_(0);
        b.while_(
            |b| b.lt(i, ops),
            |b| {
                let r = b.rand_below(100);
                let k0 = b.rand(key_range);
                let key = b.addi(k0, 1);
                let is_get = b.lt(r, get_pct);
                b.if_else(
                    is_get,
                    |b| {
                        b.call_void(tx_get, &[ht, stats, key, i]);
                        let g2 = b.addi(gets, 1);
                        b.assign(gets, g2);
                    },
                    |b| {
                        let val = b.rand_below(1 << 30);
                        let c = b.call(tx_set, &[ht, stats, key, val]);
                        let c2 = b.add(created, c);
                        b.assign(created, c2);
                    },
                );
                b.compute(100); // command parsing outside the txn
                let nx = b.addi(i, 1);
                b.assign(i, nx);
            },
        );
        b.store(created, slot, 0);
        b.store(gets, slot, 1);
        b.ret(Some(i));
        m.add_function(b.finish());

        tm_ir::verify_module(&m).expect("memcached module verifies");
        m
    }

    fn setup(&self, machine: &Machine, n_threads: usize) -> Vec<Vec<u64>> {
        let ht = machine.host_alloc(1 + self.n_buckets, true);
        machine.host_store(ht, self.n_buckets);
        // Pre-populate keys 1..=initial_items.
        for k in 1..=self.initial_items {
            let idx = k % self.n_buckets;
            let head = machine.host_load(ht + 8 * (1 + idx));
            let node = machine.host_alloc(8, true);
            machine.host_store(node + 8 * IT_KEY as u64, k);
            machine.host_store(node + 8 * IT_NEXT as u64, head);
            machine.host_store(node + 8 * IT_VAL as u64, k * 10);
            machine.host_store(ht + 8 * (1 + idx), node);
        }
        let stats = machine.host_alloc(8, true);
        let slots = alloc_stat_slots(machine, n_threads);
        let per = self.total_ops / n_threads as u64;
        (0..n_threads)
            .map(|t| {
                vec![
                    ht,
                    stats,
                    per,
                    self.key_range,
                    self.get_pct,
                    stat_slot(slots, t),
                ]
            })
            .collect()
    }

    fn validate(
        &self,
        machine: &Machine,
        thread_args: &[Vec<u64>],
        _out: &RunOutcome,
    ) -> Result<(), String> {
        let ht = thread_args[0][0];
        let stats = thread_args[0][1];
        let slots_base = thread_args[0][5];
        let n_threads = thread_args.len();
        let per = thread_args[0][2];
        let total = per * n_threads as u64;

        // Stats conservation — the contended counters must be exact.
        let ops = machine.host_load(stats + 8 * ST_OPS as u64);
        if ops != total {
            return Err(format!("stats.total_ops {ops} != {total}"));
        }
        let gets = sum_slots(machine, slots_base, n_threads, 1);
        let hits = machine.host_load(stats + 8 * ST_HITS as u64);
        let misses = machine.host_load(stats + 8 * ST_MISSES as u64);
        if hits + misses != gets {
            return Err(format!("hits {hits} + misses {misses} != gets {gets}"));
        }
        let sets = machine.host_load(stats + 8 * ST_SETS as u64);
        if gets + sets != total {
            return Err(format!("gets {gets} + sets {sets} != {total}"));
        }

        // Table integrity: chain keys unique, in the right bucket; item
        // count == initial + created.
        let created = sum_slots(machine, slots_base, n_threads, 0);
        let mut count = 0u64;
        let mut seen = std::collections::HashSet::new();
        for bkt in 0..self.n_buckets {
            let mut cur = machine.host_load(ht + 8 * (1 + bkt));
            while cur != 0 {
                let k = machine.host_load(cur + 8 * IT_KEY as u64);
                if k % self.n_buckets != bkt {
                    return Err(format!("key {k} in wrong bucket {bkt}"));
                }
                if !seen.insert(k) {
                    return Err(format!("duplicate item {k}"));
                }
                count += 1;
                cur = machine.host_load(cur + 8 * IT_NEXT as u64);
                if count > self.initial_items + total + 1 {
                    return Err("chain cycle".into());
                }
            }
        }
        if count != self.initial_items + created {
            return Err(format!(
                "items {count} != initial {} + created {created}",
                self.initial_items
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_benchmark;
    use stagger_core::Mode;

    #[test]
    fn memcached_correct_in_all_modes() {
        let w = Memcached::tiny();
        for mode in Mode::ALL {
            let r = run_benchmark(&w, mode, 4, 51);
            assert_eq!(
                r.out.exec.committed_txns + r.out.exec.irrevocable_txns,
                256,
                "{}",
                mode.name()
            );
        }
    }

    #[test]
    fn memcached_stats_contention_staggered_helps() {
        let mut w = Memcached::tiny();
        w.total_ops = 1024;
        let base = run_benchmark(&w, Mode::Htm, 8, 53);
        let stag = run_benchmark(&w, Mode::Staggered, 8, 53);
        let b = base.out.sim.aborts_per_commit();
        let s = stag.out.sim.aborts_per_commit();
        assert!(b > 0.5, "global stats must contend hard, got {b:.2}");
        assert!(s < b, "staggering must help: {b:.2} -> {s:.2}");
    }
}
