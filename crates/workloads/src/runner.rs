//! One-call benchmark runner: compile, set up, execute, validate.

use crate::Workload;
use htm_sim::{Machine, MachineConfig};
use stagger_compiler::{compile, CompileStats};
use stagger_core::{Mode, RuntimeConfig};
use tm_interp::{run_workload, RunOutcome, ThreadPlan};

/// Result of one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: &'static str,
    pub mode: Mode,
    pub n_threads: usize,
    pub out: RunOutcome,
    pub compile_stats: CompileStats,
}

impl BenchResult {
    /// Simulated execution time in cycles.
    pub fn cycles(&self) -> u64 {
        self.out.sim.exec_cycles
    }
}

/// Compile `w`, run it on `n_threads` simulated cores in `mode`, validate
/// the workload invariants, and return all statistics.
///
/// # Panics
/// Panics if the workload's post-run validation fails — a validation
/// failure means the HTM or runtime broke serializability, which is never
/// acceptable.
pub fn run_benchmark(w: &dyn Workload, mode: Mode, n_threads: usize, seed: u64) -> BenchResult {
    run_benchmark_cfg(
        w,
        seed,
        MachineConfig::with_cores(n_threads),
        RuntimeConfig::with_mode(mode),
    )
}

/// Like [`run_benchmark`], with explicit machine and runtime configuration
/// (used by ablation studies: lazy protocol, PC-tag width, lock timeouts,
/// policy thresholds, ...).
pub fn run_benchmark_cfg(
    w: &dyn Workload,
    seed: u64,
    machine_cfg: MachineConfig,
    rt_cfg: RuntimeConfig,
) -> BenchResult {
    let mode = rt_cfg.mode;
    let n_threads = machine_cfg.n_cores;
    let module = w.build_module();
    let compiled = compile(&module);
    let machine = Machine::new(machine_cfg);
    let thread_args = w.setup(&machine, n_threads);
    assert_eq!(thread_args.len(), n_threads);
    let tm = compiled.module.expect("thread_main");
    let plans: Vec<ThreadPlan> = thread_args
        .iter()
        .map(|args| ThreadPlan {
            func: tm,
            args: args.clone(),
        })
        .collect();
    let out = run_workload(&machine, &compiled, &rt_cfg, &plans, seed);
    if let Err(e) = w.validate(&machine, &thread_args, &out) {
        panic!(
            "{} [{} x{}]: invariant violated: {e}",
            w.name(),
            mode.name(),
            n_threads
        );
    }
    BenchResult {
        name: w.name(),
        mode,
        n_threads,
        out,
        compile_stats: compiled.stats.clone(),
    }
}

/// Speedup of `result` relative to a sequential (1-thread) run of the same
/// workload in baseline HTM mode — the paper's "S" metric.
pub fn speedup_vs_sequential(w: &dyn Workload, result: &BenchResult, seed: u64) -> f64 {
    let seq = run_benchmark(w, Mode::Htm, 1, seed);
    seq.cycles() as f64 / result.cycles() as f64
}
