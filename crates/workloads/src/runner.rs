//! One-call benchmark runner: compile, set up, execute, validate.
//!
//! Harnesses that run the same workload in many modes / at many thread
//! counts should compile once via [`PreparedWorkload`] and then call
//! [`PreparedWorkload::run`] per configuration; [`run_benchmark`] remains
//! the convenient one-shot entry point.

use crate::Workload;
use htm_sim::{Machine, MachineConfig, ObsEvent};
use stagger_compiler::{compile, CompileStats, Compiled};
use stagger_core::{Mode, RuntimeConfig};
use std::sync::Arc;
use std::time::Instant;
use tm_interp::{run_workload_prepared, Prepared, RunOutcome, ThreadPlan};

/// Result of one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: &'static str,
    pub mode: Mode,
    pub n_threads: usize,
    pub out: RunOutcome,
    pub compile_stats: CompileStats,
    /// Host wall-clock seconds spent simulating this run (setup through
    /// validation) — the simulator's own throughput, not a paper metric.
    pub host_secs: f64,
    /// Per-core observability event streams, taken from the machine when
    /// [`MachineConfig::record_events`] was set (empty otherwise, and
    /// always empty via [`PreparedWorkload::run_on`], where the caller
    /// keeps the machine and its rings). Pure-observer data: latency
    /// derivation over these streams never feeds back into the run.
    pub events: Vec<Vec<ObsEvent>>,
}

impl BenchResult {
    /// Simulated execution time in cycles.
    pub fn cycles(&self) -> u64 {
        self.out.sim.exec_cycles
    }

    /// Dynamic instructions executed across all simulated cores.
    pub fn sim_insts(&self) -> u64 {
        self.out.exec.insts
    }

    /// Simulated instructions per host second — the simulator's throughput
    /// on this run.
    pub fn insts_per_sec(&self) -> f64 {
        if self.host_secs > 0.0 {
            self.sim_insts() as f64 / self.host_secs
        } else {
            0.0
        }
    }

    /// Shared-memory operations admitted through the scheduler gate across
    /// all cores — scheduler-overhead observability, not a paper metric.
    pub fn gated_ops(&self) -> u64 {
        self.out.sim.aggregate().gated_ops
    }

    /// Host nanoseconds per simulated instruction — the inverse of
    /// [`Self::insts_per_sec`], scaled for readability.
    pub fn ns_per_inst(&self) -> f64 {
        let insts = self.sim_insts();
        if insts > 0 {
            self.host_secs * 1e9 / insts as f64
        } else {
            0.0
        }
    }
}

/// A workload compiled and flattened once, reusable (and shareable across
/// harness threads) for any number of runs. Compilation and
/// [`Prepared::build`] are the per-run setup costs that do not depend on
/// mode, thread count, or seed — hoisting them out turns an
/// every-configuration cost into a per-workload one.
pub struct PreparedWorkload<'w> {
    w: &'w dyn Workload,
    compiled: Arc<Compiled>,
    prepared: Arc<Prepared>,
}

impl<'w> PreparedWorkload<'w> {
    /// Compile and flatten `w` once.
    pub fn new(w: &'w dyn Workload) -> PreparedWorkload<'w> {
        let module = w.build_module();
        let compiled = Arc::new(compile(&module));
        let prepared = Arc::new(Prepared::build(&compiled));
        PreparedWorkload {
            w,
            compiled,
            prepared,
        }
    }

    pub fn workload(&self) -> &'w dyn Workload {
        self.w
    }

    pub fn name(&self) -> &'static str {
        self.w.name()
    }

    pub fn compile_stats(&self) -> &CompileStats {
        &self.compiled.stats
    }

    /// The compiled program: module, code layout and unified anchor
    /// tables — what a profiler needs to resolve PC tags back to IR
    /// functions and instructions.
    pub fn compiled(&self) -> &Compiled {
        &self.compiled
    }

    /// Run on `n_threads` simulated cores in `mode` with default machine
    /// and runtime configuration.
    pub fn run(&self, mode: Mode, n_threads: usize, seed: u64) -> BenchResult {
        self.run_cfg(
            seed,
            MachineConfig::cores(n_threads),
            RuntimeConfig::with_mode(mode),
        )
    }

    /// Run with explicit machine and runtime configuration (ablations:
    /// lazy protocol, PC-tag width, lock timeouts, policy thresholds...).
    ///
    /// # Panics
    /// Panics if the workload's post-run validation fails — a validation
    /// failure means the HTM or runtime broke serializability, which is
    /// never acceptable.
    pub fn run_cfg(
        &self,
        seed: u64,
        machine_cfg: MachineConfig,
        rt_cfg: RuntimeConfig,
    ) -> BenchResult {
        let machine = Machine::new(machine_cfg);
        let mut r = self.run_on(&machine, &rt_cfg, seed);
        if machine.config().record_events {
            r.events = machine.take_events();
        }
        r
    }

    /// Run on a caller-provided, freshly constructed machine. The caller
    /// keeps the machine, so post-run state (e.g.
    /// [`Machine::take_trace`]) stays reachable — the scheduler
    /// equivalence tests depend on that. `machine` must not have run a
    /// workload before: [`Workload::setup`] allocates from its heap.
    pub fn run_on(&self, machine: &Machine, rt_cfg: &RuntimeConfig, seed: u64) -> BenchResult {
        let started = Instant::now();
        let mode = rt_cfg.mode;
        let n_threads = machine.config().n_cores;
        let thread_args = self.w.setup(machine, n_threads);
        assert_eq!(thread_args.len(), n_threads);
        let tm = self.compiled.module.expect("thread_main");
        let plans: Vec<ThreadPlan> = thread_args
            .iter()
            .map(|args| ThreadPlan {
                func: tm,
                args: args.clone(),
            })
            .collect();
        let out = run_workload_prepared(
            machine,
            &self.compiled,
            &self.prepared,
            rt_cfg,
            &plans,
            seed,
        );
        if let Err(e) = self.w.validate(machine, &thread_args, &out) {
            panic!(
                "{} [{} x{}]: invariant violated: {e}",
                self.w.name(),
                mode.name(),
                n_threads
            );
        }
        BenchResult {
            name: self.w.name(),
            mode,
            n_threads,
            out,
            compile_stats: self.compiled.stats.clone(),
            host_secs: started.elapsed().as_secs_f64(),
            events: Vec::new(),
        }
    }
}

/// Compile `w`, run it on `n_threads` simulated cores in `mode`, validate
/// the workload invariants, and return all statistics.
///
/// # Panics
/// Panics if the workload's post-run validation fails — a validation
/// failure means the HTM or runtime broke serializability, which is never
/// acceptable.
pub fn run_benchmark(w: &dyn Workload, mode: Mode, n_threads: usize, seed: u64) -> BenchResult {
    run_benchmark_cfg(
        w,
        seed,
        MachineConfig::cores(n_threads),
        RuntimeConfig::with_mode(mode),
    )
}

/// Like [`run_benchmark`], with explicit machine and runtime configuration
/// (used by ablation studies: lazy protocol, PC-tag width, lock timeouts,
/// policy thresholds, ...).
pub fn run_benchmark_cfg(
    w: &dyn Workload,
    seed: u64,
    machine_cfg: MachineConfig,
    rt_cfg: RuntimeConfig,
) -> BenchResult {
    PreparedWorkload::new(w).run_cfg(seed, machine_cfg, rt_cfg)
}

/// Speedup of `result` relative to a sequential (1-thread) run of the same
/// workload in baseline HTM mode — the paper's "S" metric.
pub fn speedup_vs_sequential(w: &dyn Workload, result: &BenchResult, seed: u64) -> f64 {
    let seq = run_benchmark(w, Mode::Htm, 1, seed);
    seq.cycles() as f64 / result.cycles() as f64
}
