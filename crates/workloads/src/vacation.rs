//! vacation (STAMP): travel-reservation database.
//!
//! Three relations (flights, rooms, cars) keyed by id, plus per-customer
//! reservation lists. STAMP implements the relations as red-black trees; we
//! substitute **unbalanced binary search trees built from uniformly shuffled
//! keys** (documented in DESIGN.md) — expected depth O(log n) without
//! rebalancing writes, preserving vacation's role as the *low-contention,
//! low-wasted-work* datapoint (Table 1: 1% irrevocable, W/U 0.34).
//!
//! Layout: relation `{0: root}`; tree node `{0: key, 1: left, 2: right,
//! 3: total, 4: used}`; customer table = array of chain heads; reservation
//! node `{0: item_key, 1: next}`.

use crate::{alloc_stat_slots, stat_slot, sum_slots, Workload};
use htm_sim::Machine;
use tm_interp::RunOutcome;
use tm_ir::{FuncBuilder, FuncKind, Module};

/// The vacation benchmark (paper input: `-n4 -q40 -u90 -r16387 -t4096`,
/// scaled).
#[derive(Debug, Clone)]
pub struct Vacation {
    /// Rows per relation.
    pub n_relations: u64,
    pub n_customers: u64,
    pub total_ops: u64,
    /// Capacity (`total`) of each row.
    pub row_capacity: u64,
    /// Percentage of operations that make reservations (the rest query).
    pub reserve_pct: u64,
}

impl Default for Vacation {
    fn default() -> Self {
        Vacation {
            n_relations: 1024,
            n_customers: 256,
            total_ops: 2048,
            row_capacity: 100,
            reserve_pct: 90,
        }
    }
}

impl Vacation {
    pub fn tiny() -> Vacation {
        Vacation {
            n_relations: 128,
            n_customers: 32,
            total_ops: 256,
            row_capacity: 50,
            reserve_pct: 90,
        }
    }
}

const N_KEY: u32 = 0;
const N_LEFT: u32 = 1;
const N_RIGHT: u32 = 2;
const N_TOTAL: u32 = 3;
const N_USED: u32 = 4;

impl Workload for Vacation {
    fn name(&self) -> &'static str {
        "vacation"
    }

    fn contention_source(&self) -> &'static str {
        "search trees"
    }

    fn build_module(&self) -> Module {
        let mut m = Module::new();

        // tree_find(rel, key) -> node ptr or 0
        let mut b = FuncBuilder::new("tree_find", 2, FuncKind::Normal);
        let (rel, key) = (b.param(0), b.param(1));
        let cur = b.load(rel, 0);
        let l = b.begin_loop();
        let is_null = b.eqi(cur, 0);
        b.break_if(l, is_null);
        let ck = b.load(cur, N_KEY);
        let hit = b.eq(ck, key);
        b.if_(hit, |b| b.ret(Some(cur)));
        b.compute(3); // key comparison work per level
        let goleft = b.lt(key, ck);
        b.if_else(
            goleft,
            |b| {
                let n = b.load(cur, N_LEFT);
                b.assign(cur, n);
            },
            |b| {
                let n = b.load(cur, N_RIGHT);
                b.assign(cur, n);
            },
        );
        b.end_loop(l);
        b.ret_const(0);
        let tree_find = m.add_function(b.finish());

        // reserve_one(rel, key) -> 1 if a unit was reserved
        let mut b = FuncBuilder::new("reserve_one", 2, FuncKind::Normal);
        let (rel, key) = (b.param(0), b.param(1));
        let node = b.call(tree_find, &[rel, key]);
        let miss = b.eqi(node, 0);
        b.if_(miss, |b| b.ret_const(0));
        let used = b.load(node, N_USED);
        let total = b.load(node, N_TOTAL);
        let full = b.ge(used, total);
        b.if_(full, |b| b.ret_const(0));
        let u2 = b.addi(used, 1);
        b.store(u2, node, N_USED);
        b.ret_const(1);
        let reserve_one = m.add_function(b.finish());

        // atomic tx_reserve(flights, rooms, cars, customers, cust, k1, k2,
        //                   k3) -> units reserved (0 or 1)
        //
        // As in STAMP's client logic, a reservation transaction *queries*
        // several relations (read-only price lookups) and reserves the
        // chosen one; the itinerary is recorded on the customer's chain.
        let mut b = FuncBuilder::new("tx_reserve", 8, FuncKind::Atomic { ab_id: 0 });
        let flights = b.param(0);
        let rooms = b.param(1);
        let cars = b.param(2);
        let customers = b.param(3);
        let cust = b.param(4);
        let k1 = b.param(5);
        let k2 = b.param(6);
        let k3 = b.param(7);
        let q2 = b.call(tree_find, &[rooms, k2]);
        let q3 = b.call(tree_find, &[cars, k3]);
        let _ = (q2, q3); // price comparison is modeled compute
        b.compute(40);
        let sum = b.call(reserve_one, &[flights, k1]);
        let zero = b.const_(0);
        let got_any = b.gt(sum, zero);
        b.if_(got_any, |b| {
            // Record the itinerary on the customer's chain (customer
            // records are one line apart: stride 8 words).
            let eight = b.const_(8);
            let coff = b.mul(cust, eight);
            let node = b.alloc_const(2, true);
            b.store(sum, node, 0);
            let head = b.load_idx(customers, coff, 0);
            b.store(head, node, 1);
            b.store_idx(node, customers, coff, 0);
        });
        b.ret(Some(sum));
        let tx_reserve = m.add_function(b.finish());

        // atomic tx_query(rel, key) -> available units
        let mut b = FuncBuilder::new("tx_query", 2, FuncKind::Atomic { ab_id: 1 });
        let (rel, key) = (b.param(0), b.param(1));
        let node = b.call(tree_find, &[rel, key]);
        let miss = b.eqi(node, 0);
        b.if_(miss, |b| b.ret_const(0));
        let used = b.load(node, N_USED);
        let total = b.load(node, N_TOTAL);
        let avail = b.sub(total, used);
        b.ret(Some(avail));
        let tx_query = m.add_function(b.finish());

        // thread_main(flights, rooms, cars, customers, ops, n_rel, n_cust,
        //             reserve_pct, slot) -> ops
        let mut b = FuncBuilder::new("thread_main", 9, FuncKind::Normal);
        let flights = b.param(0);
        let rooms = b.param(1);
        let cars = b.param(2);
        let customers = b.param(3);
        let ops = b.param(4);
        let n_rel = b.param(5);
        let n_cust = b.param(6);
        let reserve_pct = b.param(7);
        let slot = b.param(8);
        let i = b.const_(0);
        let reserved = b.const_(0);
        b.while_(
            |b| b.lt(i, ops),
            |b| {
                let r = b.rand_below(100);
                let k1 = b.rand(n_rel);
                let is_reserve = b.lt(r, reserve_pct);
                b.if_else(
                    is_reserve,
                    |b| {
                        let k2 = b.rand(n_rel);
                        let k3 = b.rand(n_rel);
                        let cust = b.rand(n_cust);
                        let got = b.call(
                            tx_reserve,
                            &[flights, rooms, cars, customers, cust, k1, k2, k3],
                        );
                        let s = b.add(reserved, got);
                        b.assign(reserved, s);
                    },
                    |b| {
                        b.call_void(tx_query, &[flights, k1]);
                    },
                );
                b.compute(120);
                let nx = b.addi(i, 1);
                b.assign(i, nx);
            },
        );
        b.store(reserved, slot, 0);
        b.ret(Some(i));
        m.add_function(b.finish());

        tm_ir::verify_module(&m).expect("vacation module verifies");
        m
    }

    fn setup(&self, machine: &Machine, n_threads: usize) -> Vec<Vec<u64>> {
        let mut rng = stagger_prng::Xoshiro256StarStar::seed_from_u64(0x76616361);

        let mut build_tree = |seed_shift: u64| -> u64 {
            let rel = machine.host_alloc(1, true);
            let mut keys: Vec<u64> = (0..self.n_relations).collect();
            rng.shuffle(&mut keys);
            let _ = seed_shift;
            for &k in &keys {
                let node = machine.host_alloc(8, true);
                machine.host_store(node + 8 * N_KEY as u64, k);
                machine.host_store(node + 8 * N_TOTAL as u64, self.row_capacity);
                // Insert without rebalancing.
                let root = machine.host_load(rel);
                if root == 0 {
                    machine.host_store(rel, node);
                    continue;
                }
                let mut cur = root;
                loop {
                    let ck = machine.host_load(cur + 8 * N_KEY as u64);
                    let off = if k < ck { N_LEFT } else { N_RIGHT } as u64;
                    let child = machine.host_load(cur + 8 * off);
                    if child == 0 {
                        machine.host_store(cur + 8 * off, node);
                        break;
                    }
                    cur = child;
                }
            }
            rel
        };
        let flights = build_tree(1);
        let rooms = build_tree(2);
        let cars = build_tree(3);
        // One line (8 words) per customer so chain heads never false-share.
        let customers = machine.host_alloc(self.n_customers * 8, true);
        let slots = alloc_stat_slots(machine, n_threads);
        let per = self.total_ops / n_threads as u64;
        (0..n_threads)
            .map(|t| {
                vec![
                    flights,
                    rooms,
                    cars,
                    customers,
                    per,
                    self.n_relations,
                    self.n_customers,
                    self.reserve_pct,
                    stat_slot(slots, t),
                ]
            })
            .collect()
    }

    fn validate(
        &self,
        machine: &Machine,
        thread_args: &[Vec<u64>],
        _out: &RunOutcome,
    ) -> Result<(), String> {
        let customers = thread_args[0][3];
        let slots_base = thread_args[0][8];
        let n_threads = thread_args.len();

        // Sum of used over all three trees equals units reserved; no row
        // overbooked.
        let mut used_total = 0u64;
        for (rel_i, &rel) in thread_args[0][..3].iter().enumerate() {
            let mut stack = vec![machine.host_load(rel)];
            let mut seen = 0u64;
            while let Some(n) = stack.pop() {
                if n == 0 {
                    continue;
                }
                seen += 1;
                if seen > self.n_relations {
                    return Err("tree cycle".into());
                }
                let used = machine.host_load(n + 8 * N_USED as u64);
                let total = machine.host_load(n + 8 * N_TOTAL as u64);
                if used > total {
                    return Err(format!("row overbooked: {used}/{total}"));
                }
                used_total += used;
                stack.push(machine.host_load(n + 8 * N_LEFT as u64));
                stack.push(machine.host_load(n + 8 * N_RIGHT as u64));
            }
            if seen != self.n_relations {
                return Err(format!("tree {rel_i} has {seen} nodes"));
            }
        }
        let reserved = sum_slots(machine, slots_base, n_threads, 0);
        if used_total != reserved {
            return Err(format!("used {used_total} != reserved {reserved}"));
        }
        // Customer chains record the same number of itineraries: each
        // successful reservation appends exactly one node.
        let mut chain_units = 0u64;
        for c in 0..self.n_customers {
            let mut cur = machine.host_load(customers + c * 64);
            let mut steps = 0u64;
            while cur != 0 {
                chain_units += machine.host_load(cur);
                cur = machine.host_load(cur + 8);
                steps += 1;
                if steps > self.total_ops + 1 {
                    return Err("customer chain cycle".into());
                }
            }
        }
        if chain_units != reserved {
            return Err(format!(
                "customer itineraries record {chain_units} units, reserved {reserved}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_benchmark;
    use stagger_core::Mode;

    #[test]
    fn vacation_correct_in_all_modes() {
        let w = Vacation::tiny();
        for mode in Mode::ALL {
            let r = run_benchmark(&w, mode, 4, 61);
            assert_eq!(
                r.out.exec.committed_txns + r.out.exec.irrevocable_txns,
                256,
                "{}",
                mode.name()
            );
        }
    }

    #[test]
    fn vacation_is_low_contention() {
        let w = Vacation::default();
        let r = run_benchmark(&w, Mode::Htm, 8, 63);
        assert!(
            r.out.sim.aborts_per_commit() < 1.0,
            "vacation is the low-contention datapoint, got {:.2}",
            r.out.sim.aborts_per_commit()
        );
    }
}
