//! kmeans (STAMP): clustering with transactional center accumulators.
//!
//! The assignment phase reads the *previous* iteration's centers with plain
//! loads and pure compute (no conflicts, as in STAMP); each point then
//! commits its coordinates into the chosen cluster's accumulator record in
//! one transaction. Conflicts happen when two threads update the same
//! cluster concurrently — Table 1's `LA = N, LP = Y` class: the first-access
//! PC recurs but the address wanders over clusters, so coarse-grain
//! activation locks the *current* cluster record ("close to what fine-grain
//! locking could achieve", Section 6.2).
//!
//! Layout: `old_centers` and the accumulators are arrays of K records; each
//! record `{0: count, 1..=D: sums}` is padded to whole cache lines so
//! clusters never false-share.

use crate::{alloc_stat_slots, stat_slot, sum_slots, Workload};
use htm_sim::Machine;
use tm_interp::RunOutcome;
use tm_ir::{FuncBuilder, FuncKind, Module};

/// The kmeans benchmark (paper input: `-m15 -n15 -t0.05 -i random-n2048-d16-c16`).
#[derive(Debug, Clone)]
pub struct Kmeans {
    pub n_points: u64,
    pub n_clusters: u64,
    pub dims: u64,
    /// Modeled distance-computation work per point, in cycles.
    pub assign_cycles: u32,
}

impl Default for Kmeans {
    fn default() -> Self {
        Kmeans {
            n_points: 2048,
            n_clusters: 16,
            dims: 16,
            assign_cycles: 100,
        }
    }
}

impl Kmeans {
    pub fn tiny() -> Kmeans {
        Kmeans {
            n_points: 200,
            n_clusters: 4,
            dims: 4,
            assign_cycles: 60,
        }
    }

    /// Words per center record, padded to whole lines.
    fn stride(&self) -> u64 {
        (self.dims + 1).div_ceil(8) * 8
    }

    /// Words per point record: `{0: label, 1..=D: coords}`.
    fn point_stride(&self) -> u64 {
        self.dims + 1
    }
}

impl Workload for Kmeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn contention_source(&self) -> &'static str {
        "arrays"
    }

    fn build_module(&self) -> Module {
        let mut m = Module::new();

        // atomic tx_add_point(center_rec, point, dims):
        //   center_rec.count += 1; for d: center_rec.sums[d] += point[1+d]
        let mut b = FuncBuilder::new("tx_add_point", 3, FuncKind::Atomic { ab_id: 0 });
        let (rec, point, dims) = (b.param(0), b.param(1), b.param(2));
        let cnt = b.load(rec, 0);
        let cnt2 = b.addi(cnt, 1);
        b.store(cnt2, rec, 0);
        let d = b.const_(0);
        b.while_(
            |b| b.lt(d, dims),
            |b| {
                let coord = b.load_idx(point, d, 1);
                let cur = b.load_idx(rec, d, 1);
                let sum = b.add(cur, coord);
                b.store_idx(sum, rec, d, 1);
                let nx = b.addi(d, 1);
                b.assign(d, nx);
            },
        );
        b.ret(None);
        let tx_add = m.add_function(b.finish());

        // thread_main(points, old_centers, accum, start, count, k, dims,
        //             c_stride, p_stride, slot) -> points processed
        let mut b = FuncBuilder::new("thread_main", 10, FuncKind::Normal);
        let points = b.param(0);
        let old_centers = b.param(1);
        let accum = b.param(2);
        let start = b.param(3);
        let count = b.param(4);
        let k = b.param(5);
        let dims = b.param(6);
        let c_stride = b.param(7);
        let p_stride = b.param(8);
        let slot = b.param(9);

        let i = b.const_(0);
        b.while_(
            |b| b.lt(i, count),
            |b| {
                let pidx = b.add(start, i);
                let poff = b.mul(pidx, p_stride);
                let point = b.gep(points, poff, 0);
                // Assignment phase: scan the previous centers (plain reads
                // of stable data) and compute distances.
                let c = b.const_(0);
                b.while_(
                    |b| b.lt(c, k),
                    |b| {
                        let coff = b.mul(c, c_stride);
                        let crec = b.gep(old_centers, coff, 0);
                        let _c0 = b.load(crec, 1);
                        b.compute(self.assign_cycles / 8);
                        let nx = b.addi(c, 1);
                        b.assign(c, nx);
                    },
                );
                b.compute(self.assign_cycles);
                // The point's label stands in for the argmin result.
                let label = b.load(point, 0);
                let aoff = b.mul(label, c_stride);
                let arec = b.gep(accum, aoff, 0);
                b.call_void(tx_add, &[arec, point, dims]);
                let nx = b.addi(i, 1);
                b.assign(i, nx);
            },
        );
        b.store(i, slot, 0);
        b.ret(Some(i));
        m.add_function(b.finish());

        tm_ir::verify_module(&m).expect("kmeans module verifies");
        m
    }

    fn setup(&self, machine: &Machine, n_threads: usize) -> Vec<Vec<u64>> {
        let mut rng = stagger_prng::Xoshiro256StarStar::seed_from_u64(0x6B6D65616E73);
        let p_stride = self.point_stride();
        let c_stride = self.stride();

        let points = machine.host_alloc(self.n_points * p_stride, true);
        for p in 0..self.n_points {
            let base = points + p * p_stride * 8;
            machine.host_store(base, rng.below(self.n_clusters));
            for d in 0..self.dims {
                machine.host_store(base + 8 * (1 + d), rng.below(1000));
            }
        }
        let old_centers = machine.host_alloc(self.n_clusters * c_stride, true);
        for c in 0..self.n_clusters * c_stride {
            machine.host_store(old_centers + c * 8, rng.below(1000));
        }
        let accum = machine.host_alloc(self.n_clusters * c_stride, true);
        let slots = alloc_stat_slots(machine, n_threads);

        let per = self.n_points / n_threads as u64;
        (0..n_threads)
            .map(|t| {
                vec![
                    points,
                    old_centers,
                    accum,
                    t as u64 * per,
                    per,
                    self.n_clusters,
                    self.dims,
                    c_stride,
                    p_stride,
                    stat_slot(slots, t),
                ]
            })
            .collect()
    }

    fn validate(
        &self,
        machine: &Machine,
        thread_args: &[Vec<u64>],
        _out: &RunOutcome,
    ) -> Result<(), String> {
        let points = thread_args[0][0];
        let accum = thread_args[0][2];
        let n_threads = thread_args.len();
        let slots_base = thread_args[0][9];
        let c_stride = self.stride();
        let p_stride = self.point_stride();

        let processed = sum_slots(machine, slots_base, n_threads, 0);
        // Sum of cluster counts == points processed.
        let total_count: u64 = (0..self.n_clusters)
            .map(|c| machine.host_load(accum + c * c_stride * 8))
            .sum();
        if total_count != processed {
            return Err(format!(
                "cluster counts {total_count} != points processed {processed}"
            ));
        }
        // Per-dimension sums match a host-side recomputation over the
        // processed prefix of each thread's partition.
        let per = self.n_points / n_threads as u64;
        let mut expect = vec![0u64; (self.n_clusters * self.dims) as usize];
        for t in 0..n_threads as u64 {
            let done = machine.host_load(stat_slot(slots_base, t as usize));
            for p in t * per..t * per + done {
                let base = points + p * p_stride * 8;
                let label = machine.host_load(base);
                for d in 0..self.dims {
                    expect[(label * self.dims + d) as usize] +=
                        machine.host_load(base + 8 * (1 + d));
                }
            }
        }
        for c in 0..self.n_clusters {
            for d in 0..self.dims {
                let got = machine.host_load(accum + (c * c_stride + 1 + d) * 8);
                let want = expect[(c * self.dims + d) as usize];
                if got != want {
                    return Err(format!("cluster {c} dim {d}: sum {got} != {want}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_benchmark;
    use stagger_core::Mode;

    #[test]
    fn kmeans_correct_in_all_modes() {
        let w = Kmeans::tiny();
        for mode in Mode::ALL {
            let r = run_benchmark(&w, mode, 4, 5);
            assert_eq!(
                r.out.exec.committed_txns + r.out.exec.irrevocable_txns,
                200,
                "{}",
                mode.name()
            );
        }
    }

    #[test]
    fn kmeans_contends_on_few_clusters() {
        let mut w = Kmeans::tiny();
        w.n_points = 400;
        w.n_clusters = 2; // force heavy collisions
        let base = run_benchmark(&w, Mode::Htm, 8, 2);
        assert!(
            base.out.sim.aborts_per_commit() > 0.2,
            "2 clusters x 8 threads must contend, got {:.3}",
            base.out.sim.aborts_per_commit()
        );
        let stag = run_benchmark(&w, Mode::Staggered, 8, 2);
        assert!(stag.out.sim.aborts_per_commit() < base.out.sim.aborts_per_commit());
    }
}
