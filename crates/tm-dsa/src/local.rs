//! Local (per-function) DSA stage.
//!
//! Flow-insensitive unification, iterated to a fixpoint over the function's
//! instructions. Corresponds to stage (1) of the DSA pipeline described in
//! paper Section 3.1: "a local stage creates a data structure node for each
//! unique pointer target in a function, and links each pointer access to a
//! DSNode".

use crate::graph::{DsGraph, NodeFlags, NodeId, ARRAY_FIELD};
use std::collections::HashMap;
use tm_ir::{FuncId, Function, Inst, InstRef, Module, Reg};

/// Per-function analysis result. After the bottom-up stage
/// ([`crate::analyze_module`]), `inst_node` also covers the instructions of
/// every transitively-called function, expressed in this function's graph.
#[derive(Debug, Clone)]
pub struct FuncDsa {
    pub graph: DsGraph,
    /// Node bound to each register (if the register ever holds a pointer).
    pub reg_node: Vec<Option<NodeId>>,
    /// DSNode of the *pointer operand* of each load/store.
    pub inst_node: HashMap<InstRef, NodeId>,
    /// Nodes of pointer-valued parameters (`None` for integer params).
    pub param_node: Vec<Option<NodeId>>,
    /// Node of the returned pointer, if the function returns one.
    pub ret_node: Option<NodeId>,
    /// Node bound to each call instruction's destination register, used by
    /// the bottom-up stage to unify against the callee's return node.
    pub call_dst_node: HashMap<InstRef, NodeId>,
}

impl FuncDsa {
    /// Representative node of a memory access instruction.
    pub fn node_of(&self, inst: InstRef) -> Option<NodeId> {
        self.inst_node.get(&inst).map(|&n| self.graph.find(n))
    }
}

struct LocalCtx<'m> {
    func: &'m Function,
    fid: FuncId,
    dsa: FuncDsa,
    alloc_site: HashMap<InstRef, NodeId>,
    changed: bool,
}

impl LocalCtx<'_> {
    fn node_of_reg(&self, r: Reg) -> Option<NodeId> {
        self.dsa.reg_node[r.index()].map(|n| self.dsa.graph.find(n))
    }

    fn ensure_reg_node(&mut self, r: Reg) -> NodeId {
        match self.dsa.reg_node[r.index()] {
            Some(n) => self.dsa.graph.find(n),
            None => {
                let n = self.dsa.graph.fresh(NodeFlags::empty());
                self.dsa.reg_node[r.index()] = Some(n);
                self.changed = true;
                n
            }
        }
    }

    fn unify(&mut self, a: NodeId, b: NodeId) {
        if self.dsa.graph.find(a) != self.dsa.graph.find(b) {
            self.dsa.graph.unify(a, b);
            self.changed = true;
        }
    }

    /// `dst` now (also) holds a pointer to `n`.
    fn bind_reg(&mut self, dst: Reg, n: NodeId) {
        match self.dsa.reg_node[dst.index()] {
            Some(existing) => self.unify(existing, n),
            None => {
                self.dsa.reg_node[dst.index()] = Some(n);
                self.changed = true;
            }
        }
    }

    fn edge_target(&mut self, n: NodeId, off: u32) -> NodeId {
        let before = self.dsa.graph.n_slots();
        let t = self.dsa.graph.edge_target(n, off);
        if self.dsa.graph.n_slots() != before {
            self.changed = true;
        }
        t
    }

    fn record_access(&mut self, iref: InstRef, base: Reg) -> NodeId {
        let n = self.ensure_reg_node(base);
        let prev = self.dsa.inst_node.insert(iref, n);
        if prev.map(|p| self.dsa.graph.find(p)) != Some(self.dsa.graph.find(n)) {
            self.changed = true;
        }
        n
    }

    fn visit(&mut self, iref: InstRef, inst: &Inst) {
        match *inst {
            Inst::Mov { dst, src } => {
                if let Some(n) = self.node_of_reg(src) {
                    self.bind_reg(dst, n);
                } else if let Some(n) = self.node_of_reg(dst) {
                    self.bind_reg(src, n);
                }
            }
            Inst::Bin { op, dst, a, b } => {
                // Pointer arithmetic keeps pointing into the same node.
                use tm_ir::BinOp::{Add, Sub};
                if matches!(op, Add | Sub) {
                    if let Some(n) = self.node_of_reg(a) {
                        self.bind_reg(dst, n);
                    } else if op == Add {
                        if let Some(n) = self.node_of_reg(b) {
                            self.bind_reg(dst, n);
                        }
                    }
                }
            }
            Inst::Gep { dst, base, .. } => {
                let n = self.ensure_reg_node(base);
                self.bind_reg(dst, n);
            }
            Inst::Load { dst, base, offset } => {
                let n = self.record_access(iref, base);
                let t = self.edge_target(n, offset);
                self.bind_reg(dst, t);
            }
            Inst::LoadIdx { dst, base, .. } => {
                let n = self.record_access(iref, base);
                let t = self.edge_target(n, ARRAY_FIELD);
                self.bind_reg(dst, t);
            }
            Inst::Store { src, base, offset } => {
                let n = self.record_access(iref, base);
                if let Some(sn) = self.node_of_reg(src) {
                    let t = self.edge_target(n, offset);
                    self.unify(t, sn);
                }
            }
            Inst::StoreIdx { src, base, .. } => {
                let n = self.record_access(iref, base);
                if let Some(sn) = self.node_of_reg(src) {
                    let t = self.edge_target(n, ARRAY_FIELD);
                    self.unify(t, sn);
                }
            }
            Inst::Alloc { dst, .. } => {
                let n = match self.alloc_site.get(&iref).copied() {
                    Some(n) => n,
                    None => {
                        let n = self.dsa.graph.fresh(NodeFlags::HEAP);
                        self.alloc_site.insert(iref, n);
                        self.changed = true;
                        n
                    }
                };
                self.bind_reg(dst, n);
            }
            Inst::Call { dst: Some(dst), .. } => {
                // A placeholder node for the call result; the bottom-up
                // stage unifies it with the callee's return node.
                let n = match self.dsa.call_dst_node.get(&iref).copied() {
                    Some(n) => n,
                    None => {
                        let n = self.dsa.graph.fresh(NodeFlags::empty());
                        self.dsa.call_dst_node.insert(iref, n);
                        self.changed = true;
                        n
                    }
                };
                self.bind_reg(dst, n);
            }
            Inst::Ret { val: Some(v) } => {
                if let Some(n) = self.node_of_reg(v) {
                    match self.dsa.ret_node {
                        Some(r) => self.unify(r, n),
                        None => {
                            self.dsa.ret_node = Some(n);
                            self.changed = true;
                        }
                    }
                }
            }
            _ => {}
        }
        let _ = self.fid; // silence unused in non-debug builds
        let _ = self.func;
    }
}

/// Run the local DSA stage on one function.
pub fn analyze_function(module: &Module, fid: FuncId) -> FuncDsa {
    let func = module.func(fid);
    let mut ctx = LocalCtx {
        func,
        fid,
        dsa: FuncDsa {
            graph: DsGraph::new(),
            reg_node: vec![None; func.n_regs as usize],
            inst_node: HashMap::new(),
            param_node: vec![None; func.n_params as usize],
            ret_node: None,
            call_dst_node: HashMap::new(),
        },
        alloc_site: HashMap::new(),
        changed: false,
    };
    // Parameters get nodes eagerly: a pointer parameter's node must exist so
    // the bottom-up stage can unify it with the caller's actual. Integer
    // parameters acquire harmless leaf nodes.
    for i in 0..func.n_params {
        let n = ctx.dsa.graph.fresh(NodeFlags::PARAM);
        ctx.dsa.reg_node[i as usize] = Some(n);
        ctx.dsa.param_node[i as usize] = Some(n);
    }
    let mut iterations = 0;
    loop {
        ctx.changed = false;
        for (bid, blk) in func.iter_blocks() {
            for (idx, inst) in blk.insts.iter().enumerate() {
                let iref = InstRef {
                    func: fid,
                    block: bid,
                    idx: idx as u32,
                };
                ctx.visit(iref, inst);
            }
        }
        iterations += 1;
        assert!(
            iterations < 100,
            "local DSA failed to converge on {}",
            func.name
        );
        if !ctx.changed {
            break;
        }
    }
    if let Some(r) = ctx.dsa.ret_node {
        ctx.dsa.graph.add_flags(r, NodeFlags::RETURNED);
    }
    ctx.dsa
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_ir::{FuncBuilder, FuncKind, Module};

    fn analyze_one(b: FuncBuilder) -> (Module, FuncDsa) {
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let dsa = analyze_function(&m, fid);
        (m, dsa)
    }

    fn iref(b: u32, i: u32) -> InstRef {
        InstRef {
            func: FuncId(0),
            block: tm_ir::BlockId(b),
            idx: i,
        }
    }

    #[test]
    fn distinct_allocations_distinct_nodes() {
        let mut b = FuncBuilder::new("f", 0, FuncKind::Normal);
        let p = b.alloc_const(4, false);
        let q = b.alloc_const(4, false);
        b.store_const(1, p, 0);
        b.store_const(2, q, 0);
        b.ret(None);
        let (_, d) = analyze_one(b);
        let np = d.reg_node[p.index()].map(|n| d.graph.find(n)).unwrap();
        let nq = d.reg_node[q.index()].map(|n| d.graph.find(n)).unwrap();
        assert_ne!(np, nq);
        assert!(d.graph.flags(np).contains(NodeFlags::HEAP));
    }

    #[test]
    fn loads_of_same_field_share_target() {
        // q = p->f0; r = p->f0; q and r point to the same node.
        let mut b = FuncBuilder::new("f", 1, FuncKind::Normal);
        let p = b.param(0);
        let q = b.load(p, 0);
        let r = b.load(p, 0);
        b.store_const(0, q, 1);
        b.store_const(0, r, 1);
        b.ret(None);
        let (_, d) = analyze_one(b);
        assert_eq!(
            d.graph.find(d.reg_node[q.index()].unwrap()),
            d.graph.find(d.reg_node[r.index()].unwrap())
        );
    }

    #[test]
    fn different_fields_distinct_targets() {
        let mut b = FuncBuilder::new("f", 1, FuncKind::Normal);
        let p = b.param(0);
        let q = b.load(p, 0);
        let r = b.load(p, 1);
        b.store_const(0, q, 0);
        b.store_const(0, r, 0);
        b.ret(None);
        let (_, d) = analyze_one(b);
        assert_ne!(
            d.graph.find(d.reg_node[q.index()].unwrap()),
            d.graph.find(d.reg_node[r.index()].unwrap())
        );
    }

    #[test]
    fn list_traversal_collapses_to_cyclic_node() {
        // node = list->head; while (node != 0) node = node->next;
        let mut b = FuncBuilder::new("walk", 1, FuncKind::Normal);
        let list = b.param(0);
        let node = b.load(list, 0);
        b.while_(
            |b| b.nei(node, 0),
            |b| {
                let nx = b.load(node, 1);
                b.assign(node, nx);
            },
        );
        b.ret(None);
        let (_, d) = analyze_one(b);
        let n = d.graph.find(d.reg_node[node.index()].unwrap());
        // Self edge through `next` (offset 1).
        assert_eq!(d.graph.edge_target_opt(n, 1), Some(n));
        // And the list-head node points at it via offset 0.
        let ln = d.graph.find(d.reg_node[list.index()].unwrap());
        assert_eq!(d.graph.edge_target_opt(ln, 0), Some(n));
        assert_eq!(d.graph.predecessors(n), vec![ln]);
    }

    #[test]
    fn inst_node_records_pointer_operand() {
        let mut b = FuncBuilder::new("f", 1, FuncKind::Normal);
        let p = b.param(0);
        let _v = b.load(p, 2); // entry block, idx 0
        b.ret(None);
        let (_, d) = analyze_one(b);
        let n = d.node_of(iref(0, 0)).unwrap();
        assert_eq!(n, d.graph.find(d.reg_node[p.index()].unwrap()));
    }

    #[test]
    fn indexed_accesses_share_array_field() {
        let mut b = FuncBuilder::new("f", 2, FuncKind::Normal);
        let (arr, i) = (b.param(0), b.param(1));
        let a = b.load_idx(arr, i, 0);
        let j = b.addi(i, 3);
        let c = b.load_idx(arr, j, 0);
        b.store_const(0, a, 0);
        b.store_const(0, c, 0);
        b.ret(None);
        let (_, d) = analyze_one(b);
        assert_eq!(
            d.graph.find(d.reg_node[a.index()].unwrap()),
            d.graph.find(d.reg_node[c.index()].unwrap())
        );
    }

    #[test]
    fn ret_node_flagged() {
        let mut b = FuncBuilder::new("f", 1, FuncKind::Normal);
        let p = b.param(0);
        let q = b.load(p, 0);
        b.store_const(7, q, 0); // makes q's node real
        b.ret(Some(q));
        let (_, d) = analyze_one(b);
        let r = d.graph.find(d.ret_node.unwrap());
        assert!(d.graph.flags(r).contains(NodeFlags::RETURNED));
        assert_eq!(r, d.graph.find(d.reg_node[q.index()].unwrap()));
    }

    #[test]
    fn store_links_pointer_field() {
        // p->f1 = q; then r = p->f1 aliases q.
        let mut b = FuncBuilder::new("f", 2, FuncKind::Normal);
        let (p, q) = (b.param(0), b.param(1));
        b.store_const(0, q, 0); // make q a pointer (used as base)
        b.store(q, p, 1);
        let r = b.load(p, 1);
        b.store_const(0, r, 0);
        b.ret(None);
        let (_, d) = analyze_one(b);
        assert_eq!(
            d.graph.find(d.reg_node[q.index()].unwrap()),
            d.graph.find(d.reg_node[r.index()].unwrap())
        );
    }

    #[test]
    fn phi_like_merge_unifies() {
        // out = (c ? a : b); *out = 1  => a and b unify.
        let mut b = FuncBuilder::new("f", 3, FuncKind::Normal);
        let (c, a, bb) = (b.param(0), b.param(1), b.param(2));
        let out = b.reg();
        b.if_else(c, |x| x.assign(out, a), |x| x.assign(out, bb));
        b.store_const(1, out, 0);
        b.ret(None);
        let (_, d) = analyze_one(b);
        assert_eq!(
            d.graph.find(d.reg_node[a.index()].unwrap()),
            d.graph.find(d.reg_node[bb.index()].unwrap())
        );
    }
}
