//! Bottom-up (inter-procedural) DSA stage.
//!
//! Walks the call graph callees-first; each caller imports a copy of every
//! distinct callee's (already bottom-up) graph and unifies the imported
//! formal-parameter/return nodes with the actuals at each call site. The
//! result per function is a graph covering the function *and all its
//! transitive callees*, with every reachable load/store mapped into that
//! graph's node space — what paper Section 3.3 needs to build unified
//! anchor tables per atomic block.

use crate::graph::NodeId;
use crate::local::{analyze_function, FuncDsa};
use std::collections::HashMap;
use tm_ir::{FuncId, Inst, InstRef, Module};

/// Bottom-up DSA results for a whole module.
#[derive(Debug, Clone)]
pub struct ModuleDsa {
    /// One entry per function (indexed by `FuncId`), with all transitive
    /// callees inlined.
    pub funcs: Vec<FuncDsa>,
}

impl ModuleDsa {
    pub fn func(&self, f: FuncId) -> &FuncDsa {
        &self.funcs[f.index()]
    }

    /// DSNode (in `scope`'s graph) of a memory access that may live in
    /// `scope` itself or in any of its transitive callees.
    pub fn node_in_scope(&self, scope: FuncId, inst: InstRef) -> Option<NodeId> {
        self.func(scope).node_of(inst)
    }
}

/// Topological order of the call graph, callees first.
///
/// # Panics
/// Panics on recursion: the IR front end must not produce recursive calls
/// (none of the benchmarks do; the paper's DSA handles SCCs, but we keep
/// the reproduction simpler and assert instead).
fn topo_order(m: &Module) -> Vec<FuncId> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let n = m.funcs.len();
    let mut mark = vec![Mark::White; n];
    let mut order = Vec::with_capacity(n);

    fn visit(m: &Module, f: FuncId, mark: &mut [Mark], order: &mut Vec<FuncId>) {
        match mark[f.index()] {
            Mark::Black => return,
            Mark::Grey => panic!(
                "recursive call cycle through function {:?} — not supported",
                m.func(f).name
            ),
            Mark::White => {}
        }
        mark[f.index()] = Mark::Grey;
        for c in m.callees(f) {
            visit(m, c, mark, order);
        }
        mark[f.index()] = Mark::Black;
        order.push(f);
    }

    for i in 0..n {
        visit(m, FuncId(i as u32), &mut mark, &mut order);
    }
    order
}

/// Run local + bottom-up DSA for every function in the module.
pub fn analyze_module(m: &Module) -> ModuleDsa {
    let order = topo_order(m);
    let mut done: Vec<Option<FuncDsa>> = vec![None; m.funcs.len()];

    for fid in order {
        let mut dsa = analyze_function(m, fid);
        // Import each distinct callee's finished graph once, then unify the
        // imported formals/return with the actuals of every call site.
        let mut imported: HashMap<FuncId, Vec<NodeId>> = HashMap::new();
        for callee in m.callees(fid) {
            let cd = done[callee.index()]
                .as_ref()
                .expect("topological order violated");
            let map = dsa.graph.import(&cd.graph);
            // Bring the callee's (transitive) instruction->node map into the
            // caller's node space.
            for (&iref, &n) in &cd.inst_node {
                dsa.inst_node.insert(iref, map[cd.graph.find(n).index()]);
            }
            imported.insert(callee, map);
        }
        for (bid, blk) in m.func(fid).iter_blocks() {
            for (idx, inst) in blk.insts.iter().enumerate() {
                let Inst::Call { func, args, dst } = inst else {
                    continue;
                };
                let cd = done[func.index()].as_ref().unwrap();
                let map = &imported[func];
                for (i, &arg) in args.iter().enumerate() {
                    if let Some(pn) = cd.param_node[i] {
                        let imported_pn = map[cd.graph.find(pn).index()];
                        // Ensure the actual has a node, then unify.
                        let an = match dsa.reg_node[arg.index()] {
                            Some(n) => n,
                            None => {
                                let n = dsa.graph.fresh(Default::default());
                                dsa.reg_node[arg.index()] = Some(n);
                                n
                            }
                        };
                        dsa.graph.unify(an, imported_pn);
                    }
                }
                if dst.is_some() {
                    if let Some(rn) = cd.ret_node {
                        let imported_rn = map[cd.graph.find(rn).index()];
                        let iref = InstRef {
                            func: fid,
                            block: bid,
                            idx: idx as u32,
                        };
                        if let Some(&dn) = dsa.call_dst_node.get(&iref) {
                            dsa.graph.unify(dn, imported_rn);
                        }
                    }
                }
            }
        }
        done[fid.index()] = Some(dsa);
    }

    ModuleDsa {
        funcs: done.into_iter().map(Option::unwrap).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ARRAY_FIELD;
    use tm_ir::{BlockId, FuncBuilder, FuncKind, Module};

    /// Build the paper's Figure 3 shape:
    /// `TMlist_find(list)` walks `list->head->next...`;
    /// `hashtable_insert(ht, k)` loads `ht->numBucket` (off 0) and calls
    /// `TMlist_find(ht->buckets[i])`; the atomic block calls
    /// `hashtable_insert`.
    fn genome_like() -> (Module, FuncId, FuncId, FuncId) {
        let mut m = Module::new();

        // TMlist_find(list): node = list->head(0); while node: node = node->next(1)
        let mut b = FuncBuilder::new("TMlist_find", 1, FuncKind::Normal);
        let list = b.param(0);
        let node = b.load(list, 0);
        b.while_(
            |b| b.nei(node, 0),
            |b| {
                let v = b.load(node, 2); // key field
                let _ = v;
                let nx = b.load(node, 1);
                b.assign(node, nx);
            },
        );
        b.ret(Some(node));
        let list_find = m.add_function(b.finish());

        // hashtable_insert(ht, k): nb = ht->numBucket(0); i = k % nb;
        // bucket = ht->buckets[i] (indexed at offset 1); TMlist_find(bucket)
        let mut b = FuncBuilder::new("hashtable_insert", 2, FuncKind::Normal);
        let (ht, k) = (b.param(0), b.param(1));
        let nb = b.load(ht, 0);
        let i = b.bin(tm_ir::BinOp::Rem, k, nb);
        let bucket = b.load_idx(ht, i, 1);
        let r = b.call(list_find, &[bucket]);
        b.ret(Some(r));
        let ht_insert = m.add_function(b.finish());

        // atomic block: insert(ht, k)
        let mut b = FuncBuilder::new("tx_insert", 2, FuncKind::Atomic { ab_id: 0 });
        let (ht, k) = (b.param(0), b.param(1));
        let r = b.call(ht_insert, &[ht, k]);
        b.ret(Some(r));
        let tx = m.add_function(b.finish());

        tm_ir::verify_module(&m).unwrap();
        (m, list_find, ht_insert, tx)
    }

    #[test]
    fn bottom_up_links_callee_nodes_to_caller() {
        let (m, list_find, _ht_insert, tx) = genome_like();
        let dsa = analyze_module(&m);
        let txd = dsa.func(tx);

        // The load of `list->head` inside TMlist_find, viewed from the
        // atomic block's graph:
        let head_load = InstRef {
            func: list_find,
            block: BlockId(0),
            idx: 0,
        };
        let list_node = txd.node_of(head_load).expect("callee inst mapped");

        // The atomic block's ht parameter node has an ARRAY edge to the
        // bucket lists, and that bucket node should be exactly `list_node`'s
        // predecessor... in fact the bucket *is* the list head object.
        let ht_node = txd.graph.find(txd.reg_node[0].unwrap());
        let bucket = txd.graph.edge_target_opt(ht_node, ARRAY_FIELD).unwrap();
        assert_eq!(bucket, txd.graph.find(list_node));

        // The collapsed list node hangs off the bucket via `head` (off 0)
        // and has a self edge via `next` (off 1).
        let ln = txd.graph.edge_target_opt(bucket, 0).unwrap();
        assert_eq!(txd.graph.edge_target_opt(ln, 1), Some(ln));
    }

    #[test]
    fn parent_chain_matches_paper_example() {
        // In Figure 3 the anchor chain is hashtable -> bucket/list; the
        // predecessor of the collapsed list node must be the bucket node,
        // whose predecessor is... itself the hashtable node via ARRAY_FIELD.
        let (m, list_find, _, tx) = genome_like();
        let dsa = analyze_module(&m);
        let txd = dsa.func(tx);
        let node_load = InstRef {
            func: list_find,
            block: BlockId(0),
            idx: 0,
        };
        let bucket_node = txd.node_of(node_load).unwrap();
        let preds = txd.graph.predecessors(bucket_node);
        let ht_node = txd.graph.find(txd.reg_node[0].unwrap());
        assert_eq!(preds, vec![ht_node]);
    }

    #[test]
    fn distinct_callers_keep_distinct_graphs() {
        // Two atomic blocks calling the same helper must have independent
        // node spaces (context sensitivity across atomic blocks).
        let mut m = Module::new();
        let mut b = FuncBuilder::new("touch", 1, FuncKind::Normal);
        let p = b.param(0);
        b.store_const(1, p, 0);
        b.ret(None);
        let touch = m.add_function(b.finish());

        for (i, name) in ["tx_a", "tx_b"].iter().enumerate() {
            let mut b = FuncBuilder::new(name, 1, FuncKind::Atomic { ab_id: i as u32 });
            let p = b.param(0);
            b.call_void(touch, &[p]);
            b.ret(None);
            m.add_function(b.finish());
        }
        let dsa = analyze_module(&m);
        let store = InstRef {
            func: touch,
            block: BlockId(0),
            idx: 1, // [const, store, ret]
        };
        let a = m.expect("tx_a");
        let bb = m.expect("tx_b");
        // Both scopes see the store, each in their own graph.
        assert!(dsa.node_in_scope(a, store).is_some());
        assert!(dsa.node_in_scope(bb, store).is_some());
        // And the callee's own local view also has it.
        assert!(dsa.func(touch).node_of(store).is_some());
    }

    #[test]
    fn return_value_unified_with_call_dst() {
        // g returns p->f0; caller stores through the result: the node of
        // `q` in the caller must be the target of p's field 0.
        let mut m = Module::new();
        let mut b = FuncBuilder::new("get", 1, FuncKind::Normal);
        let p = b.param(0);
        let q = b.load(p, 0);
        b.store_const(0, q, 3); // make it a real pointer target
        b.ret(Some(q));
        let get = m.add_function(b.finish());

        let mut b = FuncBuilder::new("use", 1, FuncKind::Normal);
        let p = b.param(0);
        let q = b.call(get, &[p]);
        b.store_const(9, q, 3);
        let caller_store = InstRef {
            func: FuncId(1),
            block: BlockId(0),
            idx: 2, // [call, const, store]
        };
        b.ret(None);
        let user = m.add_function(b.finish());

        let dsa = analyze_module(&m);
        let ud = dsa.func(user);
        let p_node = ud.graph.find(ud.reg_node[0].unwrap());
        let field0 = ud.graph.edge_target_opt(p_node, 0).unwrap();
        assert_eq!(ud.node_of(caller_store), Some(field0));
    }

    #[test]
    #[should_panic(expected = "recursive call cycle")]
    fn recursion_panics() {
        let mut m = Module::new();
        // Forward-declare by building a self-call: function 0 calls function 0.
        let mut b = FuncBuilder::new("r", 0, FuncKind::Normal);
        b.emit(Inst::Call {
            func: FuncId(0),
            args: vec![],
            dst: None,
        });
        b.ret(None);
        m.add_function(b.finish());
        analyze_module(&m);
    }
}
