//! # tm-dsa — Data Structure Analysis over `tm-ir`
//!
//! A reproduction of the parts of Lattner's Data Structure Analysis (DSA)
//! that the Staggered Transactions compiler pass consumes (paper Section 3;
//! Lattner's thesis \[15\] is used there "essentially as a black box"):
//!
//! * **DSNodes** — one abstract node per distinct pointer target; every
//!   pointer-valued register links to a node, and all pointers linked to the
//!   same node *may* alias the same data-structure instance.
//! * **Field-sensitive edges** — if a pointer field at word offset `k` of
//!   node `A` points to node `B`, the graph has an edge `A --k--> B`.
//!   Array-style (indexed) accesses use the single pseudo-field
//!   [`ARRAY_FIELD`], so all elements of an array share one target node,
//!   matching DSA's treatment of arrays.
//! * **Local stage** — one DSGraph per function, built by unification
//!   (Steensgaard-style, iterated to a fixpoint): each allocation site is a
//!   node; copies/pointer arithmetic unify; loading a field yields the
//!   field's target node. Recursive traversals (`n = n->next`) naturally
//!   collapse a whole linked structure into one cyclic node — which is
//!   exactly the granularity the paper wants for coarse-grain advisory
//!   locking of lists and trees.
//! * **Bottom-up stage** — callee graphs are cloned into callers at call
//!   sites, with formal-parameter and return nodes unified against actuals.
//!   The paper uses the bottom-up (stage 2) result, not the top-down stage,
//!   and so do we.
//!
//! The result, [`ModuleDsa`], maps every load/store instruction of every
//! function — including, for each (atomic) caller, the instructions of its
//! transitive callees expressed in the caller's node space — to its DSNode.
//! `stagger-compiler` reads this to classify anchors and build unified
//! anchor tables.

pub mod bottom_up;
pub mod graph;
pub mod local;

pub use bottom_up::{analyze_module, ModuleDsa};
pub use graph::{DsGraph, NodeFlags, NodeId, ARRAY_FIELD};
pub use local::{analyze_function, FuncDsa};
