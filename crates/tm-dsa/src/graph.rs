//! The DSGraph: DSNodes in a union-find, with field-labelled edges.

use std::collections::BTreeMap;

/// Pseudo field offset used for indexed (array) accesses: all elements of
/// an array collapse onto one outgoing edge, as in Lattner's DSA.
pub const ARRAY_FIELD: u32 = u32::MAX;

/// Index of a DSNode within its [`DsGraph`]. May be a non-representative
/// (unified-away) id; [`DsGraph::find`] resolves to the representative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

bitflags_lite::bitflags! {
    /// Origin/usage flags of a DSNode, unioned on unification.
    pub struct NodeFlags: u8 {
        /// Allocated on the simulated heap (an `Alloc` site).
        const HEAP = 1;
        /// Reached through a function parameter.
        const PARAM = 2;
        /// Escapes via a return value.
        const RETURNED = 4;
    }
}

/// A tiny local `bitflags`-style helper so we avoid an external dependency.
mod bitflags_lite {
    macro_rules! bitflags {
        (
            $(#[$meta:meta])*
            pub struct $name:ident: $ty:ty {
                $( $(#[$fmeta:meta])* const $flag:ident = $val:expr; )*
            }
        ) => {
            $(#[$meta])*
            #[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
            pub struct $name(pub $ty);
            impl $name {
                $( $(#[$fmeta])* pub const $flag: $name = $name($val); )*
                pub const fn empty() -> Self { $name(0) }
                pub fn contains(self, other: Self) -> bool {
                    (self.0 & other.0) == other.0
                }
                pub fn insert(&mut self, other: Self) {
                    self.0 |= other.0;
                }
            }
            impl std::ops::BitOr for $name {
                type Output = Self;
                fn bitor(self, rhs: Self) -> Self { $name(self.0 | rhs.0) }
            }
        };
    }
    pub(crate) use bitflags;
}

#[derive(Debug, Clone, Default)]
struct NodeData {
    /// Outgoing field edges; values may be stale ids (resolve with `find`).
    edges: BTreeMap<u32, NodeId>,
    flags: NodeFlags,
}

/// A data-structure graph: union-find over DSNodes with field edges merged
/// on unification.
#[derive(Debug, Clone, Default)]
pub struct DsGraph {
    parent: Vec<u32>,
    nodes: Vec<NodeData>,
}

impl DsGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of node slots ever created (including unified-away ones).
    pub fn n_slots(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct (representative) nodes.
    pub fn n_nodes(&self) -> usize {
        (0..self.nodes.len())
            .filter(|&i| self.parent[i] == i as u32)
            .count()
    }

    /// Create a fresh node.
    pub fn fresh(&mut self, flags: NodeFlags) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.parent.push(id.0);
        self.nodes.push(NodeData {
            edges: BTreeMap::new(),
            flags,
        });
        id
    }

    /// Representative of `n` (path-halving find).
    pub fn find(&self, n: NodeId) -> NodeId {
        let mut x = n.0 as usize;
        while self.parent[x] != x as u32 {
            x = self.parent[x] as usize;
        }
        NodeId(x as u32)
    }

    /// Union-find flags of the representative.
    pub fn flags(&self, n: NodeId) -> NodeFlags {
        self.nodes[self.find(n).index()].flags
    }

    pub fn add_flags(&mut self, n: NodeId, f: NodeFlags) {
        let r = self.find(n);
        self.nodes[r.index()].flags.insert(f);
    }

    /// Unify two nodes (and, cascading, the targets of same-offset edges).
    pub fn unify(&mut self, a: NodeId, b: NodeId) {
        let mut work = vec![(a, b)];
        while let Some((a, b)) = work.pop() {
            let (a, b) = (self.find(a), self.find(b));
            if a == b {
                continue;
            }
            // Merge b into a.
            let b_data = std::mem::take(&mut self.nodes[b.index()]);
            self.parent[b.index()] = a.0;
            self.nodes[a.index()].flags.insert(b_data.flags);
            for (off, t) in b_data.edges {
                match self.nodes[a.index()].edges.get(&off).copied() {
                    Some(existing) => work.push((existing, t)),
                    None => {
                        self.nodes[a.index()].edges.insert(off, t);
                    }
                }
            }
        }
    }

    /// The target node of field `offset` of `n`, created on demand.
    pub fn edge_target(&mut self, n: NodeId, offset: u32) -> NodeId {
        let r = self.find(n);
        if let Some(t) = self.nodes[r.index()].edges.get(&offset).copied() {
            return self.find(t);
        }
        let t = self.fresh(NodeFlags::empty());
        // `fresh` may not move r (push only appends), so re-borrow.
        self.nodes[r.index()].edges.insert(offset, t);
        t
    }

    /// The target node of field `offset` of `n`, if it exists.
    pub fn edge_target_opt(&self, n: NodeId, offset: u32) -> Option<NodeId> {
        let r = self.find(n);
        self.nodes[r.index()]
            .edges
            .get(&offset)
            .map(|&t| self.find(t))
    }

    /// Outgoing edges of `n` as `(offset, representative target)`, sorted by
    /// offset.
    pub fn edges_of(&self, n: NodeId) -> Vec<(u32, NodeId)> {
        let r = self.find(n);
        self.nodes[r.index()]
            .edges
            .iter()
            .map(|(&off, &t)| (off, self.find(t)))
            .collect()
    }

    /// All representative node ids, ascending.
    pub fn representatives(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&n| self.find(n) == n)
            .collect()
    }

    /// Nodes with an edge *into* `target` (excluding `target` itself),
    /// ascending — used for advisory-lock parent resolution.
    pub fn predecessors(&self, target: NodeId) -> Vec<NodeId> {
        let t = self.find(target);
        self.representatives()
            .into_iter()
            .filter(|&n| n != t && self.edges_of(n).iter().any(|&(_, to)| to == t))
            .collect()
    }

    /// Deep-copy every representative node of `other` into `self`,
    /// returning a map `other-slot-id -> new id in self` (indexed by raw
    /// slot, resolving non-representatives through `other`'s union-find).
    pub fn import(&mut self, other: &DsGraph) -> Vec<NodeId> {
        let reps = other.representatives();
        let mut rep_map: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        for &r in &reps {
            let n = self.fresh(other.nodes[r.index()].flags);
            rep_map.insert(r, n);
        }
        for &r in &reps {
            let new_src = rep_map[&r];
            for (off, t) in other.edges_of(r) {
                let new_t = rep_map[&t];
                // The imported subgraph is fresh, so offsets cannot clash.
                let sr = self.find(new_src);
                self.nodes[sr.index()].edges.insert(off, new_t);
            }
        }
        (0..other.n_slots() as u32)
            .map(|i| rep_map[&other.find(NodeId(i))])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_and_find() {
        let mut g = DsGraph::new();
        let a = g.fresh(NodeFlags::HEAP);
        let b = g.fresh(NodeFlags::empty());
        assert_eq!(g.find(a), a);
        assert_ne!(a, b);
        assert_eq!(g.n_nodes(), 2);
        assert!(g.flags(a).contains(NodeFlags::HEAP));
    }

    #[test]
    fn unify_merges_flags_and_counts() {
        let mut g = DsGraph::new();
        let a = g.fresh(NodeFlags::HEAP);
        let b = g.fresh(NodeFlags::PARAM);
        g.unify(a, b);
        assert_eq!(g.find(a), g.find(b));
        assert_eq!(g.n_nodes(), 1);
        let f = g.flags(a);
        assert!(f.contains(NodeFlags::HEAP) && f.contains(NodeFlags::PARAM));
    }

    #[test]
    fn unify_cascades_through_edges() {
        let mut g = DsGraph::new();
        let a = g.fresh(NodeFlags::empty());
        let b = g.fresh(NodeFlags::empty());
        let ta = g.edge_target(a, 3);
        let tb = g.edge_target(b, 3);
        assert_ne!(g.find(ta), g.find(tb));
        g.unify(a, b);
        // Same-offset edge targets must have been unified too.
        assert_eq!(g.find(ta), g.find(tb));
    }

    #[test]
    fn self_edge_from_recursive_traversal() {
        // Model `n = n->next`: target of `next` unified with the node itself.
        let mut g = DsGraph::new();
        let n = g.fresh(NodeFlags::HEAP);
        let t = g.edge_target(n, 1);
        g.unify(n, t);
        assert_eq!(g.find(n), g.find(t));
        let edges = g.edges_of(n);
        assert_eq!(edges, vec![(1, g.find(n))]); // self-edge
    }

    #[test]
    fn edge_target_idempotent() {
        let mut g = DsGraph::new();
        let n = g.fresh(NodeFlags::empty());
        let t1 = g.edge_target(n, 5);
        let t2 = g.edge_target(n, 5);
        assert_eq!(g.find(t1), g.find(t2));
        assert_eq!(g.edge_target_opt(n, 5), Some(g.find(t1)));
        assert_eq!(g.edge_target_opt(n, 6), None);
    }

    #[test]
    fn predecessors_exclude_self() {
        let mut g = DsGraph::new();
        let head = g.fresh(NodeFlags::empty());
        let list = g.edge_target(head, 0);
        let next = g.edge_target(list, 1);
        g.unify(list, next); // collapsed list with self-edge
        let preds = g.predecessors(list);
        assert_eq!(preds, vec![g.find(head)]);
        assert!(g.predecessors(head).is_empty());
    }

    #[test]
    fn import_preserves_structure() {
        let mut g1 = DsGraph::new();
        let a = g1.fresh(NodeFlags::HEAP);
        let b = g1.edge_target(a, 2);
        let c = g1.fresh(NodeFlags::PARAM);
        g1.unify(b, c);

        let mut g2 = DsGraph::new();
        let existing = g2.fresh(NodeFlags::empty());
        let map = g2.import(&g1);
        assert_eq!(map.len(), g1.n_slots());
        let na = map[a.index()];
        let nb = map[b.index()];
        assert_ne!(g2.find(na), g2.find(existing));
        assert_eq!(g2.edge_target_opt(na, 2), Some(g2.find(nb)));
        assert!(g2.flags(nb).contains(NodeFlags::PARAM));
        // b and c were unified in g1, so they map to the same node in g2.
        assert_eq!(g2.find(map[b.index()]), g2.find(map[c.index()]));
    }

    #[test]
    fn array_field_constant_is_distinct() {
        let mut g = DsGraph::new();
        let n = g.fresh(NodeFlags::empty());
        let elem = g.edge_target(n, ARRAY_FIELD);
        let f0 = g.edge_target(n, 0);
        assert_ne!(g.find(elem), g.find(f0));
    }
}
