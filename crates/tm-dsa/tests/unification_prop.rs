//! Randomized tests for the DSGraph union-find with edge merging, driven
//! by a fixed-seed in-tree PRNG sweep.

use stagger_prng::Xoshiro256StarStar;
use tm_dsa::{DsGraph, NodeFlags, NodeId};

#[derive(Debug, Clone)]
enum Op {
    Fresh,
    Unify(usize, usize),
    Edge(usize, u32),
}

fn random_ops(rng: &mut Xoshiro256StarStar) -> Vec<Op> {
    let n = rng.gen_range(1, 60) as usize;
    (0..n)
        .map(|_| match rng.below(3) {
            0 => Op::Fresh,
            1 => Op::Unify(rng.index(24), rng.index(24)),
            _ => Op::Edge(rng.index(24), rng.below(4) as u32),
        })
        .collect()
}

fn apply(g: &mut DsGraph, ops: &[Op]) -> Vec<NodeId> {
    let mut nodes = vec![g.fresh(NodeFlags::empty())];
    for op in ops {
        match op {
            Op::Fresh => nodes.push(g.fresh(NodeFlags::empty())),
            Op::Unify(a, b) => {
                let (a, b) = (nodes[a % nodes.len()], nodes[b % nodes.len()]);
                g.unify(a, b);
            }
            Op::Edge(n, f) => {
                let n = nodes[n % nodes.len()];
                let t = g.edge_target(n, *f);
                nodes.push(t);
            }
        }
    }
    nodes
}

/// find() is idempotent and produces a representative that find()s to
/// itself; unified nodes share a representative forever.
#[test]
fn find_is_canonical() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x6669_6E64);
    for _case in 0..128 {
        let ops = random_ops(&mut rng);
        let mut g = DsGraph::new();
        let nodes = apply(&mut g, &ops);
        for &n in &nodes {
            let r = g.find(n);
            assert_eq!(g.find(r), r, "representative is a fixpoint");
        }
    }
}

/// After unify(a, b), find(a) == find(b), and same-offset edge targets
/// of the merged node are themselves unified (cascade property).
#[test]
fn unify_merges_classes_and_edges() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x756E_6966);
    for _case in 0..128 {
        let ops = random_ops(&mut rng);
        let fa = rng.below(4) as u32;
        let mut g = DsGraph::new();
        let nodes = apply(&mut g, &ops);
        let (a, b) = (nodes[0], *nodes.last().unwrap());
        let ta = g.edge_target(a, fa);
        let tb = g.edge_target(b, fa);
        g.unify(a, b);
        assert_eq!(g.find(a), g.find(b));
        assert_eq!(g.find(ta), g.find(tb), "same-offset targets cascade");
        // Edge lookup after merge agrees with both prior targets.
        let t = g.edge_target_opt(a, fa).unwrap();
        assert_eq!(t, g.find(ta));
    }
}

/// Representatives partition the slots: every slot finds to exactly one
/// representative, and representatives() lists each exactly once.
#[test]
fn representatives_partition() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x7265_7073);
    for _case in 0..128 {
        let ops = random_ops(&mut rng);
        let mut g = DsGraph::new();
        apply(&mut g, &ops);
        let reps = g.representatives();
        let mut sorted = reps.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), reps.len());
        for i in 0..g.n_slots() as u32 {
            let r = g.find(NodeId(i));
            assert!(reps.contains(&r), "slot {i} -> non-listed rep {r}");
        }
        assert_eq!(reps.len(), g.n_nodes());
    }
}

/// Importing a graph preserves its quotient structure: unified slots
/// stay unified, distinct representatives stay distinct, edges carry
/// over.
#[test]
fn import_preserves_quotient() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x696D_706F);
    for _case in 0..64 {
        let ops = random_ops(&mut rng);
        let mut g1 = DsGraph::new();
        apply(&mut g1, &ops);
        let mut g2 = DsGraph::new();
        let map = g2.import(&g1);
        assert_eq!(map.len(), g1.n_slots());
        for i in 0..g1.n_slots() as u32 {
            for j in 0..g1.n_slots() as u32 {
                let same1 = g1.find(NodeId(i)) == g1.find(NodeId(j));
                let same2 = g2.find(map[i as usize]) == g2.find(map[j as usize]);
                assert_eq!(same1, same2, "i={i} j={j}");
            }
        }
        for r in g1.representatives() {
            for (off, t) in g1.edges_of(r) {
                assert_eq!(
                    g2.edge_target_opt(map[r.index()], off),
                    Some(g2.find(map[t.index()]))
                );
            }
        }
    }
}
