//! The locking policy — the paper's Figure 6 (`ActivateALPoint`).
//!
//! Called on every contention abort with the anchor the abort was
//! attributed to. Four behaviours, keyed on whether the conflicting PC and
//! data address recur in recent history:
//!
//! | PC recurrent | addr recurrent | behaviour |
//! |---|---|---|
//! | yes | yes | **precise mode** — lock only on that address |
//! | yes | no (early retries) | **coarse-grain mode** — lock any address at that ALP |
//! | yes | no (persistent) | **locking promotion** — move to the parent anchor |
//! | no | — | **training mode** — just record |

use crate::context::{ABContext, Activation};
use stagger_compiler::UnifiedAnchorTable;

/// Policy thresholds (paper Section 6: history of 8 records, `PC_THR = 2`,
/// `ADDR_THR = 2`).
#[derive(Debug, Clone)]
pub struct PolicyConfig {
    pub pc_thr: u32,
    pub addr_thr: u32,
    /// Retry count at which persistent coarse-grain contention is promoted
    /// to the parent anchor (Figure 6's `PROM_THR`).
    pub prom_thr: u32,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            pc_thr: 2,
            addr_thr: 2,
            prom_thr: 3,
        }
    }
}

/// One policy step on a contention abort attributed to `anchor_id` (0 if
/// the runtime could not identify an anchor), with `conf_addr` the
/// conflicting line address and `retries` the current instance's retry
/// count. Updates `ctx.activation` and appends to history.
///
/// `anchor_pc` is the PC of the attributed anchor's memory access (used as
/// the history key); pass 0 when unattributed.
pub fn activate_alpoint(
    cfg: &PolicyConfig,
    table: &UnifiedAnchorTable,
    ctx: &mut ABContext,
    anchor_id: u32,
    anchor_pc: u64,
    conf_addr: u64,
    retries: u32,
) {
    if anchor_id == 0 {
        // Unattributed abort: training; still record the address so precise
        // AddrOnly-style patterns could emerge later.
        ctx.history.append(0, conf_addr);
        ctx.activation = Activation::Training;
        return;
    }
    let a = ctx.history.count_addr(conf_addr) > cfg.addr_thr;
    let p = ctx.history.count_pc(anchor_pc) > cfg.pc_thr;

    ctx.activation = if p && a {
        // Case 1: precise mode — statistics/bookkeeping data or cyclic
        // dependences on a stable address.
        Activation::Precise {
            anchor: anchor_id,
            addr: conf_addr,
        }
    } else if p {
        let parent = table.parent_of(anchor_id);
        let already_promoted =
            parent != 0 && ctx.activation == (Activation::Coarse { anchor: parent });
        if already_promoted {
            // A promotion must stick: demoting back to the child on the
            // next low-retry abort would split threads across two lock
            // domains (child lock vs parent lock) that cannot exclude each
            // other. Only decay-to-training undoes a promotion.
            Activation::Coarse { anchor: parent }
        } else if retries < cfg.prom_thr {
            // Case 2: coarse grain — stable PC, wandering addresses
            // (pointer-based structures).
            Activation::Coarse { anchor: anchor_id }
        } else {
            // Case 3: locking promotion — climb to the parent anchor (the
            // data structure's root/holder), breaking conflict cycles.
            Activation::Coarse {
                anchor: if parent != 0 { parent } else { anchor_id },
            }
        }
    } else {
        // Case 4: training — but an established activation whose own
        // evidence is still strong in the history is *kept*, not torn
        // down: when two conflict sources interleave (e.g. memcached's
        // stats line and its hash chains), a weak-evidence abort from one
        // must not thrash the lock protecting the other. Decay of stale
        // activations is handled by the empty records appended on
        // uncontended locked commits.
        match ctx.activation {
            Activation::Precise { anchor, addr }
                if ctx.history.count_addr(addr) > cfg.addr_thr
                    && anchor_evidence(table, ctx, anchor, cfg.pc_thr) =>
            {
                ctx.activation
            }
            Activation::Coarse { anchor } if anchor_evidence(table, ctx, anchor, cfg.pc_thr) => {
                ctx.activation
            }
            _ => Activation::Training,
        }
    };

    ctx.history.append(anchor_pc, conf_addr);
}

/// Does the history still show recurrent aborts attributed to `anchor` (or
/// to a child whose promotion target it is)?
fn anchor_evidence(table: &UnifiedAnchorTable, ctx: &ABContext, anchor: u32, pc_thr: u32) -> bool {
    let Some(entry) = table.anchor_entry(anchor) else {
        return false;
    };
    if ctx.history.count_pc(entry.pc) > pc_thr {
        return true;
    }
    // A promoted (parent) anchor is justified by its children's PCs.
    table
        .entries
        .iter()
        .filter(|e| e.is_anchor && e.parent_anchor == anchor)
        .any(|e| ctx.history.count_pc(e.pc) > pc_thr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stagger_compiler::{compile, Compiled};
    use tm_ir::{FuncBuilder, FuncKind, Module};

    /// A compiled module with a two-level anchor chain: anchor on the
    /// "table" node (parent) and anchor on the collapsed "list" node
    /// (child), like Figure 3.
    fn compiled_chain() -> Compiled {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("tx", 1, FuncKind::Atomic { ab_id: 0 });
        let table = b.param(0);
        let node = b.load(table, 0); // anchor 1: table node
        b.while_(
            |b| b.nei(node, 0),
            |b| {
                let _v = b.load(node, 2); // anchor 2: list node (parent = table)
                let nx = b.load(node, 1);
                b.assign(node, nx);
            },
        );
        b.ret(None);
        m.add_function(b.finish());
        compile(&m)
    }

    /// The child anchor (one with a nonzero parent) and its parent.
    fn child_and_parent(c: &Compiled) -> (u32, u64, u32) {
        let t = c.table(0);
        let e = t
            .entries
            .iter()
            .find(|e| e.is_anchor && e.parent_anchor != 0)
            .expect("child anchor");
        (e.anchor_id, e.pc, e.parent_anchor)
    }

    #[test]
    fn training_until_thresholds() {
        let c = compiled_chain();
        let t = c.table(0);
        let (child, pc, _) = child_and_parent(&c);
        let mut ctx = ABContext::new(0, 8);
        let cfg = PolicyConfig::default();
        // First two aborts: counts are 0 and 1 ≤ PC_THR → training.
        for _ in 0..2 {
            activate_alpoint(&cfg, t, &mut ctx, child, pc, 0x1000, 0);
            assert_eq!(ctx.activation, Activation::Training);
        }
    }

    #[test]
    fn precise_mode_on_recurrent_pc_and_addr() {
        let c = compiled_chain();
        let t = c.table(0);
        let (child, pc, _) = child_and_parent(&c);
        let mut ctx = ABContext::new(0, 8);
        let cfg = PolicyConfig::default();
        for _ in 0..4 {
            activate_alpoint(&cfg, t, &mut ctx, child, pc, 0x1000, 0);
        }
        assert_eq!(
            ctx.activation,
            Activation::Precise {
                anchor: child,
                addr: 0x1000
            }
        );
    }

    #[test]
    fn coarse_mode_on_recurrent_pc_wandering_addr() {
        let c = compiled_chain();
        let t = c.table(0);
        let (child, pc, _) = child_and_parent(&c);
        let mut ctx = ABContext::new(0, 8);
        let cfg = PolicyConfig::default();
        for i in 0..4u64 {
            activate_alpoint(&cfg, t, &mut ctx, child, pc, 0x1000 + i * 64, 1);
        }
        assert_eq!(ctx.activation, Activation::Coarse { anchor: child });
    }

    #[test]
    fn promotion_to_parent_after_persistent_retries() {
        let c = compiled_chain();
        let t = c.table(0);
        let (child, pc, parent) = child_and_parent(&c);
        let mut ctx = ABContext::new(0, 8);
        let cfg = PolicyConfig::default();
        // Warm up the PC history with varying addresses (retries below
        // PROM_THR keep it in plain coarse mode).
        for i in 0..4u64 {
            activate_alpoint(&cfg, t, &mut ctx, child, pc, 0x2000 + i * 64, 1);
        }
        assert_eq!(ctx.activation, Activation::Coarse { anchor: child });
        // A retry at/after PROM_THR promotes to the parent anchor.
        activate_alpoint(&cfg, t, &mut ctx, child, pc, 0x9000, cfg.prom_thr);
        assert_eq!(ctx.activation, Activation::Coarse { anchor: parent });
    }

    #[test]
    fn promotion_without_parent_keeps_anchor() {
        let c = compiled_chain();
        let t = c.table(0);
        // The parent (table) anchor itself has no parent.
        let (_, _, parent) = child_and_parent(&c);
        let parent_pc = t.anchor_entry(parent).unwrap().pc;
        let mut ctx = ABContext::new(0, 8);
        let cfg = PolicyConfig::default();
        for i in 0..4u64 {
            activate_alpoint(&cfg, t, &mut ctx, parent, parent_pc, 0x3000 + i * 64, 9);
        }
        assert_eq!(ctx.activation, Activation::Coarse { anchor: parent });
    }

    #[test]
    fn unattributed_abort_trains_and_records() {
        let c = compiled_chain();
        let t = c.table(0);
        let mut ctx = ABContext::new(0, 8);
        let cfg = PolicyConfig::default();
        activate_alpoint(&cfg, t, &mut ctx, 0, 0, 0x4000, 0);
        assert_eq!(ctx.activation, Activation::Training);
        assert_eq!(ctx.history.count_addr(0x4000), 1);
    }

    #[test]
    fn empty_entries_decay_back_to_training() {
        let c = compiled_chain();
        let t = c.table(0);
        let (child, pc, _) = child_and_parent(&c);
        let mut ctx = ABContext::new(0, 8);
        let cfg = PolicyConfig::default();
        for _ in 0..4 {
            activate_alpoint(&cfg, t, &mut ctx, child, pc, 0x1000, 0);
        }
        assert!(matches!(ctx.activation, Activation::Precise { .. }));
        // Eight uncontended locked commits age everything out.
        for _ in 0..8 {
            ctx.history.append_empty();
        }
        activate_alpoint(&cfg, t, &mut ctx, child, pc, 0x1000, 0);
        assert_eq!(
            ctx.activation,
            Activation::Training,
            "stale evidence must not keep locking"
        );
    }
}
