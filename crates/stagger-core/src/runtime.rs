//! Per-thread runtime state and the ALPoint fast path (paper Section 5).

use crate::context::{ABContext, Activation};
use crate::locks::{GlobalLock, LockTable};
use crate::policy::{activate_alpoint, PolicyConfig};
use htm_sim::fx::FxHashMap;
use htm_sim::{line_of, AbortInfo, Addr, Core, FallbackPolicy, Machine};
use stagger_compiler::Compiled;

/// Execution modes compared in the paper's Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Baseline eager HTM — ALPs behave as if not present (the paper's
    /// baseline runs the uninstrumented binary).
    Htm,
    /// "AddrOnly": one fixed ALP at the start of each atomic block;
    /// precise mode only, keyed purely on conflicting-address recurrence.
    AddrOnly,
    /// Staggered Transactions with the *software* conflicting-PC
    /// alternative of Section 4 (a per-thread line→anchor map maintained at
    /// every executed ALP, with its run-time overhead charged).
    StaggeredSw,
    /// Staggered Transactions with hardware conflicting-PC support (12-bit
    /// per-line PC tags).
    Staggered,
}

impl Mode {
    pub const ALL: [Mode; 4] = [
        Mode::Htm,
        Mode::AddrOnly,
        Mode::StaggeredSw,
        Mode::Staggered,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Mode::Htm => "HTM",
            Mode::AddrOnly => "AddrOnly",
            Mode::StaggeredSw => "Staggered+SW",
            Mode::Staggered => "Staggered",
        }
    }

    /// Parse a mode by its display name, case-insensitively; `+` may be
    /// omitted (`staggeredsw` ≡ `Staggered+SW`).
    pub fn parse(s: &str) -> Option<Mode> {
        let norm = |x: &str| x.to_ascii_lowercase().replace('+', "");
        Mode::ALL.into_iter().find(|m| norm(m.name()) == norm(s))
    }
}

/// Sentinel anchor id for the AddrOnly block-start ALP (not a compiled
/// anchor; handled directly by `txn_start`).
pub const BLOCK_START_ANCHOR: u32 = u32::MAX;

/// Which interpreter executes the IR (a host-performance knob).
///
/// Both interpreters realize identical simulated semantics — cycles, stats,
/// traces and observability events are bit-for-bit equal (enforced by the
/// bench crate's `interp_equivalence` test) — so, like the host scheduler,
/// this selects only how fast the host walks the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Interp {
    /// Flat pre-decoded µ-op arrays: absolute branch targets, inlined
    /// register slots and PCs, fused superinstructions, dense dispatch.
    #[default]
    Bytecode,
    /// The original block-walking interpreter over `Vec<(Inst, Pc)>`
    /// (kept selectable as the equivalence reference).
    Legacy,
}

impl Interp {
    pub const ALL: [Interp; 2] = [Interp::Bytecode, Interp::Legacy];

    /// Canonical name, stable across releases.
    pub fn name(&self) -> &'static str {
        match self {
            Interp::Bytecode => "bytecode",
            Interp::Legacy => "legacy",
        }
    }

    /// Parse an interpreter by its canonical name, case-insensitively.
    pub fn parse(s: &str) -> Option<Interp> {
        let norm = s.to_ascii_lowercase();
        Interp::ALL.into_iter().find(|i| i.name() == norm)
    }
}

/// Runtime configuration (paper Section 6 values as defaults).
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    pub mode: Mode,
    /// Interpreter selection. Host-only: both interpreters produce
    /// bit-identical simulated results, so this knob is deliberately
    /// *excluded* from `to_kv`/`set_kv` (it must not perturb experiment-spec
    /// run keys or invalidate committed sweep cells).
    pub interp: Interp,
    pub policy: PolicyConfig,
    /// Abort-history length per ABContext (paper: 8).
    pub history_len: usize,
    /// Hardware retries before irrevocable fallback (paper: 10).
    pub max_retries: u32,
    /// Advisory lock table size (power of two).
    pub n_locks: usize,
    /// Advisory-lock acquire timeout, in cycles — a few typical transaction
    /// lengths, bounding the serialization harm of a stale or over-broad
    /// activation (Section 2: a waiter "can specify a timeout for its
    /// acquire operation, and simply proceed when the timeout expires").
    pub lock_timeout: u64,
    /// Minimum recent contention-abort frequency (aborts per commit) for
    /// the policy to activate any ALP — the paper's decision (1): locking
    /// is driven by "the frequency of contention aborts". Below this, the
    /// atomic block stays unlocked no matter what patterns the history
    /// shows.
    pub min_conflict_rate: f64,
    /// Cycles charged per lock-spin poll.
    pub lock_spin: u64,
    /// Mean backoff per retry (the "Polite" policy: mean ∝ retry count).
    pub backoff_base: u64,
    /// Cost of an inactive ALP: "a test and a non-taken branch".
    pub alp_inactive_cost: u64,
    /// Extra per-ALP cost of maintaining the software conflicting-PC map.
    pub sw_alp_overhead: u64,
    /// Maximum advisory locks one transaction may hold. The paper fixes
    /// this at 1 ("we acquire only one per transaction in this paper");
    /// higher values enable the multi-lock extension: the first lock is
    /// acquired blocking, later ones with a non-blocking try (so two
    /// multi-lock transactions can never deadlock on each other).
    pub max_locks_per_txn: usize,
}

impl RuntimeConfig {
    /// Serialize every knob except `mode` (experiment specs carry the mode
    /// as a top-level field) as canonical `(key, value)` pairs, in a fixed
    /// order. The inverse of [`Self::set_kv`]; specs embed these under a
    /// `runtime.` prefix.
    pub fn to_kv(&self) -> Vec<(&'static str, String)> {
        vec![
            ("pc_thr", self.policy.pc_thr.to_string()),
            ("addr_thr", self.policy.addr_thr.to_string()),
            ("prom_thr", self.policy.prom_thr.to_string()),
            ("history_len", self.history_len.to_string()),
            ("max_retries", self.max_retries.to_string()),
            ("n_locks", self.n_locks.to_string()),
            ("lock_timeout", self.lock_timeout.to_string()),
            ("min_conflict_rate", format!("{}", self.min_conflict_rate)),
            ("lock_spin", self.lock_spin.to_string()),
            ("backoff_base", self.backoff_base.to_string()),
            ("alp_inactive_cost", self.alp_inactive_cost.to_string()),
            ("sw_alp_overhead", self.sw_alp_overhead.to_string()),
            ("max_locks_per_txn", self.max_locks_per_txn.to_string()),
        ]
    }

    /// Set one knob by its canonical key. Returns a descriptive error for
    /// an unknown key or an unparsable value.
    pub fn set_kv(&mut self, key: &str, value: &str) -> Result<(), String> {
        fn num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
            value
                .parse()
                .map_err(|_| format!("runtime.{key}: invalid value '{value}'"))
        }
        match key {
            "pc_thr" => self.policy.pc_thr = num(key, value)?,
            "addr_thr" => self.policy.addr_thr = num(key, value)?,
            "prom_thr" => self.policy.prom_thr = num(key, value)?,
            "history_len" => self.history_len = num(key, value)?,
            "max_retries" => self.max_retries = num(key, value)?,
            "n_locks" => self.n_locks = num(key, value)?,
            "lock_timeout" => self.lock_timeout = num(key, value)?,
            "min_conflict_rate" => self.min_conflict_rate = num(key, value)?,
            "lock_spin" => self.lock_spin = num(key, value)?,
            "backoff_base" => self.backoff_base = num(key, value)?,
            "alp_inactive_cost" => self.alp_inactive_cost = num(key, value)?,
            "sw_alp_overhead" => self.sw_alp_overhead = num(key, value)?,
            "max_locks_per_txn" => self.max_locks_per_txn = num(key, value)?,
            // `interp` is intentionally not settable here: it cannot change
            // simulated results, so it is not part of the experiment spec
            // (accepting it would silently fork run keys).
            other => return Err(format!("runtime.{other}: unknown key")),
        }
        Ok(())
    }

    pub fn with_mode(mode: Mode) -> RuntimeConfig {
        RuntimeConfig {
            mode,
            interp: Interp::default(),
            policy: PolicyConfig::default(),
            history_len: 8,
            max_retries: 10,
            n_locks: 1024,
            lock_timeout: 200_000,
            min_conflict_rate: 1.0,
            lock_spin: 30,
            backoff_base: 25,
            alp_inactive_cost: 1,
            sw_alp_overhead: 12,
            max_locks_per_txn: 1,
        }
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig::with_mode(Mode::Staggered)
    }
}

/// Machine-wide runtime structures shared (by value — all are handles to
/// simulated memory) across all thread runtimes.
#[derive(Debug, Clone, Copy)]
pub struct SharedRt {
    pub locks: LockTable,
    pub global: GlobalLock,
    /// Exhausted-retry fallback policy, captured from the machine
    /// configuration at creation (it is a hardware-level property: the safe
    /// lazy-subscription variant needs commit-time validation support in
    /// the simulated HTM).
    pub fallback: FallbackPolicy,
    /// Per-line ownership stripes for the hybrid-TM software fallback.
    /// Allocated only under [`FallbackPolicy::HybridStm`]: an unconditional
    /// allocation would shift every later simulated address and perturb
    /// seeded default-policy results.
    pub hybrid: Option<LockTable>,
}

impl SharedRt {
    pub fn new(machine: &Machine, cfg: &RuntimeConfig) -> SharedRt {
        let fallback = machine.config().fallback;
        let locks = LockTable::new(machine, cfg.n_locks);
        let global = GlobalLock::new(machine);
        let hybrid =
            (fallback == FallbackPolicy::HybridStm).then(|| LockTable::new(machine, cfg.n_locks));
        if fallback == FallbackPolicy::LazySubscriptionSafe {
            // Tell the simulated hardware which word commits must validate.
            machine.register_commit_lock(global.addr());
        }
        SharedRt {
            locks,
            global,
            fallback,
            hybrid,
        }
    }
}

/// Runtime counters per thread — aggregated for Table 3 accuracy and
/// policy diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RtStats {
    /// Histogram of conflicting (line) addresses over contention aborts —
    /// drives the paper's Table 1 "LA" locality classification.
    pub addr_hist: FxHashMap<u64, u64>,
    /// Histogram of true first-access PCs over contention aborts — drives
    /// the Table 1 "LP" classification.
    pub pc_hist: FxHashMap<u64, u64>,
    /// Contention aborts processed by the policy.
    pub contention_aborts: u64,
    /// Of those, aborts where an anchor was identified at all.
    pub anchor_identified: u64,
    /// Of those, aborts where the identified anchor matches ground truth
    /// (the anchor of the true first access to the contended line).
    pub anchor_correct: u64,
    pub locks_acquired: u64,
    pub lock_timeouts: u64,
    /// Activation outcomes.
    pub act_precise: u64,
    pub act_coarse: u64,
    pub act_training: u64,
    /// Dynamic count of executed ALPoints.
    pub alps_executed: u64,
    /// Which lock words were acquired (diagnostics).
    pub lock_word_hist: FxHashMap<u64, u64>,
    /// Which anchors were activated (diagnostics).
    pub anchor_hist: FxHashMap<u32, u64>,
}

impl RtStats {
    pub fn add(&mut self, o: &RtStats) {
        for (&k, &v) in &o.addr_hist {
            *self.addr_hist.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &o.pc_hist {
            *self.pc_hist.entry(k).or_insert(0) += v;
        }
        self.contention_aborts += o.contention_aborts;
        self.anchor_identified += o.anchor_identified;
        self.anchor_correct += o.anchor_correct;
        self.locks_acquired += o.locks_acquired;
        self.lock_timeouts += o.lock_timeouts;
        self.act_precise += o.act_precise;
        self.act_coarse += o.act_coarse;
        self.act_training += o.act_training;
        self.alps_executed += o.alps_executed;
        for (&k, &v) in &o.lock_word_hist {
            *self.lock_word_hist.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &o.anchor_hist {
            *self.anchor_hist.entry(k).or_insert(0) += v;
        }
    }

    /// Table 3 "Accuracy": fraction of contention aborts whose anchor was
    /// correctly identified.
    pub fn accuracy(&self) -> f64 {
        if self.contention_aborts == 0 {
            1.0
        } else {
            self.anchor_correct as f64 / self.contention_aborts as f64
        }
    }

    /// Share of aborts attributable to the single most frequent conflicting
    /// address (Table 1's "LA": Y when a common datum dominates).
    pub fn addr_locality(&self) -> f64 {
        Self::top_share(&self.addr_hist)
    }

    /// Share of aborts attributable to the single most frequent
    /// first-access PC (Table 1's "LP").
    pub fn pc_locality(&self) -> f64 {
        Self::top_share(&self.pc_hist)
    }

    fn top_share(h: &FxHashMap<u64, u64>) -> f64 {
        let total: u64 = h.values().sum();
        if total == 0 {
            return 0.0;
        }
        *h.values().max().unwrap() as f64 / total as f64
    }
}

/// All Staggered Transactions state of one simulated thread.
pub struct ThreadRuntime<'c> {
    pub cfg: RuntimeConfig,
    compiled: &'c Compiled,
    shared: SharedRt,
    ctxs: FxHashMap<u32, ABContext>,
    held_locks: Vec<Addr>,
    /// Software conflicting-PC map (Section 4): line → anchor id, set at
    /// each executed ALP if absent.
    sw_map: FxHashMap<u64, u32>,
    /// Deterministic backoff jitter state.
    rng: u64,
    pub stats: RtStats,
}

impl<'c> ThreadRuntime<'c> {
    pub fn new(cfg: RuntimeConfig, compiled: &'c Compiled, shared: SharedRt, tid: usize) -> Self {
        ThreadRuntime {
            cfg,
            compiled,
            shared,
            ctxs: FxHashMap::default(),
            held_locks: Vec::new(),
            sw_map: FxHashMap::default(),
            rng: 0x9E37_79B9 ^ ((tid as u64 + 1) << 32) | 1,
            stats: RtStats::default(),
        }
    }

    pub fn shared(&self) -> SharedRt {
        self.shared
    }

    pub fn compiled(&self) -> &'c Compiled {
        self.compiled
    }

    fn ctx_mut(&mut self, ab_id: u32) -> &mut ABContext {
        let hl = self.cfg.history_len;
        self.ctxs
            .entry(ab_id)
            .or_insert_with(|| ABContext::new(ab_id, hl))
    }

    /// Peek at an atomic block's context (tests/diagnostics).
    pub fn ctx(&self, ab_id: u32) -> Option<&ABContext> {
        self.ctxs.get(&ab_id)
    }

    fn next_rand(&mut self, bound: u64) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) % bound.max(1)
    }

    /// Called right after `tx_begin`: restores the instance activation and
    /// performs the AddrOnly block-start acquisition if configured.
    pub async fn txn_start(&mut self, core: &mut Core<'_>, ab_id: u32) {
        if self.cfg.mode == Mode::Htm {
            return;
        }
        let addr_only = self.cfg.mode == Mode::AddrOnly;
        let dormant_below = self.cfg.min_conflict_rate * 0.7;
        let ctx = self.ctx_mut(ab_id);
        ctx.begin_instance();
        // Decision (1), applied continuously: once the block's recent
        // contention-abort frequency drops (because the lock eliminated the
        // conflicts and commits accumulated), the learned activation goes
        // *dormant* — the pattern knowledge is kept but no lock is taken.
        // If contention returns, new aborts raise the rate and the
        // activation resumes. The /2 provides hysteresis.
        if ctx.active_anchor != 0 && ctx.conflict_rate() < dormant_below {
            ctx.active_anchor = 0;
            return;
        }
        let _ = &dormant_below;
        if addr_only {
            if let Activation::Precise {
                anchor: BLOCK_START_ANCHOR,
                addr,
            } = ctx.activation
            {
                ctx.active_anchor = 0;
                self.acquire_lock_for(core, addr).await;
            }
        }
    }

    /// The ALPoint instrumentation function (paper Figure 5), invoked by
    /// the interpreter at each `AlPoint` instruction with the data address
    /// of the following access. `in_txn` is false when the containing
    /// function is called outside any transaction (the ALP is inert then).
    pub async fn alpoint(
        &mut self,
        core: &mut Core<'_>,
        ab_id: u32,
        anchor: u32,
        addr: Addr,
        in_txn: bool,
    ) {
        // Baseline: the paper's HTM bars run the *uninstrumented* binary,
        // so ALPs cost nothing at all.
        if self.cfg.mode == Mode::Htm {
            return;
        }
        self.stats.alps_executed += 1;
        core.compute(self.cfg.alp_inactive_cost);
        if !in_txn {
            return;
        }
        if self.cfg.mode == Mode::StaggeredSw {
            core.compute(self.cfg.sw_alp_overhead);
            self.sw_map.entry(line_of(addr)).or_insert(anchor);
        }
        if self.cfg.mode == Mode::AddrOnly {
            return; // only the block-start ALP acts in this mode
        }
        let ctx = self.ctx_mut(ab_id);
        if ctx.active_anchor == anchor && ctx.address_matches(addr) {
            self.acquire_lock_for(core, addr).await;
            // With the paper's configuration (max_locks_per_txn = 1) the
            // anchor is consumed after the first acquisition; the
            // multi-lock extension keeps it active until the budget is
            // exhausted.
            if self.held_locks.len() >= self.cfg.max_locks_per_txn {
                self.ctx_mut(ab_id).active_anchor = 0;
            }
        }
    }

    async fn acquire_lock_for(&mut self, core: &mut Core<'_>, addr: Addr) {
        if self.held_locks.len() >= self.cfg.max_locks_per_txn {
            return;
        }
        let word = self.shared.locks.lock_addr_for(addr);
        if self.held_locks.contains(&word) {
            return; // already ours (hash collision with an earlier address)
        }
        let got = if self.held_locks.is_empty() {
            // First lock: blocking acquire with timeout.
            self.shared
                .locks
                .acquire(core, addr, self.cfg.lock_timeout, self.cfg.lock_spin)
                .await
        } else {
            // Additional locks: non-blocking only — two transactions each
            // holding one lock and trying for the other's can then never
            // deadlock; the loser simply proceeds unprotected (advisory
            // semantics make that safe).
            self.shared.locks.try_acquire(core, addr).await
        };
        match got {
            Some(w) => {
                self.held_locks.push(w);
                self.stats.locks_acquired += 1;
                *self.stats.lock_word_hist.entry(w).or_insert(0) += 1;
            }
            None => self.stats.lock_timeouts += 1,
        }
    }

    /// Release all held advisory locks — on commit *and* on abort (paper
    /// Section 5.1). Returns `Some(contended)` if any lock was held, where
    /// `contended` is true when any of them saw waiters.
    pub async fn release_lock(&mut self, core: &mut Core<'_>) -> Option<bool> {
        if self.held_locks.is_empty() {
            return None;
        }
        let mut contended = false;
        // Release in reverse acquisition order.
        while let Some(w) = self.held_locks.pop() {
            contended |= self.shared.locks.release(core, w).await;
        }
        Some(contended)
    }

    /// Whether an advisory lock is currently held.
    pub fn holds_lock(&self) -> bool {
        !self.held_locks.is_empty()
    }

    /// Attribute a contention abort to an anchor, per mode. Returns
    /// `(anchor_id, anchor_pc)`, 0s when unattributed.
    fn attribute(&self, ab_id: u32, info: &AbortInfo) -> (u32, u64) {
        let table = self.compiled.table(ab_id);
        match self.cfg.mode {
            Mode::Htm | Mode::AddrOnly => (0, 0),
            Mode::Staggered => match table.search_by_pc_tag(info.conf_pc_tag) {
                Some(e) => {
                    let pc = table.anchor_entry(e.anchor_id).map_or(0, |a| a.pc);
                    (e.anchor_id, pc)
                }
                None => (0, 0),
            },
            Mode::StaggeredSw => match self.sw_map.get(&line_of(info.conf_addr)) {
                Some(&id) => (id, self.compiled.anchor(id).pc),
                None => (0, 0),
            },
        }
    }

    /// Ground-truth anchor for an abort: the anchor of the instruction that
    /// truly first accessed the contended line (full PC, non-architectural).
    fn ground_truth(&self, ab_id: u32, info: &AbortInfo) -> Option<u32> {
        self.compiled
            .table(ab_id)
            .search_by_pc(info.true_first_pc)
            .map(|e| e.anchor_id)
    }

    /// Handle a contention abort: release the lock, attribute, measure
    /// accuracy, and run the Figure 6 policy. `retries` is the attempt
    /// number within the current logical transaction.
    pub async fn on_conflict_abort(
        &mut self,
        core: &mut Core<'_>,
        ab_id: u32,
        info: &AbortInfo,
        retries: u32,
    ) {
        self.release_lock(core).await;
        // Locality histograms are recorded in every mode (offline analysis
        // for Table 1, independent of the policy).
        *self.stats.addr_hist.entry(info.conf_addr).or_insert(0) += 1;
        *self.stats.pc_hist.entry(info.true_first_pc).or_insert(0) += 1;
        if self.cfg.mode == Mode::Htm {
            return;
        }
        self.stats.contention_aborts += 1;
        let min_rate = self.cfg.min_conflict_rate;
        {
            let ctx = self.ctx_mut(ab_id);
            ctx.record_abort();
        }
        // Decision (1): only a block whose recent contention-abort
        // frequency is high enough may lock at all.
        let gated_off = self.ctx_mut(ab_id).conflict_rate() < min_rate;

        if self.cfg.mode == Mode::AddrOnly {
            // Simplified scheme: one fixed block-start ALP, precise mode
            // only, keyed purely on address recurrence.
            let addr = info.conf_addr;
            let addr_thr = self.cfg.policy.addr_thr;
            let ctx = self.ctx_mut(ab_id);
            let recurrent = !gated_off && ctx.history.count_addr(addr) > addr_thr;
            ctx.activation = if recurrent {
                Activation::Precise {
                    anchor: BLOCK_START_ANCHOR,
                    addr,
                }
            } else {
                Activation::Training
            };
            ctx.history.append(1, addr);
            let act = ctx.activation;
            match act {
                Activation::Precise { .. } => self.stats.act_precise += 1,
                _ => self.stats.act_training += 1,
            }
            return;
        }

        let (anchor_id, anchor_pc) = self.attribute(ab_id, info);
        if anchor_id != 0 {
            self.stats.anchor_identified += 1;
        }
        if let Some(truth) = self.ground_truth(ab_id, info) {
            if anchor_id == truth {
                self.stats.anchor_correct += 1;
            }
        }

        let table = self.compiled.table(ab_id);
        let policy = self.cfg.policy.clone();
        let hl = self.cfg.history_len;
        let ctx = self
            .ctxs
            .entry(ab_id)
            .or_insert_with(|| ABContext::new(ab_id, hl));
        activate_alpoint(
            &policy,
            table,
            ctx,
            anchor_id,
            anchor_pc,
            info.conf_addr,
            retries,
        );
        if gated_off {
            // Decision (1) vetoes: the block's recent conflict frequency is
            // too low to justify serialization. History keeps learning.
            ctx.activation = Activation::Training;
        }
        match ctx.activation {
            Activation::Precise { .. } => self.stats.act_precise += 1,
            Activation::Coarse { .. } => self.stats.act_coarse += 1,
            Activation::Training => self.stats.act_training += 1,
        }
        let act_anchor = ctx.activation.anchor();
        if act_anchor != 0 {
            *self.stats.anchor_hist.entry(act_anchor).or_insert(0) += 1;
        }
    }

    /// Handle a capacity/explicit abort (no contention evidence): just drop
    /// the lock.
    pub async fn on_other_abort(&mut self, core: &mut Core<'_>) {
        self.release_lock(core).await;
    }

    /// Handle a successful commit after `retries` failed attempts. An
    /// uncontended first-try commit while holding an advisory lock appends
    /// an empty history record, decaying stale contention evidence; once
    /// every record has decayed, the activation itself is dropped —
    /// "avoiding over-locking in the case of low contention" (Section 5.2).
    pub async fn on_commit(&mut self, core: &mut Core<'_>, ab_id: u32, retries: u32) {
        let released = self.release_lock(core).await;
        if self.cfg.mode == Mode::Htm {
            return;
        }
        self.ctx_mut(ab_id).record_commit();
        // "When a transaction commits while holding an advisory lock, but
        // there was no contention on that lock, an empty entry can be
        // appended" — a contended lock is doing useful serialization and
        // must not decay.
        if released == Some(false) && retries == 0 {
            let ctx = self.ctx_mut(ab_id);
            ctx.history.append_empty();
            if ctx.history.iter().all(|r| r.pc == 0 && r.addr == 0) {
                ctx.activation = Activation::Training;
            }
        }
    }

    /// Polite backoff before retry `retries` (mean spin proportional to the
    /// retry count, with deterministic jitter).
    pub async fn backoff(&mut self, core: &mut Core<'_>, retries: u32) {
        let mean = self.cfg.backoff_base * (retries as u64 + 1);
        let jitter = self.next_rand(mean.max(1));
        let cycles = mean / 2 + jitter;
        core.charge_backoff(cycles).await;
        core.note(htm_sim::obs::ObsKind::Backoff { cycles });
    }

    /// The irrevocable-fallback global lock.
    pub fn global_lock(&self) -> GlobalLock {
        self.shared.global
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::{body, MachineConfig};
    use stagger_compiler::compile;
    use tm_ir::{FuncBuilder, FuncKind, Module};

    fn compiled_simple() -> stagger_compiler::Compiled {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("tx", 1, FuncKind::Atomic { ab_id: 0 });
        let p = b.param(0);
        let v = b.load(p, 0); // anchor 1
        let v2 = b.addi(v, 1);
        b.store(v2, p, 0); // pioneer of anchor 1
        b.ret(None);
        m.add_function(b.finish());
        compile(&m)
    }

    #[test]
    fn htm_mode_alpoint_is_free() {
        let c = compiled_simple();
        let machine = Machine::new(MachineConfig::cores(1).small());
        let cfg = RuntimeConfig::with_mode(Mode::Htm);
        let shared = SharedRt::new(&machine, &cfg);
        machine.run(vec![body(move |mut core| async move {
            let mut rt = ThreadRuntime::new(cfg, &c, shared, core.tid());
            rt.alpoint(&mut core, 0, 1, 0x4000, true).await;
            assert_eq!(rt.stats.alps_executed, 0);
            assert_eq!(core.now(), 0, "no cost charged in baseline mode");
        })]);
    }

    #[test]
    fn inactive_alp_costs_test_and_branch() {
        let c = compiled_simple();
        let machine = Machine::new(MachineConfig::cores(1).small());
        let cfg = RuntimeConfig::with_mode(Mode::Staggered);
        let shared = SharedRt::new(&machine, &cfg);
        machine.run(vec![body(move |mut core| async move {
            let mut rt = ThreadRuntime::new(cfg.clone(), &c, shared, core.tid());
            rt.txn_start(&mut core, 0).await; // training: nothing active
            rt.alpoint(&mut core, 0, 1, 0x4000, true).await;
            assert_eq!(rt.stats.alps_executed, 1);
            assert_eq!(core.now(), cfg.alp_inactive_cost);
            assert!(!rt.holds_lock());
        })]);
    }

    #[test]
    fn active_alp_acquires_and_clears() {
        let c = compiled_simple();
        let machine = Machine::new(MachineConfig::cores(1).small());
        let cfg = RuntimeConfig::with_mode(Mode::Staggered);
        let shared = SharedRt::new(&machine, &cfg);
        machine.run(vec![body(move |mut core| async move {
            let mut rt = ThreadRuntime::new(cfg, &c, shared, core.tid());
            rt.ctx_mut(0).activation = Activation::Coarse { anchor: 1 };
            rt.ctx_mut(0).window_aborts = 8; // recently contended
            rt.txn_start(&mut core, 0).await;
            rt.alpoint(&mut core, 0, 1, 0x4000, true).await;
            assert!(rt.holds_lock());
            assert_eq!(rt.stats.locks_acquired, 1);
            // Second ALP in the same instance: anchor already consumed.
            rt.alpoint(&mut core, 0, 1, 0x4000, true).await;
            assert_eq!(rt.stats.locks_acquired, 1);
            rt.release_lock(&mut core).await;
            assert!(!rt.holds_lock());
        })]);
    }

    #[test]
    fn precise_mode_respects_address_match() {
        let c = compiled_simple();
        let machine = Machine::new(MachineConfig::cores(1).small());
        let cfg = RuntimeConfig::with_mode(Mode::Staggered);
        let shared = SharedRt::new(&machine, &cfg);
        machine.run(vec![body(move |mut core| async move {
            let mut rt = ThreadRuntime::new(cfg, &c, shared, core.tid());
            rt.ctx_mut(0).activation = Activation::Precise {
                anchor: 1,
                addr: 0x4000,
            };
            rt.ctx_mut(0).window_aborts = 8; // recently contended
            rt.txn_start(&mut core, 0).await;
            // Mismatched address: no lock, anchor stays active.
            rt.alpoint(&mut core, 0, 1, 0x9000, true).await;
            assert!(!rt.holds_lock());
            // Matching line: lock.
            rt.alpoint(&mut core, 0, 1, 0x4038, true).await;
            assert!(rt.holds_lock());
            rt.release_lock(&mut core).await;
        })]);
    }

    #[test]
    fn sw_mode_maintains_map_and_attributes() {
        let c = compiled_simple();
        let machine = Machine::new(MachineConfig::cores(1).small());
        let cfg = RuntimeConfig::with_mode(Mode::StaggeredSw);
        let shared = SharedRt::new(&machine, &cfg);
        machine.run(vec![body(move |mut core| async move {
            let mut rt = ThreadRuntime::new(cfg, &c, shared, core.tid());
            rt.txn_start(&mut core, 0).await;
            rt.alpoint(&mut core, 0, 1, 0x4000, true).await;
            // The map knows line 0x4000 -> anchor 1; a conflict there is
            // attributed without any PC.
            let info = AbortInfo {
                cause: htm_sim::AbortCause::Conflict,
                conf_addr: 0x4000,
                conf_pc_tag: 0,
                true_first_pc: 0,
            };
            let (id, pc) = rt.attribute(0, &info);
            assert_eq!(id, 1);
            assert_eq!(pc, rt.compiled().anchor(1).pc);
            // Unknown line: unattributed.
            let miss = AbortInfo {
                conf_addr: 0xF000,
                ..info
            };
            assert_eq!(rt.attribute(0, &miss), (0, 0));
        })]);
    }

    #[test]
    fn staggered_mode_attributes_via_pc_tag() {
        let c = compiled_simple();
        let t = c.table(0);
        let anchor_entry = t.entries.iter().find(|e| e.is_anchor).unwrap();
        let tag = tm_ir::CodeLayout::truncate_pc(anchor_entry.pc);
        let expected = anchor_entry.anchor_id;
        let machine = Machine::new(MachineConfig::cores(1).small());
        let cfg = RuntimeConfig::with_mode(Mode::Staggered);
        let shared = SharedRt::new(&machine, &cfg);
        machine.run(vec![body(move |core| async move {
            let rt = ThreadRuntime::new(cfg, &c, shared, core.tid());
            let info = AbortInfo {
                cause: htm_sim::AbortCause::Conflict,
                conf_addr: 0x4000,
                conf_pc_tag: tag,
                true_first_pc: 0,
            };
            let (id, _) = rt.attribute(0, &info);
            assert_eq!(id, expected);
        })]);
    }

    #[test]
    fn addr_only_learns_block_start_lock() {
        let c = compiled_simple();
        let machine = Machine::new(MachineConfig::cores(1).small());
        let cfg = RuntimeConfig::with_mode(Mode::AddrOnly);
        let shared = SharedRt::new(&machine, &cfg);
        machine.run(vec![body(move |mut core| async move {
            let mut rt = ThreadRuntime::new(cfg, &c, shared, core.tid());
            let info = AbortInfo {
                cause: htm_sim::AbortCause::Conflict,
                conf_addr: 0x4000,
                conf_pc_tag: 0,
                true_first_pc: 0,
            };
            for _ in 0..7 {
                rt.on_conflict_abort(&mut core, 0, &info, 0).await;
            }
            assert_eq!(
                rt.ctx(0).unwrap().activation,
                Activation::Precise {
                    anchor: BLOCK_START_ANCHOR,
                    addr: 0x4000
                }
            );
            // Next instance locks at block start.
            rt.txn_start(&mut core, 0).await;
            assert!(rt.holds_lock());
            rt.release_lock(&mut core).await;
        })]);
    }

    #[test]
    fn commit_on_first_try_with_lock_appends_empty() {
        let c = compiled_simple();
        let machine = Machine::new(MachineConfig::cores(1).small());
        let cfg = RuntimeConfig::with_mode(Mode::Staggered);
        let shared = SharedRt::new(&machine, &cfg);
        machine.run(vec![body(move |mut core| async move {
            let mut rt = ThreadRuntime::new(cfg, &c, shared, core.tid());
            rt.ctx_mut(0).activation = Activation::Coarse { anchor: 1 };
            rt.ctx_mut(0).history.append(0x500, 0x4000);
            rt.ctx_mut(0).window_aborts = 8; // recently contended
            rt.txn_start(&mut core, 0).await;
            rt.alpoint(&mut core, 0, 1, 0x4000, true).await;
            assert!(rt.holds_lock());
            rt.on_commit(&mut core, 0, 0).await;
            assert!(!rt.holds_lock());
            let h = &rt.ctx(0).unwrap().history;
            assert_eq!(h.len(), 2, "empty record appended");
            assert_eq!(h.count_addr(0x4000), 1);
        })]);
    }

    #[test]
    fn multi_lock_extension_acquires_up_to_budget() {
        let c = compiled_simple();
        let machine = Machine::new(MachineConfig::cores(1).small());
        let mut cfg = RuntimeConfig::with_mode(Mode::Staggered);
        cfg.max_locks_per_txn = 2;
        let shared = SharedRt::new(&machine, &cfg);
        machine.run(vec![body(move |mut core| async move {
            let mut rt = ThreadRuntime::new(cfg, &c, shared, core.tid());
            rt.ctx_mut(0).activation = Activation::Coarse { anchor: 1 };
            rt.ctx_mut(0).window_aborts = 8;
            rt.txn_start(&mut core, 0).await;
            // Two different lines -> two locks.
            rt.alpoint(&mut core, 0, 1, 0x4000, true).await;
            assert_eq!(rt.stats.locks_acquired, 1);
            assert_ne!(rt.ctx(0).unwrap().active_anchor, 0, "budget not spent");
            rt.alpoint(&mut core, 0, 1, 0x9000, true).await;
            assert_eq!(rt.stats.locks_acquired, 2);
            assert_eq!(rt.ctx(0).unwrap().active_anchor, 0, "budget spent");
            // A third attempt does nothing.
            rt.alpoint(&mut core, 0, 1, 0xC000, true).await;
            assert_eq!(rt.stats.locks_acquired, 2);
            // Release drops both.
            assert!(rt.holds_lock());
            rt.release_lock(&mut core).await;
            assert!(!rt.holds_lock());
        })]);
    }

    #[test]
    fn multi_lock_second_acquire_is_try_only() {
        // A lock held by thread 0 must not block thread 1's *second*
        // acquisition — it just proceeds without it (deadlock freedom).
        let c = compiled_simple();
        let machine = Machine::new(MachineConfig::cores(2).small());
        let mut cfg = RuntimeConfig::with_mode(Mode::Staggered);
        cfg.max_locks_per_txn = 2;
        let shared = SharedRt::new(&machine, &cfg);
        let flag = machine.host_alloc(8, true);
        let c2 = c.clone();
        let cfg2 = cfg.clone();
        machine.run(vec![
            body(move |mut core| async move {
                let mut rt = ThreadRuntime::new(cfg, &c, shared, core.tid());
                rt.ctx_mut(0).activation = Activation::Coarse { anchor: 1 };
                rt.ctx_mut(0).window_aborts = 8;
                rt.txn_start(&mut core, 0).await;
                rt.alpoint(&mut core, 0, 1, 0x4000, true).await; // grab lock A
                core.nt_store(flag, 1).await;
                core.compute(400_000); // hold it for a long time
                rt.release_lock(&mut core).await;
            }),
            body(move |mut core| async move {
                let mut rt = ThreadRuntime::new(cfg2, &c2, shared, core.tid());
                while core.nt_load(flag).await == 0 {
                    core.compute(50);
                }
                rt.ctx_mut(0).activation = Activation::Coarse { anchor: 1 };
                rt.ctx_mut(0).window_aborts = 8;
                rt.txn_start(&mut core, 0).await;
                rt.alpoint(&mut core, 0, 1, 0x9000, true).await; // lock B: blocking, free
                assert_eq!(rt.stats.locks_acquired, 1);
                let before = core.now();
                rt.alpoint(&mut core, 0, 1, 0x4000, true).await; // lock A held: try-only
                assert_eq!(rt.stats.locks_acquired, 1, "must not block");
                assert_eq!(rt.stats.lock_timeouts, 1);
                assert!(core.now() - before < 1_000, "try must be instant");
                rt.release_lock(&mut core).await;
            }),
        ]);
    }

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let c = compiled_simple();
        let machine = Machine::new(MachineConfig::cores(1).small());
        let cfg = RuntimeConfig::with_mode(Mode::Staggered);
        let shared = SharedRt::new(&machine, &cfg);
        machine.run(vec![body(move |mut core| async move {
            let mut rt = ThreadRuntime::new(cfg, &c, shared, core.tid());
            let t0 = core.now();
            rt.backoff(&mut core, 0).await;
            let d1 = core.now() - t0;
            let t1 = core.now();
            for _ in 0..5 {
                rt.backoff(&mut core, 9).await;
            }
            let d2 = (core.now() - t1) / 5;
            assert!(d2 > d1, "backoff mean grows with retries");
        })]);
        let agg = machine.stats().aggregate();
        assert!(agg.backoff_cycles > 0);
    }

    #[test]
    fn mode_names_parse_back() {
        for m in Mode::ALL {
            assert_eq!(Mode::parse(m.name()), Some(m));
            assert_eq!(Mode::parse(&m.name().to_lowercase()), Some(m));
        }
        assert_eq!(Mode::parse("staggeredsw"), Some(Mode::StaggeredSw));
        assert_eq!(Mode::parse("nonsense"), None);
    }

    #[test]
    fn runtime_kv_round_trips_every_key() {
        let mut c = RuntimeConfig::with_mode(Mode::Staggered);
        c.lock_timeout = 777;
        c.backoff_base = 3;
        c.min_conflict_rate = 0.25;
        c.policy.prom_thr = 9;
        let mut d = RuntimeConfig::with_mode(Mode::Staggered);
        for (k, v) in c.to_kv() {
            d.set_kv(k, &v).unwrap();
        }
        assert_eq!(c.to_kv(), d.to_kv());
    }

    #[test]
    fn runtime_kv_rejects_unknown_and_bad_values() {
        let mut c = RuntimeConfig::default();
        assert!(c.set_kv("mode", "HTM").is_err(), "mode is a top-level key");
        assert!(
            c.set_kv("interp", "legacy").is_err(),
            "interp is host-only and must not enter run keys"
        );
        assert!(c.set_kv("lock_timeout", "soon").is_err());
    }

    #[test]
    fn interp_names_round_trip() {
        for i in Interp::ALL {
            assert_eq!(Interp::parse(i.name()), Some(i));
        }
        assert_eq!(Interp::parse("ByteCode"), Some(Interp::Bytecode));
        assert_eq!(Interp::parse("tree-walk"), None);
        assert_eq!(Interp::default(), Interp::Bytecode);
    }
}
