//! # stagger-core — the Staggered Transactions runtime
//!
//! The paper's primary contribution (Sections 2 and 5): a software runtime
//! that serializes only the conflict-prone *portions* of hardware
//! transactions by acquiring **advisory locks** — optional, purely
//! performance-oriented locks built from nontransactional loads and stores —
//! at compiler-inserted **advisory locking points** (ALPs).
//!
//! Main pieces:
//!
//! * [`locks`] — a static, pre-allocated table of advisory lock words in
//!   simulated memory (one per cache line so they never false-share), hashed
//!   by data address, acquired with NT CAS, with a spin timeout after which
//!   the transaction simply proceeds without the lock (Section 2's liveness
//!   escape).
//! * [`history`] — the per-thread, per-atomic-block ring of the eight most
//!   recent abort records `(anchor PC, conflicting address)`.
//! * [`context`] — `ABContext` (paper Figure 4): the currently active
//!   anchor, the expected conflicting address (`0` = coarse-grain wild
//!   card), abort history, and a handle to the block's unified anchor table.
//! * [`policy`] — `ActivateALPoint` (paper Figure 6): precise mode,
//!   coarse-grain mode, locking promotion to the parent anchor, and
//!   training mode, driven by PC/address recurrence counts.
//! * [`runtime`] — [`ThreadRuntime`]: everything one simulated thread needs
//!   (per-block contexts, the ALPoint fast path, the software
//!   conflicting-PC map of Section 4, accuracy ground-truthing for Table 3)
//!   plus the global-lock protocol for irrevocable fallback.
//!
//! Execution-mode selection (baseline HTM / AddrOnly / Staggered+SW /
//! Staggered) lives in [`runtime::Mode`]; the transaction retry driver that
//! invokes all of this is in the `tm-interp` crate.

pub mod context;
pub mod history;
pub mod locks;
pub mod policy;
pub mod runtime;

pub use context::{ABContext, Activation};
pub use history::AbortHistory;
pub use htm_sim::obs;
pub use locks::{GlobalLock, LockTable};
pub use policy::{activate_alpoint, PolicyConfig};
pub use runtime::{Interp, Mode, RtStats, RuntimeConfig, SharedRt, ThreadRuntime};
