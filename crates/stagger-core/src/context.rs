//! `ABContext` — per-thread, per-atomic-block runtime state (paper
//! Figure 4).

use crate::history::AbortHistory;
use htm_sim::line_addr;

/// The persistent ALP-activation decision for an atomic block, produced by
/// the locking policy and consumed at the start of every transaction
/// instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// No pattern learned yet — keep gathering statistics (case 4).
    #[default]
    Training,
    /// Precise mode (case 1): lock only when the ALP's current data address
    /// falls in the same cache line as `addr`.
    Precise { anchor: u32, addr: u64 },
    /// Coarse-grain mode (cases 2–3): lock whatever address the ALP sees
    /// ("wild card"); after promotion, `anchor` is the parent anchor.
    Coarse { anchor: u32 },
}

impl Activation {
    /// The activated anchor id (0 when training).
    pub fn anchor(&self) -> u32 {
        match *self {
            Activation::Training => 0,
            Activation::Precise { anchor, .. } | Activation::Coarse { anchor } => anchor,
        }
    }

    /// The `blockAddress` field of Figure 4: expected conflicting address,
    /// 0 meaning "any" (coarse-grain).
    pub fn block_address(&self) -> u64 {
        match *self {
            Activation::Precise { addr, .. } => addr,
            _ => 0,
        }
    }
}

/// Per-thread, per-atomic-block context (paper Figure 4's `ABContext`).
#[derive(Debug, Clone)]
pub struct ABContext {
    pub ab_id: u32,
    /// The policy's current, persistent decision.
    pub activation: Activation,
    /// Working copy for the current transaction instance: cleared after a
    /// lock is acquired so at most one advisory lock is taken per
    /// transaction, restored from `activation` at the next `tx_begin`.
    pub active_anchor: u32,
    /// Expected conflicting address for the current instance (0 = any).
    pub block_address: u64,
    pub history: AbortHistory,
    /// Decaying window counters behind the paper's decision (1): "based on
    /// the frequency of contention aborts, a software locking policy
    /// \[decides\] whether the runtime should acquire an advisory lock".
    pub window_commits: u64,
    pub window_aborts: u64,
}

impl ABContext {
    pub fn new(ab_id: u32, history_len: usize) -> ABContext {
        ABContext {
            ab_id,
            activation: Activation::Training,
            active_anchor: 0,
            block_address: 0,
            history: AbortHistory::new(history_len),
            window_commits: 0,
            window_aborts: 0,
        }
    }

    /// Record a committed transaction in the frequency window, halving both
    /// counters periodically so the estimate tracks recent behaviour.
    pub fn record_commit(&mut self) {
        self.window_commits += 1;
        if self.window_commits + self.window_aborts >= 256 {
            self.window_commits /= 2;
            self.window_aborts /= 2;
        }
    }

    /// Record a contention abort in the frequency window.
    pub fn record_abort(&mut self) {
        self.window_aborts += 1;
    }

    /// Recent contention-abort frequency: aborts per completed transaction.
    /// Reports 0 until at least six aborts have been observed, so a
    /// cold-start burst of collisions cannot activate locking by itself.
    pub fn conflict_rate(&self) -> f64 {
        if self.window_aborts < 6 {
            return 0.0;
        }
        if self.window_commits == 0 {
            // Many aborts, no commits: maximally contended.
            return f64::INFINITY;
        }
        self.window_aborts as f64 / self.window_commits as f64
    }

    /// Restore the per-instance fields from the persistent activation —
    /// "the activeAnchor field is restored the next time the thread begins
    /// a transaction for the same atomic block" (Section 5.1).
    pub fn begin_instance(&mut self) {
        self.active_anchor = self.activation.anchor();
        self.block_address = self.activation.block_address();
    }

    /// The `IsAddressMatched` disjunction of Figure 5: coarse-grain
    /// (`blockAddress == 0`) matches anything; precise mode compares cache
    /// lines.
    pub fn address_matches(&self, addr: u64) -> bool {
        self.block_address == 0 || line_addr(self.block_address) == line_addr(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_instance_restores_activation() {
        let mut c = ABContext::new(3, 8);
        c.activation = Activation::Precise {
            anchor: 7,
            addr: 0x1040,
        };
        c.begin_instance();
        assert_eq!(c.active_anchor, 7);
        assert_eq!(c.block_address, 0x1040);

        // Simulate the ALP consuming the anchor.
        c.active_anchor = 0;
        c.begin_instance();
        assert_eq!(c.active_anchor, 7, "restored for the next instance");
    }

    #[test]
    fn training_means_inactive() {
        let mut c = ABContext::new(0, 8);
        c.begin_instance();
        assert_eq!(c.active_anchor, 0);
        assert_eq!(c.block_address, 0);
    }

    #[test]
    fn coarse_matches_any_address() {
        let mut c = ABContext::new(0, 8);
        c.activation = Activation::Coarse { anchor: 4 };
        c.begin_instance();
        assert!(c.address_matches(0xdead_b000));
        assert!(c.address_matches(0x40));
    }

    #[test]
    fn precise_matches_at_line_granularity() {
        let mut c = ABContext::new(0, 8);
        c.activation = Activation::Precise {
            anchor: 4,
            addr: 0x1040,
        };
        c.begin_instance();
        assert!(c.address_matches(0x1040));
        assert!(c.address_matches(0x1078), "same 64-byte line");
        assert!(!c.address_matches(0x1080), "next line");
    }

    #[test]
    fn activation_accessors() {
        assert_eq!(Activation::Training.anchor(), 0);
        assert_eq!(
            Activation::Precise {
                anchor: 2,
                addr: 64
            }
            .block_address(),
            64
        );
        assert_eq!(Activation::Coarse { anchor: 9 }.block_address(), 0);
        assert_eq!(Activation::Coarse { anchor: 9 }.anchor(), 9);
    }
}
