//! Per-atomic-block abort history (paper Figure 4's `abtHistory`).
//!
//! A fixed-size ring of the most recent abort records, each pairing the
//! *anchor PC* the abort was attributed to with the conflicting data
//! address. The policy (Figure 6) asks two questions of it: how often has
//! this PC appeared recently (`CountPC`), and how often this address
//! (`CountAddr`)? An "empty" record can be appended after an uncontended
//! locked commit to age out stale contention evidence (Section 5.2).

/// One abort record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbortRecord {
    /// PC of the anchor attributed to the abort (0 = unattributed/empty).
    pub pc: u64,
    /// Conflicting data address, line-aligned (0 = empty record).
    pub addr: u64,
}

impl AbortRecord {
    pub const EMPTY: AbortRecord = AbortRecord { pc: 0, addr: 0 };
}

/// Ring buffer of recent abort records (paper: `NUM_HISTORY` = 8).
#[derive(Debug, Clone)]
pub struct AbortHistory {
    ring: Vec<AbortRecord>,
    next: usize,
    len: usize,
}

impl AbortHistory {
    pub fn new(capacity: usize) -> AbortHistory {
        assert!(capacity > 0);
        AbortHistory {
            ring: vec![AbortRecord::EMPTY; capacity],
            next: 0,
            len: 0,
        }
    }

    /// Append a record, displacing the oldest when full (the paper's
    /// `AppendToHistory`).
    pub fn append(&mut self, pc: u64, addr: u64) {
        self.ring[self.next] = AbortRecord { pc, addr };
        self.next = (self.next + 1) % self.ring.len();
        self.len = (self.len + 1).min(self.ring.len());
    }

    /// Append an empty record — ages out contention evidence after an
    /// uncontended locked commit, avoiding over-locking (Section 5.2).
    pub fn append_empty(&mut self) {
        self.append(0, 0);
    }

    /// How many live records carry address `addr` (the paper's `CountAddr`)?
    /// Empty records never match.
    pub fn count_addr(&self, addr: u64) -> u32 {
        if addr == 0 {
            return 0;
        }
        self.iter().filter(|r| r.addr == addr).count() as u32
    }

    /// How many live records carry PC `pc` (the paper's `CountPC`)?
    pub fn count_pc(&self, pc: u64) -> u32 {
        if pc == 0 {
            return 0;
        }
        self.iter().filter(|r| r.pc == pc).count() as u32
    }

    /// Live records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &AbortRecord> {
        let cap = self.ring.len();
        let start = (self.next + cap - self.len) % cap;
        (0..self.len).map(move |i| &self.ring[(start + i) % cap])
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn capacity(&self) -> usize {
        self.ring.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_count() {
        let mut h = AbortHistory::new(8);
        h.append(0x100, 0x40);
        h.append(0x100, 0x80);
        h.append(0x200, 0x40);
        assert_eq!(h.count_pc(0x100), 2);
        assert_eq!(h.count_pc(0x200), 1);
        assert_eq!(h.count_pc(0x300), 0);
        assert_eq!(h.count_addr(0x40), 2);
        assert_eq!(h.count_addr(0x80), 1);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn ring_displaces_oldest() {
        let mut h = AbortHistory::new(4);
        for i in 0..6u64 {
            h.append(0x100 + i, 0x40);
        }
        assert_eq!(h.len(), 4);
        // Oldest two (0x100, 0x101) displaced.
        assert_eq!(h.count_pc(0x100), 0);
        assert_eq!(h.count_pc(0x101), 0);
        assert_eq!(h.count_pc(0x105), 1);
        assert_eq!(h.count_addr(0x40), 4);
        let pcs: Vec<u64> = h.iter().map(|r| r.pc).collect();
        assert_eq!(pcs, vec![0x102, 0x103, 0x104, 0x105]);
    }

    #[test]
    fn empty_records_shift_out_evidence() {
        let mut h = AbortHistory::new(4);
        for _ in 0..4 {
            h.append(0x100, 0x40);
        }
        assert_eq!(h.count_addr(0x40), 4);
        h.append_empty();
        h.append_empty();
        assert_eq!(h.count_addr(0x40), 2);
        assert_eq!(h.count_pc(0x100), 2);
        // Empty records never count as matches even for zero queries.
        assert_eq!(h.count_pc(0), 0);
        assert_eq!(h.count_addr(0), 0);
    }

    #[test]
    fn iter_order_oldest_first() {
        let mut h = AbortHistory::new(3);
        h.append(1, 1);
        h.append(2, 2);
        let v: Vec<u64> = h.iter().map(|r| r.pc).collect();
        assert_eq!(v, vec![1, 2]);
        h.append(3, 3);
        h.append(4, 4); // displaces 1
        let v: Vec<u64> = h.iter().map(|r| r.pc).collect();
        assert_eq!(v, vec![2, 3, 4]);
    }
}
