//! Advisory lock table and the irrevocable-mode global lock.
//!
//! Both live in *simulated* memory, in dedicated cache lines that no
//! transaction ever touches speculatively, and are manipulated exclusively
//! with nontransactional loads/stores/CAS — the hardware capability the
//! paper requires (Section 4). Acquiring an advisory lock therefore never
//! grows a read/write set and never causes an abort by itself.

use htm_sim::obs::ObsKind;
use htm_sim::{line_of, Addr, Core, Machine, LINE_BYTES};

/// A static, pre-allocated array of advisory locks, chosen by hashing the
/// contended data address (paper Section 5.1, `AcquireLockFor`).
///
/// Each lock occupies its own cache line. The table is created once per
/// machine (host-side) and the handle is `Copy`, so every thread runtime
/// carries one.
#[derive(Debug, Clone, Copy)]
pub struct LockTable {
    base: Addr,
    n_locks: u64,
}

impl LockTable {
    /// Allocate `n_locks` lock lines in `machine`'s memory (power of two).
    pub fn new(machine: &Machine, n_locks: usize) -> LockTable {
        assert!(n_locks.is_power_of_two());
        let base = machine.host_alloc(n_locks as u64 * (LINE_BYTES / 8), true);
        LockTable {
            base,
            n_locks: n_locks as u64,
        }
    }

    /// The lock word guarding `addr` (same line ⇒ same lock; different
    /// lines spread over the table by a multiplicative hash).
    pub fn lock_addr_for(&self, addr: Addr) -> Addr {
        let line = line_of(addr);
        // Fibonacci hashing spreads consecutive lines.
        let h = line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        self.base + (h % self.n_locks) * LINE_BYTES
    }

    /// Try to acquire the lock for `addr` once (no spinning). Returns the
    /// lock word address on success.
    pub async fn try_acquire(&self, core: &mut Core<'_>, addr: Addr) -> Option<Addr> {
        let word = self.lock_addr_for(addr);
        let me = core.tid() as u64 + 1;
        if core.nt_cas(word, 0, me).await {
            core.note(ObsKind::LockAcquire { word, waited: 0 });
            Some(word)
        } else {
            core.note(ObsKind::LockTimeout { word, waited: 0 });
            None
        }
    }

    /// Mark a lock word as contended (a waiter spun on it). The flag lives
    /// in the second word of the lock's line, so it costs no extra lines.
    async fn mark_contended(core: &mut Core<'_>, word: Addr) {
        if core.nt_load(word + 8).await == 0 {
            core.nt_store(word + 8, 1).await;
        }
    }

    /// Acquire with spin + timeout. Returns `Some(lock word)` on success;
    /// `None` when `timeout_cycles` of waiting elapsed, in which case the
    /// caller simply proceeds without the lock (advisory semantics:
    /// correctness is the HTM's job).
    ///
    /// Wait time is charged to the core's `lock_wait_cycles`.
    pub async fn acquire(
        &self,
        core: &mut Core<'_>,
        addr: Addr,
        timeout_cycles: u64,
        spin_quantum: u64,
    ) -> Option<Addr> {
        let word = self.lock_addr_for(addr);
        let me = core.tid() as u64 + 1;
        let mut waited = 0u64;
        loop {
            if core.nt_cas(word, 0, me).await {
                core.note(ObsKind::LockAcquire { word, waited });
                return Some(word);
            }
            Self::mark_contended(core, word).await;
            if waited >= timeout_cycles {
                core.note(ObsKind::LockTimeout { word, waited });
                return None;
            }
            core.charge_lock_wait(spin_quantum).await;
            waited += spin_quantum;
        }
    }

    /// Release a previously acquired lock word. Returns `true` when some
    /// other thread contended for the lock while we held it (consumed:
    /// the flag is cleared) — the paper's "no contention on that lock"
    /// test for appending an empty history record.
    pub async fn release(&self, core: &mut Core<'_>, word: Addr) -> bool {
        if cfg!(debug_assertions) {
            let owner = core.nt_load(word).await;
            debug_assert_eq!(owner, core.tid() as u64 + 1);
        }
        let contended = core.nt_load(word + 8).await != 0;
        if contended {
            core.nt_store(word + 8, 0).await;
        }
        core.nt_store(word, 0).await;
        core.note(ObsKind::LockRelease { word, contended });
        contended
    }
}

/// The global fallback lock for irrevocable mode.
///
/// Hardware transactions *subscribe* by transactionally loading the word
/// immediately before commit (paper Section 6: "hardware transactions add
/// the global lock to their read set immediately before attempting to
/// commit"), so an irrevocable writer's release — or acquisition — dooms
/// any transaction that raced past it.
#[derive(Debug, Clone, Copy)]
pub struct GlobalLock {
    word: Addr,
}

impl GlobalLock {
    pub fn new(machine: &Machine) -> GlobalLock {
        GlobalLock {
            word: machine.host_alloc(LINE_BYTES / 8, true),
        }
    }

    /// The lock word's address (for transactional subscription).
    pub fn addr(&self) -> Addr {
        self.word
    }

    /// Blocking acquire (nontransactional; used only outside transactions).
    pub async fn acquire(&self, core: &mut Core<'_>, spin_quantum: u64) {
        let me = core.tid() as u64 + 1;
        while !core.nt_cas(self.word, 0, me).await {
            core.charge_lock_wait(spin_quantum).await;
        }
    }

    pub async fn release(&self, core: &mut Core<'_>) {
        if cfg!(debug_assertions) {
            let owner = core.nt_load(self.word).await;
            debug_assert_eq!(owner, core.tid() as u64 + 1);
        }
        core.nt_store(self.word, 0).await;
    }

    /// Is the lock currently held? (NT read.)
    pub async fn is_held(&self, core: &mut Core<'_>) -> bool {
        core.nt_load(self.word).await != 0
    }

    /// Spin (nontransactionally) until the lock is free.
    pub async fn wait_until_free(&self, core: &mut Core<'_>, spin_quantum: u64) {
        while core.nt_load(self.word).await != 0 {
            core.charge_lock_wait(spin_quantum).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::{body, MachineConfig};

    #[test]
    fn same_line_same_lock_distinct_lines_spread() {
        let m = Machine::new(MachineConfig::cores(1).small());
        let t = LockTable::new(&m, 256);
        assert_eq!(t.lock_addr_for(1024), t.lock_addr_for(1024 + 56));
        // Lock addresses are line-aligned and within the table.
        let mut distinct = std::collections::HashSet::new();
        for i in 0..1000u64 {
            let w = t.lock_addr_for(4096 + i * 64);
            assert_eq!(w % LINE_BYTES, 0);
            distinct.insert(w);
        }
        assert!(distinct.len() > 128, "hash must spread lines over locks");
    }

    #[test]
    fn acquire_release_roundtrip() {
        let m = Machine::new(MachineConfig::cores(1).small());
        let t = LockTable::new(&m, 16);
        m.run(vec![body(move |mut c| async move {
            let w = t
                .acquire(&mut c, 5000, 100_000, 30)
                .await
                .expect("uncontended");
            assert!(
                t.try_acquire(&mut c, 5000).await.is_none(),
                "held lock busy"
            );
            t.release(&mut c, w).await;
            assert!(t.try_acquire(&mut c, 5000).await.is_some());
        })]);
    }

    #[test]
    fn acquire_times_out_when_held_by_other() {
        let m = Machine::new(MachineConfig::cores(2).small());
        let t = LockTable::new(&m, 16);
        let flag = m.host_alloc(8, true);
        m.run(vec![
            body(move |mut c| async move {
                let _w = t.acquire(&mut c, 5000, 100_000, 30).await.unwrap();
                c.nt_store(flag, 1).await;
                // Hold it "forever" relative to the other thread's timeout.
                c.compute(500_000);
            }),
            body(move |mut c| async move {
                while c.nt_load(flag).await == 0 {
                    c.compute(50);
                }
                let r = t.acquire(&mut c, 5000, 1_000, 30).await;
                assert!(r.is_none(), "must time out and proceed without lock");
            }),
        ]);
        let agg = m.stats().aggregate();
        assert!(agg.lock_wait_cycles >= 1000);
    }

    #[test]
    fn global_lock_subscription_dooms_racing_txn() {
        let m = Machine::new(MachineConfig::cores(2).small());
        let gl = GlobalLock::new(&m);
        let data = m.host_alloc(8, true);
        let ready = m.host_alloc(8, true);
        m.run(vec![
            // Irrevocable thread: take the lock, mutate, release.
            body(move |mut c| async move {
                gl.acquire(&mut c, 30).await;
                c.nt_store(ready, 1).await;
                c.compute(2_000);
                c.nt_store(data, 99).await;
                gl.release(&mut c).await;
            }),
            // Transactional thread: begins while the lock is held; commit
            // subscription must observe it.
            body(move |mut c| async move {
                while c.nt_load(ready).await == 0 {
                    c.compute(20);
                }
                c.tx_begin(0).await;
                let _ = c.tx_load(data, 0x100).await;
                // Subscribe: lock is held, so the correct move is to abort.
                let held = c.tx_load(gl.addr(), 0x104).await;
                match held {
                    Ok(v) if v != 0 => {
                        let _ = c.tx_abort().await;
                    }
                    Ok(_) => {
                        // Lock free at subscription: but our read of `data`
                        // may have been doomed by the NT store.
                        let _ = c.tx_commit().await;
                    }
                    Err(_) => {}
                }
            }),
        ]);
        assert_eq!(m.host_load(data), 99);
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let m = Machine::new(MachineConfig::cores(4).small());
        let t = LockTable::new(&m, 16);
        let counter = m.host_alloc(8, true);
        m.run_uniform(move |mut c| async move {
            for _ in 0..30 {
                let w = loop {
                    if let Some(w) = t.acquire(&mut c, counter, 1 << 30, 25).await {
                        break w;
                    }
                };
                let v = c.nt_load(counter).await;
                c.compute(7);
                c.nt_store(counter, v + 1).await;
                t.release(&mut c, w).await;
            }
        });
        assert_eq!(m.host_load(counter), 120);
    }
}
