//! Property test: the abort-history ring buffer agrees with a naive
//! keep-the-last-N vector model.

use proptest::prelude::*;
use stagger_core::AbortHistory;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn ring_matches_naive_model(
        cap in 1usize..12,
        records in proptest::collection::vec((0u64..6, 0u64..6), 0..40),
        query_pc in 0u64..6,
        query_addr in 0u64..6,
    ) {
        let mut h = AbortHistory::new(cap);
        let mut model: Vec<(u64, u64)> = Vec::new();
        for &(pc, addr) in &records {
            h.append(pc, addr);
            model.push((pc, addr));
            if model.len() > cap {
                model.remove(0);
            }
        }
        prop_assert_eq!(h.len(), model.len());
        // Counts: zero keys never match (they denote empty/unattributed).
        let expect_pc = if query_pc == 0 { 0 } else {
            model.iter().filter(|r| r.0 == query_pc).count() as u32
        };
        let expect_addr = if query_addr == 0 { 0 } else {
            model.iter().filter(|r| r.1 == query_addr).count() as u32
        };
        prop_assert_eq!(h.count_pc(query_pc), expect_pc);
        prop_assert_eq!(h.count_addr(query_addr), expect_addr);
        // Iteration order: oldest first, exactly the model.
        let got: Vec<(u64, u64)> = h.iter().map(|r| (r.pc, r.addr)).collect();
        prop_assert_eq!(got, model);
    }

    #[test]
    fn empty_appends_displace_evidence(
        cap in 1usize..10,
        n_real in 0usize..10,
        n_empty in 0usize..10,
    ) {
        let mut h = AbortHistory::new(cap);
        for _ in 0..n_real {
            h.append(7, 7);
        }
        for _ in 0..n_empty {
            h.append_empty();
        }
        let expect = n_real.min(cap.saturating_sub(n_empty.min(cap)));
        prop_assert_eq!(h.count_pc(7) as usize, expect);
        prop_assert_eq!(h.count_addr(7) as usize, expect);
    }
}
