//! Randomized test: the abort-history ring buffer agrees with a naive
//! keep-the-last-N vector model, over a fixed-seed sweep of cases.

use stagger_core::AbortHistory;
use stagger_prng::Xoshiro256StarStar;

#[test]
fn ring_matches_naive_model() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x6869_7374);
    for _case in 0..256 {
        let cap = rng.gen_range(1, 12) as usize;
        let n_records = rng.below(40) as usize;
        let records: Vec<(u64, u64)> = (0..n_records)
            .map(|_| (rng.below(6), rng.below(6)))
            .collect();
        let query_pc = rng.below(6);
        let query_addr = rng.below(6);

        let mut h = AbortHistory::new(cap);
        let mut model: Vec<(u64, u64)> = Vec::new();
        for &(pc, addr) in &records {
            h.append(pc, addr);
            model.push((pc, addr));
            if model.len() > cap {
                model.remove(0);
            }
        }
        assert_eq!(h.len(), model.len());
        // Counts: zero keys never match (they denote empty/unattributed).
        let expect_pc = if query_pc == 0 {
            0
        } else {
            model.iter().filter(|r| r.0 == query_pc).count() as u32
        };
        let expect_addr = if query_addr == 0 {
            0
        } else {
            model.iter().filter(|r| r.1 == query_addr).count() as u32
        };
        assert_eq!(h.count_pc(query_pc), expect_pc);
        assert_eq!(h.count_addr(query_addr), expect_addr);
        // Iteration order: oldest first, exactly the model.
        let got: Vec<(u64, u64)> = h.iter().map(|r| (r.pc, r.addr)).collect();
        assert_eq!(got, model);
    }
}

#[test]
fn empty_appends_displace_evidence() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x656D_7074);
    for _case in 0..64 {
        let cap = rng.gen_range(1, 10) as usize;
        let n_real = rng.below(10) as usize;
        let n_empty = rng.below(10) as usize;
        let mut h = AbortHistory::new(cap);
        for _ in 0..n_real {
            h.append(7, 7);
        }
        for _ in 0..n_empty {
            h.append_empty();
        }
        let expect = n_real.min(cap.saturating_sub(n_empty.min(cap)));
        assert_eq!(
            h.count_pc(7) as usize,
            expect,
            "cap {cap} real {n_real} empty {n_empty}"
        );
        assert_eq!(h.count_addr(7) as usize, expect);
    }
}
