//! The documented lazy-subscription unsafety (Dice et al.) reproduced as a
//! deterministic regression pair.
//!
//! A fallback writer holding the global lock updates two lines with a
//! `x == y` invariant. A hardware transaction that begins between the two
//! stores and does *not* subscribe the lock at begin can read both lines
//! and commit before the writer's second store — committing a torn view
//! that no serial order of the two explains. Commit-time subscription (the
//! default irrevocable policy) closes the window in software; the
//! `lazy-subscription-safe` policy closes it in hardware, by validating
//! the registered lock word inside `tx_commit` itself. The deliberately
//! unsafe `lazy-subscription` policy does neither, and must observe the
//! tear — that is what makes the safe variant's pass meaningful.

use htm_sim::{body, FallbackPolicy, Machine, MachineConfig};
use stagger_core::GlobalLock;

/// Drive the two-core interleaving under `policy`. Returns the machine and
/// the `(x, y)` view the hardware transaction committed.
fn committed_view(policy: FallbackPolicy) -> (Machine, (u64, u64)) {
    let machine = Machine::new(MachineConfig::cores(2).small().fallback(policy));
    let gl = GlobalLock::new(&machine);
    if policy == FallbackPolicy::LazySubscriptionSafe {
        // What SharedRt::new does for executor-driven runs.
        machine.register_commit_lock(gl.addr());
    }
    let x = machine.host_alloc(8, true);
    let y = machine.host_alloc(8, true);
    let fx = machine.host_alloc(8, true);
    let seen = machine.host_alloc(8, true);
    machine.run(vec![
        // Fallback writer: lock held across both stores, with a long
        // window between them.
        body(move |mut c| async move {
            gl.acquire(&mut c, 30).await;
            c.plain_store(x, 1).await;
            c.nt_store(fx, 1).await;
            c.compute(50_000);
            c.plain_store(y, 1).await;
            gl.release(&mut c).await;
        }),
        // Hardware transaction: begins after the first store, never
        // subscribes at begin, retries (politely waiting out the lock)
        // until some attempt commits; records the view it committed.
        body(move |mut c| async move {
            while c.nt_load(fx).await == 0 {
                c.compute(20);
            }
            loop {
                c.tx_begin(0).await;
                let lx = match c.tx_load(x, 0x100).await {
                    Ok(v) => v,
                    Err(_) => {
                        gl.wait_until_free(&mut c, 30).await;
                        continue;
                    }
                };
                let ly = match c.tx_load(y, 0x104).await {
                    Ok(v) => v,
                    Err(_) => {
                        gl.wait_until_free(&mut c, 30).await;
                        continue;
                    }
                };
                match c.tx_commit().await {
                    Ok(()) => {
                        c.nt_store(seen, lx).await;
                        c.nt_store(seen + 8, ly).await;
                        break;
                    }
                    Err(_) => gl.wait_until_free(&mut c, 30).await,
                }
            }
        }),
    ]);
    let view = (machine.host_load(seen), machine.host_load(seen + 8));
    (machine, view)
}

#[test]
fn unsafe_lazy_subscription_commits_a_torn_view() {
    let (machine, view) = committed_view(FallbackPolicy::LazySubscription);
    assert_eq!(
        view,
        (1, 0),
        "eliding the subscription must let the torn state commit"
    );
    assert_eq!(machine.stats().aggregate().subscription_aborts, 0);
}

#[test]
fn safe_lazy_subscription_prevents_the_torn_view() {
    let (machine, view) = committed_view(FallbackPolicy::LazySubscriptionSafe);
    assert_eq!(view, (1, 1), "only the writer-complete state may commit");
    // Exactly the first attempt died, at commit, with the dedicated cause.
    assert_eq!(machine.stats().aggregate().subscription_aborts, 1);
}
