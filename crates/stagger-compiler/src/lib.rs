//! # stagger-compiler — the Staggered Transactions compiler pass
//!
//! Reproduces Section 3 of the paper on top of `tm-ir` + `tm-dsa`:
//!
//! 1. **Local anchor tables** ([`anchor`]) — Algorithm 1: walking each
//!    function's dominator tree depth-first, classify every load/store as an
//!    *anchor* (the initial access to a DSNode on some execution path) or a
//!    *non-anchor* with a *pioneer* (the anchor that accesses the same
//!    node), and link anchors to *parent* nodes through which their pointer
//!    was loaded.
//! 2. **Unified anchor tables** ([`unified`]) — one per atomic block,
//!    merging the local tables of every transitively-called function with
//!    DSNodes mapped into the atomic block's bottom-up DSA graph; parent
//!    links missing locally (pointers passed via arguments) are completed
//!    here, making the tables context-sensitive per atomic block.
//! 3. **Instrumentation** ([`instrument`]) — a call to the runtime's
//!    `ALPoint` (the [`tm_ir::Inst::AlPoint`] pseudo-instruction) is
//!    inserted immediately before every anchor, carrying a globally unique
//!    anchor id and the address operands of the anchored access.
//! 4. **PC emission** — after layout, every table entry is indexed by the
//!    program counter of its memory access, both at full width and
//!    truncated to the hardware's 12-bit tag (aliasing and all), so the
//!    runtime's `SearchByPC` behaves exactly as on the paper's simulator.
//!
//! The entry point is [`compile`].

pub mod anchor;
pub mod instrument;
pub mod unified;

use std::collections::HashMap;
use tm_ir::{CodeLayout, FuncId, FuncKind, InstRef, Module, Pc};

pub use anchor::{build_local_anchor_table, ATEntry, LocalAnchorTable};
pub use instrument::instrument_module;
pub use unified::{build_unified_table, UatEntry, UnifiedAnchorTable};

/// Metadata for one advisory locking point (one instrumented anchor).
#[derive(Debug, Clone)]
pub struct AnchorInfo {
    /// The anchor's globally unique id (ids start at 1; 0 means "none",
    /// matching the runtime's cleared `activeAnchor`).
    pub id: u32,
    /// The anchored memory access, in instrumented-module coordinates.
    pub inst: InstRef,
    /// PC of the anchored memory access.
    pub pc: Pc,
    /// Function containing the anchor.
    pub func: FuncId,
}

/// Static instrumentation statistics (the "Static Stats" half of Table 3).
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Loads/stores analyzed in functions reachable from atomic blocks.
    pub loads_stores: usize,
    /// How many were instrumented as anchors.
    pub anchors: usize,
    /// Number of atomic blocks.
    pub atomic_blocks: usize,
}

impl CompileStats {
    /// Fraction of loads/stores instrumented (the paper reports 13% on
    /// average across benchmarks).
    pub fn anchor_fraction(&self) -> f64 {
        if self.loads_stores == 0 {
            0.0
        } else {
            self.anchors as f64 / self.loads_stores as f64
        }
    }
}

/// Output of the compiler pass.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The instrumented module (ALPoint calls inserted).
    pub module: Module,
    /// PC assignment for the instrumented module.
    pub layout: CodeLayout,
    /// Unified anchor table per atomic-block id.
    pub tables: HashMap<u32, UnifiedAnchorTable>,
    /// Anchor registry, indexed by anchor id (`anchors[0]` is a dummy).
    pub anchors: Vec<AnchorInfo>,
    pub stats: CompileStats,
}

impl Compiled {
    /// The unified anchor table of atomic block `ab_id`.
    pub fn table(&self, ab_id: u32) -> &UnifiedAnchorTable {
        self.tables
            .get(&ab_id)
            .unwrap_or_else(|| panic!("no anchor table for atomic block {ab_id}"))
    }

    /// Anchor metadata by id.
    pub fn anchor(&self, id: u32) -> &AnchorInfo {
        &self.anchors[id as usize]
    }
}

/// Run the whole pass: DSA → local tables → instrumentation → unified
/// tables → PC indexing.
pub fn compile(module: &Module) -> Compiled {
    tm_ir::verify_module(module).expect("input module must verify");
    let dsa = tm_dsa::analyze_module(module);

    // Functions reachable from any atomic block, in deterministic order.
    let atomic_roots: Vec<FuncId> = module.atomic_funcs();
    let reachable = module.reachable_from(&atomic_roots);

    // Stage 1: local anchor tables for every reachable function.
    let mut locals: HashMap<FuncId, LocalAnchorTable> = HashMap::new();
    let mut stats = CompileStats {
        atomic_blocks: atomic_roots.len(),
        ..CompileStats::default()
    };
    for &f in &reachable {
        let t = build_local_anchor_table(module, f, dsa.func(f));
        stats.loads_stores += t.entries.len();
        stats.anchors += t.entries.iter().filter(|e| e.is_anchor).count();
        locals.insert(f, t);
    }

    // Stage 2: assign global anchor ids in deterministic (function, block,
    // index) order and instrument.
    let anchor_insts: Vec<InstRef> = {
        let mut all: Vec<InstRef> = locals
            .values()
            .flat_map(|t| t.entries.iter().filter(|e| e.is_anchor).map(|e| e.inst))
            .collect();
        all.sort();
        all
    };
    let anchor_id_of: HashMap<InstRef, u32> = anchor_insts
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, (i + 1) as u32))
        .collect();

    let (new_module, remap) = instrument_module(module, &anchor_id_of);
    let layout = CodeLayout::build(&new_module);

    // Anchor registry in instrumented coordinates.
    let mut anchors = vec![AnchorInfo {
        id: 0,
        inst: InstRef {
            func: FuncId(0),
            block: tm_ir::BlockId(0),
            idx: 0,
        },
        pc: 0,
        func: FuncId(0),
    }];
    for (i, &old) in anchor_insts.iter().enumerate() {
        let new = remap[&old];
        anchors.push(AnchorInfo {
            id: (i + 1) as u32,
            inst: new,
            pc: layout.pc(new),
            func: new.func,
        });
    }

    // Stage 3: unified anchor tables per atomic block.
    let mut tables = HashMap::new();
    for &root in &atomic_roots {
        let FuncKind::Atomic { ab_id } = module.func(root).kind else {
            unreachable!()
        };
        let t = build_unified_table(
            module,
            root,
            ab_id,
            &dsa,
            &locals,
            &anchor_id_of,
            &remap,
            &layout,
        );
        assert!(
            tables.insert(ab_id, t).is_none(),
            "duplicate atomic block id {ab_id}"
        );
    }

    tm_ir::verify_module(&new_module).expect("instrumented module must verify");
    Compiled {
        module: new_module,
        layout,
        tables,
        anchors,
        stats,
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use tm_ir::{FuncBuilder, FuncKind, Module};

    /// The Figure 3 genome-like shape used across the compiler tests.
    pub fn genome_like() -> Module {
        let mut m = Module::new();

        let mut b = FuncBuilder::new("TMlist_find", 1, FuncKind::Normal);
        let list = b.param(0);
        let node = b.load(list, 0); // anchor (head load)
        b.while_(
            |b| b.nei(node, 0),
            |b| {
                let _key = b.load(node, 2); // same collapsed node
                let nx = b.load(node, 1);
                b.assign(node, nx);
            },
        );
        b.ret(Some(node));
        let list_find = m.add_function(b.finish());

        let mut b = FuncBuilder::new("hashtable_insert", 2, FuncKind::Normal);
        let (ht, k) = (b.param(0), b.param(1));
        let nb = b.load(ht, 0); // anchor: numBucket
        let i = b.bin(tm_ir::BinOp::Rem, k, nb);
        let bucket = b.load_idx(ht, i, 1); // non-anchor (same ht node)
        let r = b.call(list_find, &[bucket]);
        b.ret(Some(r));
        m.add_function(b.finish());

        let mut b = FuncBuilder::new("tx_insert", 2, FuncKind::Atomic { ab_id: 0 });
        let (ht, k) = (b.param(0), b.param(1));
        let insert = m.expect("hashtable_insert");
        let r = b.call(insert, &[ht, k]);
        b.ret(Some(r));
        m.add_function(b.finish());
        m
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::genome_like;
    use super::*;
    use tm_ir::{FuncBuilder, Inst};

    #[test]
    fn compile_genome_like_end_to_end() {
        let m = genome_like();
        let c = compile(&m);
        assert_eq!(c.stats.atomic_blocks, 1);
        assert!(c.stats.anchors >= 2);
        assert!(c.stats.anchors < c.stats.loads_stores);

        // Instrumented module has one AlPoint per anchor.
        let n_alpoints: usize = c
            .module
            .funcs
            .iter()
            .flat_map(|f| f.blocks.iter())
            .flat_map(|b| b.insts.iter())
            .filter(|i| matches!(i, Inst::AlPoint { .. }))
            .count();
        assert_eq!(n_alpoints, c.stats.anchors);
        assert_eq!(c.anchors.len(), c.stats.anchors + 1);

        // Every anchor's PC resolves back to a memory access.
        for a in &c.anchors[1..] {
            let inst = c.module.inst(a.inst);
            assert!(inst.is_mem_access(), "anchor {} -> {:?}", a.id, inst);
            assert_eq!(c.layout.pc(a.inst), a.pc);
        }

        let t = c.table(0);
        assert!(!t.entries.is_empty());
    }

    #[test]
    fn anchor_ids_dense_from_zero_dummy() {
        let m = genome_like();
        let c = compile(&m);
        for (i, a) in c.anchors.iter().enumerate() {
            assert_eq!(a.id as usize, i);
        }
    }

    #[test]
    fn uninstrumented_function_untouched() {
        let mut m = genome_like();
        // A function not reachable from any atomic block.
        let mut b = FuncBuilder::new("cold", 1, tm_ir::FuncKind::Normal);
        let p = b.param(0);
        let v = b.load(p, 0);
        b.ret(Some(v));
        m.add_function(b.finish());
        let c = compile(&m);
        let cold = c.module.expect("cold");
        let has_alp = c.module.funcs[cold.index()]
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .any(|i| matches!(i, Inst::AlPoint { .. }));
        assert!(!has_alp);
    }
}
