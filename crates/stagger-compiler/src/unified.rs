//! Unified anchor tables (paper Section 3.3) and their PC indexes.
//!
//! One table per atomic block, merging the local anchor tables of every
//! function transitively called from it, with DSNodes mapped into the
//! atomic block's bottom-up DSA graph. Parents that a local table could not
//! resolve (pointer arrived via a function argument) are completed here, so
//! the same anchor may have different parents in different atomic blocks'
//! tables — the context sensitivity the paper calls out.
//!
//! After code layout, the table is indexable by the PC of each memory
//! access — at full width (used by the software-CPC mode and ground truth)
//! and truncated to the hardware's 12-bit tag (used by `SearchByPC` on a
//! contention abort). Truncated-PC collisions are resolved first-wins,
//! which is precisely the accuracy loss Table 3 measures.

use crate::anchor::LocalAnchorTable;
use std::collections::HashMap;
use tm_dsa::{ModuleDsa, NodeId};
use tm_ir::{CodeLayout, FuncId, InstRef, Module, Pc};

/// One entry of a unified anchor table.
#[derive(Debug, Clone)]
pub struct UatEntry {
    /// The memory access, in *instrumented-module* coordinates.
    pub inst: InstRef,
    /// PC of the memory access in the instrumented layout.
    pub pc: Pc,
    pub is_anchor: bool,
    /// This access's anchor id (its own if an anchor, else its pioneer's) —
    /// what the runtime activates after `SearchByPC`.
    pub anchor_id: u32,
    /// The anchor id of the parent anchor (locking promotion target), if
    /// any. 0 = no parent, as in Figure 3's "Parent 0".
    pub parent_anchor: u32,
    /// DSNode in the atomic block's graph (diagnostics/tests).
    pub node: NodeId,
}

/// The per-atomic-block table the runtime consults (paper Figure 2, step 3;
/// consumed at run time in steps 7–8).
#[derive(Debug, Clone)]
pub struct UnifiedAnchorTable {
    pub ab_id: u32,
    pub entries: Vec<UatEntry>,
    /// Truncated (12-bit) PC -> entry index; collisions first-wins.
    by_trunc_pc: HashMap<u16, usize>,
    /// Full PC -> entry index (exact).
    by_pc: HashMap<Pc, usize>,
    /// anchor id -> entry index of that anchor's own entry.
    anchor_entry: HashMap<u32, usize>,
}

impl UnifiedAnchorTable {
    /// The paper's `SearchByPC` against the hardware-delivered 12-bit
    /// conflicting-PC tag. Returns the entry whose memory access matches
    /// the tag, if the atomic block contains one.
    pub fn search_by_pc_tag(&self, tag: u16) -> Option<&UatEntry> {
        self.by_trunc_pc.get(&tag).map(|&i| &self.entries[i])
    }

    /// Exact full-PC lookup (ground truth / software-CPC path).
    pub fn search_by_pc(&self, pc: Pc) -> Option<&UatEntry> {
        self.by_pc.get(&pc).map(|&i| &self.entries[i])
    }

    /// The entry of an anchor id.
    pub fn anchor_entry(&self, id: u32) -> Option<&UatEntry> {
        self.anchor_entry.get(&id).map(|&i| &self.entries[i])
    }

    /// Parent anchor of `id` (0 if none).
    pub fn parent_of(&self, id: u32) -> u32 {
        self.anchor_entry(id).map_or(0, |e| e.parent_anchor)
    }

    /// Number of anchors in this table.
    pub fn n_anchors(&self) -> usize {
        self.anchor_entry.len()
    }
}

/// Build the unified anchor table for atomic block `root`.
#[allow(clippy::too_many_arguments)]
pub fn build_unified_table(
    module: &Module,
    root: FuncId,
    ab_id: u32,
    dsa: &ModuleDsa,
    locals: &HashMap<FuncId, LocalAnchorTable>,
    anchor_id_of: &HashMap<InstRef, u32>,
    remap: &HashMap<InstRef, InstRef>,
    layout: &CodeLayout,
) -> UnifiedAnchorTable {
    let scope = dsa.func(root);
    let funcs = module.reachable_from(&[root]);

    // Pass 1: collect entries with nodes in the atomic block's graph.
    let mut entries: Vec<UatEntry> = Vec::new();
    for &f in &funcs {
        let local = &locals[&f];
        for e in &local.entries {
            let node = scope
                .node_of(e.inst)
                .expect("bottom-up DSA covers every reachable access");
            let anchor_id = if e.is_anchor {
                anchor_id_of[&e.inst]
            } else {
                anchor_id_of[&e.pioneer.expect("non-anchors have pioneers")]
            };
            let new_inst = remap[&e.inst];
            entries.push(UatEntry {
                inst: new_inst,
                pc: layout.pc(new_inst),
                is_anchor: e.is_anchor,
                anchor_id,
                parent_anchor: 0,
                node,
            });
        }
    }

    // Index anchors per node (lowest anchor id per node wins as the node's
    // representative anchor, deterministically).
    let mut node_anchor: HashMap<NodeId, u32> = HashMap::new();
    for e in entries.iter().filter(|e| e.is_anchor) {
        node_anchor
            .entry(e.node)
            .and_modify(|a| *a = (*a).min(e.anchor_id))
            .or_insert(e.anchor_id);
    }

    // Pass 2: parents in the atomic block's node space — for each anchor's
    // node, find predecessor nodes (excluding self-edges) that themselves
    // have anchors in this table; pick the one with the lowest anchor id.
    for e in entries.iter_mut().filter(|e| e.is_anchor) {
        let parent = scope
            .graph
            .predecessors(e.node)
            .into_iter()
            .filter_map(|p| node_anchor.get(&p).copied())
            .filter(|&a| a != e.anchor_id)
            .min();
        e.parent_anchor = parent.unwrap_or(0);
    }

    // PC indexes.
    let mut by_trunc_pc = HashMap::new();
    let mut by_pc = HashMap::new();
    let mut anchor_entry = HashMap::new();
    for (i, e) in entries.iter().enumerate() {
        by_trunc_pc
            .entry(CodeLayout::truncate_pc(e.pc))
            .or_insert(i);
        by_pc.insert(e.pc, i);
        if e.is_anchor {
            anchor_entry.insert(e.anchor_id, i);
        }
    }

    UnifiedAnchorTable {
        ab_id,
        entries,
        by_trunc_pc,
        by_pc,
        anchor_entry,
    }
}

#[cfg(test)]
mod tests {
    use crate::compile;
    use crate::test_support::genome_like;
    use tm_ir::CodeLayout;

    #[test]
    fn figure3_parent_chain() {
        // In the genome-like module the list-node anchor's parent must be
        // the hashtable anchor (locking promotion: list -> whole table).
        let m = genome_like();
        let c = compile(&m);
        let t = c.table(0);

        // Find the anchor inside TMlist_find (on the collapsed list node).
        let lf = c.module.expect("TMlist_find");
        let list_anchors: Vec<_> = t
            .entries
            .iter()
            .filter(|e| e.is_anchor && e.inst.func == lf)
            .collect();
        assert!(!list_anchors.is_empty());
        // The loop body anchor (key load on the list node) has a parent.
        let ht = c.module.expect("hashtable_insert");
        let ht_anchor = t
            .entries
            .iter()
            .find(|e| e.is_anchor && e.inst.func == ht)
            .expect("hashtable anchor");
        let with_parent = list_anchors
            .iter()
            .find(|e| e.parent_anchor != 0)
            .expect("some list anchor has a parent");
        assert_eq!(
            with_parent.parent_anchor, ht_anchor.anchor_id,
            "promotion target is the hashtable anchor (Figure 3: 35 -> 42)"
        );
    }

    #[test]
    fn search_by_pc_roundtrip() {
        let m = genome_like();
        let c = compile(&m);
        let t = c.table(0);
        for e in &t.entries {
            let hit = t.search_by_pc(e.pc).unwrap();
            assert_eq!(hit.pc, e.pc);
            // Truncated search returns *an* entry with that tag; with few
            // instructions there are no collisions, so it is the same one.
            let tag = CodeLayout::truncate_pc(e.pc);
            let th = t.search_by_pc_tag(tag).unwrap();
            assert_eq!(CodeLayout::truncate_pc(th.pc), tag);
        }
        assert!(t.search_by_pc(0xdead_beef).is_none());
    }

    #[test]
    fn non_anchor_entries_point_to_their_pioneer_anchor() {
        let m = genome_like();
        let c = compile(&m);
        let t = c.table(0);
        for e in t.entries.iter().filter(|e| !e.is_anchor) {
            let a = t.anchor_entry(e.anchor_id).expect("pioneer anchor exists");
            assert!(a.is_anchor);
            assert_eq!(
                a.node, e.node,
                "pioneer accesses the same DSNode as the non-anchor"
            );
        }
    }

    #[test]
    fn parent_of_api() {
        let m = genome_like();
        let c = compile(&m);
        let t = c.table(0);
        for e in t.entries.iter().filter(|e| e.is_anchor) {
            assert_eq!(t.parent_of(e.anchor_id), e.parent_anchor);
        }
        assert_eq!(t.parent_of(9999), 0);
    }

    #[test]
    fn anchors_counted() {
        let m = genome_like();
        let c = compile(&m);
        let t = c.table(0);
        assert_eq!(t.n_anchors(), c.stats.anchors);
    }
}
