//! ALPoint instrumentation (paper Section 3.4).
//!
//! Inserts an [`Inst::AlPoint`] immediately before each anchor load/store,
//! carrying the anchor's global id and the *same address operands* as the
//! anchored access, so the runtime's `ALPoint(ctx, id, addr)` receives the
//! exact data address about to be touched.

use std::collections::HashMap;
use tm_ir::{Inst, InstRef, Module};

/// Instrument `module`: returns the new module and a map from original
/// instruction references to their positions in the instrumented module
/// (covering *all* instructions of instrumented functions, not only
/// anchors — the unified-table builder needs every load/store remapped).
pub fn instrument_module(
    module: &Module,
    anchor_id_of: &HashMap<InstRef, u32>,
) -> (Module, HashMap<InstRef, InstRef>) {
    let mut out = Module::new();
    let mut remap: HashMap<InstRef, InstRef> = HashMap::new();

    for (fid, func) in module.iter_funcs() {
        let mut new_func = func.clone();
        for (bid, blk) in func.iter_blocks() {
            let mut new_insts: Vec<Inst> = Vec::with_capacity(blk.insts.len());
            for (idx, inst) in blk.insts.iter().enumerate() {
                let old = InstRef {
                    func: fid,
                    block: bid,
                    idx: idx as u32,
                };
                if let Some(&anchor) = anchor_id_of.get(&old) {
                    let (base, index, offset) =
                        inst.mem_operands().expect("anchors are memory accesses");
                    new_insts.push(Inst::AlPoint {
                        anchor,
                        base,
                        index,
                        offset,
                    });
                }
                remap.insert(
                    old,
                    InstRef {
                        func: fid,
                        block: bid,
                        idx: new_insts.len() as u32,
                    },
                );
                new_insts.push(inst.clone());
            }
            new_func.block_mut(bid).insts = new_insts;
        }
        out.add_function(new_func);
    }
    (out, remap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_ir::{BlockId, FuncBuilder, FuncId, FuncKind};

    #[test]
    fn alpoint_precedes_anchor_with_same_operands() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("f", 1, FuncKind::Normal);
        let p = b.param(0);
        let _v = b.load(p, 3); // bb0:0 — the anchor
        b.ret(None);
        m.add_function(b.finish());

        let anchor = InstRef {
            func: FuncId(0),
            block: BlockId(0),
            idx: 0,
        };
        let ids = HashMap::from([(anchor, 7u32)]);
        let (new_m, remap) = instrument_module(&m, &ids);

        let blk = &new_m.funcs[0].blocks[0];
        match (&blk.insts[0], &blk.insts[1]) {
            (
                Inst::AlPoint {
                    anchor: 7,
                    base,
                    index: None,
                    offset: 3,
                },
                Inst::Load {
                    base: lbase,
                    offset: 3,
                    ..
                },
            ) => assert_eq!(base, lbase),
            other => panic!("unexpected instrumentation: {other:?}"),
        }
        // Remap points at the (shifted) load.
        assert_eq!(remap[&anchor].idx, 1);
        tm_ir::verify_module(&new_m).unwrap();
    }

    #[test]
    fn remap_covers_every_instruction() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("f", 1, FuncKind::Normal);
        let p = b.param(0);
        let _a = b.load(p, 0);
        let _b2 = b.load(p, 1);
        b.compute(4);
        b.ret(None);
        m.add_function(b.finish());

        let a0 = InstRef {
            func: FuncId(0),
            block: BlockId(0),
            idx: 0,
        };
        let ids = HashMap::from([(a0, 1u32)]);
        let (new_m, remap) = instrument_module(&m, &ids);
        // 4 original instructions, all remapped; indices after the AlPoint
        // shift by one.
        assert_eq!(remap.len(), 4);
        for (old, new) in &remap {
            assert_eq!(new.idx, old.idx + 1);
            assert_eq!(
                std::mem::discriminant(m.inst(*old)),
                std::mem::discriminant(new_m.inst(*new)),
            );
        }
    }

    #[test]
    fn indexed_anchor_carries_index_register() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("f", 2, FuncKind::Normal);
        let (arr, i) = (b.param(0), b.param(1));
        let _ = b.load_idx(arr, i, 2);
        b.ret(None);
        m.add_function(b.finish());
        let a0 = InstRef {
            func: FuncId(0),
            block: BlockId(0),
            idx: 0,
        };
        let (new_m, _) = instrument_module(&m, &HashMap::from([(a0, 3u32)]));
        match &new_m.funcs[0].blocks[0].insts[0] {
            Inst::AlPoint {
                anchor: 3,
                index: Some(ix),
                offset: 2,
                ..
            } => assert_eq!(*ix, i),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_anchors_means_identity() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("f", 1, FuncKind::Normal);
        let p = b.param(0);
        let _ = b.load(p, 0);
        b.ret(None);
        m.add_function(b.finish());
        let (new_m, remap) = instrument_module(&m, &HashMap::new());
        assert_eq!(new_m.funcs[0].n_insts(), m.funcs[0].n_insts());
        for (old, new) in &remap {
            assert_eq!(old, new);
        }
    }
}
