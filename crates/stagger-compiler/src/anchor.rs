//! Local anchor tables — the paper's Algorithm 1
//! (`BuildLocalAnchorTable`).
//!
//! An **anchor** is a load/store that is the initial access to a DSNode on
//! some execution path through the function. A **non-anchor** has a
//! *pioneer*: the dominating anchor that accesses the same node. Anchors
//! carry a *parent* node: the DSNode through which a pointer to their node
//! was loaded (e.g. the hash-table node is the parent of the bucket-list
//! node in Figure 3).

use std::collections::HashMap;
use tm_dsa::{FuncDsa, NodeId};
use tm_ir::{Cfg, DomTree, FuncId, InstRef, Module};

/// One entry of a local anchor table (the paper's 4-field `ATEntry`
/// tuple `(instr, isAnchor, parent, pioneer)`).
#[derive(Debug, Clone)]
pub struct ATEntry {
    /// The load/store instruction (original, uninstrumented coordinates).
    pub inst: InstRef,
    pub is_anchor: bool,
    /// For non-anchors: the anchor accessing the same DSNode.
    pub pioneer: Option<InstRef>,
    /// For anchors: the DSNode through which a pointer to this entry's node
    /// was loaded (filled locally when visible; completed in the unified
    /// stage when the pointer arrived via a function argument).
    pub parent_node: Option<NodeId>,
    /// This access's DSNode, in the function's own (bottom-up) graph.
    pub node: NodeId,
}

/// All loads/stores of one function, classified.
#[derive(Debug, Clone)]
pub struct LocalAnchorTable {
    pub func: FuncId,
    /// Entries in dominator-tree DFS discovery order.
    pub entries: Vec<ATEntry>,
    pub by_inst: HashMap<InstRef, usize>,
}

impl LocalAnchorTable {
    pub fn entry(&self, inst: InstRef) -> Option<&ATEntry> {
        self.by_inst.get(&inst).map(|&i| &self.entries[i])
    }
}

/// Algorithm 1: build the local anchor table of `fid`, using its bottom-up
/// DSA result.
pub fn build_local_anchor_table(module: &Module, fid: FuncId, dsa: &FuncDsa) -> LocalAnchorTable {
    let func = module.func(fid);
    let cfg = Cfg::build(func);
    let dom = DomTree::build(func, &cfg);

    let mut entries: Vec<ATEntry> = Vec::new();
    let mut by_inst: HashMap<InstRef, usize> = HashMap::new();
    // aTable[dsNode]: indices of entries on each node.
    let mut per_node: HashMap<NodeId, Vec<usize>> = HashMap::new();

    // Stage one (Algorithm 1 lines 3–14): depth-first dominator-tree walk,
    // classifying each load/store.
    for bid in dom.dfs_preorder() {
        let blk = func.block(bid);
        for (idx, inst) in blk.insts.iter().enumerate() {
            if !inst.is_mem_access() {
                continue;
            }
            let iref = InstRef {
                func: fid,
                block: bid,
                idx: idx as u32,
            };
            let node = dsa
                .node_of(iref)
                .expect("DSA assigns a node to every memory access");
            let same_node = per_node.entry(node).or_default();
            // Does any already-seen access of this node dominate us?
            let dominating = same_node
                .iter()
                .map(|&i| &entries[i])
                .find(|m| dom.dominates_inst(m.inst, iref));
            let entry = match dominating {
                Some(m) => {
                    // Non-anchor; pioneer is the dominating access's anchor
                    // (follow through if m is itself a non-anchor).
                    let pioneer = if m.is_anchor {
                        m.inst
                    } else {
                        m.pioneer.unwrap()
                    };
                    ATEntry {
                        inst: iref,
                        is_anchor: false,
                        pioneer: Some(pioneer),
                        parent_node: None,
                        node,
                    }
                }
                None => ATEntry {
                    inst: iref,
                    is_anchor: true,
                    pioneer: None,
                    parent_node: None,
                    node,
                },
            };
            let ei = entries.len();
            by_inst.insert(iref, ei);
            per_node.get_mut(&node).unwrap().push(ei);
            entries.push(entry);
        }
    }

    // Stage two (lines 15–19): parent relationship via DSNode edges. For
    // every node `n` with an edge to node `t`, anchors on `t` get parent
    // `n`. Self-edges (collapsed recursive structures) are skipped: the
    // useful parent of a list node is the list-head holder, not the list
    // itself. Nodes are visited in ascending id order for determinism; the
    // first parent found wins.
    let nodes: Vec<NodeId> = {
        let mut v: Vec<NodeId> = per_node.keys().copied().collect();
        v.sort();
        v
    };
    for &n in &nodes {
        for (_, target) in dsa.graph.edges_of(n) {
            if target == n {
                continue;
            }
            if let Some(targets) = per_node.get(&target) {
                for &ei in targets {
                    if entries[ei].is_anchor && entries[ei].parent_node.is_none() {
                        entries[ei].parent_node = Some(n);
                    }
                }
            }
        }
    }

    LocalAnchorTable {
        func: fid,
        entries,
        by_inst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_ir::{BlockId, FuncBuilder, FuncKind};

    fn analyze(b: FuncBuilder) -> (Module, LocalAnchorTable) {
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let dsa = tm_dsa::analyze_module(&m);
        let t = build_local_anchor_table(&m, fid, dsa.func(fid));
        (m, t)
    }

    fn iref(b: u32, i: u32) -> InstRef {
        InstRef {
            func: FuncId(0),
            block: BlockId(b),
            idx: i,
        }
    }

    #[test]
    fn first_access_is_anchor_second_is_pioneer() {
        // n = q->head (anchor); q->tail = m (non-anchor, pioneer = head
        // load) — the paper's queue example from Section 3.2.
        let mut b = FuncBuilder::new("f", 2, FuncKind::Normal);
        let (q, m_) = (b.param(0), b.param(1));
        let _n = b.load(q, 0); // bb0:0  anchor
        b.store(m_, q, 1); // bb0:1  non-anchor
        b.ret(None);
        let (_, t) = analyze(b);
        assert_eq!(t.entries.len(), 2);
        assert!(t.entries[0].is_anchor);
        assert!(!t.entries[1].is_anchor);
        assert_eq!(t.entries[1].pioneer, Some(iref(0, 0)));
        assert_eq!(t.entry(iref(0, 1)).unwrap().pioneer, Some(iref(0, 0)));
    }

    #[test]
    fn accesses_on_both_branches_are_both_anchors() {
        // Neither branch's access dominates the other: both must be
        // anchors ("initial access in a possible execution path").
        let mut b = FuncBuilder::new("f", 2, FuncKind::Normal);
        let (p, c) = (b.param(0), b.param(1));
        b.if_else(
            c,
            |b| {
                let _ = b.load(p, 0);
            },
            |b| {
                b.store_const(1, p, 0);
            },
        );
        b.ret(None);
        let (_, t) = analyze(b);
        let anchors = t.entries.iter().filter(|e| e.is_anchor).count();
        assert_eq!(anchors, 2);
    }

    #[test]
    fn dominating_access_makes_branch_accesses_non_anchors() {
        let mut b = FuncBuilder::new("f", 2, FuncKind::Normal);
        let (p, c) = (b.param(0), b.param(1));
        let _ = b.load(p, 0); // dominates everything below
        b.if_else(
            c,
            |b| {
                let _ = b.load(p, 1);
            },
            |b| {
                b.store_const(1, p, 2);
            },
        );
        b.ret(None);
        let (_, t) = analyze(b);
        let anchors: Vec<_> = t.entries.iter().filter(|e| e.is_anchor).collect();
        assert_eq!(anchors.len(), 1);
        assert_eq!(anchors[0].inst, iref(0, 0));
        for e in t.entries.iter().filter(|e| !e.is_anchor) {
            assert_eq!(e.pioneer, Some(iref(0, 0)));
        }
    }

    #[test]
    fn list_walk_single_anchor_in_loop() {
        // Figure 3's TMlist_find: the loop's first node access is the
        // anchor; the next-pointer load is a non-anchor with that pioneer.
        let mut b = FuncBuilder::new("walk", 1, FuncKind::Normal);
        let list = b.param(0);
        let node = b.load(list, 0); // anchor on the head-holder node
        b.while_(
            |b| b.nei(node, 0),
            |b| {
                let _k = b.load(node, 2); // anchor on collapsed list node
                let nx = b.load(node, 1); // non-anchor, pioneer = key load
                b.assign(node, nx);
            },
        );
        b.ret(None);
        let (_, t) = analyze(b);
        let anchors: Vec<_> = t.entries.iter().filter(|e| e.is_anchor).collect();
        assert_eq!(anchors.len(), 2, "head-holder anchor + list-node anchor");
        // The list-node anchor's parent is the head-holder's node.
        let head_entry = &t.entries[0];
        let list_anchor = anchors
            .iter()
            .find(|e| e.node != head_entry.node)
            .expect("distinct list node");
        assert_eq!(list_anchor.parent_node, Some(head_entry.node));
        // The next-load is a non-anchor whose pioneer is the list anchor.
        let non_anchors: Vec<_> = t.entries.iter().filter(|e| !e.is_anchor).collect();
        assert_eq!(non_anchors.len(), 1);
        assert_eq!(non_anchors[0].pioneer, Some(list_anchor.inst));
    }

    #[test]
    fn pioneer_chain_resolves_to_anchor() {
        // Three sequential accesses on one node: the third's pioneer must
        // be the first (the anchor), not the second (a non-anchor).
        let mut b = FuncBuilder::new("f", 1, FuncKind::Normal);
        let p = b.param(0);
        let _a = b.load(p, 0);
        let _b2 = b.load(p, 1);
        let _c = b.load(p, 2);
        b.ret(None);
        let (_, t) = analyze(b);
        assert!(t.entries[0].is_anchor);
        assert!(!t.entries[1].is_anchor && !t.entries[2].is_anchor);
        assert_eq!(t.entries[2].pioneer, Some(iref(0, 0)));
    }

    #[test]
    fn parent_skips_self_edges() {
        // p -> node with self-edge; anchor on node must take p as parent.
        let mut b = FuncBuilder::new("f", 1, FuncKind::Normal);
        let p = b.param(0);
        let n = b.load(p, 0);
        b.while_(
            |b| b.nei(n, 0),
            |b| {
                let nx = b.load(n, 0); // same offset as p's edge: self-collapse risk is fine
                b.assign(n, nx);
            },
        );
        b.ret(None);
        let (_, t) = analyze(b);
        for e in t.entries.iter().filter(|e| e.is_anchor) {
            assert_ne!(e.parent_node, Some(e.node), "self-parent is useless");
        }
    }
}
