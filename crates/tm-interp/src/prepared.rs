//! Pre-flattened module representation for fast interpretation.
//!
//! The interpreter executes millions of instructions per run; looking up
//! each instruction's PC through `CodeLayout`'s hash map on every step
//! would dominate. `Prepared` pairs every instruction with its PC once,
//! up front.

use std::sync::Arc;

use stagger_compiler::Compiled;
use tm_ir::{BlockId, FuncKind, Inst, InstRef, Pc};

use crate::bytecode::Bytecode;

/// One basic block: instructions with their PCs.
pub type PreparedBlock = Vec<(Inst, Pc)>;

/// One function, flattened.
#[derive(Debug, Clone)]
pub struct PreparedFunc {
    /// Shared, not cloned per preparation: sweeps re-prepare workloads per
    /// cell, and an `Arc<str>` makes that a refcount bump instead of a
    /// string reallocation.
    pub name: Arc<str>,
    pub kind: FuncKind,
    pub n_params: u32,
    pub n_regs: u32,
    pub entry: BlockId,
    pub blocks: Vec<PreparedBlock>,
}

/// A whole instrumented module, ready to execute.
#[derive(Debug, Clone)]
pub struct Prepared {
    pub funcs: Vec<PreparedFunc>,
    /// The same functions lowered to flat µ-op arrays (see
    /// [`crate::bytecode`]); `funcs[i]` and `code.funcs[i]` describe the
    /// same function, and `Interp` selects which one the executor walks.
    pub code: Bytecode,
}

impl Prepared {
    pub fn build(compiled: &Compiled) -> Prepared {
        let m = &compiled.module;
        let funcs: Vec<PreparedFunc> = m
            .iter_funcs()
            .map(|(fid, f)| PreparedFunc {
                name: Arc::from(f.name.as_str()),
                kind: f.kind,
                n_params: f.n_params,
                n_regs: f.n_regs,
                entry: f.entry,
                blocks: f
                    .iter_blocks()
                    .map(|(bid, blk)| {
                        blk.insts
                            .iter()
                            .enumerate()
                            .map(|(idx, inst)| {
                                let r = InstRef {
                                    func: fid,
                                    block: bid,
                                    idx: idx as u32,
                                };
                                (inst.clone(), compiled.layout.pc(r))
                            })
                            .collect()
                    })
                    .collect(),
            })
            .collect();
        let code = Bytecode::lower(&funcs);
        Prepared { funcs, code }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stagger_compiler::compile;
    use tm_ir::{FuncBuilder, Module, TEXT_BASE};

    #[test]
    fn prepared_mirrors_module_with_pcs() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("tx", 1, FuncKind::Atomic { ab_id: 0 });
        let p = b.param(0);
        let v = b.load(p, 0);
        let v2 = b.addi(v, 1);
        b.store(v2, p, 0);
        b.ret(None);
        m.add_function(b.finish());
        let c = compile(&m);
        let prep = Prepared::build(&c);
        assert_eq!(prep.funcs.len(), c.module.funcs.len());
        let f = &prep.funcs[0];
        assert_eq!(f.kind, FuncKind::Atomic { ab_id: 0 });
        // PCs ascend densely across the function.
        let mut pcs: Vec<Pc> = f
            .blocks
            .iter()
            .flat_map(|b| b.iter().map(|&(_, pc)| pc))
            .collect();
        let sorted = {
            let mut s = pcs.clone();
            s.sort();
            s
        };
        assert_eq!(pcs, sorted);
        assert_eq!(pcs.remove(0), TEXT_BASE);
    }
}
