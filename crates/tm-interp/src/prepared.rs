//! Pre-flattened module representation for fast interpretation.
//!
//! The interpreter executes millions of instructions per run; looking up
//! each instruction's PC through `CodeLayout`'s hash map on every step
//! would dominate. `Prepared` pairs every instruction with its PC once,
//! up front.

use stagger_compiler::Compiled;
use tm_ir::{BlockId, FuncKind, Inst, InstRef, Pc};

/// One basic block: instructions with their PCs.
pub type PreparedBlock = Vec<(Inst, Pc)>;

/// One function, flattened.
#[derive(Debug, Clone)]
pub struct PreparedFunc {
    pub name: String,
    pub kind: FuncKind,
    pub n_params: u32,
    pub n_regs: u32,
    pub entry: BlockId,
    pub blocks: Vec<PreparedBlock>,
}

/// A whole instrumented module, ready to execute.
#[derive(Debug, Clone)]
pub struct Prepared {
    pub funcs: Vec<PreparedFunc>,
}

impl Prepared {
    pub fn build(compiled: &Compiled) -> Prepared {
        let m = &compiled.module;
        let funcs = m
            .iter_funcs()
            .map(|(fid, f)| PreparedFunc {
                name: f.name.clone(),
                kind: f.kind,
                n_params: f.n_params,
                n_regs: f.n_regs,
                entry: f.entry,
                blocks: f
                    .iter_blocks()
                    .map(|(bid, blk)| {
                        blk.insts
                            .iter()
                            .enumerate()
                            .map(|(idx, inst)| {
                                let r = InstRef {
                                    func: fid,
                                    block: bid,
                                    idx: idx as u32,
                                };
                                (inst.clone(), compiled.layout.pc(r))
                            })
                            .collect()
                    })
                    .collect(),
            })
            .collect();
        Prepared { funcs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stagger_compiler::compile;
    use tm_ir::{FuncBuilder, Module, TEXT_BASE};

    #[test]
    fn prepared_mirrors_module_with_pcs() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("tx", 1, FuncKind::Atomic { ab_id: 0 });
        let p = b.param(0);
        let v = b.load(p, 0);
        let v2 = b.addi(v, 1);
        b.store(v2, p, 0);
        b.ret(None);
        m.add_function(b.finish());
        let c = compile(&m);
        let prep = Prepared::build(&c);
        assert_eq!(prep.funcs.len(), c.module.funcs.len());
        let f = &prep.funcs[0];
        assert_eq!(f.kind, FuncKind::Atomic { ab_id: 0 });
        // PCs ascend densely across the function.
        let mut pcs: Vec<Pc> = f
            .blocks
            .iter()
            .flat_map(|b| b.iter().map(|&(_, pc)| pc))
            .collect();
        let sorted = {
            let mut s = pcs.clone();
            s.sort();
            s
        };
        assert_eq!(pcs, sorted);
        assert_eq!(pcs.remove(0), TEXT_BASE);
    }
}
