//! Pre-decoded µ-op bytecode: the fast interpreter's program format.
//!
//! `Prepared` blocks still carry enum instructions whose every execution
//! re-matches nested `Option`s, chases `BlockId` indirections and re-reads
//! `Reg` newtypes. This module lowers each [`crate::prepared::PreparedFunc`]
//! once into a *flat* array of fixed-size [`UOp`]s:
//!
//! * branch targets are absolute µ-op indices (no `BlockId` lookup),
//! * operand register slots, immediates and PCs are inlined in the µ-op,
//! * common adjacent pairs are fused into superinstructions
//!   (compare+branch, load+use, ALP+anchor access),
//! * dispatch is a dense `match` over a `#[repr(u8)]` opcode, which the
//!   compiler lowers to a jump table.
//!
//! Fusion is a pure host-speed device: each fused µ-op charges exactly the
//! simulated cycles and statistics its constituents would have, in the same
//! order relative to the core's gates, so simulated results are bit-for-bit
//! identical to the legacy interpreter (the bench crate's
//! `interp_equivalence` test enforces this).

use tm_ir::{BinOp, CmpOp, Inst, Pc};

use crate::prepared::PreparedFunc;

/// Register-slot sentinel for "no register" (absent `dst`/`index`/`val`).
pub const NO_REG: u16 = u16::MAX;

/// Decode tables for the sub-operation stored in [`UOp::xop`]. Encoding
/// uses `position()` over these same tables, so encode and decode cannot
/// drift apart.
pub const BIN_OPS: [BinOp; 10] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
];
pub const CMP_OPS: [CmpOp; 10] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
    CmpOp::Slt,
    CmpOp::Sle,
    CmpOp::Sgt,
    CmpOp::Sge,
];

fn bin_code(op: BinOp) -> u8 {
    BIN_OPS.iter().position(|&o| o == op).unwrap() as u8
}

fn cmp_code(op: CmpOp) -> u8 {
    CMP_OPS.iter().position(|&o| o == op).unwrap() as u8
}

/// µ-op opcode. `#[repr(u8)]` + a dense `match` in the dispatch loop lets
/// the compiler emit a jump table instead of an enum-tag decision tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpCode {
    /// `r[a] = imm | imm2 << 32`
    Const,
    /// `r[a] = r[b]`
    Mov,
    /// `r[a] = r[b] <BIN_OPS[xop]> r[c]`
    Bin,
    /// `r[a] = r[b] <CMP_OPS[xop]> r[c]`
    Cmp,
    /// `r[a] = mem[r[b] + imm*8]`
    Load,
    /// `mem[r[b] + imm*8] = r[a]`
    Store,
    /// `r[a] = mem[r[b] + (r[c] + imm)*8]`
    LoadIdx,
    /// `mem[r[b] + (r[c] + imm)*8] = r[a]`
    StoreIdx,
    /// `r[a] = r[b] + (r[c] + imm)*8`
    Gep,
    /// `r[a] = alloc(r[b] words, line_align = xop != 0)`
    Alloc,
    /// Call function `imm` with `c` args at `arg_pool[imm2..]`; result to
    /// `r[a]` unless `a == NO_REG`.
    Call,
    /// Return `r[a]` (0 if `a == NO_REG`).
    Ret,
    /// `ip = imm`
    Br,
    /// `ip = r[a] != 0 ? imm : imm2`
    CondBr,
    /// Spend `imm` local cycles.
    Compute,
    /// Advance the core's logical clock to at least `r[a]` (no-op when
    /// the deadline already passed).
    IdleUntil,
    /// `r[a] = prng() % r[b]` (`r[b]` must be nonzero).
    Rand,
    /// Unfused advisory locking point: anchor `imm2`, data address
    /// `r[a] + (r[b_or_0] + imm)*8` (`b == NO_REG` for plain accesses).
    AlPoint,
    /// Fused `Cmp` + `CondBr`: `r[a] = r[b] <CMP_OPS[xop]> r[c]` then
    /// `ip = r[a] != 0 ? imm : imm2`. The compare destination is still
    /// written (a later block may read it).
    CmpBr,
    /// Fused `Load` + `Cmp`: `r[a] = mem[r[b] + imm*8]` then
    /// `r[imm2 & 0xFFFF] = r[imm2 >> 16] <CMP_OPS[xop]> r[c]`.
    LoadCmp,
    /// Fused `Load` + `Bin` (never `Div`/`Rem`, whose trap message needs
    /// the second instruction's own PC): same layout as `LoadCmp`.
    LoadBin,
    /// Fused `AlPoint` + `Load`: ALP on anchor `imm2` at `r[b] + imm*8`,
    /// then `r[a] = mem[r[b] + imm*8]`.
    AlpLoad,
    /// Fused `AlPoint` + `LoadIdx`: address `r[b] + (r[c] + imm)*8`.
    AlpLoadIdx,
    /// Fused `AlPoint` + `Store`: `mem[r[b] + imm*8] = r[a]`.
    AlpStore,
    /// Fused `AlPoint` + `StoreIdx`: `mem[r[b] + (r[c] + imm)*8] = r[a]`.
    AlpStoreIdx,
}

/// One pre-decoded µ-op (24 bytes). Field meaning depends on [`OpCode`]
/// (see its variant docs); `pc` is the PC of the instruction whose
/// simulated-memory behavior this µ-op carries — for ALP fusions the
/// anchored access, for load+use fusions the load — so `tx_load`/`tx_store`
/// and trap messages see exactly the PCs the legacy interpreter reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UOp {
    pub code: OpCode,
    /// Sub-operation: `BIN_OPS`/`CMP_OPS` index, or `line_align` for
    /// `Alloc`.
    pub xop: u8,
    pub a: u16,
    pub b: u16,
    pub c: u16,
    pub imm: u32,
    pub imm2: u32,
    pub pc: Pc,
}

/// One lowered function.
#[derive(Debug, Clone)]
pub struct BytecodeFunc {
    pub uops: Vec<UOp>,
    /// Absolute µ-op index of each source block's first µ-op, indexed by
    /// `BlockId`. Retained for the disassembler and the golden round-trip
    /// test; the dispatch loop never consults it.
    pub block_starts: Vec<u32>,
    /// Entry µ-op index (`block_starts[entry block]`).
    pub entry: u32,
    /// Call-argument register slots, referenced by `Call` µ-ops as
    /// `arg_pool[imm2 .. imm2 + c]`.
    pub arg_pool: Vec<u16>,
}

/// A whole lowered module, indexed by `FuncId`.
#[derive(Debug, Clone, Default)]
pub struct Bytecode {
    pub funcs: Vec<BytecodeFunc>,
}

impl Bytecode {
    pub fn lower(funcs: &[PreparedFunc]) -> Bytecode {
        Bytecode {
            funcs: funcs.iter().map(lower_func).collect(),
        }
    }
}

fn reg(r: tm_ir::Reg) -> u16 {
    assert!(
        r.0 < u32::from(NO_REG),
        "register index {} exceeds the µ-op slot width",
        r.0
    );
    r.0 as u16
}

fn opt_reg(r: Option<tm_ir::Reg>) -> u16 {
    r.map_or(NO_REG, reg)
}

/// Can `second` ride in the use-slot of a `LoadCmp`/`LoadBin` fusion after
/// `load`? `Div`/`Rem` are excluded: their divide-by-zero trap reports the
/// arithmetic instruction's own PC, which the fused µ-op does not carry.
fn fusible_use(second: &Inst) -> bool {
    match second {
        Inst::Cmp { .. } => true,
        Inst::Bin { op, .. } => !matches!(op, BinOp::Div | BinOp::Rem),
        _ => false,
    }
}

fn lower_func(f: &PreparedFunc) -> BytecodeFunc {
    let mut uops: Vec<UOp> = Vec::new();
    let mut arg_pool: Vec<u16> = Vec::new();
    let mut block_starts: Vec<u32> = Vec::with_capacity(f.blocks.len());

    for block in &f.blocks {
        block_starts.push(uops.len() as u32);
        let mut i = 0;
        while i < block.len() {
            let (inst, pc) = &block[i];
            let next = block.get(i + 1);
            if let Some(u) = try_fuse(inst, *pc, next) {
                uops.push(u);
                i += 2;
            } else {
                uops.push(lower_single(inst, *pc, &mut arg_pool));
                i += 1;
            }
        }
    }

    // Patch branch targets: lowering stored raw `BlockId` indices in the
    // target immediates; rewrite them to absolute µ-op indices.
    for u in &mut uops {
        match u.code {
            OpCode::Br => u.imm = block_starts[u.imm as usize],
            OpCode::CondBr | OpCode::CmpBr => {
                u.imm = block_starts[u.imm as usize];
                u.imm2 = block_starts[u.imm2 as usize];
            }
            _ => {}
        }
    }

    BytecodeFunc {
        entry: block_starts[f.entry.index()],
        uops,
        block_starts,
        arg_pool,
    }
}

/// Try to fuse `inst` (at `pc`) with its successor into one superinstruction.
fn try_fuse(inst: &Inst, pc: Pc, next: Option<&(Inst, Pc)>) -> Option<UOp> {
    let (next_inst, next_pc) = next?;
    match inst {
        // ALP + the anchor access it was inserted for. The instrumentation
        // pass emits these back-to-back with identical operands; re-verify
        // via `alp_covers` and fall back to the unfused pair otherwise.
        Inst::AlPoint { anchor, .. } if inst.alp_covers(next_inst) => {
            let (code, val) = match *next_inst {
                Inst::Load { dst, .. } => (OpCode::AlpLoad, dst),
                Inst::LoadIdx { dst, .. } => (OpCode::AlpLoadIdx, dst),
                Inst::Store { src, .. } => (OpCode::AlpStore, src),
                Inst::StoreIdx { src, .. } => (OpCode::AlpStoreIdx, src),
                _ => unreachable!("alp_covers only accepts memory accesses"),
            };
            let (base, index, offset) = next_inst.mem_operands().unwrap();
            Some(UOp {
                code,
                xop: 0,
                a: reg(val),
                b: reg(base),
                c: opt_reg(index),
                imm: offset,
                imm2: *anchor,
                pc: *next_pc,
            })
        }
        // Compare + conditional branch on its result.
        Inst::Cmp { op, dst, a, b } => match *next_inst {
            Inst::CondBr {
                cond,
                then_b,
                else_b,
            } if cond == *dst => Some(UOp {
                code: OpCode::CmpBr,
                xop: cmp_code(*op),
                a: reg(*dst),
                b: reg(*a),
                c: reg(*b),
                imm: then_b.0,
                imm2: else_b.0,
                pc,
            }),
            _ => None,
        },
        // Plain load + an ALU use. The use's operands are evaluated from
        // the register file *after* the load writes its destination, so
        // operand aliasing (use reads the loaded value, or `dst` doubles
        // as an operand) needs no special casing.
        Inst::Load { dst, base, offset } if fusible_use(next_inst) => {
            let (code, xop, udst, ua, ub) = match *next_inst {
                Inst::Cmp { op, dst, a, b } => (OpCode::LoadCmp, cmp_code(op), dst, a, b),
                Inst::Bin { op, dst, a, b } => (OpCode::LoadBin, bin_code(op), dst, a, b),
                _ => unreachable!("fusible_use only accepts Cmp/Bin"),
            };
            Some(UOp {
                code,
                xop,
                a: reg(*dst),
                b: reg(*base),
                c: reg(ub),
                imm: *offset,
                imm2: u32::from(reg(udst)) | u32::from(reg(ua)) << 16,
                pc,
            })
        }
        _ => None,
    }
}

fn lower_single(inst: &Inst, pc: Pc, arg_pool: &mut Vec<u16>) -> UOp {
    let mut u = UOp {
        code: OpCode::Const,
        xop: 0,
        a: NO_REG,
        b: NO_REG,
        c: NO_REG,
        imm: 0,
        imm2: 0,
        pc,
    };
    match inst {
        Inst::Const { dst, value } => {
            u.code = OpCode::Const;
            u.a = reg(*dst);
            u.imm = *value as u32;
            u.imm2 = (*value >> 32) as u32;
        }
        Inst::Mov { dst, src } => {
            u.code = OpCode::Mov;
            u.a = reg(*dst);
            u.b = reg(*src);
        }
        Inst::Bin { op, dst, a, b } => {
            u.code = OpCode::Bin;
            u.xop = bin_code(*op);
            u.a = reg(*dst);
            u.b = reg(*a);
            u.c = reg(*b);
        }
        Inst::Cmp { op, dst, a, b } => {
            u.code = OpCode::Cmp;
            u.xop = cmp_code(*op);
            u.a = reg(*dst);
            u.b = reg(*a);
            u.c = reg(*b);
        }
        Inst::Load { dst, base, offset } => {
            u.code = OpCode::Load;
            u.a = reg(*dst);
            u.b = reg(*base);
            u.imm = *offset;
        }
        Inst::Store { src, base, offset } => {
            u.code = OpCode::Store;
            u.a = reg(*src);
            u.b = reg(*base);
            u.imm = *offset;
        }
        Inst::LoadIdx {
            dst,
            base,
            index,
            offset,
        } => {
            u.code = OpCode::LoadIdx;
            u.a = reg(*dst);
            u.b = reg(*base);
            u.c = reg(*index);
            u.imm = *offset;
        }
        Inst::StoreIdx {
            src,
            base,
            index,
            offset,
        } => {
            u.code = OpCode::StoreIdx;
            u.a = reg(*src);
            u.b = reg(*base);
            u.c = reg(*index);
            u.imm = *offset;
        }
        Inst::Gep {
            dst,
            base,
            index,
            offset,
        } => {
            u.code = OpCode::Gep;
            u.a = reg(*dst);
            u.b = reg(*base);
            u.c = reg(*index);
            u.imm = *offset;
        }
        Inst::Alloc {
            dst,
            words,
            line_align,
        } => {
            u.code = OpCode::Alloc;
            u.xop = u8::from(*line_align);
            u.a = reg(*dst);
            u.b = reg(*words);
        }
        Inst::Call { func, args, dst } => {
            u.code = OpCode::Call;
            u.a = opt_reg(*dst);
            u.c = args.len() as u16;
            u.imm = func.0;
            u.imm2 = arg_pool.len() as u32;
            arg_pool.extend(args.iter().map(|&r| reg(r)));
        }
        Inst::Ret { val } => {
            u.code = OpCode::Ret;
            u.a = opt_reg(*val);
        }
        Inst::Br { target } => {
            u.code = OpCode::Br;
            u.imm = target.0; // patched to a µ-op index afterwards
        }
        Inst::CondBr {
            cond,
            then_b,
            else_b,
        } => {
            u.code = OpCode::CondBr;
            u.a = reg(*cond);
            u.imm = then_b.0;
            u.imm2 = else_b.0;
        }
        Inst::Compute { cycles } => {
            u.code = OpCode::Compute;
            u.imm = *cycles;
        }
        Inst::IdleUntil { cycle } => {
            u.code = OpCode::IdleUntil;
            u.a = reg(*cycle);
        }
        Inst::Rand { dst, bound } => {
            u.code = OpCode::Rand;
            u.a = reg(*dst);
            u.b = reg(*bound);
        }
        Inst::AlPoint {
            anchor,
            base,
            index,
            offset,
        } => {
            u.code = OpCode::AlPoint;
            u.a = reg(*base);
            u.b = opt_reg(*index);
            u.imm = *offset;
            u.imm2 = *anchor;
        }
    }
    u
}

impl BytecodeFunc {
    /// One line per µ-op: index, PC, mnemonic and decoded operands.
    pub fn disasm(&self) -> Vec<String> {
        self.uops
            .iter()
            .enumerate()
            .map(|(i, u)| format!("{i:04} pc={:#x} {}", u.pc, self.disasm_one(u)))
            .collect()
    }

    fn disasm_one(&self, u: &UOp) -> String {
        let r = |s: u16| {
            if s == NO_REG {
                "_".to_string()
            } else {
                format!("r{s}")
            }
        };
        match u.code {
            OpCode::Const => format!(
                "const {} = {}",
                r(u.a),
                u64::from(u.imm2) << 32 | u64::from(u.imm)
            ),
            OpCode::Mov => format!("mov {} = {}", r(u.a), r(u.b)),
            OpCode::Bin => format!(
                "bin.{:?} {} = {}, {}",
                BIN_OPS[u.xop as usize],
                r(u.a),
                r(u.b),
                r(u.c)
            ),
            OpCode::Cmp => format!(
                "cmp.{:?} {} = {}, {}",
                CMP_OPS[u.xop as usize],
                r(u.a),
                r(u.b),
                r(u.c)
            ),
            OpCode::Load => format!("load {} = [{} + {}]", r(u.a), r(u.b), u.imm),
            OpCode::Store => format!("store [{} + {}] = {}", r(u.b), u.imm, r(u.a)),
            OpCode::LoadIdx => {
                format!("load {} = [{} + {} + {}]", r(u.a), r(u.b), r(u.c), u.imm)
            }
            OpCode::StoreIdx => {
                format!("store [{} + {} + {}] = {}", r(u.b), r(u.c), u.imm, r(u.a))
            }
            OpCode::Gep => format!("gep {} = {} + ({} + {})*8", r(u.a), r(u.b), r(u.c), u.imm),
            OpCode::Alloc => format!(
                "alloc {} = {} words{}",
                r(u.a),
                r(u.b),
                if u.xop != 0 { " line-aligned" } else { "" }
            ),
            OpCode::Call => {
                let args: Vec<String> = self.arg_pool
                    [u.imm2 as usize..u.imm2 as usize + u.c as usize]
                    .iter()
                    .map(|&s| r(s))
                    .collect();
                format!("call {} = @{}({})", r(u.a), u.imm, args.join(", "))
            }
            OpCode::Ret => format!("ret {}", r(u.a)),
            OpCode::Br => format!("br {:04}", u.imm),
            OpCode::CondBr => format!("condbr {} ? {:04} : {:04}", r(u.a), u.imm, u.imm2),
            OpCode::Compute => format!("compute {}", u.imm),
            OpCode::IdleUntil => format!("idle_until {}", r(u.a)),
            OpCode::Rand => format!("rand {} = [0, {})", r(u.a), r(u.b)),
            OpCode::AlPoint => format!(
                "alp anchor={} [{} + {} + {}]",
                u.imm2,
                r(u.a),
                r(u.b),
                u.imm
            ),
            OpCode::CmpBr => format!(
                "cmpbr.{:?} {} = {}, {} ? {:04} : {:04}",
                CMP_OPS[u.xop as usize],
                r(u.a),
                r(u.b),
                r(u.c),
                u.imm,
                u.imm2
            ),
            OpCode::LoadCmp | OpCode::LoadBin => {
                let (mn, op) = if u.code == OpCode::LoadCmp {
                    ("load+cmp", format!("{:?}", CMP_OPS[u.xop as usize]))
                } else {
                    ("load+bin", format!("{:?}", BIN_OPS[u.xop as usize]))
                };
                format!(
                    "{mn}.{op} {} = [{} + {}]; r{} = r{}, {}",
                    r(u.a),
                    r(u.b),
                    u.imm,
                    u.imm2 & 0xFFFF,
                    u.imm2 >> 16,
                    r(u.c)
                )
            }
            OpCode::AlpLoad | OpCode::AlpLoadIdx => format!(
                "alp+load anchor={} {} = [{} + {} + {}]",
                u.imm2,
                r(u.a),
                r(u.b),
                r(u.c),
                u.imm
            ),
            OpCode::AlpStore | OpCode::AlpStoreIdx => format!(
                "alp+store anchor={} [{} + {} + {}] = {}",
                u.imm2,
                r(u.b),
                r(u.c),
                u.imm,
                r(u.a)
            ),
        }
    }

    /// How many source instructions a µ-op at `self.uops[i]` consumed.
    pub fn fused_width(code: OpCode) -> usize {
        match code {
            OpCode::CmpBr
            | OpCode::LoadCmp
            | OpCode::LoadBin
            | OpCode::AlpLoad
            | OpCode::AlpLoadIdx
            | OpCode::AlpStore
            | OpCode::AlpStoreIdx => 2,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepared::Prepared;
    use stagger_compiler::compile;
    use tm_ir::{FuncBuilder, FuncKind, Module};

    fn lower_one(b: FuncBuilder) -> BytecodeFunc {
        let mut m = Module::new();
        m.add_function(b.finish());
        let prep = Prepared::build(&compile(&m));
        prep.code.funcs[0].clone()
    }

    #[test]
    fn cmp_condbr_fuses_and_targets_resolve() {
        let mut b = FuncBuilder::new("f", 1, FuncKind::Normal);
        let p = b.param(0);
        let z = b.const_(0);
        let c = b.cmp(tm_ir::CmpOp::Eq, p, z);
        let (then_b, else_b) = (b.new_block(), b.new_block());
        b.cond_br(c, then_b, else_b);
        b.switch_to(then_b);
        b.ret(Some(z));
        b.switch_to(else_b);
        b.ret(Some(p));
        let f = lower_one(b);

        let fused = f
            .uops
            .iter()
            .find(|u| u.code == OpCode::CmpBr)
            .expect("cmp+condbr fused");
        assert_eq!(fused.code, OpCode::CmpBr);
        assert_eq!(CMP_OPS[fused.xop as usize], tm_ir::CmpOp::Eq);
        // Targets are absolute µ-op indices, matching block_starts.
        assert_eq!(fused.imm, f.block_starts[then_b.index()]);
        assert_eq!(fused.imm2, f.block_starts[else_b.index()]);
        assert_eq!(BytecodeFunc::fused_width(fused.code), 2);
    }

    #[test]
    fn load_use_fusion_decodes_both_halves() {
        let mut b = FuncBuilder::new("f", 1, FuncKind::Normal);
        let p = b.param(0);
        let v = b.load(p, 3);
        let s = b.addi(v, 1); // Const then Bin: Const blocks load+bin fusion
        b.ret(Some(s));
        let f = lower_one(b);
        // addi expands to Const + Bin, so the load fuses with nothing here.
        assert!(f.uops.iter().all(|u| u.code != OpCode::LoadBin));

        // A directly adjacent Bin does fuse.
        let mut b = FuncBuilder::new("g", 2, FuncKind::Normal);
        let p = b.param(0);
        let q = b.param(1);
        let v = b.load(p, 3);
        let s = b.bin(tm_ir::BinOp::Add, v, q);
        b.ret(Some(s));
        let f = lower_one(b);
        let fused = f
            .uops
            .iter()
            .find(|u| u.code == OpCode::LoadBin)
            .expect("load+bin fused");
        assert_eq!(fused.a, 2); // load dst
        assert_eq!(fused.b, 0); // load base = param 0
        assert_eq!(fused.imm, 3); // load offset
        assert_eq!(BIN_OPS[fused.xop as usize], tm_ir::BinOp::Add);
        assert_eq!(fused.imm2 & 0xFFFF, 3); // bin dst
        assert_eq!(fused.imm2 >> 16, 2); // bin lhs = loaded value
        assert_eq!(fused.c, 1); // bin rhs = param 1
    }

    #[test]
    fn div_rem_never_fuse_after_a_load() {
        let mut b = FuncBuilder::new("f", 2, FuncKind::Normal);
        let p = b.param(0);
        let q = b.param(1);
        let v = b.load(p, 0);
        let d = b.bin(tm_ir::BinOp::Div, v, q);
        b.ret(Some(d));
        let f = lower_one(b);
        assert!(f.uops.iter().any(|u| u.code == OpCode::Load));
        let div = f
            .uops
            .iter()
            .find(|u| u.code == OpCode::Bin)
            .expect("div stays a standalone Bin");
        assert_eq!(BIN_OPS[div.xop as usize], tm_ir::BinOp::Div);
    }

    #[test]
    fn disasm_lines_cover_every_uop() {
        let mut b = FuncBuilder::new("f", 1, FuncKind::Normal);
        let p = b.param(0);
        let v = b.load(p, 0);
        b.store(v, p, 1);
        b.ret(None);
        let f = lower_one(b);
        let lines = f.disasm();
        assert_eq!(lines.len(), f.uops.len());
        for (line, u) in lines.iter().zip(&f.uops) {
            assert!(line.contains(&format!("pc={:#x}", u.pc)), "{line}");
        }
    }
}
