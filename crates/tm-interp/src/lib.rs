//! # tm-interp — executing instrumented programs on the simulated HTM
//!
//! The "CPU + runtime glue" of the reproduction: an interpreter for
//! `tm-ir` modules that
//!
//! * runs each instruction against the [`htm_sim::Core`] API, charging one
//!   cycle per µ-op plus the memory hierarchy's latencies;
//! * treats a call to an **atomic function** as a hardware transaction,
//!   driving the paper's retry protocol (Section 6): up to `max_retries`
//!   hardware attempts with polite backoff, global-lock subscription
//!   immediately before commit, then **irrevocable mode** under the global
//!   lock;
//! * dispatches [`tm_ir::Inst::AlPoint`] to the Staggered Transactions
//!   runtime ([`stagger_core::ThreadRuntime::alpoint`]), and feeds contention
//!   aborts to the locking policy with the hardware- or software-derived
//!   conflicting-PC information selected by [`stagger_core::Mode`];
//! * collects the dynamic statistics behind Table 3 (µ-ops and anchors per
//!   committed transaction, instrumentation overhead) and Table 4 / Figures
//!   7–8 (commits, aborts, cycles).
//!
//! [`run::run_workload`] is the one-call entry point used by the workloads
//! and the benchmark harnesses.

pub mod bytecode;
pub mod exec;
pub mod prepared;
pub mod run;

pub use bytecode::{Bytecode, BytecodeFunc, OpCode, UOp, NO_REG};
pub use exec::{ExecStats, Executor};
pub use prepared::Prepared;
pub use run::{run_workload, run_workload_prepared, RunOutcome, ThreadPlan};
