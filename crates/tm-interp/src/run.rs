//! Whole-run orchestration: spawn one executor per simulated core, run the
//! thread plans, aggregate statistics.

use crate::exec::{ExecStats, Executor};
use crate::prepared::Prepared;
use htm_sim::{Machine, SchedStats, SimStats, SpecStats};
use stagger_compiler::Compiled;
use stagger_core::{RtStats, RuntimeConfig, SharedRt};
use std::sync::Arc;
use std::sync::Mutex;
use tm_ir::FuncId;

/// What one simulated thread runs: a (normal) entry function and its
/// arguments — typically `thread_main(root, tid, n_ops, ...)`.
#[derive(Debug, Clone)]
pub struct ThreadPlan {
    pub func: FuncId,
    pub args: Vec<u64>,
}

/// Aggregated results of one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Machine-level statistics (cycles, commits, aborts...).
    pub sim: SimStats,
    /// Runtime (policy/lock/accuracy) statistics summed over threads.
    pub rt: RtStats,
    /// Dynamic execution statistics summed over threads.
    pub exec: ExecStats,
    /// Per-thread return values of the entry functions.
    pub returns: Vec<u64>,
    /// Host-side speculative-scheduler counters (all zeros unless the
    /// machine ran under `Scheduler::Speculative`). Never affects any
    /// simulated quantity.
    pub spec: SpecStats,
    /// Host-side scheduling-overhead counters (indexed min-heap calls and
    /// lazy repairs). Never affects any simulated quantity.
    pub sched: SchedStats,
}

impl RunOutcome {
    /// Wall-clock proxy: the maximum core clock.
    pub fn exec_cycles(&self) -> u64 {
        self.sim.exec_cycles
    }
}

/// Run `plans` (one per core of `machine`) against `compiled` under the
/// given runtime configuration. Deterministic for fixed seeds: thread `t`
/// uses workload seed `base_seed + t`.
///
/// Flattens the module with [`Prepared::build`] on every call; harnesses
/// that run the same workload many times should build once and use
/// [`run_workload_prepared`].
pub fn run_workload(
    machine: &Machine,
    compiled: &Compiled,
    rt_cfg: &RuntimeConfig,
    plans: &[ThreadPlan],
    base_seed: u64,
) -> RunOutcome {
    let prepared = Arc::new(Prepared::build(compiled));
    run_workload_prepared(machine, compiled, &prepared, rt_cfg, plans, base_seed)
}

/// Like [`run_workload`], but reusing a pre-built [`Prepared`] flattening
/// of `compiled`. `prepared` MUST come from `Prepared::build` on the same
/// `Compiled` — the executor indexes one with PCs from the other.
pub fn run_workload_prepared(
    machine: &Machine,
    compiled: &Compiled,
    prepared: &Arc<Prepared>,
    rt_cfg: &RuntimeConfig,
    plans: &[ThreadPlan],
    base_seed: u64,
) -> RunOutcome {
    assert_eq!(
        plans.len(),
        machine.config().n_cores,
        "one thread plan per simulated core"
    );
    let shared = SharedRt::new(machine, rt_cfg);
    let results: Mutex<Vec<Option<(RtStats, ExecStats, u64)>>> =
        Mutex::new(vec![None; plans.len()]);

    // Factories, not one-shot bodies: the speculative scheduler re-invokes
    // a core's factory to re-execute it after a mis-speculation, so each
    // call must build a fresh, deterministic program (all inputs cloned
    // inside). A re-execution overwrites its `results` slot; the last
    // write always comes from the committed execution.
    let factories: Vec<_> = plans
        .iter()
        .enumerate()
        .map(|(tid, plan)| {
            let prepared = prepared.clone();
            let results = &results;
            let rt_cfg = rt_cfg.clone();
            let plan = plan.clone();
            htm_sim::factory(move |mut core| {
                let prepared = prepared.clone();
                let rt_cfg = rt_cfg.clone();
                let plan = plan.clone();
                async move {
                    let mut exec = Executor::new(
                        compiled,
                        prepared,
                        rt_cfg,
                        shared,
                        tid,
                        base_seed + tid as u64,
                    );
                    let ret = exec.call(&mut core, plan.func, &plan.args).await;
                    results.lock().unwrap()[tid] =
                        Some((exec.rt.stats.clone(), exec.stats.clone(), ret));
                }
            })
        })
        .collect();

    machine.run_factories(factories);

    let mut rt = RtStats::default();
    let mut exec = ExecStats::default();
    let mut returns = Vec::with_capacity(plans.len());
    for r in results.into_inner().unwrap() {
        let (r_rt, r_exec, ret) = r.expect("every thread must finish");
        rt.add(&r_rt);
        exec.add(&r_exec);
        returns.push(ret);
    }

    RunOutcome {
        sim: machine.stats(),
        rt,
        exec,
        returns,
        spec: machine.spec_stats(),
        sched: machine.sched_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::MachineConfig;
    use stagger_compiler::compile;
    use stagger_core::Mode;
    use tm_ir::{FuncBuilder, FuncKind, Module};

    /// tx_incr(counter): atomically increment with a conflict window.
    /// thread_main(counter, n): call tx_incr n times.
    fn counter_module() -> Module {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("tx_incr", 1, FuncKind::Atomic { ab_id: 0 });
        let p = b.param(0);
        let v = b.load(p, 0);
        b.compute(30); // widen the conflict window
        let v2 = b.addi(v, 1);
        b.store(v2, p, 0);
        b.ret(None);
        let tx = m.add_function(b.finish());

        let mut b = FuncBuilder::new("thread_main", 2, FuncKind::Normal);
        let (p, n) = (b.param(0), b.param(1));
        let i = b.const_(0);
        b.while_(
            |b| b.lt(i, n),
            |b| {
                b.call_void(tx, &[p]);
                let nx = b.addi(i, 1);
                b.assign(i, nx);
            },
        );
        b.ret(Some(i));
        m.add_function(b.finish());
        m
    }

    fn run_counter(mode: Mode, n_threads: usize, per_thread: u64) -> (u64, RunOutcome) {
        let m = counter_module();
        let c = compile(&m);
        let machine = Machine::new(MachineConfig::cores(n_threads).small());
        let counter = machine.host_alloc(8, true);
        let tm = c.module.expect("thread_main");
        let plans: Vec<ThreadPlan> = (0..n_threads)
            .map(|_| ThreadPlan {
                func: tm,
                args: vec![counter, per_thread],
            })
            .collect();
        let rt_cfg = RuntimeConfig::with_mode(mode);
        let out = run_workload(&machine, &c, &rt_cfg, &plans, 42);
        (machine.host_load(counter), out)
    }

    #[test]
    fn all_modes_produce_correct_counts() {
        for mode in Mode::ALL {
            let (val, out) = run_counter(mode, 4, 30);
            assert_eq!(val, 120, "{} must be serializable", mode.name());
            assert_eq!(
                out.exec.committed_txns + out.exec.irrevocable_txns,
                120,
                "{}",
                mode.name()
            );
            assert_eq!(out.returns, vec![30, 30, 30, 30]);
        }
    }

    #[test]
    fn staggered_reduces_aborts_on_hot_counter() {
        // 8 threads hammering one counter: hot enough that the policy's
        // frequency gate (decision 1) engages.
        let (_, base) = run_counter(Mode::Htm, 8, 60);
        let (_, stag) = run_counter(Mode::Staggered, 8, 60);
        let base_apc = base.sim.aborts_per_commit();
        let stag_apc = stag.sim.aborts_per_commit();
        assert!(base_apc > 0.5, "counter must contend, got {base_apc:.2}");
        assert!(
            stag_apc < base_apc * 0.6,
            "advisory locks must cut aborts: baseline {base_apc:.2}, staggered {stag_apc:.2}"
        );
        assert!(stag.rt.locks_acquired > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_counter(Mode::Staggered, 4, 25);
        let b = run_counter(Mode::Staggered, 4, 25);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.sim.exec_cycles, b.1.sim.exec_cycles);
        assert_eq!(a.1.exec.insts, b.1.exec.insts);
        assert_eq!(
            a.1.sim.aggregate().conflict_aborts,
            b.1.sim.aggregate().conflict_aborts
        );
    }

    /// Build and run the 9-lines-one-L1-set workload (always a capacity
    /// overflow) under `fallback`; returns the machine, the array base,
    /// the stride in words, and the outcome.
    fn run_capacity_overflow(
        fallback: htm_sim::FallbackPolicy,
    ) -> (Machine, u64, u64, RunOutcome, u32) {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("tx_big", 2, FuncKind::Atomic { ab_id: 0 });
        let (base, stride_lines) = (b.param(0), b.param(1));
        let i = b.const_(0);
        let n = b.const_(9);
        b.while_(
            |b| b.lt(i, n),
            |b| {
                let off = b.mul(i, stride_lines);
                let addr = b.gep(base, off, 0);
                let v = b.load(addr, 0);
                let v2 = b.addi(v, 1);
                b.store(v2, addr, 0);
                let nx = b.addi(i, 1);
                b.assign(i, nx);
            },
        );
        b.ret(None);
        let tx = m.add_function(b.finish());
        let mut b = FuncBuilder::new("main", 2, FuncKind::Normal);
        b.call_void(tx, &[b.param(0), b.param(1)]);
        b.ret(None);
        m.add_function(b.finish());

        let c = compile(&m);
        let machine = Machine::new(MachineConfig::cores(1).small().fallback(fallback));
        let cfg = machine.config().clone();
        // Stride of l1_sets lines => same set index every time.
        let stride_words = (cfg.l1_sets as u64) * 8;
        let base = machine.host_alloc(stride_words * 10, true);
        let main = c.module.expect("main");
        let rt_cfg = RuntimeConfig::with_mode(Mode::Staggered);
        let out = run_workload(
            &machine,
            &c,
            &rt_cfg,
            &[ThreadPlan {
                func: main,
                args: vec![base, stride_words],
            }],
            7,
        );
        let max_retries = rt_cfg.max_retries;
        (machine, base, stride_words, out, max_retries)
    }

    #[test]
    fn capacity_overflow_falls_back_to_irrevocable() {
        // A transaction touching 9 lines in the same L1 set overflows the
        // 8 ways every attempt; after max_retries it must complete
        // irrevocably.
        let (machine, base, stride_words, out, max_retries) =
            run_capacity_overflow(htm_sim::FallbackPolicy::Irrevocable);
        assert_eq!(out.exec.irrevocable_txns, 1);
        assert_eq!(out.exec.committed_txns, 0);
        let agg = out.sim.aggregate();
        assert_eq!(agg.capacity_aborts as u32, max_retries);
        assert_eq!(agg.irrevocable_commits, 1);
        // All 9 increments took effect exactly once.
        for i in 0..9u64 {
            assert_eq!(machine.host_load(base + i * stride_words * 8), 1);
        }
    }

    #[test]
    fn capacity_overflow_falls_back_to_hybrid_software_path() {
        // Same workload under the hybrid policy: after max_retries the
        // transaction must complete on the instrumented software path
        // (accounted as a fallback commit), with identical data results.
        let (machine, base, stride_words, out, max_retries) =
            run_capacity_overflow(htm_sim::FallbackPolicy::HybridStm);
        assert_eq!(out.exec.irrevocable_txns, 1, "one software-path commit");
        assert_eq!(out.exec.committed_txns, 0);
        let agg = out.sim.aggregate();
        assert_eq!(agg.capacity_aborts as u32, max_retries);
        assert_eq!(agg.irrevocable_commits, 1);
        for i in 0..9u64 {
            assert_eq!(machine.host_load(base + i * stride_words * 8), 1);
        }
    }

    #[test]
    fn new_fallback_policies_stay_serializable_under_contention() {
        use htm_sim::FallbackPolicy;
        for fb in [
            FallbackPolicy::HybridStm,
            FallbackPolicy::LazySubscriptionSafe,
        ] {
            let m = counter_module();
            let c = compile(&m);
            let machine = Machine::new(MachineConfig::cores(4).small().fallback(fb));
            let counter = machine.host_alloc(8, true);
            let tm = c.module.expect("thread_main");
            let plans: Vec<ThreadPlan> = (0..4)
                .map(|_| ThreadPlan {
                    func: tm,
                    args: vec![counter, 30],
                })
                .collect();
            let rt_cfg = RuntimeConfig::with_mode(Mode::Htm);
            let out = run_workload(&machine, &c, &rt_cfg, &plans, 42);
            assert_eq!(
                machine.host_load(counter),
                120,
                "{} must stay serializable",
                fb.name()
            );
            assert_eq!(
                out.exec.committed_txns + out.exec.irrevocable_txns,
                120,
                "{}",
                fb.name()
            );
        }
    }

    #[test]
    fn uops_and_anchors_per_txn_counted() {
        let (_, out) = run_counter(Mode::Staggered, 1, 10);
        assert_eq!(out.exec.committed_txns, 10);
        assert!(out.exec.uops_per_txn() > 2.0);
        // tx_incr has exactly one anchor (the load; the store is its
        // pioneer on the same node).
        assert!((out.exec.anchors_per_txn() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_htm_charges_no_alp_cost() {
        // Single-threaded: Staggered (inactive ALPs) must cost only a few
        // cycles more than the Htm baseline (Table 3: "<1%–5%").
        let (_, base) = run_counter(Mode::Htm, 1, 50);
        let (_, inst) = run_counter(Mode::Staggered, 1, 50);
        let b = base.sim.exec_cycles as f64;
        let i = inst.sim.exec_cycles as f64;
        assert!(i >= b, "instrumentation cannot be free");
        assert!(
            i / b < 1.10,
            "inactive ALP overhead must be small: {b} vs {i}"
        );
    }
}
