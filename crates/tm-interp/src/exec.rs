//! The per-thread executor: IR interpretation + the transaction retry
//! driver.

use crate::bytecode::{BytecodeFunc, OpCode, BIN_OPS, CMP_OPS, NO_REG};
use crate::prepared::{Prepared, PreparedFunc};
use htm_sim::{AbortCause, Addr, Core, FallbackPolicy, TxError};
use stagger_core::{Interp, RuntimeConfig, SharedRt, ThreadRuntime};
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use tm_ir::{FuncId, FuncKind, Inst};

/// Sentinel "PC" used for the transactional global-lock subscription read.
/// Odd on purpose: real instruction PCs are 4-byte aligned, so the 12-bit
/// tag `1` can never alias a table entry.
const GLOBAL_LOCK_SUB_PC: u64 = 1;

/// Sentinel "PC" for the hybrid-TM per-access ownership-stripe read (odd
/// for the same non-aliasing reason as [`GLOBAL_LOCK_SUB_PC`]).
const HYBRID_STRIPE_SUB_PC: u64 = 3;

/// Dynamic execution statistics of one thread (Table 3's "Dynamic Stats").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// All interpreted instructions (µ-ops), any mode.
    pub insts: u64,
    /// Committed hardware transactions (irrevocable completions excluded).
    pub committed_txns: u64,
    /// µ-ops executed inside committed transaction attempts.
    pub committed_insts: u64,
    /// ALPoints executed inside committed transaction attempts.
    pub committed_anchors: u64,
    /// Aborted hardware attempts.
    pub aborted_attempts: u64,
    /// Transactions completed in irrevocable (global-lock) mode.
    pub irrevocable_txns: u64,
}

impl ExecStats {
    pub fn add(&mut self, o: &ExecStats) {
        self.insts += o.insts;
        self.committed_txns += o.committed_txns;
        self.committed_insts += o.committed_insts;
        self.committed_anchors += o.committed_anchors;
        self.aborted_attempts += o.aborted_attempts;
        self.irrevocable_txns += o.irrevocable_txns;
    }

    /// Mean µ-ops per committed transaction.
    pub fn uops_per_txn(&self) -> f64 {
        if self.committed_txns == 0 {
            0.0
        } else {
            self.committed_insts as f64 / self.committed_txns as f64
        }
    }

    /// Mean executed anchors (ALPoints) per committed transaction.
    pub fn anchors_per_txn(&self) -> f64 {
        if self.committed_txns == 0 {
            0.0
        } else {
            self.committed_anchors as f64 / self.committed_txns as f64
        }
    }
}

/// One simulated thread's interpreter + Staggered Transactions runtime.
pub struct Executor<'c> {
    prepared: Arc<Prepared>,
    pub rt: ThreadRuntime<'c>,
    rng: u64,
    pub stats: ExecStats,
    attempt_insts: u64,
    attempt_anchors: u64,
    /// True while executing the hybrid-TM *software* fallback path: plain
    /// memory accesses then go through the per-line ownership-stripe
    /// instrumentation instead of raw coherence ops.
    sw_fallback: bool,
    /// Ownership-stripe words held by the current software fallback.
    sw_stripes: Vec<Addr>,
}

impl<'c> Executor<'c> {
    pub fn new(
        compiled: &'c stagger_compiler::Compiled,
        prepared: Arc<Prepared>,
        rt_cfg: RuntimeConfig,
        shared: SharedRt,
        tid: usize,
        seed: u64,
    ) -> Self {
        Executor {
            prepared,
            rt: ThreadRuntime::new(rt_cfg, compiled, shared, tid),
            rng: seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(tid as u64 + 1)
                | 1,
            stats: ExecStats::default(),
            attempt_insts: 0,
            attempt_anchors: 0,
            sw_fallback: false,
            sw_stripes: Vec::new(),
        }
    }

    fn rand_below(&mut self, bound: u64) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) % bound
    }

    /// Call function `fid`. Atomic functions run the full transaction
    /// protocol; normal functions execute plainly (and must not be
    /// transactional-only helpers invoked outside a transaction — they run
    /// with plain coherence semantics in that case).
    pub async fn call(&mut self, core: &mut Core<'_>, fid: FuncId, args: &[u64]) -> u64 {
        let prepared = self.prepared.clone();
        let f = &prepared.funcs[fid.index()];
        match f.kind {
            FuncKind::Atomic { ab_id } => self.run_txn(core, &prepared, fid, ab_id, args).await,
            FuncKind::Normal => self
                .exec_function(core, &prepared, fid, args, None)
                .await
                .expect("plain execution cannot abort"),
        }
    }

    /// The retry protocol of paper Section 6: up to `max_retries` hardware
    /// attempts with polite backoff, global-lock subscription immediately
    /// before commit, then irrevocable execution under the global lock.
    ///
    /// Boxed future: `run_txn` and [`Self::exec_function`] are mutually
    /// recursive, so neither can be a plain `async fn`.
    fn run_txn<'a, 'm>(
        &'a mut self,
        core: &'a mut Core<'m>,
        prepared: &'a Prepared,
        fid: FuncId,
        ab_id: u32,
        args: &'a [u64],
    ) -> Pin<Box<dyn Future<Output = u64> + Send + 'a>> {
        Box::pin(async move {
            let gl = self.rt.global_lock();
            let fallback = self.rt.shared().fallback;
            let spin = self.rt.cfg.lock_spin;
            let max_retries = self.rt.cfg.max_retries;
            let mut attempt: u32 = 0;
            loop {
                if attempt >= max_retries {
                    if fallback == FallbackPolicy::HybridStm {
                        return self.run_sw_fallback(core, prepared, fid, args).await;
                    }
                    // Irrevocable mode: acquire the global lock and run
                    // non-speculatively. Plain stores doom any racing
                    // speculative readers/writers (requester wins).
                    gl.acquire(core, spin).await;
                    let t0 = core.now();
                    core.note(htm_sim::obs::ObsKind::IrrevocableEnter);
                    let r = self
                        .exec_function(core, prepared, fid, args, None)
                        .await
                        .expect("irrevocable execution cannot abort");
                    let dt = core.now().saturating_sub(t0);
                    // Stamp the exit before the release/stat ops advance the
                    // clock, so the event's [clock - cycles, clock] span is
                    // exactly the lock-held execution window.
                    core.note(htm_sim::obs::ObsKind::IrrevocableExit { cycles: dt });
                    gl.release(core).await;
                    core.record_irrevocable(dt).await;
                    self.stats.irrevocable_txns += 1;
                    return r;
                }
                // Note: the paper's runtime does NOT test the global lock
                // before starting an attempt — transactions subscribe to it
                // only "immediately before attempting to commit". Speculative
                // attempts racing an irrevocable transaction therefore run to
                // completion and waste their work, which is a real (and
                // reproduced) component of the baseline's collapse under heavy
                // contention.
                self.attempt_insts = 0;
                self.attempt_anchors = 0;
                core.tx_begin(ab_id).await;
                self.rt.txn_start(core, ab_id).await;
                match self
                    .exec_function(core, prepared, fid, args, Some(ab_id))
                    .await
                {
                    Ok(v) => {
                        // Subscribe to the global lock immediately before
                        // commit: its line joins our read set, so a racing
                        // irrevocable acquisition dooms us. The two
                        // lazy-subscription policies elide this read — the
                        // unsafe one relies on nothing else (and can commit
                        // torn views of an in-flight fallback writer), the
                        // safe one on the hardware's commit-time validation
                        // of the registered lock word. Hybrid mode has no
                        // stop-the-world writer to subscribe to; safety
                        // comes from the per-access stripe reads instead.
                        let sub = if fallback == FallbackPolicy::Irrevocable {
                            core.tx_load(gl.addr(), GLOBAL_LOCK_SUB_PC).await
                        } else {
                            Ok(0)
                        };
                        match sub {
                            Ok(0) => match core.tx_commit().await {
                                Ok(()) => {
                                    self.rt.on_commit(core, ab_id, attempt).await;
                                    self.stats.committed_txns += 1;
                                    self.stats.committed_insts += self.attempt_insts;
                                    self.stats.committed_anchors += self.attempt_anchors;
                                    return v;
                                }
                                Err(e) => self.handle_abort(core, ab_id, e, attempt).await,
                            },
                            Ok(_held) => {
                                // Global lock held: we must not commit. The
                                // attempt's work is already wasted (the lemming
                                // effect of lazy subscription); spin until the
                                // irrevocable transaction finishes so retries
                                // aren't burned against the same holder.
                                core.tx_abort().await;
                                self.stats.aborted_attempts += 1;
                                self.rt.on_other_abort(core).await;
                                gl.wait_until_free(core, spin).await;
                            }
                            Err(e) => self.handle_abort(core, ab_id, e, attempt).await,
                        }
                    }
                    Err(e) => self.handle_abort(core, ab_id, e, attempt).await,
                }
                attempt += 1;
            }
        })
    }

    /// The hybrid-TM software fallback (Brown & Ravi style): instead of
    /// stopping the world under the global lock, run an *instrumented*
    /// software path whose per-line ownership stripes are visible to
    /// concurrent hardware transactions. The global lock is reused purely
    /// as a software-software mutex (stripe acquisition order is the
    /// execution's encounter order, so two concurrent software
    /// transactions could deadlock without it); hardware transactions do
    /// NOT subscribe to it in this mode and keep committing throughout,
    /// except where they touch a line whose stripe the software
    /// transaction owns.
    fn run_sw_fallback<'a, 'm>(
        &'a mut self,
        core: &'a mut Core<'m>,
        prepared: &'a Prepared,
        fid: FuncId,
        args: &'a [u64],
    ) -> Pin<Box<dyn Future<Output = u64> + Send + 'a>> {
        Box::pin(async move {
            let gl = self.rt.global_lock();
            let spin = self.rt.cfg.lock_spin;
            gl.acquire(core, spin).await;
            let t0 = core.now();
            core.note(htm_sim::obs::ObsKind::IrrevocableEnter);
            self.sw_fallback = true;
            let r = self
                .exec_function(core, prepared, fid, args, None)
                .await
                .expect("software fallback cannot abort");
            self.sw_fallback = false;
            // Releasing the stripes publishes the commit; the window below
            // therefore includes them, like the irrevocable path's stores.
            while let Some(w) = self.sw_stripes.pop() {
                core.nt_store(w, 0).await;
            }
            let dt = core.now().saturating_sub(t0);
            core.note(htm_sim::obs::ObsKind::IrrevocableExit { cycles: dt });
            gl.release(core).await;
            // Software-path completions share the irrevocable counters
            // ("fallback commits"): same role in aborts-per-commit and the
            // %I fraction, and sweep cell schemas stay unchanged.
            core.record_irrevocable(dt).await;
            self.stats.irrevocable_txns += 1;
            r
        })
    }

    /// Per-access instrumentation of the software fallback: read the
    /// line's ownership stripe and claim it on first touch. The claiming
    /// `nt_cas` is a real coherence write, so it dooms every hardware
    /// transaction whose read set holds this stripe. Under the
    /// software-software mutex the stripe is only ever free or ours, but
    /// the charged check-then-claim per access is the point — it is the
    /// hybrid instrumentation cost.
    async fn sw_own(&mut self, core: &mut Core<'_>, addr: Addr) {
        let stripes = self
            .rt
            .shared()
            .hybrid
            .expect("software fallback without a stripe table");
        let word = stripes.lock_addr_for(addr);
        let me = core.tid() as u64 + 1;
        if core.nt_load(word).await != me {
            let spin = self.rt.cfg.lock_spin;
            while !core.nt_cas(word, 0, me).await {
                core.charge_lock_wait(spin).await;
            }
            self.sw_stripes.push(word);
        }
    }

    async fn handle_abort(&mut self, core: &mut Core<'_>, ab_id: u32, e: TxError, attempt: u32) {
        self.stats.aborted_attempts += 1;
        let info = e.info();
        match info.cause {
            AbortCause::Conflict => self.rt.on_conflict_abort(core, ab_id, &info, attempt).await,
            AbortCause::Capacity | AbortCause::Explicit | AbortCause::SubscriptionValidation => {
                self.rt.on_other_abort(core).await
            }
        }
        self.rt.backoff(core, attempt).await;
        // Part of the polite retry policy: if an irrevocable transaction is
        // running, retrying against it just burns attempts (its plain
        // stores doom us again) — wait it out. The attempt that was already
        // wasted stays wasted.
        let gl = self.rt.global_lock();
        if gl.is_held(core).await {
            gl.wait_until_free(core, self.rt.cfg.lock_spin).await;
        }
    }

    /// Interpret one function. `tx` is the atomic-block id when running
    /// speculatively; `None` for plain (non-transactional or irrevocable)
    /// execution.
    ///
    /// Dispatches to the interpreter selected by `RuntimeConfig::interp`;
    /// both paths charge identical simulated cycles and statistics, in the
    /// same order relative to the core's gates, so results are
    /// bit-for-bit equal (the bench crate's `interp_equivalence` test
    /// enforces this).
    fn exec_function<'a, 'm>(
        &'a mut self,
        core: &'a mut Core<'m>,
        prepared: &'a Prepared,
        fid: FuncId,
        args: &'a [u64],
        tx: Option<u32>,
    ) -> Pin<Box<dyn Future<Output = Result<u64, TxError>> + Send + 'a>> {
        match self.rt.cfg.interp {
            Interp::Bytecode => self.exec_bytecode(core, prepared, fid, args, tx),
            Interp::Legacy => self.exec_legacy(core, prepared, fid, args, tx),
        }
    }

    /// The fast path: a dense dispatch loop over the pre-decoded µ-op
    /// array — absolute branch targets, inlined register slots, fused
    /// superinstructions (see [`crate::bytecode`]).
    ///
    /// Boxed future: recursive through `OpCode::Call` (and mutually with
    /// [`Self::run_txn`]).
    fn exec_bytecode<'a, 'm>(
        &'a mut self,
        core: &'a mut Core<'m>,
        prepared: &'a Prepared,
        fid: FuncId,
        args: &'a [u64],
        tx: Option<u32>,
    ) -> Pin<Box<dyn Future<Output = Result<u64, TxError>> + Send + 'a>> {
        Box::pin(async move {
            let f: &PreparedFunc = &prepared.funcs[fid.index()];
            let bf: &BytecodeFunc = &prepared.code.funcs[fid.index()];
            debug_assert_eq!(args.len(), f.n_params as usize, "arity in {}", f.name);
            let mut regs = vec![0u64; f.n_regs as usize];
            regs[..args.len()].copy_from_slice(args);
            let mut ip = bf.entry as usize;
            let in_tx = tx.is_some();
            loop {
                let u = bf.uops[ip];
                ip += 1;
                // One cycle + one counted µ-op per op, charged up front as
                // the legacy walk does. ALP-carrying ops defer: the ALP half
                // is not a µ-op (its cost is owned by the runtime), and the
                // fused access half is charged after the ALP returns.
                match u.code {
                    OpCode::AlPoint
                    | OpCode::AlpLoad
                    | OpCode::AlpLoadIdx
                    | OpCode::AlpStore
                    | OpCode::AlpStoreIdx => {}
                    _ => {
                        core.compute(1);
                        self.stats.insts += 1;
                        if in_tx {
                            self.attempt_insts += 1;
                        }
                    }
                }
                match u.code {
                    OpCode::Const => {
                        regs[u.a as usize] = u64::from(u.imm2) << 32 | u64::from(u.imm);
                    }
                    OpCode::Mov => regs[u.a as usize] = regs[u.b as usize],
                    OpCode::Bin => {
                        regs[u.a as usize] = BIN_OPS[u.xop as usize]
                            .eval(regs[u.b as usize], regs[u.c as usize])
                            .unwrap_or_else(|| {
                                panic!("division by zero in {} at pc {:#x}", f.name, u.pc)
                            });
                    }
                    OpCode::Cmp => {
                        regs[u.a as usize] =
                            CMP_OPS[u.xop as usize].eval(regs[u.b as usize], regs[u.c as usize]);
                    }
                    OpCode::Load => {
                        let addr = self.effective(&f.name, regs[u.b as usize], 0, u.imm);
                        regs[u.a as usize] = self.mem_load(core, addr, u.pc, tx).await?;
                    }
                    OpCode::Store => {
                        let addr = self.effective(&f.name, regs[u.b as usize], 0, u.imm);
                        self.mem_store(core, addr, regs[u.a as usize], u.pc, tx)
                            .await?;
                    }
                    OpCode::LoadIdx => {
                        let addr =
                            self.effective(&f.name, regs[u.b as usize], regs[u.c as usize], u.imm);
                        regs[u.a as usize] = self.mem_load(core, addr, u.pc, tx).await?;
                    }
                    OpCode::StoreIdx => {
                        let addr =
                            self.effective(&f.name, regs[u.b as usize], regs[u.c as usize], u.imm);
                        self.mem_store(core, addr, regs[u.a as usize], u.pc, tx)
                            .await?;
                    }
                    OpCode::Gep => {
                        regs[u.a as usize] = regs[u.b as usize]
                            .wrapping_add(regs[u.c as usize].wrapping_add(u64::from(u.imm)) * 8);
                    }
                    OpCode::Alloc => {
                        regs[u.a as usize] = core.alloc(regs[u.b as usize], u.xop != 0).await;
                    }
                    OpCode::Call => {
                        let pool = &bf.arg_pool[u.imm2 as usize..u.imm2 as usize + u.c as usize];
                        let vals: Vec<u64> = pool.iter().map(|&s| regs[s as usize]).collect();
                        let callee = FuncId(u.imm);
                        let r = match prepared.funcs[callee.index()].kind {
                            FuncKind::Atomic { ab_id } => {
                                debug_assert!(tx.is_none(), "nested atomic call");
                                self.run_txn(core, prepared, callee, ab_id, &vals).await
                            }
                            FuncKind::Normal => {
                                self.exec_function(core, prepared, callee, &vals, tx)
                                    .await?
                            }
                        };
                        if u.a != NO_REG {
                            regs[u.a as usize] = r;
                        }
                    }
                    OpCode::Ret => {
                        return Ok(if u.a == NO_REG { 0 } else { regs[u.a as usize] });
                    }
                    OpCode::Br => ip = u.imm as usize,
                    OpCode::CondBr => {
                        ip = if regs[u.a as usize] != 0 {
                            u.imm as usize
                        } else {
                            u.imm2 as usize
                        };
                    }
                    OpCode::Compute => core.compute(u64::from(u.imm)),
                    OpCode::IdleUntil => core.idle_until(regs[u.a as usize]),
                    OpCode::Rand => {
                        let b = regs[u.b as usize];
                        assert!(b > 0, "rand with zero bound in {}", f.name);
                        regs[u.a as usize] = self.rand_below(b);
                    }
                    OpCode::AlPoint => {
                        let idx = if u.b == NO_REG { 0 } else { regs[u.b as usize] };
                        let addr = regs[u.a as usize].wrapping_add((idx + u64::from(u.imm)) * 8);
                        if in_tx {
                            self.attempt_anchors += 1;
                        }
                        self.rt
                            .alpoint(core, tx.unwrap_or(0), u.imm2, addr, in_tx)
                            .await;
                    }
                    OpCode::CmpBr => {
                        // Second constituent: both halves are local, so the
                        // two cycles fold into the same gate either way.
                        core.compute(1);
                        self.stats.insts += 1;
                        if in_tx {
                            self.attempt_insts += 1;
                        }
                        let v =
                            CMP_OPS[u.xop as usize].eval(regs[u.b as usize], regs[u.c as usize]);
                        regs[u.a as usize] = v;
                        ip = if v != 0 {
                            u.imm as usize
                        } else {
                            u.imm2 as usize
                        };
                    }
                    OpCode::LoadCmp | OpCode::LoadBin => {
                        let addr = self.effective(&f.name, regs[u.b as usize], 0, u.imm);
                        // An abort propagates before the use half is
                        // charged, exactly as if the second instruction
                        // never ran.
                        regs[u.a as usize] = self.mem_load(core, addr, u.pc, tx).await?;
                        core.compute(1);
                        self.stats.insts += 1;
                        if in_tx {
                            self.attempt_insts += 1;
                        }
                        // Operands are read from the register file *after*
                        // the load wrote its destination, so aliasing needs
                        // no special casing.
                        let (dst, lhs) = ((u.imm2 & 0xFFFF) as usize, (u.imm2 >> 16) as usize);
                        regs[dst] = if u.code == OpCode::LoadCmp {
                            CMP_OPS[u.xop as usize].eval(regs[lhs], regs[u.c as usize])
                        } else {
                            // Div/Rem are never fused, so eval cannot fail.
                            BIN_OPS[u.xop as usize]
                                .eval(regs[lhs], regs[u.c as usize])
                                .unwrap()
                        };
                    }
                    OpCode::AlpLoad
                    | OpCode::AlpLoadIdx
                    | OpCode::AlpStore
                    | OpCode::AlpStoreIdx => {
                        let indexed = matches!(u.code, OpCode::AlpLoadIdx | OpCode::AlpStoreIdx);
                        let idx = if indexed { regs[u.c as usize] } else { 0 };
                        // ALP half: same address arithmetic as the legacy
                        // AlPoint arm (no null check — that belongs to the
                        // access) and no µ-op charge.
                        let alp_addr =
                            regs[u.b as usize].wrapping_add((idx + u64::from(u.imm)) * 8);
                        if in_tx {
                            self.attempt_anchors += 1;
                        }
                        self.rt
                            .alpoint(core, tx.unwrap_or(0), u.imm2, alp_addr, in_tx)
                            .await;
                        // Access half: charged like any standalone access.
                        core.compute(1);
                        self.stats.insts += 1;
                        if in_tx {
                            self.attempt_insts += 1;
                        }
                        let addr = self.effective(&f.name, regs[u.b as usize], idx, u.imm);
                        if matches!(u.code, OpCode::AlpLoad | OpCode::AlpLoadIdx) {
                            regs[u.a as usize] = self.mem_load(core, addr, u.pc, tx).await?;
                        } else {
                            self.mem_store(core, addr, regs[u.a as usize], u.pc, tx)
                                .await?;
                        }
                    }
                }
            }
        })
    }

    /// The reference path: walk the `Prepared` enum-instruction blocks.
    /// Kept selectable (`--interp legacy`) as the equivalence baseline.
    ///
    /// Boxed future: recursive through `Inst::Call` (and mutually with
    /// [`Self::run_txn`]).
    fn exec_legacy<'a, 'm>(
        &'a mut self,
        core: &'a mut Core<'m>,
        prepared: &'a Prepared,
        fid: FuncId,
        args: &'a [u64],
        tx: Option<u32>,
    ) -> Pin<Box<dyn Future<Output = Result<u64, TxError>> + Send + 'a>> {
        Box::pin(async move {
            let f: &PreparedFunc = &prepared.funcs[fid.index()];
            debug_assert_eq!(args.len(), f.n_params as usize, "arity in {}", f.name);
            let mut regs = vec![0u64; f.n_regs as usize];
            regs[..args.len()].copy_from_slice(args);
            let mut bid = f.entry;

            'blocks: loop {
                let block = &f.blocks[bid.index()];
                for (inst, pc) in block {
                    // One cycle per µ-op, except the ALPoint pseudo-instruction
                    // whose cost is owned by the runtime (zero in baseline mode).
                    if !matches!(inst, Inst::AlPoint { .. }) {
                        core.compute(1);
                        self.stats.insts += 1;
                        if tx.is_some() {
                            self.attempt_insts += 1;
                        }
                    }
                    match *inst {
                        Inst::Const { dst, value } => regs[dst.index()] = value,
                        Inst::Mov { dst, src } => regs[dst.index()] = regs[src.index()],
                        Inst::Bin { op, dst, a, b } => {
                            regs[dst.index()] = op
                                .eval(regs[a.index()], regs[b.index()])
                                .unwrap_or_else(|| {
                                    panic!("division by zero in {} at pc {pc:#x}", f.name)
                                });
                        }
                        Inst::Cmp { op, dst, a, b } => {
                            regs[dst.index()] = op.eval(regs[a.index()], regs[b.index()]);
                        }
                        Inst::Load { dst, base, offset } => {
                            let addr = self.effective(&f.name, regs[base.index()], 0, offset);
                            regs[dst.index()] = self.mem_load(core, addr, *pc, tx).await?;
                        }
                        Inst::Store { src, base, offset } => {
                            let addr = self.effective(&f.name, regs[base.index()], 0, offset);
                            self.mem_store(core, addr, regs[src.index()], *pc, tx)
                                .await?;
                        }
                        Inst::LoadIdx {
                            dst,
                            base,
                            index,
                            offset,
                        } => {
                            let addr = self.effective(
                                &f.name,
                                regs[base.index()],
                                regs[index.index()],
                                offset,
                            );
                            regs[dst.index()] = self.mem_load(core, addr, *pc, tx).await?;
                        }
                        Inst::StoreIdx {
                            src,
                            base,
                            index,
                            offset,
                        } => {
                            let addr = self.effective(
                                &f.name,
                                regs[base.index()],
                                regs[index.index()],
                                offset,
                            );
                            self.mem_store(core, addr, regs[src.index()], *pc, tx)
                                .await?;
                        }
                        Inst::Gep {
                            dst,
                            base,
                            index,
                            offset,
                        } => {
                            regs[dst.index()] = regs[base.index()].wrapping_add(
                                (regs[index.index()].wrapping_add(offset as u64)) * 8,
                            );
                        }
                        Inst::Alloc {
                            dst,
                            words,
                            line_align,
                        } => {
                            regs[dst.index()] = core.alloc(regs[words.index()], line_align).await;
                        }
                        Inst::Call {
                            func,
                            args: ref call_args,
                            dst,
                        } => {
                            let vals: Vec<u64> =
                                call_args.iter().map(|r| regs[r.index()]).collect();
                            let r = match prepared.funcs[func.index()].kind {
                                // A call to an atomic function from plain code
                                // opens a hardware transaction (the verifier
                                // rejects atomic-from-atomic).
                                FuncKind::Atomic { ab_id } => {
                                    debug_assert!(tx.is_none(), "nested atomic call");
                                    self.run_txn(core, prepared, func, ab_id, &vals).await
                                }
                                FuncKind::Normal => {
                                    self.exec_function(core, prepared, func, &vals, tx).await?
                                }
                            };
                            if let Some(d) = dst {
                                regs[d.index()] = r;
                            }
                        }
                        Inst::Ret { val } => {
                            return Ok(val.map_or(0, |r| regs[r.index()]));
                        }
                        Inst::Br { target } => {
                            bid = target;
                            continue 'blocks;
                        }
                        Inst::CondBr {
                            cond,
                            then_b,
                            else_b,
                        } => {
                            bid = if regs[cond.index()] != 0 {
                                then_b
                            } else {
                                else_b
                            };
                            continue 'blocks;
                        }
                        Inst::Compute { cycles } => core.compute(cycles as u64),
                        Inst::IdleUntil { cycle } => core.idle_until(regs[cycle.index()]),
                        Inst::Rand { dst, bound } => {
                            let b = regs[bound.index()];
                            assert!(b > 0, "rand with zero bound in {}", f.name);
                            regs[dst.index()] = self.rand_below(b);
                        }
                        Inst::AlPoint {
                            anchor,
                            base,
                            index,
                            offset,
                        } => {
                            let idx = index.map_or(0, |r| regs[r.index()]);
                            let addr = regs[base.index()].wrapping_add((idx + offset as u64) * 8);
                            if tx.is_some() {
                                self.attempt_anchors += 1;
                            }
                            self.rt
                                .alpoint(core, tx.unwrap_or(0), anchor, addr, tx.is_some())
                                .await;
                        }
                    }
                }
                unreachable!("block without terminator survived verification");
            }
        })
    }

    #[inline]
    fn effective(&self, fname: &str, base: u64, index: u64, offset: u32) -> Addr {
        assert!(base != 0, "null dereference in {fname}");
        base.wrapping_add(index.wrapping_add(offset as u64) * 8)
    }

    /// Hybrid-mode instrumentation of a *hardware* transactional access:
    /// transactionally read the line's ownership stripe — it joins the
    /// read set, so a software fallback's claiming CAS dooms us — and
    /// self-abort if a software transaction owns the line right now.
    async fn hw_stripe_check(&mut self, core: &mut Core<'_>, addr: Addr) -> Result<(), TxError> {
        if let Some(stripes) = self.rt.shared().hybrid {
            let word = stripes.lock_addr_for(addr);
            if core.tx_load(word, HYBRID_STRIPE_SUB_PC).await? != 0 {
                return Err(core.tx_abort().await);
            }
        }
        Ok(())
    }

    async fn mem_load(
        &mut self,
        core: &mut Core<'_>,
        addr: Addr,
        pc: u64,
        tx: Option<u32>,
    ) -> Result<u64, TxError> {
        match tx {
            Some(_) => {
                self.hw_stripe_check(core, addr).await?;
                core.tx_load(addr, pc).await
            }
            None => {
                if self.sw_fallback {
                    self.sw_own(core, addr).await;
                }
                Ok(core.plain_load(addr).await)
            }
        }
    }

    async fn mem_store(
        &mut self,
        core: &mut Core<'_>,
        addr: Addr,
        val: u64,
        pc: u64,
        tx: Option<u32>,
    ) -> Result<(), TxError> {
        match tx {
            Some(_) => {
                self.hw_stripe_check(core, addr).await?;
                core.tx_store(addr, val, pc).await
            }
            None => {
                if self.sw_fallback {
                    self.sw_own(core, addr).await;
                }
                core.plain_store(addr, val).await;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::run::{run_workload, ThreadPlan};
    use htm_sim::{Machine, MachineConfig};
    use stagger_compiler::compile;
    use stagger_core::{Mode, RuntimeConfig};
    use tm_ir::{FuncBuilder, FuncKind, Module};

    /// Run `build` as a single-threaded plain program with `args` and
    /// return the entry function's result.
    fn eval(build: impl FnOnce(&mut Module), args: Vec<u64>) -> (u64, Machine) {
        let mut m = Module::new();
        build(&mut m);
        let compiled = compile(&m);
        let machine = Machine::new(MachineConfig::cores(1).small());
        let out = run_workload(
            &machine,
            &compiled,
            &RuntimeConfig::with_mode(Mode::Staggered),
            &[ThreadPlan {
                func: compiled.module.expect("thread_main"),
                args,
            }],
            1,
        );
        (out.returns[0], machine)
    }

    #[test]
    fn gep_computes_element_addresses() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("thread_main", 1, FuncKind::Normal);
        let base = b.param(0);
        let idx = b.const_(3);
        let p = b.gep(base, idx, 2); // base + (3+2)*8
        b.store_const(77, p, 0);
        b.ret(Some(p));
        m.add_function(b.finish());
        let compiled = compile(&m);
        let machine = Machine::new(MachineConfig::cores(1).small());
        let arr = machine.host_alloc(16, true);
        let out = run_workload(
            &machine,
            &compiled,
            &RuntimeConfig::with_mode(Mode::Htm),
            &[ThreadPlan {
                func: compiled.module.expect("thread_main"),
                args: vec![arr],
            }],
            1,
        );
        assert_eq!(machine.host_load(arr + 40), 77);
        assert_eq!(out.returns[0], arr + 40);
    }

    #[test]
    fn rand_is_deterministic_per_seed_and_bounded() {
        let build = |m: &mut Module| {
            let mut b = FuncBuilder::new("thread_main", 1, FuncKind::Normal);
            let bound = b.param(0);
            let acc = b.const_(0);
            let i = b.const_(0);
            let n = b.const_(50);
            b.while_(
                |b| b.lt(i, n),
                |b| {
                    let r = b.rand(bound);
                    // every draw must be < bound
                    let ok = b.lt(r, bound);
                    let bad = b.eqi(ok, 0);
                    b.if_(bad, |b| b.ret_const(u64::MAX));
                    let s = b.add(acc, r);
                    b.assign(acc, s);
                    let nx = b.addi(i, 1);
                    b.assign(i, nx);
                },
            );
            b.ret(Some(acc));
            m.add_function(b.finish());
        };
        let (a, _) = eval(build, vec![17]);
        assert_ne!(a, u64::MAX, "all draws bounded");
        let build2 = |m: &mut Module| build(m);
        let (b, _) = eval(build2, vec![17]);
        assert_eq!(a, b, "same seed, same stream");
    }

    #[test]
    #[should_panic] // "division by zero" on the scoped sim thread
    fn division_by_zero_panics_with_context() {
        let build = |m: &mut Module| {
            let mut b = FuncBuilder::new("thread_main", 1, FuncKind::Normal);
            let x = b.param(0);
            let z = b.const_(0);
            let q = b.bin(tm_ir::BinOp::Div, x, z);
            b.ret(Some(q));
            m.add_function(b.finish());
        };
        eval(build, vec![5]);
    }

    #[test]
    #[should_panic] // "null dereference" on the scoped sim thread
    fn null_dereference_panics_with_context() {
        let build = |m: &mut Module| {
            let mut b = FuncBuilder::new("thread_main", 0, FuncKind::Normal);
            let z = b.const_(0);
            let v = b.load(z, 0);
            b.ret(Some(v));
            m.add_function(b.finish());
        };
        eval(build, vec![]);
    }

    #[test]
    fn alloc_inside_transaction_yields_usable_memory() {
        let build = |m: &mut Module| {
            let mut b = FuncBuilder::new("tx_make", 0, FuncKind::Atomic { ab_id: 0 });
            let p = b.alloc_const(2, true);
            b.store_const(41, p, 0);
            let v = b.load(p, 0);
            let v2 = b.addi(v, 1);
            b.store(v2, p, 1);
            let out = b.load(p, 1);
            b.ret(Some(out));
            let tx = m.add_function(b.finish());
            let mut b = FuncBuilder::new("thread_main", 0, FuncKind::Normal);
            let r = b.call(tx, &[]);
            b.ret(Some(r));
            m.add_function(b.finish());
        };
        let (r, _) = eval(build, vec![]);
        assert_eq!(r, 42);
    }

    #[test]
    fn nested_normal_calls_return_through_frames() {
        let build = |m: &mut Module| {
            let mut b = FuncBuilder::new("leaf", 1, FuncKind::Normal);
            let v = b.addi(b.param(0), 1);
            b.ret(Some(v));
            let leaf = m.add_function(b.finish());
            let mut b = FuncBuilder::new("mid", 1, FuncKind::Normal);
            let v = b.call(leaf, &[b.param(0)]);
            let v2 = b.call(leaf, &[v]);
            b.ret(Some(v2));
            let mid = m.add_function(b.finish());
            let mut b = FuncBuilder::new("thread_main", 1, FuncKind::Normal);
            let r = b.call(mid, &[b.param(0)]);
            b.ret(Some(r));
            m.add_function(b.finish());
        };
        let (r, _) = eval(build, vec![40]);
        assert_eq!(r, 42);
    }

    #[test]
    fn uops_counted_exclude_alpoints() {
        // An atomic block with one anchored access: the ALPoint itself must
        // not inflate the µ-op count.
        let build = |m: &mut Module| {
            let mut b = FuncBuilder::new("tx", 1, FuncKind::Atomic { ab_id: 0 });
            let p = b.param(0);
            let v = b.load(p, 0);
            b.ret(Some(v));
            let tx = m.add_function(b.finish());
            let mut b = FuncBuilder::new("thread_main", 1, FuncKind::Normal);
            let r = b.call(tx, &[b.param(0)]);
            b.ret(Some(r));
            m.add_function(b.finish());
        };
        let mut m = Module::new();
        build(&mut m);
        let compiled = compile(&m);
        let machine = Machine::new(MachineConfig::cores(1).small());
        let a = machine.host_alloc(8, true);
        let out = run_workload(
            &machine,
            &compiled,
            &RuntimeConfig::with_mode(Mode::Staggered),
            &[ThreadPlan {
                func: compiled.module.expect("thread_main"),
                args: vec![a],
            }],
            1,
        );
        // tx body: load + ret = 2 µ-ops (ALPoint excluded).
        assert_eq!(out.exec.committed_insts, 2);
        assert_eq!(out.exec.committed_anchors, 1);
    }
}
