//! # stagger-prng — in-tree deterministic pseudo-random numbers
//!
//! The workspace must build with no network access, so it cannot depend on
//! the `rand` crate. Everything that needs randomness — workload setup,
//! property-style tests, benchmark input generation — uses this module
//! instead. Two classic generators:
//!
//! * [`splitmix64`] — the stateless mixer recommended for seeding, and the
//!   generator behind [`SplitMix64`];
//! * [`Xoshiro256StarStar`] — Blackman & Vigna's xoshiro256**, a fast
//!   all-purpose generator with 256 bits of state, seeded from a single
//!   `u64` through splitmix64 exactly as the reference implementation
//!   recommends.
//!
//! Both are fully deterministic: a fixed seed yields a fixed stream on
//! every platform, which is what the reproduction's determinism tests rely
//! on.

/// One step of the splitmix64 sequence: advances `*state` and returns the
/// next output. (Vigna's reference constants.)
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny splitmix64 generator — fine for seeding and for places where 64
/// bits of state suffice.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

/// xoshiro256** 1.0 (Blackman & Vigna, public domain reference
/// implementation), seeded from a `u64` through splitmix64.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed the 256-bit state from one `u64` via splitmix64 (the seeding
    /// procedure the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Xoshiro256StarStar {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256StarStar { s }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[lo, hi)`. Uses Lemire-style rejection so the
    /// distribution is exactly uniform (and still deterministic).
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let span = hi - lo;
        // Rejection sampling over the largest multiple of `span`.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let x = self.next_u64();
            if x < zone {
                return lo + x % span;
            }
        }
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.gen_range(0, bound)
    }

    /// Uniform `usize` in `[0, bound)` (for indexing).
    pub fn index(&mut self, bound: usize) -> usize {
        self.gen_range(0, bound as u64) as usize
    }

    /// A uniformly random `bool`.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: seeding xoshiro256** with splitmix64(0) four times and
        // generating must be reproducible (pinned values guard against
        // accidental edits to the constants).
        let mut a = Xoshiro256StarStar::seed_from_u64(0);
        let mut b = Xoshiro256StarStar::seed_from_u64(0);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys, "same seed, same stream");
        let mut c = Xoshiro256StarStar::seed_from_u64(1);
        assert_ne!(xs[0], c.next_u64(), "different seed, different stream");
    }

    #[test]
    fn splitmix_known_values() {
        // First outputs of splitmix64 from state 0 (from the reference
        // implementation).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = Xoshiro256StarStar::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.gen_range(5, 15);
            assert!((5..15).contains(&x));
            seen[(x - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range reachable");
    }

    #[test]
    #[should_panic]
    fn gen_range_empty_panics() {
        Xoshiro256StarStar::seed_from_u64(0).gen_range(3, 3);
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut r1 = Xoshiro256StarStar::seed_from_u64(7);
        let mut r2 = Xoshiro256StarStar::seed_from_u64(7);
        let mut a: Vec<u64> = (0..50).collect();
        let mut b: Vec<u64> = (0..50).collect();
        r1.shuffle(&mut a);
        r2.shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u64>>());
        assert_ne!(a, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_bool_hits_both() {
        let mut r = Xoshiro256StarStar::seed_from_u64(3);
        let n_true = (0..100).filter(|_| r.gen_bool()).count();
        assert!(n_true > 20 && n_true < 80);
    }
}
