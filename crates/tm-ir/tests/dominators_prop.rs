//! Randomized test: the iterative dominator-tree algorithm agrees with
//! brute-force reachability-based dominance on random CFGs drawn from a
//! fixed-seed in-tree PRNG.

use stagger_prng::Xoshiro256StarStar;
use tm_ir::{Block, BlockId, Cfg, DomTree, FuncKind, Function, Inst, Reg};

/// Build a function whose CFG is given by an adjacency list (each block
/// ends in Br/CondBr/Ret according to its successor count).
fn function_from_edges(n: usize, succs: &[Vec<usize>]) -> Function {
    let blocks = (0..n)
        .map(|b| {
            let insts = match succs[b].len() {
                0 => vec![Inst::Ret { val: None }],
                1 => vec![Inst::Br {
                    target: BlockId(succs[b][0] as u32),
                }],
                _ => vec![
                    Inst::Const {
                        dst: Reg(0),
                        value: 1,
                    },
                    Inst::CondBr {
                        cond: Reg(0),
                        then_b: BlockId(succs[b][0] as u32),
                        else_b: BlockId(succs[b][1] as u32),
                    },
                ],
            };
            Block { insts }
        })
        .collect();
    Function {
        name: "rand".into(),
        kind: FuncKind::Normal,
        n_params: 0,
        n_regs: 1,
        blocks,
        entry: BlockId(0),
    }
}

/// Brute force: `a` dominates `b` iff removing `a` makes `b` unreachable.
fn dominates_bruteforce(n: usize, succs: &[Vec<usize>], a: usize, b: usize) -> bool {
    if a == b {
        return true;
    }
    if a == 0 {
        return true; // entry dominates everything reachable
    }
    let mut visited = vec![false; n];
    let mut stack = vec![0usize];
    visited[0] = true;
    while let Some(x) = stack.pop() {
        for &s in &succs[x] {
            if s != a && !visited[s] {
                visited[s] = true;
                stack.push(s);
            }
        }
    }
    !visited[b]
}

fn reachable(n: usize, succs: &[Vec<usize>]) -> Vec<bool> {
    let mut visited = vec![false; n];
    let mut stack = vec![0usize];
    visited[0] = true;
    while let Some(x) = stack.pop() {
        for &s in &succs[x] {
            if !visited[s] {
                visited[s] = true;
                stack.push(s);
            }
        }
    }
    visited
}

#[test]
fn dominator_tree_matches_bruteforce() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x646F_6D73);
    for _case in 0..64 {
        let n = rng.gen_range(2, 10) as usize;
        let n_edges = rng.gen_range(1, 25) as usize;
        // Random graph over n nodes: up to 2 successors per node, taken in
        // order from the random edge list.
        let mut succs = vec![Vec::new(); n];
        for _ in 0..n_edges {
            let from = rng.index(n);
            let to = rng.index(n);
            if succs[from].len() < 2 && !succs[from].contains(&to) {
                succs[from].push(to);
            }
        }
        let f = function_from_edges(n, &succs);
        let cfg = Cfg::build(&f);
        let dt = DomTree::build(&f, &cfg);
        let reach = reachable(n, &succs);

        for a in 0..n {
            for b in 0..n {
                if !reach[a] || !reach[b] {
                    continue;
                }
                assert_eq!(
                    dt.dominates_block(BlockId(a as u32), BlockId(b as u32)),
                    dominates_bruteforce(n, &succs, a, b),
                    "a={a} b={b} succs={succs:?}"
                );
            }
        }

        // The dominator-tree DFS covers exactly the reachable blocks.
        let pre = dt.dfs_preorder();
        assert_eq!(pre.len(), reach.iter().filter(|&&r| r).count());
    }
}
