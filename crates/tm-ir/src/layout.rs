//! Code layout: assignment of synthetic program counters.
//!
//! After instrumentation, every instruction is assigned a 4-byte slot in a
//! synthetic text segment starting at [`TEXT_BASE`]. These addresses are the
//! "PCs" the simulated hardware records in its per-cache-line 12-bit PC tag
//! and reports on contention aborts, and they index the unified anchor
//! tables the runtime consults — exactly the role instruction addresses play
//! in the paper (Sections 3.4 and 4).
//!
//! Because the hardware tag keeps only the low 12 bits, two instructions
//! whose PCs are equal mod 4096 alias; with 4-byte slots that is one
//! aliasing class per 1024 instructions, so the Table 3 accuracy experiment
//! exercises real aliasing, not a simulation artifact.

use crate::func::Module;
use crate::ids::{FuncId, InstRef};
use std::collections::HashMap;

/// Base address of the synthetic text segment (mirrors the default load
/// address of a non-PIE x86-64 binary).
pub const TEXT_BASE: u64 = 0x40_0000;

/// Bytes per instruction slot.
pub const INST_BYTES: u64 = 4;

/// A synthetic program counter.
pub type Pc = u64;

/// Bidirectional map between instructions and program counters.
#[derive(Debug, Clone)]
pub struct CodeLayout {
    pc_of: HashMap<InstRef, Pc>,
    inst_of: HashMap<Pc, InstRef>,
    /// First PC of each function, in function order.
    func_base: Vec<Pc>,
    end: Pc,
}

impl CodeLayout {
    /// Lay out every function of `module` in index order, blocks in index
    /// order, instructions in sequence.
    pub fn build(module: &Module) -> CodeLayout {
        let mut pc_of = HashMap::new();
        let mut inst_of = HashMap::new();
        let mut func_base = Vec::with_capacity(module.funcs.len());
        let mut pc = TEXT_BASE;
        for (fid, f) in module.iter_funcs() {
            func_base.push(pc);
            for (bid, blk) in f.iter_blocks() {
                for idx in 0..blk.insts.len() {
                    let r = InstRef {
                        func: fid,
                        block: bid,
                        idx: idx as u32,
                    };
                    pc_of.insert(r, pc);
                    inst_of.insert(pc, r);
                    pc += INST_BYTES;
                }
            }
        }
        CodeLayout {
            pc_of,
            inst_of,
            func_base,
            end: pc,
        }
    }

    /// The PC of an instruction.
    pub fn pc(&self, r: InstRef) -> Pc {
        *self.pc_of.get(&r).unwrap_or_else(|| {
            panic!("no PC for {r} — was the module re-instrumented after layout?")
        })
    }

    /// The instruction at a PC, if any.
    pub fn inst_at(&self, pc: Pc) -> Option<InstRef> {
        self.inst_of.get(&pc).copied()
    }

    /// First PC of a function.
    pub fn func_start(&self, f: FuncId) -> Pc {
        self.func_base[f.index()]
    }

    /// The function whose text range contains `pc`, if any — the inverse
    /// of [`CodeLayout::func_start`], for resolving profiled PCs back to
    /// names. `func_base` is built in ascending PC order, so this is a
    /// binary search.
    pub fn func_at(&self, pc: Pc) -> Option<FuncId> {
        if pc >= self.end {
            return None;
        }
        let i = self.func_base.partition_point(|&base| base <= pc);
        i.checked_sub(1).map(|i| FuncId(i as u32))
    }

    /// One past the last assigned PC.
    pub fn text_end(&self) -> Pc {
        self.end
    }

    /// Total number of laid-out instructions.
    pub fn n_insts(&self) -> usize {
        self.pc_of.len()
    }

    /// Low 12 bits of a PC — what the simulated hardware's per-line tag
    /// stores (Section 4: "one can in fact get by with just a subset of the
    /// PC (e.g., the 12 low-order bits)").
    pub fn truncate_pc(pc: Pc) -> u16 {
        (pc & 0xFFF) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::func::{FuncKind, Module};

    fn two_func_module() -> Module {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("f", 1, FuncKind::Normal);
        let x = b.addi(b.param(0), 1);
        b.ret(Some(x));
        m.add_function(b.finish());
        let mut b = FuncBuilder::new("g", 0, FuncKind::Normal);
        b.compute(5);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn pcs_are_dense_and_bijective() {
        let m = two_func_module();
        let l = CodeLayout::build(&m);
        let n: usize = m.funcs.iter().map(|f| f.n_insts()).sum();
        assert_eq!(l.n_insts(), n);
        assert_eq!(l.text_end(), TEXT_BASE + (n as u64) * INST_BYTES);
        for i in 0..n as u64 {
            let pc = TEXT_BASE + i * INST_BYTES;
            let r = l.inst_at(pc).expect("dense");
            assert_eq!(l.pc(r), pc);
        }
        assert_eq!(l.inst_at(TEXT_BASE - 4), None);
        assert_eq!(l.inst_at(l.text_end()), None);
    }

    #[test]
    fn func_start_ordering() {
        let m = two_func_module();
        let l = CodeLayout::build(&m);
        let f = m.expect("f");
        let g = m.expect("g");
        assert_eq!(l.func_start(f), TEXT_BASE);
        assert!(l.func_start(g) > l.func_start(f));
    }

    #[test]
    fn func_at_inverts_func_start() {
        let m = two_func_module();
        let l = CodeLayout::build(&m);
        let f = m.expect("f");
        let g = m.expect("g");
        assert_eq!(l.func_at(l.func_start(f)), Some(f));
        assert_eq!(l.func_at(l.func_start(g)), Some(g));
        assert_eq!(l.func_at(l.func_start(g) - INST_BYTES), Some(f));
        assert_eq!(l.func_at(l.text_end() - INST_BYTES), Some(g));
        assert_eq!(l.func_at(l.text_end()), None, "past the text segment");
        assert_eq!(l.func_at(TEXT_BASE - 4), None, "before the text segment");
    }

    #[test]
    fn truncation_is_low_12_bits() {
        assert_eq!(CodeLayout::truncate_pc(0x401_234), 0x234);
        assert_eq!(CodeLayout::truncate_pc(0x400_000), 0);
        // Two PCs 4096 apart alias.
        assert_eq!(
            CodeLayout::truncate_pc(0x400_010),
            CodeLayout::truncate_pc(0x401_010)
        );
    }
}
