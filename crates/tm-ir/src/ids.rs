//! Typed index newtypes used throughout the IR.
//!
//! All of these are plain `u32` indices into the owning container; the
//! newtypes exist so that a block index can never be confused with a
//! register or a function index.

use std::fmt;

/// Index of a function within a [`crate::Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// Index of a basic block within a [`crate::Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// A virtual register. Registers are *mutable* (the IR is not SSA) and are
/// function-local. Registers `0..n_params` hold the incoming arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u32);

/// A reference to a single instruction: function, block, and the index of
/// the instruction within the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstRef {
    pub func: FuncId,
    pub block: BlockId,
    pub idx: u32,
}

impl FuncId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Reg {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for InstRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.func, self.block, self.idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(FuncId(3).to_string(), "@3");
        assert_eq!(BlockId(7).to_string(), "bb7");
        assert_eq!(Reg(11).to_string(), "r11");
        let r = InstRef {
            func: FuncId(1),
            block: BlockId(2),
            idx: 4,
        };
        assert_eq!(r.to_string(), "@1:bb2:4");
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(BlockId(1) < BlockId(2));
        assert!(Reg(0) < Reg(1));
    }
}
