//! Structured function builder.
//!
//! The ten benchmarks are authored against this API, which plays the role of
//! the C front end in the paper's toolchain: it wires basic blocks for
//! `while`/`if`/`loop` constructs so the workload code reads like the STAMP
//! sources it models.

use crate::func::{Block, FuncKind, Function};
use crate::ids::{BlockId, Reg};
use crate::inst::{BinOp, CmpOp, Inst};
use crate::FuncId;

/// Handle for an in-progress loop created by [`FuncBuilder::begin_loop`].
#[derive(Debug, Clone, Copy)]
pub struct LoopHandle {
    pub header: BlockId,
    pub exit: BlockId,
}

/// Builds one [`Function`] with structured control flow.
///
/// Instructions are appended to the *current* block; `if_`, `if_else`,
/// `while_` and the `begin_loop`/`break_if`/`end_loop` trio create and wire
/// blocks. Emitting an instruction into an already-terminated block panics —
/// that is always an authoring bug.
pub struct FuncBuilder {
    func: Function,
    cur: BlockId,
}

impl FuncBuilder {
    /// Start a function. Parameters occupy registers `0..n_params`.
    pub fn new(name: &str, n_params: u32, kind: FuncKind) -> Self {
        let func = Function {
            name: name.to_string(),
            kind,
            n_params,
            n_regs: n_params,
            blocks: vec![Block::default()],
            entry: BlockId(0),
        };
        FuncBuilder {
            func,
            cur: BlockId(0),
        }
    }

    /// Register holding the `i`-th parameter.
    pub fn param(&self, i: u32) -> Reg {
        assert!(i < self.func.n_params, "param {i} out of range");
        Reg(i)
    }

    /// Allocate a fresh register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.func.n_regs);
        self.func.n_regs += 1;
        r
    }

    /// The block instructions are currently appended to.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    fn cur_block_mut(&mut self) -> &mut Block {
        let c = self.cur;
        self.func.block_mut(c)
    }

    fn terminated(&self) -> bool {
        self.func.block(self.cur).terminator().is_some()
    }

    /// Append a raw instruction to the current block.
    pub fn emit(&mut self, inst: Inst) {
        assert!(
            !self.terminated(),
            "emitting {inst:?} into terminated block {} of {}",
            self.cur,
            self.func.name
        );
        self.cur_block_mut().insts.push(inst);
    }

    /// Create a new, empty block (does not switch to it).
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block::default());
        id
    }

    /// Make `b` the current insertion block.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    // ----- straight-line emitters ---------------------------------------

    /// `dst = value`, in a fresh register.
    pub fn const_(&mut self, value: u64) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Const { dst, value });
        dst
    }

    /// Copy `src` into a fresh register.
    pub fn mov(&mut self, src: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Mov { dst, src });
        dst
    }

    /// Assign `src` to the existing register `dst` (mutation — the IR is
    /// not SSA; loop induction variables use this).
    pub fn assign(&mut self, dst: Reg, src: Reg) {
        self.emit(Inst::Mov { dst, src });
    }

    /// Assign a constant to an existing register.
    pub fn assign_const(&mut self, dst: Reg, value: u64) {
        self.emit(Inst::Const { dst, value });
    }

    pub fn bin(&mut self, op: BinOp, a: Reg, b: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Bin { op, dst, a, b });
        dst
    }

    pub fn add(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Add, a, b)
    }

    pub fn sub(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Sub, a, b)
    }

    pub fn mul(&mut self, a: Reg, b: Reg) -> Reg {
        self.bin(BinOp::Mul, a, b)
    }

    /// `a + imm` (materializes the immediate).
    pub fn addi(&mut self, a: Reg, imm: u64) -> Reg {
        let c = self.const_(imm);
        self.add(a, c)
    }

    /// `a - imm`.
    pub fn subi(&mut self, a: Reg, imm: u64) -> Reg {
        let c = self.const_(imm);
        self.sub(a, c)
    }

    /// `a % imm`.
    pub fn remi(&mut self, a: Reg, imm: u64) -> Reg {
        let c = self.const_(imm);
        self.bin(BinOp::Rem, a, c)
    }

    pub fn cmp(&mut self, op: CmpOp, a: Reg, b: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Cmp { op, dst, a, b });
        dst
    }

    pub fn eq(&mut self, a: Reg, b: Reg) -> Reg {
        self.cmp(CmpOp::Eq, a, b)
    }

    pub fn ne(&mut self, a: Reg, b: Reg) -> Reg {
        self.cmp(CmpOp::Ne, a, b)
    }

    pub fn lt(&mut self, a: Reg, b: Reg) -> Reg {
        self.cmp(CmpOp::Lt, a, b)
    }

    pub fn le(&mut self, a: Reg, b: Reg) -> Reg {
        self.cmp(CmpOp::Le, a, b)
    }

    pub fn gt(&mut self, a: Reg, b: Reg) -> Reg {
        self.cmp(CmpOp::Gt, a, b)
    }

    pub fn ge(&mut self, a: Reg, b: Reg) -> Reg {
        self.cmp(CmpOp::Ge, a, b)
    }

    /// `a == imm`.
    pub fn eqi(&mut self, a: Reg, imm: u64) -> Reg {
        let c = self.const_(imm);
        self.eq(a, c)
    }

    /// `a != imm`.
    pub fn nei(&mut self, a: Reg, imm: u64) -> Reg {
        let c = self.const_(imm);
        self.ne(a, c)
    }

    /// `mem[base + offset*8]` into a fresh register.
    pub fn load(&mut self, base: Reg, offset: u32) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Load { dst, base, offset });
        dst
    }

    /// `mem[base + offset*8] = src`.
    pub fn store(&mut self, src: Reg, base: Reg, offset: u32) {
        self.emit(Inst::Store { src, base, offset });
    }

    /// Store an immediate.
    pub fn store_const(&mut self, value: u64, base: Reg, offset: u32) {
        let src = self.const_(value);
        self.store(src, base, offset);
    }

    /// `mem[base + (index+offset)*8]` into a fresh register.
    pub fn load_idx(&mut self, base: Reg, index: Reg, offset: u32) -> Reg {
        let dst = self.reg();
        self.emit(Inst::LoadIdx {
            dst,
            base,
            index,
            offset,
        });
        dst
    }

    /// `mem[base + (index+offset)*8] = src`.
    pub fn store_idx(&mut self, src: Reg, base: Reg, index: Reg, offset: u32) {
        self.emit(Inst::StoreIdx {
            src,
            base,
            index,
            offset,
        });
    }

    /// Address computation `base + (index+offset)*8` without memory access.
    pub fn gep(&mut self, base: Reg, index: Reg, offset: u32) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Gep {
            dst,
            base,
            index,
            offset,
        });
        dst
    }

    /// Heap allocation of `words` 64-bit words (register-sized count).
    pub fn alloc(&mut self, words: Reg, line_align: bool) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Alloc {
            dst,
            words,
            line_align,
        });
        dst
    }

    /// Heap allocation of a constant number of words.
    pub fn alloc_const(&mut self, words: u64, line_align: bool) -> Reg {
        let w = self.const_(words);
        self.alloc(w, line_align)
    }

    /// Call returning a value.
    pub fn call(&mut self, func: FuncId, args: &[Reg]) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Call {
            func,
            args: args.to_vec(),
            dst: Some(dst),
        });
        dst
    }

    /// Call discarding any return value.
    pub fn call_void(&mut self, func: FuncId, args: &[Reg]) {
        self.emit(Inst::Call {
            func,
            args: args.to_vec(),
            dst: None,
        });
    }

    /// Model `cycles` of local (non-memory) computation.
    pub fn compute(&mut self, cycles: u32) {
        self.emit(Inst::Compute { cycles });
    }

    /// Park the executing core until the cycle count held in `cycle`
    /// (no-op when that deadline already passed).
    pub fn idle_until(&mut self, cycle: Reg) {
        self.emit(Inst::IdleUntil { cycle });
    }

    /// Uniform random integer in `[0, bound)`.
    pub fn rand(&mut self, bound: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Rand { dst, bound });
        dst
    }

    /// Uniform random integer below a constant bound.
    pub fn rand_below(&mut self, bound: u64) -> Reg {
        let b = self.const_(bound);
        self.rand(b)
    }

    // ----- terminators and structured control flow -----------------------

    pub fn ret(&mut self, val: Option<Reg>) {
        self.emit(Inst::Ret { val });
    }

    /// `return <constant>`.
    pub fn ret_const(&mut self, value: u64) {
        let v = self.const_(value);
        self.ret(Some(v));
    }

    pub fn br(&mut self, target: BlockId) {
        self.emit(Inst::Br { target });
    }

    pub fn cond_br(&mut self, cond: Reg, then_b: BlockId, else_b: BlockId) {
        self.emit(Inst::CondBr {
            cond,
            then_b,
            else_b,
        });
    }

    /// `if (cond) { then() }` — `cond` must already be computed in the
    /// current block.
    pub fn if_(&mut self, cond: Reg, then: impl FnOnce(&mut Self)) {
        let then_b = self.new_block();
        let join = self.new_block();
        self.cond_br(cond, then_b, join);
        self.switch_to(then_b);
        then(self);
        if !self.terminated() {
            self.br(join);
        }
        self.switch_to(join);
    }

    /// `if (cond) { then() } else { els() }`.
    pub fn if_else(
        &mut self,
        cond: Reg,
        then: impl FnOnce(&mut Self),
        els: impl FnOnce(&mut Self),
    ) {
        let then_b = self.new_block();
        let else_b = self.new_block();
        let join = self.new_block();
        self.cond_br(cond, then_b, else_b);
        self.switch_to(then_b);
        then(self);
        if !self.terminated() {
            self.br(join);
        }
        self.switch_to(else_b);
        els(self);
        if !self.terminated() {
            self.br(join);
        }
        self.switch_to(join);
    }

    /// `while (cond()) { body() }`. `cond` is re-evaluated in the loop
    /// header on every iteration and must return the condition register.
    pub fn while_(&mut self, cond: impl FnOnce(&mut Self) -> Reg, body: impl FnOnce(&mut Self)) {
        let l = self.begin_loop();
        let c = cond(self);
        let negated = self.eqi(c, 0);
        self.break_if(l, negated);
        body(self);
        self.end_loop(l);
    }

    /// Open an unstructured loop: creates header and exit blocks, branches
    /// to the header, and switches to it. Pair with [`Self::end_loop`].
    pub fn begin_loop(&mut self) -> LoopHandle {
        let header = self.new_block();
        let exit = self.new_block();
        self.br(header);
        self.switch_to(header);
        LoopHandle { header, exit }
    }

    /// Exit loop `l` when `cond != 0`; otherwise fall through to a fresh
    /// continuation block.
    pub fn break_if(&mut self, l: LoopHandle, cond: Reg) {
        let cont = self.new_block();
        self.cond_br(cond, l.exit, cont);
        self.switch_to(cont);
    }

    /// Jump back to loop `l`'s header when `cond != 0`; otherwise fall
    /// through.
    pub fn continue_if(&mut self, l: LoopHandle, cond: Reg) {
        let cont = self.new_block();
        self.cond_br(cond, l.header, cont);
        self.switch_to(cont);
    }

    /// Close loop `l`: branch back to the header (if the current block is
    /// still open) and continue building in the exit block.
    pub fn end_loop(&mut self, l: LoopHandle) {
        if !self.terminated() {
            self.br(l.header);
        }
        self.switch_to(l.exit);
    }

    /// Finish the function.
    ///
    /// # Panics
    /// Panics if any reachable block lacks a terminator; run
    /// [`crate::verify_function`] for deeper checks.
    pub fn finish(self) -> Function {
        for (i, b) in self.func.blocks.iter().enumerate() {
            // Unreachable empty join blocks are tolerated by giving them a
            // trivial `ret`, which keeps the verifier's life simple while
            // never executing.
            assert!(
                b.terminator().is_some() || b.insts.is_empty(),
                "block bb{i} of {} has instructions but no terminator",
                self.func.name
            );
        }
        let mut f = self.func;
        for b in &mut f.blocks {
            if b.insts.is_empty() {
                b.insts.push(Inst::Ret { val: None });
            }
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_function;

    #[test]
    fn straight_line_function() {
        let mut b = FuncBuilder::new("add2", 2, FuncKind::Normal);
        let s = b.add(b.param(0), b.param(1));
        b.ret(Some(s));
        let f = b.finish();
        assert_eq!(f.n_insts(), 2);
        assert_eq!(f.n_params, 2);
        verify_function(&f, 1).unwrap();
    }

    #[test]
    fn if_else_wires_blocks() {
        let mut b = FuncBuilder::new("abs_diff", 2, FuncKind::Normal);
        let (x, y) = (b.param(0), b.param(1));
        let out = b.reg();
        let c = b.lt(x, y);
        b.if_else(
            c,
            |b| {
                let d = b.sub(y, x);
                b.assign(out, d);
            },
            |b| {
                let d = b.sub(x, y);
                b.assign(out, d);
            },
        );
        b.ret(Some(out));
        let f = b.finish();
        verify_function(&f, 1).unwrap();
        assert_eq!(f.blocks.len(), 4); // entry, then, else, join
    }

    #[test]
    fn while_loop_wires_blocks() {
        let mut b = FuncBuilder::new("count", 1, FuncKind::Normal);
        let n = b.param(0);
        let i = b.const_(0);
        b.while_(
            |b| b.lt(i, n),
            |b| {
                let next = b.addi(i, 1);
                b.assign(i, next);
            },
        );
        b.ret(Some(i));
        let f = b.finish();
        verify_function(&f, 1).unwrap();
    }

    #[test]
    fn begin_break_end_loop() {
        let mut b = FuncBuilder::new("first_ge", 2, FuncKind::Normal);
        let (arr, n) = (b.param(0), b.param(1));
        let i = b.const_(0);
        let l = b.begin_loop();
        let done = b.ge(i, n);
        b.break_if(l, done);
        let v = b.load_idx(arr, i, 0);
        let hit = b.gt(v, n);
        b.break_if(l, hit);
        let next = b.addi(i, 1);
        b.assign(i, next);
        b.end_loop(l);
        b.ret(Some(i));
        let f = b.finish();
        verify_function(&f, 1).unwrap();
    }

    #[test]
    #[should_panic(expected = "terminated block")]
    fn emit_after_ret_panics() {
        let mut b = FuncBuilder::new("bad", 0, FuncKind::Normal);
        b.ret(None);
        b.const_(1);
    }

    #[test]
    fn atomic_kind_preserved() {
        let mut b = FuncBuilder::new("tx", 0, FuncKind::Atomic { ab_id: 7 });
        b.ret(None);
        let f = b.finish();
        assert!(f.is_atomic());
        assert_eq!(f.kind, FuncKind::Atomic { ab_id: 7 });
    }

    #[test]
    fn terminated_arms_skip_join_branch() {
        let mut b = FuncBuilder::new("early", 1, FuncKind::Normal);
        let x = b.param(0);
        let c = b.eqi(x, 0);
        b.if_(c, |b| b.ret_const(99));
        b.ret(Some(x));
        let f = b.finish();
        verify_function(&f, 1).unwrap();
    }
}
