//! Functions, basic blocks, and modules.

use crate::ids::{BlockId, FuncId, InstRef, Reg};
use crate::inst::Inst;
use std::collections::HashMap;

/// Kind of a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuncKind {
    /// Ordinary function.
    Normal,
    /// An *atomic block*: calling this function executes its body as one
    /// hardware transaction. `ab_id` is the source-level atomic-block id the
    /// runtime keys its per-thread `ABContext` on (the paper assigns a
    /// unique id to each source atomic block; see Section 5).
    Atomic { ab_id: u32 },
}

/// One basic block: a straight-line list of instructions whose final
/// instruction is a terminator.
#[derive(Debug, Clone, Default)]
pub struct Block {
    pub insts: Vec<Inst>,
}

impl Block {
    /// The terminator instruction, if the block is complete.
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last().filter(|i| i.is_terminator())
    }
}

/// A function: parameters arrive in registers `0..n_params`.
#[derive(Debug, Clone)]
pub struct Function {
    pub name: String,
    pub kind: FuncKind,
    pub n_params: u32,
    /// Total number of virtual registers (params included).
    pub n_regs: u32,
    pub blocks: Vec<Block>,
    pub entry: BlockId,
}

impl Function {
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// Iterate `(BlockId, &Block)` in index order (the deterministic layout
    /// order used for PC assignment).
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Total instruction count across all blocks.
    pub fn n_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    pub fn is_atomic(&self) -> bool {
        matches!(self.kind, FuncKind::Atomic { .. })
    }
}

/// A whole program: an indexed set of functions plus a name table.
#[derive(Debug, Clone, Default)]
pub struct Module {
    pub funcs: Vec<Function>,
    names: HashMap<String, FuncId>,
}

impl Module {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a function; its name must be unique within the module.
    ///
    /// # Panics
    /// Panics if a function with the same name already exists.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        assert!(
            self.names.insert(f.name.clone(), id).is_none(),
            "duplicate function name {:?}",
            f.name
        );
        self.funcs.push(f);
        id
    }

    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Look up a function by name.
    pub fn lookup(&self, name: &str) -> Option<FuncId> {
        self.names.get(name).copied()
    }

    /// Look up a function by name, panicking with a useful message if absent.
    pub fn expect(&self, name: &str) -> FuncId {
        self.lookup(name)
            .unwrap_or_else(|| panic!("no function named {name:?} in module"))
    }

    /// Iterate `(FuncId, &Function)` in index order.
    pub fn iter_funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// All atomic (transactional) functions in the module.
    pub fn atomic_funcs(&self) -> Vec<FuncId> {
        self.iter_funcs()
            .filter(|(_, f)| f.is_atomic())
            .map(|(id, _)| id)
            .collect()
    }

    /// Resolve an [`InstRef`] to the instruction it names.
    pub fn inst(&self, r: InstRef) -> &Inst {
        &self.func(r.func).block(r.block).insts[r.idx as usize]
    }

    /// The direct callees of a function (with duplicates removed, in first
    /// appearance order).
    pub fn callees(&self, f: FuncId) -> Vec<FuncId> {
        let mut seen = Vec::new();
        for (_, b) in self.func(f).iter_blocks() {
            for inst in &b.insts {
                if let Inst::Call { func, .. } = inst {
                    if !seen.contains(func) {
                        seen.push(*func);
                    }
                }
            }
        }
        seen
    }

    /// All functions reachable from `roots` (including the roots), in a
    /// deterministic preorder.
    pub fn reachable_from(&self, roots: &[FuncId]) -> Vec<FuncId> {
        let mut order = Vec::new();
        let mut stack: Vec<FuncId> = roots.iter().rev().copied().collect();
        while let Some(f) = stack.pop() {
            if order.contains(&f) {
                continue;
            }
            order.push(f);
            for c in self.callees(f).into_iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// A fresh register in function `f`.
    pub fn new_reg(&mut self, f: FuncId) -> Reg {
        let func = self.func_mut(f);
        let r = Reg(func.n_regs);
        func.n_regs += 1;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    fn leaf(name: &str) -> Function {
        Function {
            name: name.to_string(),
            kind: FuncKind::Normal,
            n_params: 0,
            n_regs: 0,
            blocks: vec![Block {
                insts: vec![Inst::Ret { val: None }],
            }],
            entry: BlockId(0),
        }
    }

    fn caller(name: &str, callees: &[FuncId]) -> Function {
        let insts: Vec<Inst> = callees
            .iter()
            .map(|&c| Inst::Call {
                func: c,
                args: vec![],
                dst: None,
            })
            .chain(std::iter::once(Inst::Ret { val: None }))
            .collect();
        Function {
            name: name.to_string(),
            kind: FuncKind::Atomic { ab_id: 1 },
            n_params: 0,
            n_regs: 0,
            blocks: vec![Block { insts }],
            entry: BlockId(0),
        }
    }

    #[test]
    fn add_and_lookup() {
        let mut m = Module::new();
        let a = m.add_function(leaf("a"));
        assert_eq!(m.lookup("a"), Some(a));
        assert_eq!(m.lookup("b"), None);
        assert_eq!(m.expect("a"), a);
    }

    #[test]
    #[should_panic(expected = "duplicate function name")]
    fn duplicate_name_panics() {
        let mut m = Module::new();
        m.add_function(leaf("a"));
        m.add_function(leaf("a"));
    }

    #[test]
    fn callees_dedup_in_order() {
        let mut m = Module::new();
        let a = m.add_function(leaf("a"));
        let b = m.add_function(leaf("b"));
        let c = m.add_function(caller("c", &[b, a, b]));
        assert_eq!(m.callees(c), vec![b, a]);
        assert!(m.func(c).is_atomic());
        assert_eq!(m.atomic_funcs(), vec![c]);
    }

    #[test]
    fn reachable_preorder() {
        let mut m = Module::new();
        let a = m.add_function(leaf("a"));
        let b = m.add_function(caller("b", &[a]));
        let c = m.add_function(caller("c", &[b, a]));
        assert_eq!(m.reachable_from(&[c]), vec![c, b, a]);
        // cycle tolerance: a->a is impossible here, but repeated roots dedup
        assert_eq!(m.reachable_from(&[a, a]), vec![a]);
    }

    #[test]
    fn new_reg_increments() {
        let mut m = Module::new();
        let a = m.add_function(leaf("a"));
        let r0 = m.new_reg(a);
        let r1 = m.new_reg(a);
        assert_eq!(r0, Reg(0));
        assert_eq!(r1, Reg(1));
        assert_eq!(m.func(a).n_regs, 2);
    }
}
