//! # tm-ir — an IR for transactional programs
//!
//! This crate provides the compiler-facing substrate of the Staggered
//! Transactions reproduction: a small, untyped, register-machine
//! intermediate representation in which the benchmark programs are written,
//! analyzed (by `tm-dsa`), instrumented (by `stagger-compiler`) and executed
//! (by `tm-interp`) on the simulated HTM machine (`htm-sim`).
//!
//! The IR plays the role LLVM IR plays in the paper: the compiler pass that
//! inserts advisory locking points (ALPs) operates on *this* representation,
//! and "program counters" are synthetic code addresses assigned by
//! [`layout::CodeLayout`], so the hardware's 12-bit conflicting-PC tag is a
//! real, aliasing-prone quantity just as it is on the paper's simulator.
//!
//! ## Shape of the IR
//!
//! * A [`Module`] is a set of [`Function`]s. Functions are either `Normal`
//!   or `Atomic`: calling an atomic function executes its body as one
//!   hardware transaction (the paper's `TM_BEGIN`/`TM_END` atomic block,
//!   outlined — which is exactly what production TM compilers do).
//! * A function body is a list of [`Block`]s of [`Inst`]s, ending in a
//!   terminator (`Br`, `CondBr`, or `Ret`).
//! * Values are untyped 64-bit words held in *mutable* virtual registers
//!   ([`Reg`]); there are no phi nodes. Memory operations address a
//!   word-granular simulated heap (`base + offset` or
//!   `base + (index + offset) * 8`).
//! * [`builder::FuncBuilder`] offers structured control flow (`while_`,
//!   `if_`, ...) so the ten benchmarks can be authored without manual block
//!   wiring.
//!
//! ## Analyses
//!
//! [`mod@cfg`] computes successor/predecessor maps and reverse postorder;
//! [`dom`] computes the dominator tree (Cooper–Harvey–Kennedy); both are
//! prerequisites of Algorithm 1 in the paper (anchor classification walks
//! the dominator tree depth-first).

pub mod builder;
pub mod cfg;
pub mod display;
pub mod dom;
pub mod func;
pub mod ids;
pub mod inst;
pub mod layout;
pub mod verify;

pub use builder::FuncBuilder;
pub use cfg::Cfg;
pub use dom::DomTree;
pub use func::{Block, FuncKind, Function, Module};
pub use ids::{BlockId, FuncId, InstRef, Reg};
pub use inst::{BinOp, CmpOp, Inst};
pub use layout::{CodeLayout, Pc, INST_BYTES, TEXT_BASE};
pub use verify::{verify_function, verify_module, VerifyError};
