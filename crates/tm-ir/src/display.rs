//! Textual disassembly of modules, for debugging and for golden tests.

use crate::func::{FuncKind, Function, Module};
use crate::inst::Inst;
use std::fmt::Write as _;

/// Render one instruction as assembly-like text.
pub fn format_inst(m: &Module, inst: &Inst) -> String {
    match inst {
        Inst::Const { dst, value } => format!("{dst} = const {value}"),
        Inst::Mov { dst, src } => format!("{dst} = {src}"),
        Inst::Bin { op, dst, a, b } => format!("{dst} = {op:?} {a}, {b}").to_lowercase(),
        Inst::Cmp { op, dst, a, b } => format!("{dst} = cmp.{op:?} {a}, {b}").to_lowercase(),
        Inst::Load { dst, base, offset } => format!("{dst} = load [{base} + {offset}]"),
        Inst::Store { src, base, offset } => format!("store [{base} + {offset}], {src}"),
        Inst::LoadIdx {
            dst,
            base,
            index,
            offset,
        } => format!("{dst} = load [{base} + ({index} + {offset})*8]"),
        Inst::StoreIdx {
            src,
            base,
            index,
            offset,
        } => format!("store [{base} + ({index} + {offset})*8], {src}"),
        Inst::Gep {
            dst,
            base,
            index,
            offset,
        } => format!("{dst} = gep {base} + ({index} + {offset})*8"),
        Inst::Alloc {
            dst,
            words,
            line_align,
        } => format!(
            "{dst} = alloc {words} words{}",
            if *line_align { ", line-aligned" } else { "" }
        ),
        Inst::Call { func, args, dst } => {
            let name = &m.func(*func).name;
            let args: Vec<String> = args.iter().map(|r| r.to_string()).collect();
            match dst {
                Some(d) => format!("{d} = call {name}({})", args.join(", ")),
                None => format!("call {name}({})", args.join(", ")),
            }
        }
        Inst::Ret { val: Some(v) } => format!("ret {v}"),
        Inst::Ret { val: None } => "ret".to_string(),
        Inst::Br { target } => format!("br {target}"),
        Inst::CondBr {
            cond,
            then_b,
            else_b,
        } => format!("br {cond} ? {then_b} : {else_b}"),
        Inst::Compute { cycles } => format!("compute {cycles}"),
        Inst::IdleUntil { cycle } => format!("idle_until {cycle}"),
        Inst::Rand { dst, bound } => format!("{dst} = rand {bound}"),
        Inst::AlPoint {
            anchor,
            base,
            index,
            offset,
        } => match index {
            Some(i) => format!("ALPoint #{anchor} [{base} + ({i} + {offset})*8]"),
            None => format!("ALPoint #{anchor} [{base} + {offset}]"),
        },
    }
}

/// Render a function as text.
pub fn format_function(m: &Module, f: &Function) -> String {
    let mut out = String::new();
    let kind = match f.kind {
        FuncKind::Normal => String::new(),
        FuncKind::Atomic { ab_id } => format!(" atomic(ab={ab_id})"),
    };
    let _ = writeln!(out, "fn {}({} params){kind}:", f.name, f.n_params);
    for (bid, blk) in f.iter_blocks() {
        let _ = writeln!(out, "{bid}:");
        for inst in &blk.insts {
            let _ = writeln!(out, "    {}", format_inst(m, inst));
        }
    }
    out
}

/// Render a whole module as text.
pub fn format_module(m: &Module) -> String {
    let mut out = String::new();
    for (_, f) in m.iter_funcs() {
        out.push_str(&format_function(m, f));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::func::Module;

    #[test]
    fn disassembly_roundtrips_names() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("callee", 1, FuncKind::Normal);
        let v = b.load(b.param(0), 2);
        b.ret(Some(v));
        let callee = m.add_function(b.finish());

        let mut b = FuncBuilder::new("main_tx", 1, FuncKind::Atomic { ab_id: 3 });
        let r = b.call(callee, &[b.param(0)]);
        b.store(r, b.param(0), 0);
        b.ret(None);
        m.add_function(b.finish());

        let text = format_module(&m);
        assert!(text.contains("fn callee(1 params):"));
        assert!(text.contains("fn main_tx(1 params) atomic(ab=3):"));
        assert!(text.contains("r1 = load [r0 + 2]"));
        assert!(text.contains("call callee(r0)"));
        assert!(text.contains("store [r0 + 0]"));
    }

    #[test]
    fn alpoint_rendering() {
        use crate::ids::Reg;
        let m = Module::new();
        let s = format_inst(
            &m,
            &Inst::AlPoint {
                anchor: 42,
                base: Reg(1),
                index: None,
                offset: 3,
            },
        );
        assert_eq!(s, "ALPoint #42 [r1 + 3]");
    }
}
