//! Control-flow graph over a function's basic blocks.

use crate::func::Function;
use crate::ids::BlockId;
use crate::inst::Inst;

/// Successor/predecessor maps and a reverse postorder for one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    pub succs: Vec<Vec<BlockId>>,
    pub preds: Vec<Vec<BlockId>>,
    /// Blocks reachable from the entry, in reverse postorder (entry first).
    pub rpo: Vec<BlockId>,
    /// `rpo_index[b] = Some(position of b in rpo)`; `None` for unreachable
    /// blocks.
    pub rpo_index: Vec<Option<u32>>,
}

/// Successors of a single block, read off its terminator.
pub fn block_successors(f: &Function, b: BlockId) -> Vec<BlockId> {
    match f.block(b).terminator() {
        Some(Inst::Br { target }) => vec![*target],
        Some(Inst::CondBr { then_b, else_b, .. }) => {
            if then_b == else_b {
                vec![*then_b]
            } else {
                vec![*then_b, *else_b]
            }
        }
        _ => vec![],
    }
}

impl Cfg {
    /// Build the CFG of `f`.
    pub fn build(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (b, _) in f.iter_blocks() {
            for s in block_successors(f, b) {
                succs[b.index()].push(s);
                preds[s.index()].push(b);
            }
        }

        // Postorder DFS from the entry, then reverse.
        let mut post = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Iterative DFS with an explicit stack of (block, next-succ-index).
        let mut stack: Vec<(BlockId, usize)> = vec![(f.entry, 0)];
        visited[f.entry.index()] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.index()].len() {
                let s = succs[b.index()][*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let rpo = post;
        let mut rpo_index = vec![None; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = Some(i as u32);
        }
        Cfg {
            succs,
            preds,
            rpo,
            rpo_index,
        }
    }

    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()].is_some()
    }

    pub fn n_blocks(&self) -> usize {
        self.succs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::func::FuncKind;

    #[test]
    fn diamond_cfg() {
        let mut b = FuncBuilder::new("d", 1, FuncKind::Normal);
        let c = b.eqi(b.param(0), 0);
        let out = b.reg();
        b.if_else(c, |b| b.assign_const(out, 1), |b| b.assign_const(out, 2));
        b.ret(Some(out));
        let f = b.finish();
        let cfg = Cfg::build(&f);
        // entry(0) -> then(1), else(2); both -> join(3)
        assert_eq!(cfg.succs[0], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.succs[1], vec![BlockId(3)]);
        assert_eq!(cfg.succs[2], vec![BlockId(3)]);
        assert_eq!(cfg.preds[3], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.rpo[0], BlockId(0));
        assert_eq!(*cfg.rpo.last().unwrap(), BlockId(3));
        assert_eq!(cfg.rpo.len(), 4);
    }

    #[test]
    fn loop_cfg_reaches_all_blocks() {
        let mut b = FuncBuilder::new("l", 1, FuncKind::Normal);
        let n = b.param(0);
        let i = b.const_(0);
        b.while_(
            |b| b.lt(i, n),
            |b| {
                let nx = b.addi(i, 1);
                b.assign(i, nx);
            },
        );
        b.ret(Some(i));
        let f = b.finish();
        let cfg = Cfg::build(&f);
        for (bid, blk) in f.iter_blocks() {
            if !blk.insts.is_empty() {
                assert!(cfg.is_reachable(bid) || blk.insts.len() == 1, "{bid}");
            }
        }
        // back edge exists: header has >= 2 predecessors
        let header = BlockId(1);
        assert!(cfg.preds[header.index()].len() >= 2);
    }

    #[test]
    fn cond_br_same_target_dedups() {
        use crate::func::{Block, Function};
        use crate::ids::Reg;
        use crate::inst::Inst;
        let f = Function {
            name: "same".into(),
            kind: FuncKind::Normal,
            n_params: 1,
            n_regs: 1,
            blocks: vec![
                Block {
                    insts: vec![Inst::CondBr {
                        cond: Reg(0),
                        then_b: BlockId(1),
                        else_b: BlockId(1),
                    }],
                },
                Block {
                    insts: vec![Inst::Ret { val: None }],
                },
            ],
            entry: BlockId(0),
        };
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.succs[0], vec![BlockId(1)]);
        assert_eq!(cfg.preds[1], vec![BlockId(0)]);
    }
}
