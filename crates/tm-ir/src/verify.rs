//! Module/function well-formedness checks.
//!
//! Run after authoring and again after instrumentation: the compiler pass
//! must leave the module executable.

use crate::func::{FuncKind, Module};
use crate::ids::{BlockId, FuncId, Reg};
use crate::inst::Inst;
use std::fmt;

/// A verification failure, with enough context to find the offending
/// instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    EmptyBlock {
        func: String,
        block: BlockId,
    },
    MissingTerminator {
        func: String,
        block: BlockId,
    },
    TerminatorMidBlock {
        func: String,
        block: BlockId,
        idx: usize,
    },
    BadBlockTarget {
        func: String,
        block: BlockId,
        target: BlockId,
    },
    BadRegister {
        func: String,
        block: BlockId,
        idx: usize,
        reg: Reg,
    },
    BadCallee {
        func: String,
        block: BlockId,
        callee: FuncId,
    },
    ArgCountMismatch {
        func: String,
        block: BlockId,
        callee: String,
        expected: u32,
        got: usize,
    },
    NestedAtomicCall {
        func: String,
        callee: String,
    },
    BadEntry {
        func: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::EmptyBlock { func, block } => {
                write!(f, "{func}: {block} is empty")
            }
            VerifyError::MissingTerminator { func, block } => {
                write!(f, "{func}: {block} does not end in a terminator")
            }
            VerifyError::TerminatorMidBlock { func, block, idx } => {
                write!(
                    f,
                    "{func}: {block} has a terminator at index {idx}, not at the end"
                )
            }
            VerifyError::BadBlockTarget {
                func,
                block,
                target,
            } => {
                write!(f, "{func}: {block} branches to nonexistent {target}")
            }
            VerifyError::BadRegister {
                func,
                block,
                idx,
                reg,
            } => {
                write!(f, "{func}: {block}:{idx} references out-of-range {reg}")
            }
            VerifyError::BadCallee {
                func,
                block,
                callee,
            } => {
                write!(f, "{func}: {block} calls nonexistent function {callee}")
            }
            VerifyError::ArgCountMismatch {
                func,
                block,
                callee,
                expected,
                got,
            } => write!(
                f,
                "{func}: {block} calls {callee} with {got} args, expected {expected}"
            ),
            VerifyError::NestedAtomicCall { func, callee } => write!(
                f,
                "atomic function {func} calls atomic function {callee}; nesting must be flattened"
            ),
            VerifyError::BadEntry { func } => write!(f, "{func}: entry block out of range"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify a single function against the function table size `n_funcs`
/// (callee indices must be in range; argument counts are checked by
/// [`verify_module`], which has the callee signatures).
pub fn verify_function(f: &crate::func::Function, n_funcs: usize) -> Result<(), VerifyError> {
    let name = &f.name;
    if f.entry.index() >= f.blocks.len() {
        return Err(VerifyError::BadEntry { func: name.clone() });
    }
    for (bid, blk) in f.iter_blocks() {
        if blk.insts.is_empty() {
            return Err(VerifyError::EmptyBlock {
                func: name.clone(),
                block: bid,
            });
        }
        if blk.terminator().is_none() {
            return Err(VerifyError::MissingTerminator {
                func: name.clone(),
                block: bid,
            });
        }
        for (idx, inst) in blk.insts.iter().enumerate() {
            if inst.is_terminator() && idx + 1 != blk.insts.len() {
                return Err(VerifyError::TerminatorMidBlock {
                    func: name.clone(),
                    block: bid,
                    idx,
                });
            }
            // Register ranges.
            for r in inst.uses().into_iter().chain(inst.def()) {
                if r.index() >= f.n_regs as usize {
                    return Err(VerifyError::BadRegister {
                        func: name.clone(),
                        block: bid,
                        idx,
                        reg: r,
                    });
                }
            }
            // Branch targets.
            let targets: Vec<BlockId> = match inst {
                Inst::Br { target } => vec![*target],
                Inst::CondBr { then_b, else_b, .. } => vec![*then_b, *else_b],
                _ => vec![],
            };
            for t in targets {
                if t.index() >= f.blocks.len() {
                    return Err(VerifyError::BadBlockTarget {
                        func: name.clone(),
                        block: bid,
                        target: t,
                    });
                }
            }
            if let Inst::Call { func, .. } = inst {
                if func.index() >= n_funcs {
                    return Err(VerifyError::BadCallee {
                        func: name.clone(),
                        block: bid,
                        callee: *func,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Verify every function of a module, plus the inter-procedural rules:
/// call-site argument counts match callee arity, and atomic functions are
/// not (transitively) called from atomic functions (the interpreter
/// flattens nothing; the front end must).
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for (_, f) in m.iter_funcs() {
        verify_function(f, m.funcs.len())?;
    }
    for (_, f) in m.iter_funcs() {
        for (bid, blk) in f.iter_blocks() {
            for inst in &blk.insts {
                if let Inst::Call { func, args, .. } = inst {
                    let callee = m.func(*func);
                    if args.len() != callee.n_params as usize {
                        return Err(VerifyError::ArgCountMismatch {
                            func: f.name.clone(),
                            block: bid,
                            callee: callee.name.clone(),
                            expected: callee.n_params,
                            got: args.len(),
                        });
                    }
                }
            }
        }
    }
    // No atomic function may reach another atomic function.
    for root in m.atomic_funcs() {
        for reached in m.reachable_from(&m.callees(root)) {
            if matches!(m.func(reached).kind, FuncKind::Atomic { .. }) {
                return Err(VerifyError::NestedAtomicCall {
                    func: m.func(root).name.clone(),
                    callee: m.func(reached).name.clone(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::func::{Block, Function, Module};
    use crate::ids::Reg;

    fn ok_module() -> Module {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("leaf", 1, FuncKind::Normal);
        let v = b.addi(b.param(0), 1);
        b.ret(Some(v));
        let leaf = m.add_function(b.finish());
        let mut b = FuncBuilder::new("tx", 1, FuncKind::Atomic { ab_id: 0 });
        let r = b.call(leaf, &[b.param(0)]);
        b.ret(Some(r));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn good_module_verifies() {
        verify_module(&ok_module()).unwrap();
    }

    #[test]
    fn detects_arg_count_mismatch() {
        let mut m = ok_module();
        let leaf = m.expect("leaf");
        let mut b = FuncBuilder::new("bad", 0, FuncKind::Normal);
        b.emit(Inst::Call {
            func: leaf,
            args: vec![],
            dst: None,
        });
        b.ret(None);
        m.add_function(b.finish());
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::ArgCountMismatch { .. })
        ));
    }

    #[test]
    fn detects_nested_atomic() {
        let mut m = ok_module();
        let tx = m.expect("tx");
        let mut b = FuncBuilder::new("outer", 1, FuncKind::Atomic { ab_id: 1 });
        let r = b.call(tx, &[b.param(0)]);
        b.ret(Some(r));
        m.add_function(b.finish());
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::NestedAtomicCall { .. })
        ));
    }

    #[test]
    fn detects_bad_register() {
        let f = Function {
            name: "r".into(),
            kind: FuncKind::Normal,
            n_params: 0,
            n_regs: 1,
            blocks: vec![Block {
                insts: vec![
                    Inst::Mov {
                        dst: Reg(0),
                        src: Reg(5),
                    },
                    Inst::Ret { val: None },
                ],
            }],
            entry: BlockId(0),
        };
        assert!(matches!(
            verify_function(&f, 1),
            Err(VerifyError::BadRegister { reg: Reg(5), .. })
        ));
    }

    #[test]
    fn detects_missing_terminator_and_midblock_terminator() {
        let f = Function {
            name: "t".into(),
            kind: FuncKind::Normal,
            n_params: 0,
            n_regs: 1,
            blocks: vec![Block {
                insts: vec![Inst::Const {
                    dst: Reg(0),
                    value: 1,
                }],
            }],
            entry: BlockId(0),
        };
        assert!(matches!(
            verify_function(&f, 1),
            Err(VerifyError::MissingTerminator { .. })
        ));

        let f2 = Function {
            name: "t2".into(),
            kind: FuncKind::Normal,
            n_params: 0,
            n_regs: 1,
            blocks: vec![Block {
                insts: vec![
                    Inst::Ret { val: None },
                    Inst::Const {
                        dst: Reg(0),
                        value: 1,
                    },
                    Inst::Ret { val: None },
                ],
            }],
            entry: BlockId(0),
        };
        assert!(matches!(
            verify_function(&f2, 1),
            Err(VerifyError::TerminatorMidBlock { .. })
        ));
    }

    #[test]
    fn detects_bad_branch_target() {
        let f = Function {
            name: "b".into(),
            kind: FuncKind::Normal,
            n_params: 0,
            n_regs: 0,
            blocks: vec![Block {
                insts: vec![Inst::Br { target: BlockId(9) }],
            }],
            entry: BlockId(0),
        };
        assert!(matches!(
            verify_function(&f, 1),
            Err(VerifyError::BadBlockTarget { .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = VerifyError::EmptyBlock {
            func: "f".into(),
            block: BlockId(2),
        };
        assert_eq!(e.to_string(), "f: bb2 is empty");
    }
}
