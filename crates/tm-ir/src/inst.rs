//! Instruction set of the IR.
//!
//! All values are untyped 64-bit words. Memory is word-addressed through
//! byte addresses that must be 8-byte aligned; `offset` fields are in
//! *words* (multiplied by 8 at execution time), mirroring the field offsets
//! a C front end would produce for all-64-bit structs.

use crate::ids::{BlockId, FuncId, Reg};

/// Two-operand integer arithmetic / bitwise operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Unsigned division; division by zero traps (interpreter error).
    Div,
    /// Unsigned remainder; remainder by zero traps.
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

/// Comparison operators. `Lt`/`Le`/`Gt`/`Ge` are unsigned; the `S`-prefixed
/// variants reinterpret both operands as `i64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Slt,
    Sle,
    Sgt,
    Sge,
}

/// One IR instruction.
///
/// The memory-access forms (`Load`, `Store`, `LoadIdx`, `StoreIdx`) are the
/// instructions the Staggered Transactions compiler pass inspects: each is a
/// potential *anchor* (initial access to a data-structure node) in the sense
/// of the paper's Algorithm 1. `AlPoint` is the pseudo-instruction that pass
/// inserts; it never appears in hand-written programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst = value`
    Const { dst: Reg, value: u64 },
    /// `dst = src`
    Mov { dst: Reg, src: Reg },
    /// `dst = a <op> b`
    Bin { op: BinOp, dst: Reg, a: Reg, b: Reg },
    /// `dst = (a <op> b) ? 1 : 0`
    Cmp { op: CmpOp, dst: Reg, a: Reg, b: Reg },
    /// `dst = mem[base + offset*8]`
    Load { dst: Reg, base: Reg, offset: u32 },
    /// `mem[base + offset*8] = src`
    Store { src: Reg, base: Reg, offset: u32 },
    /// `dst = mem[base + (index + offset)*8]` — array indexing.
    LoadIdx {
        dst: Reg,
        base: Reg,
        index: Reg,
        offset: u32,
    },
    /// `mem[base + (index + offset)*8] = src`
    StoreIdx {
        src: Reg,
        base: Reg,
        index: Reg,
        offset: u32,
    },
    /// `dst = base + (index + offset)*8` — address computation without a
    /// memory access (LLVM's `getelementptr`).
    Gep {
        dst: Reg,
        base: Reg,
        index: Reg,
        offset: u32,
    },
    /// Allocate `words` 64-bit words from the simulated heap; `dst` receives
    /// the byte address. `line_align` pads the allocation to a cache-line
    /// boundary (used for data-structure nodes, as the paper's benchmarks do
    /// via their allocator, so distinct nodes never share a line).
    Alloc {
        dst: Reg,
        words: Reg,
        line_align: bool,
    },
    /// Call `func` with argument registers `args`; an atomic callee runs as
    /// a hardware transaction. `dst`, if present, receives the return value
    /// (0 if the callee returns none).
    Call {
        func: FuncId,
        args: Vec<Reg>,
        dst: Option<Reg>,
    },
    /// Return from the current function. Terminator.
    Ret { val: Option<Reg> },
    /// Unconditional branch. Terminator.
    Br { target: BlockId },
    /// Branch to `then_b` if `cond != 0`, else `else_b`. Terminator.
    CondBr {
        cond: Reg,
        then_b: BlockId,
        else_b: BlockId,
    },
    /// Spend `cycles` of purely local computation (models the non-memory
    /// µ-ops of the original benchmark between memory accesses).
    Compute { cycles: u32 },
    /// Advance the executing core's logical clock to at least the cycle
    /// count held in `cycle` (no-op when that deadline already passed).
    /// Purely local like `Compute` — it only widens the pending-cycle
    /// window — so it is deterministic under every scheduler. Open-loop
    /// load generators use it to park a thread until its next request's
    /// arrival timestamp.
    IdleUntil { cycle: Reg },
    /// `dst = uniform integer in [0, bound)` from the executing thread's
    /// deterministic PRNG. `bound` must be nonzero at run time.
    Rand { dst: Reg, bound: Reg },
    /// Advisory locking point, inserted by the compiler pass immediately
    /// before an anchor memory access. At run time this calls the
    /// `ALPoint` runtime routine with the *data address* the following
    /// access will touch, computed from `(base, index, offset)` exactly as
    /// the anchored instruction computes it (`index` absent for plain
    /// loads/stores).
    AlPoint {
        anchor: u32,
        base: Reg,
        index: Option<Reg>,
        offset: u32,
    },
}

impl Inst {
    /// Is this instruction a block terminator?
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Ret { .. } | Inst::Br { .. } | Inst::CondBr { .. }
        )
    }

    /// Is this a memory access (transactional load or store)?
    pub fn is_mem_access(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::LoadIdx { .. } | Inst::StoreIdx { .. }
        )
    }

    /// Is this a store (plain or indexed)?
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::StoreIdx { .. })
    }

    /// For a memory access, the `(base, index, offset)` triple describing
    /// the effective address `base + (index.unwrap_or(0) + offset) * 8`.
    pub fn mem_operands(&self) -> Option<(Reg, Option<Reg>, u32)> {
        match *self {
            Inst::Load { base, offset, .. } | Inst::Store { base, offset, .. } => {
                Some((base, None, offset))
            }
            Inst::LoadIdx {
                base,
                index,
                offset,
                ..
            }
            | Inst::StoreIdx {
                base,
                index,
                offset,
                ..
            } => Some((base, Some(index), offset)),
            _ => None,
        }
    }

    /// Does this `AlPoint` cover `access` — i.e. is `access` a memory
    /// access whose `(base, index, offset)` triple is exactly the one this
    /// ALP was inserted with? The instrumentation pass guarantees this for
    /// the instruction immediately following each ALP; the bytecode lowerer
    /// re-verifies it before fusing the pair into one superinstruction.
    pub fn alp_covers(&self, access: &Inst) -> bool {
        match (self, access.mem_operands()) {
            (
                Inst::AlPoint {
                    base,
                    index,
                    offset,
                    ..
                },
                Some((b, i, o)),
            ) => *base == b && *index == i && *offset == o,
            _ => false,
        }
    }

    /// The register this instruction writes, if any.
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Inst::Const { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::LoadIdx { dst, .. }
            | Inst::Gep { dst, .. }
            | Inst::Alloc { dst, .. }
            | Inst::Rand { dst, .. } => Some(dst),
            Inst::Call { dst, .. } => dst,
            _ => None,
        }
    }

    /// The registers this instruction reads.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Inst::Const { .. } | Inst::Compute { .. } | Inst::Br { .. } => vec![],
            Inst::Mov { src, .. } => vec![*src],
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => vec![*a, *b],
            Inst::Load { base, .. } => vec![*base],
            Inst::Store { src, base, .. } => vec![*src, *base],
            Inst::LoadIdx { base, index, .. } => vec![*base, *index],
            Inst::StoreIdx {
                src, base, index, ..
            } => vec![*src, *base, *index],
            Inst::Gep { base, index, .. } => vec![*base, *index],
            Inst::Alloc { words, .. } => vec![*words],
            Inst::Call { args, .. } => args.clone(),
            Inst::Ret { val } => val.iter().copied().collect(),
            Inst::CondBr { cond, .. } => vec![*cond],
            Inst::Rand { bound, .. } => vec![*bound],
            Inst::IdleUntil { cycle } => vec![*cycle],
            Inst::AlPoint { base, index, .. } => {
                let mut v = vec![*base];
                v.extend(index.iter().copied());
                v
            }
        }
    }
}

impl BinOp {
    /// Apply the operation. Division/remainder by zero returns `None`.
    pub fn eval(self, a: u64, b: u64) -> Option<u64> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => a.checked_div(b)?,
            BinOp::Rem => a.checked_rem(b)?,
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32),
            BinOp::Shr => a.wrapping_shr(b as u32),
        })
    }
}

impl CmpOp {
    /// Apply the comparison, returning 1 or 0.
    pub fn eval(self, a: u64, b: u64) -> u64 {
        let (sa, sb) = (a as i64, b as i64);
        let r = match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Slt => sa < sb,
            CmpOp::Sle => sa <= sb,
            CmpOp::Sgt => sa > sb,
            CmpOp::Sge => sa >= sb,
        };
        r as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_basics() {
        assert_eq!(BinOp::Add.eval(2, 3), Some(5));
        assert_eq!(BinOp::Sub.eval(2, 3), Some(u64::MAX)); // wraps
        assert_eq!(BinOp::Mul.eval(4, 5), Some(20));
        assert_eq!(BinOp::Div.eval(7, 2), Some(3));
        assert_eq!(BinOp::Div.eval(7, 0), None);
        assert_eq!(BinOp::Rem.eval(7, 0), None);
        assert_eq!(BinOp::Shl.eval(1, 12), Some(4096));
    }

    #[test]
    fn cmp_eval_signedness() {
        let neg1 = (-1i64) as u64;
        assert_eq!(CmpOp::Lt.eval(neg1, 1), 0); // unsigned: huge > 1
        assert_eq!(CmpOp::Slt.eval(neg1, 1), 1); // signed: -1 < 1
        assert_eq!(CmpOp::Eq.eval(5, 5), 1);
        assert_eq!(CmpOp::Ge.eval(5, 6), 0);
    }

    #[test]
    fn def_and_uses() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: Reg(3),
            a: Reg(1),
            b: Reg(2),
        };
        assert_eq!(i.def(), Some(Reg(3)));
        assert_eq!(i.uses(), vec![Reg(1), Reg(2)]);
        assert!(!i.is_terminator());

        let s = Inst::StoreIdx {
            src: Reg(0),
            base: Reg(1),
            index: Reg(2),
            offset: 4,
        };
        assert!(s.is_mem_access());
        assert!(s.is_store());
        assert_eq!(s.mem_operands(), Some((Reg(1), Some(Reg(2)), 4)));
        assert_eq!(s.def(), None);
    }

    #[test]
    fn terminators() {
        assert!(Inst::Ret { val: None }.is_terminator());
        assert!(Inst::Br { target: BlockId(0) }.is_terminator());
        assert!(!Inst::Compute { cycles: 3 }.is_terminator());
    }

    #[test]
    fn alp_covers_matches_exact_operand_triples() {
        let alp = Inst::AlPoint {
            anchor: 7,
            base: Reg(1),
            index: None,
            offset: 2,
        };
        assert!(alp.alp_covers(&Inst::Load {
            dst: Reg(3),
            base: Reg(1),
            offset: 2,
        }));
        assert!(alp.alp_covers(&Inst::Store {
            src: Reg(4),
            base: Reg(1),
            offset: 2,
        }));
        // Any operand mismatch, indexed-vs-plain shape mismatch, or a
        // non-access successor must refuse the fusion.
        assert!(!alp.alp_covers(&Inst::Load {
            dst: Reg(3),
            base: Reg(1),
            offset: 3,
        }));
        assert!(!alp.alp_covers(&Inst::LoadIdx {
            dst: Reg(3),
            base: Reg(1),
            index: Reg(5),
            offset: 2,
        }));
        assert!(!alp.alp_covers(&Inst::Compute { cycles: 1 }));

        let alp_idx = Inst::AlPoint {
            anchor: 7,
            base: Reg(1),
            index: Some(Reg(5)),
            offset: 0,
        };
        assert!(alp_idx.alp_covers(&Inst::StoreIdx {
            src: Reg(2),
            base: Reg(1),
            index: Reg(5),
            offset: 0,
        }));
        assert!(!alp_idx.alp_covers(&Inst::StoreIdx {
            src: Reg(2),
            base: Reg(1),
            index: Reg(6),
            offset: 0,
        }));
        // A non-ALP never covers anything.
        assert!(!Inst::Compute { cycles: 1 }.alp_covers(&Inst::Load {
            dst: Reg(3),
            base: Reg(1),
            offset: 2,
        }));
    }
}
