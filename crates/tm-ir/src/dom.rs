//! Dominator tree (Cooper–Harvey–Kennedy iterative algorithm).
//!
//! Algorithm 1 of the paper classifies loads/stores as anchors during a
//! depth-first traversal of the function's dominator tree, and the
//! anchor/pioneer relation is "`m.inst` dominates `inst`" — both of which
//! this module supports.

use crate::cfg::Cfg;
use crate::func::Function;
use crate::ids::{BlockId, InstRef};

/// Dominator tree of a function's reachable blocks.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator of each block (`idom[entry] = entry`); `None`
    /// for unreachable blocks.
    pub idom: Vec<Option<BlockId>>,
    /// Children in the dominator tree, each list sorted by block index for
    /// deterministic traversal.
    pub children: Vec<Vec<BlockId>>,
    entry: BlockId,
}

impl DomTree {
    /// Compute the dominator tree from a CFG.
    pub fn build(f: &Function, cfg: &Cfg) -> DomTree {
        let n = f.blocks.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[f.entry.index()] = Some(f.entry);

        let intersect = |idom: &[Option<BlockId>], cfg: &Cfg, mut a: BlockId, mut b: BlockId| {
            // Walk up by RPO number until the fingers meet.
            let num = |x: BlockId| cfg.rpo_index[x.index()].unwrap();
            while a != b {
                while num(a) > num(b) {
                    a = idom[a.index()].unwrap();
                }
                while num(b) > num(a) {
                    b = idom[b.index()].unwrap();
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                // First processed predecessor with a known idom.
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b.index()] {
                    if !cfg.is_reachable(p) || idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cfg, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        let mut children = vec![Vec::new(); n];
        for &b in &cfg.rpo {
            if b == f.entry {
                continue;
            }
            if let Some(p) = idom[b.index()] {
                children[p.index()].push(b);
            }
        }
        for c in &mut children {
            c.sort();
        }
        DomTree {
            idom,
            children,
            entry: f.entry,
        }
    }

    /// Does block `a` dominate block `b`? (Reflexive: `a` dominates itself.)
    pub fn dominates_block(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(p) if p != cur => cur = p,
                _ => return false,
            }
        }
    }

    /// Does instruction `a` dominate instruction `b`?
    ///
    /// Within a block, earlier instructions dominate later ones; an
    /// instruction does *not* dominate itself here (matching Algorithm 1,
    /// where a load can only be a non-anchor if a *different*, earlier
    /// access dominates it).
    pub fn dominates_inst(&self, a: InstRef, b: InstRef) -> bool {
        debug_assert_eq!(a.func, b.func, "cross-function dominance query");
        if a.block == b.block {
            a.idx < b.idx
        } else {
            self.dominates_block(a.block, b.block)
        }
    }

    /// Depth-first preorder traversal of the dominator tree starting at the
    /// entry block.
    pub fn dfs_preorder(&self) -> Vec<BlockId> {
        let mut out = Vec::new();
        let mut stack = vec![self.entry];
        while let Some(b) = stack.pop() {
            out.push(b);
            // Push in reverse so children come out in ascending order.
            for &c in self.children[b.index()].iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::func::FuncKind;

    /// Brute-force dominance: `a` dominates `b` iff removing `a` makes `b`
    /// unreachable from entry.
    fn dominates_bruteforce(f: &Function, cfg: &Cfg, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        let mut visited = vec![false; f.blocks.len()];
        let mut stack = vec![f.entry];
        if f.entry == a {
            return cfg.is_reachable(b);
        }
        visited[f.entry.index()] = true;
        while let Some(x) = stack.pop() {
            for &s in &cfg.succs[x.index()] {
                if s != a && !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        cfg.is_reachable(b) && !visited[b.index()]
    }

    fn diamond_with_loop() -> Function {
        let mut b = FuncBuilder::new("g", 1, FuncKind::Normal);
        let n = b.param(0);
        let i = b.const_(0);
        b.while_(
            |b| b.lt(i, n),
            |b| {
                let c = b.remi(i, 2);
                b.if_else(c, |b| b.compute(1), |b| b.compute(2));
                let nx = b.addi(i, 1);
                b.assign(i, nx);
            },
        );
        b.ret(Some(i));
        b.finish()
    }

    #[test]
    fn matches_bruteforce_on_loop_diamond() {
        let f = diamond_with_loop();
        let cfg = Cfg::build(&f);
        let dt = DomTree::build(&f, &cfg);
        for (a, _) in f.iter_blocks() {
            for (b, _) in f.iter_blocks() {
                if cfg.is_reachable(a) && cfg.is_reachable(b) {
                    assert_eq!(
                        dt.dominates_block(a, b),
                        dominates_bruteforce(&f, &cfg, a, b),
                        "a={a} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn entry_dominates_everything() {
        let f = diamond_with_loop();
        let cfg = Cfg::build(&f);
        let dt = DomTree::build(&f, &cfg);
        for &b in &cfg.rpo {
            assert!(dt.dominates_block(f.entry, b));
        }
    }

    #[test]
    fn preorder_covers_reachable_blocks_once() {
        let f = diamond_with_loop();
        let cfg = Cfg::build(&f);
        let dt = DomTree::build(&f, &cfg);
        let pre = dt.dfs_preorder();
        assert_eq!(pre.len(), cfg.rpo.len());
        let mut sorted = pre.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), pre.len());
        assert_eq!(pre[0], f.entry);
    }

    #[test]
    fn inst_dominance_within_block() {
        use crate::ids::{FuncId, InstRef};
        let f = diamond_with_loop();
        let cfg = Cfg::build(&f);
        let dt = DomTree::build(&f, &cfg);
        let a = InstRef {
            func: FuncId(0),
            block: f.entry,
            idx: 0,
        };
        let b = InstRef {
            func: FuncId(0),
            block: f.entry,
            idx: 1,
        };
        assert!(dt.dominates_inst(a, b));
        assert!(!dt.dominates_inst(b, a));
        assert!(!dt.dominates_inst(a, a)); // strict within a block
    }
}
