//! Speculative (Block-STM-style) scheduler internals.
//!
//! The speculative scheduler runs each simulated core's gated operations
//! optimistically against a private *overlay view* of the simulator state,
//! queuing `(op, predicted result, predicted latency)` records. A serial
//! *commit walk* then re-executes the queued ops against the real
//! [`SimState`] in exactly the cooperative min-`(clock, id)` order and
//! compares outcomes. Matching predictions commit for free; a mismatch
//! discards the remainder of that core's queue and re-executes the core
//! body from scratch, replaying the already-committed prefix from a log.
//!
//! Correctness never depends on overlay fidelity: every simulated quantity
//! (stats, traces, obs events, memory) is produced by the same
//! [`apply_op`] calls the cooperative scheduler would make, in the same
//! global order. The overlay is purely a predictor; a bad prediction costs
//! a re-execution, never correctness.

use std::cell::Cell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::Mutex;
use std::task::{Context, Poll, Waker};

use crate::addr::{line_of, word_index, LINE_BYTES, WORD_BYTES};
use crate::cache::CacheArray;
use crate::config::{FallbackPolicy, HtmProtocol};
use crate::fx::{FxHashMap, FxHashSet};
use crate::obs::ObsKind;
use crate::sched::LazyMinHeap;
use crate::sim::{
    apply_op, bound_exceeded, AbortCause, AbortInfo, Doomed, Op, OpResult, Owners, SimState,
    TxError, TxState,
};
use crate::stats::SpecStats;

// ---------------------------------------------------------------------------
// Queue entries and the per-core replay log
// ---------------------------------------------------------------------------

/// A record produced by a core running speculatively, consumed in order by
/// the serial commit walk.
#[derive(Debug, Clone)]
pub(crate) enum SpecEntry {
    /// A gated op executed against the overlay: the op itself, the clock
    /// the overlay predicts it runs at (pending cycles already folded in),
    /// and the predicted `(result, latency)`.
    Op {
        key_clock: u64,
        op: Op,
        res: OpResult,
        lat: u64,
    },
    /// A non-gated read (`tx_active` / `tx_ab_id`) answered from the
    /// overlay; validated against real state at commit time.
    NonGated(NgValue),
    /// An obs event noted at an overlay-predicted clock.
    Note { clock: u64, kind: ObsKind },
    /// The core body completed with `pending` unfolded cycles.
    Finish { pending: u64 },
}

/// Which non-gated query a core issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NgKind {
    Active,
    AbId,
}

/// The answer to a non-gated query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NgValue {
    Active(bool),
    AbId(Option<u32>),
}

fn ng_real(st: &SimState, tid: usize, kind: NgKind) -> NgValue {
    match kind {
        NgKind::Active => NgValue::Active(st.tx_active(tid)),
        NgKind::AbId => NgValue::AbId(st.tx_ab_id(tid)),
    }
}

/// One committed step of a core, recorded so a re-executed body can replay
/// its past deterministically without touching real state.
#[derive(Debug, Clone)]
pub(crate) enum ReplayEntry {
    Gated {
        res: OpResult,
        /// The real core clock right after the op (latency folded in,
        /// including op-internal charges like abort delivery) — restored
        /// verbatim during replay so `now()` stays exact.
        clock_after: u64,
    },
    NonGated(NgValue),
    /// An obs note whose emission committed with the prefix. The payload is
    /// not needed: a re-executed body regenerates it deterministically, the
    /// marker only tells replay the note was already emitted.
    Note,
}

// ---------------------------------------------------------------------------
// Per-core slot state machine
// ---------------------------------------------------------------------------

/// What a speculating core is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SpecMode {
    /// Running ahead against the overlay, queuing predictions.
    Speculating,
    /// A fresh body instance is consuming the committed-prefix log.
    Replaying,
    /// Demoted: every gated op runs directly against real state, admitted
    /// one at a time by the commit walk (no more speculation).
    Direct,
    /// Transitional marker while a future is torn down for rebuild.
    Poisoned,
}

#[derive(Debug)]
pub(crate) struct SpecInner {
    pub(crate) mode: SpecMode,
    /// Overlay the core speculates against; `None` between rounds.
    pub(crate) view: Option<SpecView>,
    /// Predictions not yet validated by the commit walk.
    pub(crate) queue: VecDeque<SpecEntry>,
    /// Committed prefix, for replay after a rebuild.
    pub(crate) log: Vec<ReplayEntry>,
    pub(crate) replay_pos: usize,
    /// Gated ops this core may still speculate this round.
    pub(crate) budget: usize,
    /// One-shot permission for a Direct core to run its next gated op
    /// (granted by the commit walk when it is globally this core's turn).
    pub(crate) admitted: bool,
    /// After replay finishes, stay Direct instead of resuming speculation.
    pub(crate) demote_on_replay_end: bool,
    /// The body panicked while speculating (stale overlay data) or
    /// diverged during replay; the driver rebuilds or aborts.
    pub(crate) panicked: bool,
    pub(crate) speculated: u64,
    pub(crate) direct_ops: u64,
}

/// Shared handle between a core's future and the driver.
#[derive(Debug)]
pub(crate) struct SpecSlot {
    tid: usize,
    inner: Mutex<SpecInner>,
}

/// Outcome of asking the slot to gate one op.
pub(crate) enum SpecGate {
    Ready(OpResult),
    Pending,
    /// The core is (now) Direct; the caller must gate against real state.
    Direct,
}

impl SpecSlot {
    pub(crate) fn new(tid: usize) -> Self {
        SpecSlot {
            tid,
            inner: Mutex::new(SpecInner {
                mode: SpecMode::Speculating,
                view: None,
                queue: VecDeque::new(),
                log: Vec::new(),
                replay_pos: 0,
                budget: 0,
                admitted: false,
                demote_on_replay_end: false,
                panicked: false,
                speculated: 0,
                direct_ops: 0,
            }),
        }
    }

    /// Lock the slot, recovering from poisoning (a panicking worker leaves
    /// the slot flagged; the driver clears it before reuse).
    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, SpecInner> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Gate one op from the core body. `pending`/`last_clock` are the
    /// core's local cycle accounting (same contract as the real gate).
    pub(crate) fn gate(&self, pending: &mut u64, last_clock: &mut u64, op: &Op) -> SpecGate {
        let mut s = self.lock();
        match s.mode {
            SpecMode::Direct | SpecMode::Poisoned => SpecGate::Direct,
            SpecMode::Replaying => {
                if s.replay_pos < s.log.len() {
                    match s.log[s.replay_pos] {
                        ReplayEntry::Gated { res, clock_after } => {
                            s.replay_pos += 1;
                            *pending = 0;
                            *last_clock = clock_after;
                            SpecGate::Ready(res)
                        }
                        ReplayEntry::NonGated(_) | ReplayEntry::Note => {
                            panic!("speculative replay out of sync: expected a gated op")
                        }
                    }
                } else if s.demote_on_replay_end {
                    s.mode = SpecMode::Direct;
                    SpecGate::Direct
                } else {
                    // Prefix fully replayed: resume speculation next round.
                    // Return Pending without consuming so the driver
                    // installs a fresh overlay first.
                    s.mode = SpecMode::Speculating;
                    s.budget = 0;
                    s.view = None;
                    SpecGate::Pending
                }
            }
            SpecMode::Speculating => {
                if s.budget == 0 {
                    return SpecGate::Pending;
                }
                let base = base_ref();
                let view = s.view.as_mut().expect("speculating without an overlay");
                view.clock += *pending;
                *pending = 0;
                let key_clock = view.clock;
                let (res, lat) = view.exec(base, op);
                view.clock += lat;
                *last_clock = view.clock;
                s.queue.push_back(SpecEntry::Op {
                    key_clock,
                    op: *op,
                    res,
                    lat,
                });
                s.budget -= 1;
                s.speculated += 1;
                SpecGate::Ready(res)
            }
        }
    }

    /// Answer a non-gated query (`tx_active`/`tx_ab_id`). Only called in
    /// Speculating or Replaying mode (Direct cores read real state).
    pub(crate) fn nongated(&self, kind: NgKind) -> NgValue {
        let mut s = self.lock();
        match s.mode {
            SpecMode::Replaying => {
                if s.replay_pos < s.log.len() {
                    let pos = s.replay_pos;
                    s.replay_pos += 1;
                    match s.log[pos] {
                        ReplayEntry::NonGated(v) => {
                            let kind_ok = matches!(
                                (kind, v),
                                (NgKind::Active, NgValue::Active(_))
                                    | (NgKind::AbId, NgValue::AbId(_))
                            );
                            if !kind_ok {
                                panic!("speculative replay out of sync: non-gated kind mismatch");
                            }
                            v
                        }
                        ReplayEntry::Gated { .. } | ReplayEntry::Note => {
                            panic!("speculative replay out of sync: expected non-gated read")
                        }
                    }
                } else {
                    // Log ends right before a non-gated read: the prefix is
                    // fully replayed; transition in place. Non-gated reads
                    // are own-core-deterministic, so real state answers
                    // them exactly.
                    let base = base_ref();
                    if s.demote_on_replay_end {
                        s.mode = SpecMode::Direct;
                        return ng_real(base, self.tid, kind);
                    }
                    s.mode = SpecMode::Speculating;
                    s.budget = 0;
                    let view = SpecView::snapshot(base, self.tid);
                    let v = match kind {
                        NgKind::Active => NgValue::Active(view.tx.is_some()),
                        NgKind::AbId => NgValue::AbId(view.tx.as_ref().map(|t| t.ab_id)),
                    };
                    s.view = Some(view);
                    s.queue.push_back(SpecEntry::NonGated(v));
                    v
                }
            }
            SpecMode::Speculating => {
                let view = s.view.as_ref().expect("speculating without an overlay");
                let v = match kind {
                    NgKind::Active => NgValue::Active(view.tx.is_some()),
                    NgKind::AbId => NgValue::AbId(view.tx.as_ref().map(|t| t.ab_id)),
                };
                s.queue.push_back(SpecEntry::NonGated(v));
                v
            }
            SpecMode::Direct | SpecMode::Poisoned => {
                unreachable!("direct cores answer non-gated reads from real state")
            }
        }
    }

    /// Record an obs note at logical clock `clock`. Returns `true` when the
    /// slot absorbed it (queued, or already emitted by the committed prefix);
    /// `false` when the caller must emit it directly to real state (Direct
    /// mode, including a demotion triggered right here).
    pub(crate) fn note(&self, clock: u64, kind: ObsKind) -> bool {
        let mut s = self.lock();
        match s.mode {
            SpecMode::Speculating => {
                s.queue.push_back(SpecEntry::Note { clock, kind });
                true
            }
            SpecMode::Replaying => {
                if s.replay_pos < s.log.len() {
                    // This note committed with the prefix and was already
                    // emitted; consume its marker and drop it.
                    match s.log[s.replay_pos] {
                        ReplayEntry::Note => {
                            s.replay_pos += 1;
                            true
                        }
                        _ => panic!("speculative replay out of sync: expected a note"),
                    }
                } else if s.demote_on_replay_end {
                    // Prefix fully replayed: a discarded-queue note lands
                    // here and must not be lost. Demoted cores emit it
                    // directly (the replayed clock is the real clock).
                    s.mode = SpecMode::Direct;
                    false
                } else {
                    // Transition in place like `nongated`: resume
                    // speculation and re-queue the note so the commit walk
                    // emits it. `clock` is exact — replay restored the real
                    // core clock.
                    s.mode = SpecMode::Speculating;
                    s.budget = 0;
                    s.view = Some(SpecView::snapshot(base_ref(), self.tid));
                    s.queue.push_back(SpecEntry::Note { clock, kind });
                    true
                }
            }
            // A poisoned body is being torn down; its note dies with it.
            SpecMode::Poisoned => true,
            SpecMode::Direct => false,
        }
    }

    /// Core body finished (`Drop` hook). Returns `true` when the slot
    /// absorbed the retirement (queued as a `Finish` record for the commit
    /// walk, or dropped with a poisoned teardown); `false` when the caller
    /// must retire the core against real state itself (Direct mode,
    /// including a demotion triggered right here — a demoted core's driver
    /// never drains its queue again, so a queued `Finish` would lose the
    /// trailing `pending` cycles). Must never panic: `Drop` also runs
    /// during unwinding.
    pub(crate) fn finish(&self, pending: u64) -> bool {
        let mut s = self.lock();
        match s.mode {
            SpecMode::Speculating => {
                s.queue.push_back(SpecEntry::Finish { pending });
                true
            }
            SpecMode::Replaying => {
                if s.replay_pos < s.log.len() {
                    // Ended before consuming its committed past: diverged.
                    // Flag it; the driver surfaces the panic.
                    s.panicked = true;
                    true
                } else if s.demote_on_replay_end {
                    // Prefix fully replayed and the core is demoted: same
                    // transition `note` makes. The replayed clock is the
                    // real clock, so the caller retires directly.
                    s.mode = SpecMode::Direct;
                    false
                } else {
                    // Legitimate: the body's first post-prefix action is to
                    // finish (e.g. the mismatched op was its last).
                    s.queue.push_back(SpecEntry::Finish { pending });
                    true
                }
            }
            // A poisoned body is being torn down; a fresh one re-runs its
            // tail, so its pending cycles die with it.
            SpecMode::Poisoned => true,
            SpecMode::Direct => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local base-state pointer for body polls
// ---------------------------------------------------------------------------

thread_local! {
    static SPEC_BASE: Cell<*const SimState> = const { Cell::new(std::ptr::null()) };
}

struct BaseGuard;

impl Drop for BaseGuard {
    fn drop(&mut self) {
        SPEC_BASE.with(|b| b.set(std::ptr::null()));
    }
}

/// Run `f` with `base` installed as the thread's speculation base state.
/// The guard resets the pointer even if `f` panics.
pub(crate) fn with_base<R>(base: *const SimState, f: impl FnOnce() -> R) -> R {
    SPEC_BASE.with(|b| b.set(base));
    let _g = BaseGuard;
    f()
}

/// The base state installed by [`with_base`] for the current poll.
///
/// SAFETY: only reachable from `SpecSlot::gate`/`nongated`, which run while
/// a body future is being polled inside `with_base`. During the parallel
/// speculation phase the driver holds the state mutex for the whole phase
/// and workers borrow `&*guard`; during a replay poll only the driver
/// thread is running and it creates no overlapping `&mut` while the body
/// executes. Either way the pointee is alive and unmutated for the duration
/// of each borrow, and borrows created here are transient (never held
/// across a suspension point).
fn base_ref() -> &'static SimState {
    SPEC_BASE.with(|b| {
        let p = b.get();
        assert!(!p.is_null(), "speculative gate outside a scheduler poll");
        unsafe { &*p }
    })
}

// ---------------------------------------------------------------------------
// The overlay view
// ---------------------------------------------------------------------------

/// A private, copy-on-write view of the simulator for one core's
/// speculation. Own-core structures (caches, tx, arena) are cloned
/// outright; shared structures (memory, owner directory, L3) are overlaid
/// with hash maps consulted before the base. Must never panic on *stale
/// shared* data — reads outside the base fall back to zero, and the commit
/// walk catches any resulting mis-prediction. (Asserts about the core's
/// *own* deterministic control flow — e.g. nested transactions — are fine:
/// the real execution would hit them too.)
#[derive(Debug)]
pub(crate) struct SpecView {
    tid: usize,
    pub(crate) clock: u64,
    tx: Option<TxState>,
    doomed: Option<Doomed>,
    l1: CacheArray,
    l2: CacheArray,
    arena_next: u64,
    arena_end: u64,
    heap_next: u64,
    perm_slots: usize,
    /// Word-index-keyed memory overlay.
    mem: FxHashMap<usize, u64>,
    /// Owner-directory overlay, keyed by line index.
    owners: FxHashMap<u64, Owners>,
    /// Lines speculatively invalidated out of *other* cores' caches:
    /// `(core, line)`.
    removed: FxHashSet<(usize, u64)>,
    /// L3 sets copied on first touch.
    l3_sets: FxHashMap<usize, Vec<(u64, u64)>>,
    l3_ways: usize,
    l3_stamp: u64,
    /// Other cores this view has already speculatively doomed.
    spec_doomed: FxHashSet<usize>,
}

impl SpecView {
    pub(crate) fn snapshot(base: &SimState, tid: usize) -> Self {
        let c = &base.cores[tid];
        SpecView {
            tid,
            clock: c.clock,
            tx: c.tx.clone(),
            doomed: c.doomed,
            l1: c.l1.clone(),
            l2: c.l2.clone(),
            arena_next: c.arena_next,
            arena_end: c.arena_end,
            heap_next: base.heap_next,
            perm_slots: base.perm_slots,
            mem: FxHashMap::default(),
            owners: FxHashMap::default(),
            removed: FxHashSet::default(),
            l3_sets: FxHashMap::default(),
            l3_ways: base.l3.ways(),
            l3_stamp: base.l3.stamp(),
            spec_doomed: FxHashSet::default(),
        }
    }

    // -- overlay primitives -------------------------------------------------

    fn read_word(&self, base: &SimState, addr: u64) -> u64 {
        let i = word_index(addr);
        if let Some(&v) = self.mem.get(&i) {
            return v;
        }
        base.mem.get(i).copied().unwrap_or(0)
    }

    fn write_word(&mut self, addr: u64, v: u64) {
        self.mem.insert(word_index(addr), v);
    }

    fn owners_get(&self, base: &SimState, line: u64) -> Owners {
        if let Some(&o) = self.owners.get(&line) {
            return o;
        }
        base.owners.get(line as usize).copied().unwrap_or_default()
    }

    fn owners_update(&mut self, base: &SimState, line: u64, f: impl FnOnce(&mut Owners)) {
        let mut o = self.owners_get(base, line);
        f(&mut o);
        self.owners.insert(line, o);
    }

    /// Does some *other* core (from this view's perspective) hold `line`?
    fn other_has(&self, base: &SimState, line: u64) -> bool {
        base.cores.iter().enumerate().any(|(i, c)| {
            i != self.tid
                && !self.removed.contains(&(i, line))
                && (c.l1.contains(line) || c.l2.contains(line))
        })
    }

    // -- L3 copy-on-write ---------------------------------------------------

    fn l3_set(&mut self, base: &SimState, line: u64) -> &mut Vec<(u64, u64)> {
        let s = base.l3.set_index(line);
        self.l3_sets
            .entry(s)
            .or_insert_with(|| base.l3.set_entries(s).to_vec())
    }

    fn l3_touch(&mut self, base: &SimState, line: u64) -> bool {
        self.l3_stamp += 1;
        let stamp = self.l3_stamp;
        let set = self.l3_set(base, line);
        for e in set.iter_mut() {
            if e.0 == line {
                e.1 = stamp;
                return true;
            }
        }
        false
    }

    fn l3_insert(&mut self, base: &SimState, line: u64) {
        self.l3_stamp += 1;
        let stamp = self.l3_stamp;
        let ways = self.l3_ways;
        let set = self.l3_set(base, line);
        if let Some(e) = set.iter_mut().find(|e| e.0 == line) {
            e.1 = stamp;
            return;
        }
        if set.len() < ways {
            set.push((line, stamp));
            return;
        }
        if let Some(i) = set
            .iter()
            .enumerate()
            .min_by_key(|(_, &(_, t))| t)
            .map(|(i, _)| i)
        {
            set[i] = (line, stamp);
        }
    }

    // -- cache/latency model (mirrors SimState::touch_caches) ---------------

    fn touch_caches(&mut self, base: &SimState, line: u64, speculative: bool) -> Result<u64, ()> {
        let cfg = &base.cfg;
        if self.l1.touch(line) {
            return Ok(cfg.l1_latency);
        }
        let lat = if self.l2.touch(line) {
            cfg.l2_latency
        } else if self.other_has(base, line) || self.l3_touch(base, line) {
            cfg.l3_latency
        } else {
            cfg.mem_latency
        };
        let SpecView { l1, tx, .. } = self;
        let spec_pred = |l: u64| tx.as_ref().is_some_and(|t| t.spec_contains(l));
        match l1.insert(line, spec_pred) {
            Ok(_) => {}
            Err(()) => {
                if speculative {
                    return Err(());
                }
                // Nontransactional miss into a pinned-full set: bypass L1.
            }
        }
        let _ = self.l2.insert(line, |_| false);
        self.l3_insert(base, line);
        Ok(lat)
    }

    fn invalidate_others(&mut self, base: &SimState, line: u64) {
        for i in 0..base.cores.len() {
            if i != self.tid {
                self.removed.insert((i, line));
            }
        }
    }

    // -- conflict machinery -------------------------------------------------

    fn doom(&mut self, base: &SimState, victim: usize) {
        if victim == self.tid || !self.spec_doomed.insert(victim) {
            return;
        }
        let Some(vtx) = base.cores[victim].tx.as_ref() else {
            return;
        };
        if vtx.rolled_back {
            return;
        }
        // Roll the victim's eager writes back in the overlay and release
        // its ownership so our later accesses see pre-transaction state.
        for &(addr, old) in vtx.undo.iter().rev() {
            self.write_word(addr, old);
        }
        for l in &vtx.lines {
            if l.written {
                self.removed.insert((victim, l.line));
            }
            self.owners_update(base, l.line, |o| {
                o.readers.remove(victim);
                o.writers.remove(victim);
            });
        }
    }

    fn resolve_conflicts(&mut self, base: &SimState, addr: u64, is_write: bool) {
        let line = line_of(addr);
        let o = self.owners_get(base, line);
        let mut mask = o.writers;
        if is_write {
            mask = mask.union(o.readers);
        }
        mask.remove(self.tid);
        // Ascending-id walk, mirroring the authoritative resolve_conflicts.
        for v in mask.iter() {
            self.doom(base, v);
        }
    }

    fn check_doomed(&mut self, base: &SimState) -> Result<(), TxError> {
        if let Some(d) = self.doomed.take() {
            self.clock += base.cfg.tx_abort_cost;
            self.tx = None;
            return Err(TxError::Aborted(d.info));
        }
        Ok(())
    }

    fn rollback_and_release(&mut self, base: &SimState) {
        if let Some(tx) = self.tx.take() {
            if !tx.rolled_back {
                for &(addr, old) in tx.undo.iter().rev() {
                    self.write_word(addr, old);
                }
                let tid = self.tid;
                for l in &tx.lines {
                    if l.written {
                        self.l1.remove(l.line);
                        self.l2.remove(l.line);
                    }
                    self.owners_update(base, l.line, |o| {
                        o.readers.remove(tid);
                        o.writers.remove(tid);
                    });
                }
            }
        }
    }

    fn self_abort(&mut self, base: &SimState, cause: AbortCause) -> TxError {
        self.clock += base.cfg.tx_abort_cost;
        self.rollback_and_release(base);
        TxError::Aborted(AbortInfo::simple(cause))
    }

    // -- op implementations (mirror SimState's, against the overlay) --------

    fn tx_begin(&mut self, base: &SimState, ab_id: u32) -> u64 {
        debug_assert!(self.tx.is_none(), "nested hardware transaction");
        self.doomed = None;
        let mut tx = TxState::default();
        tx.reset(ab_id, self.clock, self.perm_slots);
        self.tx = Some(tx);
        base.cfg.tx_begin_cost
    }

    fn tx_load(&mut self, base: &SimState, addr: u64, pc: u64) -> (Result<u64, TxError>, u64) {
        if let Err(e) = self.check_doomed(base) {
            return (Err(e), 0);
        }
        let line = line_of(addr);
        // Fast path: cached permission + L1 presence.
        let fast = {
            match self.tx.as_ref() {
                Some(tx) if tx.perm_has(line, false) && self.l1.contains(line) => {
                    Some(tx.buffered(addr))
                }
                _ => None,
            }
        };
        if let Some(buffered) = fast {
            self.l1.touch(line);
            return (
                Ok(buffered.unwrap_or_else(|| self.read_word(base, addr))),
                base.cfg.l1_latency,
            );
        }
        {
            let tx = self.tx.as_ref().expect("tx_load outside transaction");
            if bound_exceeded(&base.cfg, tx, line, false) {
                return (Err(self.self_abort(base, AbortCause::Capacity)), 0);
            }
        }
        if base.cfg.protocol == HtmProtocol::Eager {
            self.resolve_conflicts(base, addr, false);
        }
        match self.touch_caches(base, line, true) {
            Ok(lat) => {
                let tid = self.tid;
                let tx = self.tx.as_mut().expect("tx_load outside transaction");
                tx.touch_line(line, pc, false);
                tx.perm_insert(line, false);
                let buffered = tx.buffered(addr);
                self.owners_update(base, line, |o| o.readers.insert(tid));
                (
                    Ok(buffered.unwrap_or_else(|| self.read_word(base, addr))),
                    lat,
                )
            }
            Err(()) => (Err(self.self_abort(base, AbortCause::Capacity)), 0),
        }
    }

    fn tx_store(
        &mut self,
        base: &SimState,
        addr: u64,
        val: u64,
        pc: u64,
    ) -> (Result<(), TxError>, u64) {
        if let Err(e) = self.check_doomed(base) {
            return (Err(e), 0);
        }
        let eager = base.cfg.protocol == HtmProtocol::Eager;
        let line = line_of(addr);
        let fast = {
            match self.tx.as_mut() {
                Some(tx) if tx.perm_has(line, true) && self.l1.contains(line) => {
                    if !eager {
                        tx.buffer_store(addr, val);
                    }
                    true
                }
                _ => false,
            }
        };
        if fast {
            self.l1.touch(line);
            if eager {
                let old = self.read_word(base, addr);
                self.tx.as_mut().unwrap().undo.push((addr, old));
                self.write_word(addr, val);
                self.invalidate_others(base, line);
            }
            return (Ok(()), base.cfg.l1_latency);
        }
        {
            let tx = self.tx.as_ref().expect("tx_store outside transaction");
            if bound_exceeded(&base.cfg, tx, line, true) {
                return (Err(self.self_abort(base, AbortCause::Capacity)), 0);
            }
        }
        if eager {
            self.resolve_conflicts(base, addr, true);
        }
        match self.touch_caches(base, line, true) {
            Ok(lat) => {
                let tid = self.tid;
                let old = self.read_word(base, addr);
                let tx = self.tx.as_mut().expect("tx_store outside transaction");
                tx.touch_line(line, pc, true);
                tx.perm_insert(line, true);
                self.owners_update(base, line, |o| o.writers.insert(tid));
                let tx = self.tx.as_mut().unwrap();
                if eager {
                    tx.undo.push((addr, old));
                    self.write_word(addr, val);
                    self.invalidate_others(base, line);
                } else {
                    tx.buffer_store(addr, val);
                }
                (Ok(()), lat)
            }
            Err(()) => (Err(self.self_abort(base, AbortCause::Capacity)), 0),
        }
    }

    fn tx_commit(&mut self, base: &SimState) -> (Result<(), TxError>, u64) {
        if let Err(e) = self.check_doomed(base) {
            return (Err(e), 0);
        }
        // Mirror the commit-time fallback-lock validation of the safe
        // lazy-subscription policy (prediction only — the authoritative
        // re-execution decides).
        if base.cfg.fallback == FallbackPolicy::LazySubscriptionSafe {
            if let Some(lock) = base.commit_lock_addr {
                if self.read_word(base, lock) != 0 {
                    return (
                        Err(self.self_abort(base, AbortCause::SubscriptionValidation)),
                        0,
                    );
                }
            }
        }
        let mut commit_cost = base.cfg.tx_commit_cost;
        if base.cfg.protocol == HtmProtocol::Lazy {
            let tx = self.tx.take().expect("commit without transaction");
            for e in tx.lines.iter().filter(|e| e.written) {
                self.resolve_conflicts(base, e.line * LINE_BYTES, true);
            }
            commit_cost += tx.write_buffer.len() as u64;
            for &(addr, val) in &tx.write_buffer {
                self.write_word(addr, val);
            }
            for e in tx.lines.iter().filter(|e| e.written) {
                self.invalidate_others(base, e.line);
            }
            self.tx = Some(tx);
        }
        let tx = self.tx.take().expect("commit without transaction");
        let tid = self.tid;
        for l in &tx.lines {
            self.owners_update(base, l.line, |o| {
                o.readers.remove(tid);
                o.writers.remove(tid);
            });
        }
        (Ok(()), commit_cost)
    }

    fn nt_load(&mut self, base: &SimState, addr: u64) -> (u64, u64) {
        let line = line_of(addr);
        let lat = self
            .touch_caches(base, line, false)
            .unwrap_or(base.cfg.mem_latency);
        (self.read_word(base, addr), lat)
    }

    fn plain_load(&mut self, base: &SimState, addr: u64) -> (u64, u64) {
        if base.cfg.protocol == HtmProtocol::Eager {
            self.resolve_conflicts(base, addr, false);
        }
        self.nt_load(base, addr)
    }

    fn nt_store(&mut self, base: &SimState, addr: u64, val: u64) -> u64 {
        let line = line_of(addr);
        self.resolve_conflicts(base, addr, true);
        let lat = self
            .touch_caches(base, line, false)
            .unwrap_or(base.cfg.mem_latency);
        self.write_word(addr, val);
        self.invalidate_others(base, line);
        lat
    }

    fn nt_cas(&mut self, base: &SimState, addr: u64, old: u64, new: u64) -> (bool, u64) {
        let line = line_of(addr);
        let cur = self.read_word(base, addr);
        if cur == old {
            self.resolve_conflicts(base, addr, true);
            let lat = self
                .touch_caches(base, line, false)
                .unwrap_or(base.cfg.mem_latency);
            self.write_word(addr, new);
            self.invalidate_others(base, line);
            (true, lat)
        } else {
            let lat = self
                .touch_caches(base, line, false)
                .unwrap_or(base.cfg.mem_latency);
            (false, lat)
        }
    }

    fn alloc(&mut self, base: &SimState, words: u64, line_align: bool) -> (u64, u64) {
        let bytes = words * WORD_BYTES;
        let chunk = (base.cfg.arena_chunk_words as u64) * WORD_BYTES;
        let mut start = self.arena_next;
        if line_align {
            start = (start + LINE_BYTES - 1) & !(LINE_BYTES - 1);
        }
        if start + bytes > self.arena_end {
            // The real path asserts heap bounds; the overlay just predicts
            // and lets the authoritative run do the asserting.
            let b = (self.heap_next + LINE_BYTES - 1) & !(LINE_BYTES - 1);
            self.heap_next = b + chunk;
            self.arena_next = b;
            self.arena_end = b + chunk;
            start = b;
        }
        self.arena_next = start + bytes;
        (start, 10 + base.cfg.alloc_cost_per_word * words)
    }

    /// Execute one op against the overlay, returning the predicted
    /// `(result, latency)`.
    pub(crate) fn exec(&mut self, base: &SimState, op: &Op) -> (OpResult, u64) {
        match *op {
            Op::Begin { ab_id } => {
                let lat = self.tx_begin(base, ab_id);
                (OpResult::Unit, lat)
            }
            Op::Load { addr, pc } => {
                let (r, lat) = self.tx_load(base, addr, pc);
                (OpResult::TxVal(r), lat)
            }
            Op::Store { addr, val, pc } => {
                let (r, lat) = self.tx_store(base, addr, val, pc);
                (OpResult::TxUnit(r), lat)
            }
            Op::Commit => {
                let (r, lat) = self.tx_commit(base);
                (OpResult::TxUnit(r), lat)
            }
            Op::Abort => (
                OpResult::TxErr(self.self_abort(base, AbortCause::Explicit)),
                0,
            ),
            Op::NtLoad { addr } => {
                let (v, lat) = self.nt_load(base, addr);
                (OpResult::Val(v), lat)
            }
            Op::PlainLoad { addr } => {
                let (v, lat) = self.plain_load(base, addr);
                (OpResult::Val(v), lat)
            }
            Op::NtStore { addr, val } => {
                let lat = self.nt_store(base, addr, val);
                (OpResult::Unit, lat)
            }
            Op::NtCas { addr, old, new } => {
                let (ok, lat) = self.nt_cas(base, addr, old, new);
                (OpResult::Flag(ok), lat)
            }
            Op::Alloc { words, line_align } => {
                let (a, lat) = self.alloc(base, words, line_align);
                (OpResult::Val(a), lat)
            }
            // Pure cycle/stat charges: result is trivially exact; the stat
            // side effects land in the authoritative re-execution.
            Op::LockWait { .. } | Op::Backoff { .. } | Op::Irrevocable { .. } => {
                (OpResult::Unit, 0)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Driver-side helpers: task control, commit walk, worker poll
// ---------------------------------------------------------------------------

/// Driver-side bookkeeping for one core task.
#[derive(Debug, Default)]
pub(crate) struct TaskCtl {
    pub(crate) done: bool,
    pub(crate) direct: bool,
    pub(crate) needs_rebuild: bool,
    pub(crate) rebuilds: u32,
}

/// What the serial commit walk stopped on.
pub(crate) enum WalkStep {
    /// The globally next op belongs to a Direct core: the driver must
    /// admit it and poll that core's future on the driver thread.
    Direct(usize),
    /// No more committable work this round.
    RoundDone,
}

/// Serially validate-and-commit queued predictions in min-`(clock, id)`
/// order.
///
/// Each committable head op is re-executed against the *real* state via
/// [`apply_op`] — the authoritative execution that produces all stats,
/// traces, and obs events — then compared with its prediction. A match
/// keeps consuming that core's queue; a mismatch still commits the real
/// result (the op's *identity* was exact: it is determined by the
/// validated prefix) but discards the rest of the queue and marks the core
/// for rebuild.
///
/// The next core to act is found through `heap`, a [`LazyMinHeap`] over
/// per-core lower-bound keys, replacing a linear scan per committed op:
///
/// * a Direct core or one marked `needs_rebuild` is keyed by its real
///   clock (exact for Direct, a lower bound for rebuilds),
/// * a queued head `Op` is keyed by its `key_clock`,
/// * an order-free head (non-gated read, note, finish) or an empty queue
///   is keyed by the core's committed clock — a lower bound on whatever
///   its next gated op turns out to be.
///
/// All keys are distinct (the id breaks ties), so the cleaned heap top *is*
/// the unique global minimum, and dispatching on its kind reproduces the
/// old scan's decision exactly: an `Op` top commits, a Direct top returns
/// to the driver, a bound-kind top means nothing can commit without risking
/// (clock, id) order — `RoundDone`. Order-free heads are drained when their
/// core reaches the top (they are per-core streams, so drain timing
/// relative to *other* cores is unobservable). Within one walk every key
/// transition is monotone non-decreasing, which is the heap's soundness
/// precondition; the panic-triage path between walks can lower a key
/// (clearing a queue drops a head key back to the core's clock), so the
/// walk reseeds the heap on entry rather than keeping it warm across calls.
pub(crate) fn commit_walk(
    st: &mut SimState,
    slots: &[std::sync::Arc<SpecSlot>],
    ctl: &mut [TaskCtl],
    sstats: &mut SpecStats,
    heap: &mut LazyMinHeap,
) -> WalkStep {
    let n = slots.len();
    let key_of = |st: &SimState, ctl: &[TaskCtl], tid: usize| -> Option<u64> {
        if ctl[tid].done {
            return None;
        }
        if ctl[tid].direct || ctl[tid].needs_rebuild {
            return Some(st.cores[tid].clock);
        }
        match slots[tid].lock().queue.front() {
            Some(&SpecEntry::Op { key_clock, .. }) => Some(key_clock),
            _ => Some(st.cores[tid].clock),
        }
    };
    heap.reseed(n, |tid| key_of(st, ctl, tid));
    loop {
        let Some((_, bt)) = heap.min(|tid| key_of(st, ctl, tid)) else {
            // Every core retired.
            return WalkStep::RoundDone;
        };
        if ctl[bt].direct {
            // Exact: a Direct core pending at its gate has already folded
            // its compute cycles into the real clock, and it is globally
            // next — the driver must admit it.
            return WalkStep::Direct(bt);
        }
        if ctl[bt].needs_rebuild {
            // The global minimum is only a bound: committing anything
            // past it could break the (clock, id) order.
            return WalkStep::RoundDone;
        }
        let mut s = slots[bt].lock();
        match s.queue.front() {
            // Empty queue: same bound situation as a rebuild.
            None => return WalkStep::RoundDone,
            Some(&SpecEntry::Op { .. }) => {
                // Commit the head op of core `bt` authoritatively.
                let Some(SpecEntry::Op {
                    key_clock,
                    op,
                    res,
                    lat,
                }) = s.queue.pop_front()
                else {
                    unreachable!("front() just saw an Op at this head")
                };
                debug_assert!(st.cores[bt].clock <= key_clock);
                st.cores[bt].clock = key_clock;
                st.cores[bt].stats.gated_ops += 1;
                let (real_res, real_lat) = apply_op(st, bt, &op);
                st.cores[bt].clock += real_lat;
                s.log.push(ReplayEntry::Gated {
                    res: real_res,
                    clock_after: st.cores[bt].clock,
                });
                if real_res == res && real_lat == lat {
                    sstats.committed_ops += 1;
                } else {
                    sstats.mismatches += 1;
                    s.queue.clear();
                    s.view = None;
                    ctl[bt].needs_rebuild = true;
                }
            }
            Some(_) => {
                // Drain the run of order-free entries (non-gated reads,
                // notes, finishes) at this core's head. They depend only
                // on the core's own committed prefix, so they need no
                // global ordering; events/traces are per-core streams, so
                // emitting them here preserves byte-identical per-core
                // order.
                loop {
                    match s.queue.front() {
                        Some(&SpecEntry::NonGated(v)) => {
                            let real = ng_real(
                                st,
                                bt,
                                match v {
                                    NgValue::Active(_) => NgKind::Active,
                                    NgValue::AbId(_) => NgKind::AbId,
                                },
                            );
                            if real != v {
                                sstats.mismatches += 1;
                                s.queue.clear();
                                s.view = None;
                                ctl[bt].needs_rebuild = true;
                                break;
                            }
                            s.queue.pop_front();
                            s.log.push(ReplayEntry::NonGated(real));
                        }
                        Some(&SpecEntry::Note { clock, kind }) => {
                            st.note_at(bt, clock, kind);
                            s.queue.pop_front();
                            // Logged so a replayed body knows this note was
                            // already emitted (unlogged notes are
                            // re-queued).
                            s.log.push(ReplayEntry::Note);
                        }
                        Some(&SpecEntry::Finish { pending }) => {
                            st.cores[bt].clock += pending;
                            st.cores[bt].finished = true;
                            s.queue.clear();
                            ctl[bt].done = true;
                            break;
                        }
                        _ => break,
                    }
                }
            }
        }
    }
}

/// The future type driven by the speculative scheduler.
pub(crate) type FutCell<'m> = Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send + 'm>>>>;

/// Poll one core future with `base` installed for the overlay and panics
/// contained: a panic while speculating means the overlay fed the body
/// impossible (stale) data — rebuild it, don't crash the run.
pub(crate) fn spec_poll(base: &SimState, fut_cell: &FutCell<'_>, slot: &SpecSlot) {
    let mut guard = fut_cell.lock().unwrap_or_else(|poison| poison.into_inner());
    let Some(fut) = guard.as_mut() else {
        return;
    };
    let waker = Waker::noop();
    let mut cx = Context::from_waker(waker);
    let r = with_base(base as *const SimState, || {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fut.as_mut().poll(&mut cx)))
    });
    match r {
        Ok(Poll::Ready(())) => {
            *guard = None;
        }
        Ok(Poll::Pending) => {}
        Err(_) => {
            *guard = None;
            let mut s = slot.lock();
            s.queue.clear();
            s.view = None;
            s.panicked = true;
        }
    }
}
