//! Address arithmetic: 64-bit byte addresses over a word-granular heap.

/// A simulated byte address. All memory operations require 8-byte
/// alignment (the IR is an all-64-bit-word world; see DESIGN.md).
pub type Addr = u64;

/// Bytes per 64-bit word.
pub const WORD_BYTES: u64 = 8;

/// Bytes per cache line (Table 2: 64-byte lines).
pub const LINE_BYTES: u64 = 64;

/// Words per cache line.
pub const WORDS_PER_LINE: u64 = LINE_BYTES / WORD_BYTES;

/// The line *index* containing `addr`.
#[inline]
pub fn line_of(addr: Addr) -> u64 {
    addr / LINE_BYTES
}

/// The first byte address of the line containing `addr`.
#[inline]
pub fn line_addr(addr: Addr) -> Addr {
    addr & !(LINE_BYTES - 1)
}

/// The word index (into the flat memory array) of `addr`.
///
/// # Panics
/// Panics (debug) on unaligned addresses — the interpreter only ever
/// produces aligned ones.
#[inline]
pub fn word_index(addr: Addr) -> usize {
    debug_assert_eq!(addr % WORD_BYTES, 0, "unaligned access at {addr:#x}");
    (addr / WORD_BYTES) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_math() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 1);
        assert_eq!(line_addr(100), 64);
        assert_eq!(line_addr(64), 64);
        assert_eq!(WORDS_PER_LINE, 8);
    }

    #[test]
    fn word_indexing() {
        assert_eq!(word_index(0), 0);
        assert_eq!(word_index(8), 1);
        assert_eq!(word_index(640), 80);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn unaligned_panics() {
        word_index(9);
    }

    #[test]
    fn same_line_words_share_line() {
        // Two fields of a node within one line conflict at line granularity.
        let base = 1024;
        assert_eq!(line_of(base), line_of(base + 56));
        assert_ne!(line_of(base), line_of(base + 64));
    }
}
