//! # htm-sim — a deterministic, cycle-approximate multicore HTM simulator
//!
//! Stands in for the paper's MARSSx86 + ASF simulated hardware (Table 2).
//! The model reproduces every hardware property the Staggered Transactions
//! mechanism interacts with:
//!
//! * **Cache-line-granularity conflict detection** — 64-byte lines; read and
//!   write sets are tracked per line in a private L1 model (8-way × 128
//!   sets), and a transaction whose footprint overflows a set's ways takes a
//!   *capacity* abort.
//! * **Eager requester-wins resolution** — a coherence request that hits
//!   another core's speculative line aborts the owner immediately (its undo
//!   log is rolled back under the simulator lock); the victim observes the
//!   abort at its next operation, carrying the conflicting data address and
//!   the 12-bit **conflicting-PC tag** of its own first access to that line
//!   (the hardware extension of paper Section 4).
//! * **Nontransactional loads, stores and CAS inside transactions** — they
//!   bypass the speculative sets; an NT store still aborts *other* cores'
//!   speculative lines (it is a real coherence write), while an NT load
//!   never kills anyone. Advisory locks are built exclusively from these.
//! * **A Table 2 latency model** — L1 2 cycles, L2 10, L3 30, memory 125
//!   (50 ns at 2.5 GHz), cache-to-cache transfer at L3 cost. Absolute
//!   numbers differ from MARSSx86's out-of-order pipeline, but the ratios
//!   that the paper's results are built on (speedup, wasted/useful cycles)
//!   are preserved in shape.
//!
//! ## Determinism
//!
//! Each simulated core is a resumable program (an `async` body), and every
//! shared-state operation is *gated*: a core may act only when its logical
//! clock is the minimum over all unfinished cores (ties broken by core
//! id). By default a single-threaded cooperative event loop resumes the
//! minimum-clock core — no OS threads or condvar handoffs per simulated
//! core; a thread-per-core driver with identical semantics is kept behind
//! [`config::Scheduler::Threaded`]. Given the same seeds, a run is
//! bit-for-bit reproducible regardless of host scheduling or driver — the
//! simulated analogue of the paper pinning worker threads to cores.

pub mod addr;
pub mod cache;
pub mod config;
pub mod coreset;
pub mod fx;
pub mod latency;
pub mod machine;
pub mod obs;
pub mod sched;
pub mod sim;
pub(crate) mod spec;
pub mod stats;
pub mod trace;

pub use addr::{line_addr, line_of, Addr, LINE_BYTES, WORDS_PER_LINE, WORD_BYTES};
pub use config::{FallbackPolicy, HtmProtocol, MachineConfig, Scheduler};
pub use coreset::MAX_CORES;
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use latency::{
    histogram_of, request_latencies, txn_latencies, LatencySummary, LogHistogram, RequestLatency,
};
pub use machine::{body, factory, Core, CoreBody, CoreFactory, CoreFn, Machine};
pub use obs::{
    AbortBreakdown, ConflictMatrix, EventRing, ObsEvent, ObsKind, WaitHistogram, WordWaits,
};
pub use sched::SchedStats;
pub use sim::{AbortCause, AbortInfo, TraceEvent, TraceKind, TxError};
pub use stats::{CoreStats, SimStats, SpecStats};
