//! ASCII timeline rendering of recorded schedules — the paper's Figure 1,
//! drawn from an actual run.
//!
//! Enable [`crate::MachineConfig::record_trace`], run, then call
//! [`crate::Machine::take_trace`] and feed the result to
//! [`render_timeline`]. The richer [`render_timeline_events`] draws from
//! the full observability stream ([`crate::MachineConfig::record_events`]
//! and [`crate::Machine::take_events`]) and additionally shows lock-wait
//! and irrevocable spans.

use crate::obs::{ObsEvent, ObsKind};
use crate::sim::{TraceEvent, TraceKind};

/// Render per-core begin/commit/abort traces as one row per core over a
/// `width`-column time axis.
///
/// Legend: `.` outside any transaction, `=` inside a transaction, `x` an
/// abort, `C` a commit. Multiple events in one column are summarized by
/// the most severe (`x` > `C` > boundary).
pub fn render_timeline(traces: &[Vec<TraceEvent>], width: usize) -> String {
    assert!(width >= 10, "give the timeline some room");
    let end = traces
        .iter()
        .flat_map(|t| t.iter().map(|e| e.clock))
        .max()
        .unwrap_or(0)
        .max(1);
    let col = |clock: u64| ((clock as u128 * (width as u128 - 1)) / end as u128) as usize;

    let mut out = String::new();
    for (tid, events) in traces.iter().enumerate() {
        let mut row = vec!['.'; width];
        let mut open: Option<usize> = None;
        for e in events {
            let c = col(e.clock);
            match e.kind {
                TraceKind::Begin(_) => open = Some(c),
                TraceKind::Commit | TraceKind::Abort => {
                    let start = open.take().unwrap_or(c);
                    for cell in row.iter_mut().take(c).skip(start) {
                        if *cell == '.' {
                            *cell = '=';
                        }
                    }
                    let mark = if e.kind == TraceKind::Commit {
                        'C'
                    } else {
                        'x'
                    };
                    // Aborts dominate commits dominate fill.
                    if row[c] != 'x' {
                        row[c] = mark;
                    }
                }
            }
        }
        // A transaction still open at the end of the run.
        if let Some(start) = open {
            for cell in row.iter_mut().skip(start) {
                if *cell == '.' {
                    *cell = '=';
                }
            }
        }
        out.push_str(&format!("t{tid:<2} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "      0 {:>width$}\n",
        format!("{end} cycles"),
        width = width - 2
    ));
    out
}

/// Drawing precedence for [`render_timeline_events`]: an abort mark beats
/// a commit mark beats an irrevocable span beats a lock-wait span beats
/// transaction fill beats idle.
fn rank(c: char) -> u8 {
    match c {
        '=' => 1,
        '-' => 2,
        'L' => 3,
        'C' => 4,
        'x' => 5,
        _ => 0,
    }
}

fn put(row: &mut [char], i: usize, c: char) {
    if rank(c) > rank(row[i]) {
        row[i] = c;
    }
}

/// Render per-core observability event streams as one row per core over a
/// `width`-column time axis.
///
/// Legend: `.` outside any transaction, `=` inside a transaction, `-` a
/// lock-wait span (spinning on an advisory lock), `L` an irrevocable
/// (global-lock) span, `x` an abort, `C` a commit. Duration-carrying
/// events are stamped at their span's end, so a wait of `w` cycles ending
/// at clock `c` paints `[c - w, c]`. Conflicting cells keep the most
/// severe mark (`x` > `C` > `L` > `-` > `=`).
pub fn render_timeline_events(streams: &[Vec<ObsEvent>], width: usize) -> String {
    assert!(width >= 10, "give the timeline some room");
    let end = streams
        .iter()
        .flat_map(|t| t.iter().map(|e| e.clock))
        .max()
        .unwrap_or(0)
        .max(1);
    let col = |clock: u64| ((clock as u128 * (width as u128 - 1)) / end as u128) as usize;

    let mut out = String::new();
    for (tid, events) in streams.iter().enumerate() {
        let mut row = vec!['.'; width];
        let mut open: Option<usize> = None;
        for e in events {
            let c = col(e.clock);
            match e.kind {
                ObsKind::TxBegin { .. } => open = Some(c),
                ObsKind::TxCommit | ObsKind::TxAbort { .. } => {
                    let start = open.take().unwrap_or(c);
                    for i in start..c {
                        put(&mut row, i, '=');
                    }
                    let mark = if matches!(e.kind, ObsKind::TxCommit) {
                        'C'
                    } else {
                        'x'
                    };
                    put(&mut row, c, mark);
                }
                ObsKind::LockAcquire { waited, .. } | ObsKind::LockTimeout { waited, .. } => {
                    if waited > 0 {
                        for i in col(e.clock.saturating_sub(waited))..=c {
                            put(&mut row, i, '-');
                        }
                    }
                }
                ObsKind::IrrevocableExit { cycles } => {
                    for i in col(e.clock.saturating_sub(cycles))..=c {
                        put(&mut row, i, 'L');
                    }
                }
                ObsKind::LockRelease { .. }
                | ObsKind::Backoff { .. }
                | ObsKind::IrrevocableEnter => {}
            }
        }
        // A transaction still open at the end of the run.
        if let Some(start) = open {
            for i in start..width {
                put(&mut row, i, '=');
            }
        }
        out.push_str(&format!("t{tid:<2} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "      0 {:>width$}\n",
        format!("{end} cycles"),
        width = width - 2
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{TraceEvent, TraceKind};

    fn ev(clock: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent { clock, kind }
    }

    #[test]
    fn renders_commit_and_abort_marks() {
        let traces = vec![
            vec![
                ev(0, TraceKind::Begin(0)),
                ev(50, TraceKind::Abort),
                ev(60, TraceKind::Begin(0)),
                ev(100, TraceKind::Commit),
            ],
            vec![ev(10, TraceKind::Begin(0)), ev(90, TraceKind::Commit)],
        ];
        let s = render_timeline(&traces, 40);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('x'));
        assert!(lines[0].contains('C'));
        assert!(lines[1].contains('C'));
        assert!(!lines[1].contains('x'));
        assert!(s.contains("100 cycles"));
    }

    #[test]
    fn empty_trace_renders() {
        let s = render_timeline(&[vec![], vec![]], 20);
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn machine_records_when_enabled() {
        use crate::{body, Machine, MachineConfig};
        let mut cfg = MachineConfig::cores(1).small();
        cfg.record_trace = true;
        let m = Machine::new(cfg);
        let a = m.host_alloc(8, true);
        m.run(vec![body(move |mut c| async move {
            c.tx_begin(3).await;
            c.tx_store(a, 1, 0).await.unwrap();
            c.tx_commit().await.unwrap();
        })]);
        let traces = m.take_trace();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].len(), 2);
        assert!(matches!(traces[0][0].kind, TraceKind::Begin(3)));
        assert!(matches!(traces[0][1].kind, TraceKind::Commit));
        assert!(traces[0][1].clock >= traces[0][0].clock);
        // Consuming: the events moved out above.
        assert!(m.take_trace()[0].is_empty());
    }

    #[test]
    fn event_timeline_draws_lock_and_irrevocable_spans() {
        let streams = vec![
            vec![
                ObsEvent {
                    clock: 0,
                    kind: ObsKind::TxBegin { ab_id: 0 },
                },
                // Spun 40 cycles on an advisory lock, acquired at 50.
                ObsEvent {
                    clock: 50,
                    kind: ObsKind::LockAcquire {
                        word: 0x1000,
                        waited: 40,
                    },
                },
                ObsEvent {
                    clock: 100,
                    kind: ObsKind::TxCommit,
                },
            ],
            vec![
                ObsEvent {
                    clock: 60,
                    kind: ObsKind::IrrevocableEnter,
                },
                ObsEvent {
                    clock: 100,
                    kind: ObsKind::IrrevocableExit { cycles: 40 },
                },
            ],
        ];
        let s = render_timeline_events(&streams, 40);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('-'), "lock-wait span on core 0");
        assert!(lines[0].contains('C'));
        assert!(lines[1].contains('L'), "irrevocable span on core 1");
        assert!(!lines[1].contains('='));
        assert!(s.contains("100 cycles"));
        // Lock wait dominates tx fill but not the commit mark.
        assert!(lines[0].contains('='));
    }

    #[test]
    fn event_timeline_uncontended_acquire_paints_nothing() {
        let streams = vec![vec![ObsEvent {
            clock: 50,
            kind: ObsKind::LockAcquire {
                word: 0x1000,
                waited: 0,
            },
        }]];
        let s = render_timeline_events(&streams, 20);
        assert!(!s.lines().next().unwrap().contains('-'));
    }

    #[test]
    fn machine_skips_recording_by_default() {
        use crate::{body, Machine, MachineConfig};
        let m = Machine::new(MachineConfig::cores(1).small());
        let a = m.host_alloc(8, true);
        m.run(vec![body(move |mut c| async move {
            c.tx_begin(0).await;
            c.tx_store(a, 1, 0).await.unwrap();
            c.tx_commit().await.unwrap();
        })]);
        assert!(m.take_trace()[0].is_empty());
    }
}
