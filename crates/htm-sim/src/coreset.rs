//! Fixed-capacity multi-word core bitset.
//!
//! The ownership directory ([`crate::sim::Owners`]) tracks which cores hold
//! a cache line speculatively. With a single `u32` mask the machine was
//! structurally capped at 32 cores (`1 << tid` overflows beyond core 31);
//! [`CoreSet`] widens that to [`MAX_CORES`] while keeping the properties the
//! hot paths rely on:
//!
//! * `Copy` + cheap equality — the speculative overlay
//!   ([`crate::spec`]) stores `Owners` *by value* in its touched-line map.
//! * Ascending-id iteration via per-word `trailing_zeros` — the eager
//!   requester-wins victim walk dooms cores in ascending id order, and that
//!   order is part of the simulator's bit-identical contract.
//! * A single-word fast path: when `n_cores <= 64` only word 0 can ever be
//!   nonzero, so [`CoreSet::iter`] checks the upper words once and then
//!   scans one word, matching the old u32 loop's cost.

/// Hard upper bound on simulated cores; one [`CoreSet`] word per 64 ids.
pub const MAX_CORES: usize = 256;

const WORDS: usize = MAX_CORES / 64;

/// A set of core ids in `0..MAX_CORES`, stored as a flat bitmask.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CoreSet([u64; WORDS]);

impl CoreSet {
    #[inline]
    pub(crate) fn insert(&mut self, id: usize) {
        debug_assert!(id < MAX_CORES);
        self.0[id >> 6] |= 1u64 << (id & 63);
    }

    #[inline]
    pub(crate) fn remove(&mut self, id: usize) {
        debug_assert!(id < MAX_CORES);
        self.0[id >> 6] &= !(1u64 << (id & 63));
    }

    #[inline]
    pub(crate) fn contains(&self, id: usize) -> bool {
        debug_assert!(id < MAX_CORES);
        self.0[id >> 6] & (1u64 << (id & 63)) != 0
    }

    #[inline]
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.0 == [0; WORDS]
    }

    /// Set union — `readers | writers` in the conflict walk.
    #[inline]
    pub(crate) fn union(mut self, other: CoreSet) -> CoreSet {
        for (w, o) in self.0.iter_mut().zip(other.0) {
            *w |= o;
        }
        self
    }

    /// Iterate member ids in ascending order (the doom-order contract).
    #[inline]
    pub(crate) fn iter(&self) -> CoreSetIter {
        // Single-word fast path: with <= 64 cores the upper words are
        // structurally zero, so the iterator never visits them.
        let last = if self.0[1..].iter().all(|&w| w == 0) {
            1
        } else {
            WORDS
        };
        CoreSetIter {
            words: self.0,
            idx: 0,
            last,
        }
    }
}

/// Ascending-id iterator over a [`CoreSet`] snapshot.
pub(crate) struct CoreSetIter {
    words: [u64; WORDS],
    idx: usize,
    last: usize,
}

impl Iterator for CoreSetIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.idx < self.last {
            let w = self.words[self.idx];
            if w != 0 {
                let bit = w.trailing_zeros() as usize;
                self.words[self.idx] = w & (w - 1);
                return Some((self.idx << 6) | bit);
            }
            self.idx += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_across_words() {
        let mut s = CoreSet::default();
        assert!(s.is_empty());
        for id in [0, 31, 32, 63, 64, 127, 128, 255] {
            s.insert(id);
            assert!(s.contains(id));
        }
        assert!(!s.contains(1));
        assert!(!s.contains(129));
        s.remove(64);
        assert!(!s.contains(64));
        assert!(s.contains(63));
        assert!(s.contains(128));
    }

    #[test]
    fn iter_is_ascending_over_all_words() {
        let mut s = CoreSet::default();
        let ids = [255, 3, 64, 200, 0, 65, 127];
        for id in ids {
            s.insert(id);
        }
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        assert_eq!(s.iter().collect::<Vec<_>>(), sorted);
    }

    #[test]
    fn union_merges_and_removal_clears() {
        let mut a = CoreSet::default();
        let mut b = CoreSet::default();
        a.insert(2);
        a.insert(100);
        b.insert(2);
        b.insert(70);
        let u = a.union(b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![2, 70, 100]);
        let mut u2 = u;
        u2.remove(2);
        u2.remove(70);
        u2.remove(100);
        assert!(u2.is_empty());
    }

    #[test]
    fn single_word_fast_path_bounds_iteration() {
        let mut s = CoreSet::default();
        s.insert(5);
        s.insert(63);
        let it = s.iter();
        assert_eq!(it.last, 1, "upper words empty: scan one word only");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 63]);
        s.insert(64);
        assert_eq!(s.iter().last, WORDS);
    }
}
