//! Set-associative presence tracking with LRU replacement.
//!
//! Used three ways: per-core L1 presence (latency + speculative capacity),
//! per-core L2 presence, and shared L3 presence. Only line indices are
//! tracked — data lives in the flat simulated memory; this structure decides
//! *hit level*, and for the L1, *when a transaction overflows* (a 9th
//! speculative line mapping to an 8-way set).

/// One set-associative cache level tracking line presence.
#[derive(Debug, Clone)]
pub struct CacheArray {
    sets: Vec<Vec<(u64, u64)>>, // (line, last-use stamp)
    ways: usize,
    stamp: u64,
}

impl CacheArray {
    pub fn new(n_sets: usize, ways: usize) -> Self {
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        CacheArray {
            sets: vec![Vec::with_capacity(ways); n_sets],
            ways,
            stamp: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line as usize) & (self.sets.len() - 1)
    }

    /// Is `line` present? (Does not update LRU.)
    pub fn contains(&self, line: u64) -> bool {
        self.sets[self.set_of(line)].iter().any(|&(l, _)| l == line)
    }

    /// Touch `line`: returns `true` on hit (LRU updated). On miss the line
    /// is *not* inserted; call [`Self::insert`].
    pub fn touch(&mut self, line: u64) -> bool {
        self.stamp += 1;
        let stamp = self.stamp;
        let s = self.set_of(line);
        for e in &mut self.sets[s] {
            if e.0 == line {
                e.1 = stamp;
                return true;
            }
        }
        false
    }

    /// Insert `line`, evicting the LRU way if the set is full; `pinned`
    /// lines (a transaction's speculative footprint) are never chosen as
    /// victims. Returns `Err(())` if every way is pinned — a speculative
    /// capacity overflow. On success returns the evicted line, if any.
    #[allow(clippy::result_unit_err)]
    pub fn insert(
        &mut self,
        line: u64,
        is_pinned: impl Fn(u64) -> bool,
    ) -> Result<Option<u64>, ()> {
        self.stamp += 1;
        let stamp = self.stamp;
        let s = self.set_of(line);
        if let Some(e) = self.sets[s].iter_mut().find(|e| e.0 == line) {
            e.1 = stamp;
            return Ok(None);
        }
        if self.sets[s].len() < self.ways {
            self.sets[s].push((line, stamp));
            return Ok(None);
        }
        // Choose the least-recently-used unpinned way.
        let victim = self.sets[s]
            .iter()
            .enumerate()
            .filter(|(_, &(l, _))| !is_pinned(l))
            .min_by_key(|(_, &(_, t))| t)
            .map(|(i, _)| i);
        match victim {
            Some(i) => {
                let evicted = self.sets[s][i].0;
                self.sets[s][i] = (line, stamp);
                Ok(Some(evicted))
            }
            None => Err(()),
        }
    }

    /// Set index of `line` — exposed for the speculative scheduler's
    /// copy-on-write overlay, which clones single sets on demand.
    pub(crate) fn set_index(&self, line: u64) -> usize {
        self.set_of(line)
    }

    /// The `(line, stamp)` entries of set `s` (overlay seeding).
    pub(crate) fn set_entries(&self, s: usize) -> &[(u64, u64)] {
        &self.sets[s]
    }

    /// Associativity (overlay seeding).
    pub(crate) fn ways(&self) -> usize {
        self.ways
    }

    /// Current LRU stamp counter (overlay seeding).
    pub(crate) fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Remove a specific line (e.g., invalidation on cross-core write).
    pub fn remove(&mut self, line: u64) {
        let s = self.set_of(line);
        self.sets[s].retain(|&(l, _)| l != line);
    }

    /// Total lines currently present.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c = CacheArray::new(4, 2);
        assert!(!c.touch(10));
        c.insert(10, |_| false).unwrap();
        assert!(c.touch(10));
        assert!(c.contains(10));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = CacheArray::new(1, 2); // one set, 2 ways
        c.insert(1, |_| false).unwrap();
        c.insert(2, |_| false).unwrap();
        c.touch(1); // 2 is now LRU
        let evicted = c.insert(3, |_| false).unwrap();
        assert_eq!(evicted, Some(2));
        assert!(c.contains(1) && c.contains(3) && !c.contains(2));
    }

    #[test]
    fn pinned_lines_survive() {
        let mut c = CacheArray::new(1, 2);
        c.insert(1, |_| false).unwrap();
        c.insert(2, |_| false).unwrap();
        let evicted = c.insert(3, |l| l == 1).unwrap();
        assert_eq!(evicted, Some(2)); // 1 pinned, so 2 evicted even if 1 is LRU
        assert!(c.contains(1));
    }

    #[test]
    fn all_pinned_overflows() {
        let mut c = CacheArray::new(1, 2);
        c.insert(1, |_| false).unwrap();
        c.insert(2, |_| false).unwrap();
        assert_eq!(c.insert(3, |_| true), Err(()));
    }

    #[test]
    fn set_mapping_isolates_sets() {
        let mut c = CacheArray::new(2, 1);
        c.insert(0, |_| false).unwrap(); // set 0
        c.insert(1, |_| false).unwrap(); // set 1
        assert!(c.contains(0) && c.contains(1));
        // Line 2 maps to set 0, evicting 0 but not 1.
        c.insert(2, |_| false).unwrap();
        assert!(!c.contains(0) && c.contains(1) && c.contains(2));
    }

    #[test]
    fn remove_deletes() {
        let mut c = CacheArray::new(4, 2);
        c.insert(5, |_| false).unwrap();
        c.remove(5);
        assert!(!c.contains(5));
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_refreshes_lru() {
        let mut c = CacheArray::new(1, 2);
        c.insert(1, |_| false).unwrap();
        c.insert(2, |_| false).unwrap();
        c.insert(1, |_| false).unwrap(); // refresh, no eviction
        assert_eq!(c.len(), 2);
        let evicted = c.insert(3, |_| false).unwrap();
        assert_eq!(evicted, Some(2));
    }
}
