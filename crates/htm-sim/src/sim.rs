//! The simulator state: flat memory, per-core caches, HTM read/write sets,
//! eager requester-wins conflict resolution, and logical clocks.
//!
//! Everything here lives under the single machine mutex; methods are called
//! by [`crate::machine::Core`] only when it is the calling core's logical
//! turn, so the whole struct is free of internal synchronization.

use crate::addr::WORDS_PER_LINE;
use crate::addr::{line_of, word_index, Addr, LINE_BYTES, WORD_BYTES};
use crate::cache::CacheArray;
use crate::config::{FallbackPolicy, HtmProtocol, MachineConfig};
use crate::coreset::{CoreSet, MAX_CORES};
use crate::obs::{EventRing, ObsEvent, ObsKind};
use crate::sched::{LazyMinHeap, SchedStats};
use crate::stats::CoreStats;

/// Why a transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCause {
    /// Data conflict with another core (requester-wins: we were the victim).
    Conflict,
    /// Speculative footprint overflowed an L1 set's ways, or crossed a
    /// configured bounded-set limit (`max_read_lines`/`max_write_lines`).
    Capacity,
    /// Self-initiated abort (e.g., global-lock subscription at commit).
    Explicit,
    /// Commit-time hardware validation of the fallback lock word failed
    /// (the Dice-et-al-style fix under
    /// [`crate::config::FallbackPolicy::LazySubscriptionSafe`]): the lock
    /// was held at commit, so the transaction must not become visible.
    SubscriptionValidation,
}

/// What the hardware reports on abort — the paper's "%rbx" payload: the
/// conflicting data address and the low bits of the PC that *first* touched
/// that line in the aborted transaction (Section 4 / Section 6 simulator
/// modifications).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbortInfo {
    pub cause: AbortCause,
    /// Line address of the conflicting datum (0 for capacity/explicit).
    pub conf_addr: Addr,
    /// Truncated (12-bit) first-access PC tag for the conflicting line —
    /// what real hardware with the paper's PC-tag extension would deliver.
    pub conf_pc_tag: u16,
    /// Full first-access PC for the conflicting line. NOT architectural:
    /// used only for ground-truth accuracy measurement (Table 3) and by
    /// tests. Real policies must use `conf_pc_tag` or the software map.
    pub true_first_pc: u64,
}

impl AbortInfo {
    pub(crate) fn simple(cause: AbortCause) -> Self {
        AbortInfo {
            cause,
            conf_addr: 0,
            conf_pc_tag: 0,
            true_first_pc: 0,
        }
    }
}

/// Error type of transactional operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    Aborted(AbortInfo),
}

impl TxError {
    pub fn info(&self) -> AbortInfo {
        match self {
            TxError::Aborted(i) => *i,
        }
    }
}

/// One line in a transaction's speculative footprint: read/write
/// membership, plus the full PC of the instruction that first accessed it
/// (the hardware keeps only the low 12 bits; we keep the full value and
/// truncate on delivery, retaining ground truth).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TxLine {
    pub(crate) line: u64,
    pub(crate) written: bool,
    pub(crate) first_pc: u64,
}

/// Active-transaction state of one core.
///
/// Transactional footprints are tiny (bounded by the L1's speculative
/// capacity, typically a few dozen lines), so the read/write sets and the
/// lazy write buffer live in sorted vectors probed by binary search — no
/// hashing, no per-entry allocation, and the buffers are recycled across
/// transactions on the same core ([`TxState::reset`]).
#[derive(Debug, Default, Clone)]
pub(crate) struct TxState {
    pub(crate) ab_id: u32,
    pub(crate) start_clock: u64,
    /// Speculative lines touched, sorted by line index.
    pub(crate) lines: Vec<TxLine>,
    /// Undo log: (addr, previous value), applied in reverse on abort
    /// (eager protocol only).
    pub(crate) undo: Vec<(Addr, u64)>,
    /// Private write buffer, sorted by address, published at commit (lazy
    /// protocol only).
    pub(crate) write_buffer: Vec<(Addr, u64)>,
    /// Lines already rolled back by a remote requester.
    pub(crate) rolled_back: bool,
    /// Line-permission cache: a direct-mapped table over lines whose
    /// read (`perm_write[i] == false` suffices) or write ownership bits
    /// this attempt has already set, letting repeat accesses skip the
    /// owner-directory probe. Sound under requester-wins resolution: any
    /// remote access that would revoke a held permission dooms this core
    /// first, and a doomed core aborts (via `check_doomed`) before its next
    /// access — so a non-doomed attempt's cached permissions are always
    /// current. `u64::MAX` marks an empty slot; cleared by `reset` (every
    /// attempt starts cold) and defensively on `doom`.
    pub(crate) perm_lines: Vec<u64>,
    /// Write-permission bit per `perm_lines` slot.
    pub(crate) perm_write: Vec<bool>,
}

impl TxState {
    /// Clear for reuse by a fresh transaction, keeping the allocations.
    /// `perm_slots` is the (power-of-two or zero) permission-cache size.
    pub(crate) fn reset(&mut self, ab_id: u32, start_clock: u64, perm_slots: usize) {
        self.ab_id = ab_id;
        self.start_clock = start_clock;
        self.lines.clear();
        self.undo.clear();
        self.write_buffer.clear();
        self.rolled_back = false;
        if self.perm_lines.len() == perm_slots {
            self.perm_lines.fill(u64::MAX);
            self.perm_write.fill(false);
        } else {
            self.perm_lines = vec![u64::MAX; perm_slots];
            self.perm_write = vec![false; perm_slots];
        }
    }

    /// Does this attempt hold a cached permission for `line` (write
    /// permission if `write`)?
    #[inline]
    pub(crate) fn perm_has(&self, line: u64, write: bool) -> bool {
        if self.perm_lines.is_empty() {
            return false;
        }
        let i = (line as usize) & (self.perm_lines.len() - 1);
        self.perm_lines[i] == line && (!write || self.perm_write[i])
    }

    /// Cache a granted permission (upgrades read → write in place; a
    /// colliding line simply evicts the previous occupant).
    #[inline]
    pub(crate) fn perm_insert(&mut self, line: u64, write: bool) {
        if self.perm_lines.is_empty() {
            return;
        }
        let i = (line as usize) & (self.perm_lines.len() - 1);
        if self.perm_lines[i] == line {
            self.perm_write[i] |= write;
        } else {
            self.perm_lines[i] = line;
            self.perm_write[i] = write;
        }
    }

    pub(crate) fn perm_clear(&mut self) {
        self.perm_lines.fill(u64::MAX);
        self.perm_write.fill(false);
    }

    fn find(&self, line: u64) -> Result<usize, usize> {
        self.lines.binary_search_by_key(&line, |e| e.line)
    }

    pub(crate) fn spec_contains(&self, line: u64) -> bool {
        self.find(line).is_ok()
    }

    /// Record a speculative touch of `line`; `first_pc` is set only by the
    /// first access, matching the hardware's first-toucher PC tag.
    pub(crate) fn touch_line(&mut self, line: u64, pc: u64, write: bool) {
        match self.find(line) {
            Ok(i) => self.lines[i].written |= write,
            Err(i) => self.lines.insert(
                i,
                TxLine {
                    line,
                    written: write,
                    first_pc: pc,
                },
            ),
        }
    }

    /// Full first-access PC of `line` (0 when the line was never touched).
    pub(crate) fn first_pc_of(&self, line: u64) -> u64 {
        self.find(line).map_or(0, |i| self.lines[i].first_pc)
    }

    /// The lazily-buffered value of `addr`, if this transaction wrote it.
    pub(crate) fn buffered(&self, addr: Addr) -> Option<u64> {
        self.write_buffer
            .binary_search_by_key(&addr, |e| e.0)
            .ok()
            .map(|i| self.write_buffer[i].1)
    }

    /// Insert-or-update a lazily-buffered store.
    pub(crate) fn buffer_store(&mut self, addr: Addr, val: u64) {
        match self.write_buffer.binary_search_by_key(&addr, |e| e.0) {
            Ok(i) => self.write_buffer[i].1 = val,
            Err(i) => self.write_buffer.insert(i, (addr, val)),
        }
    }

    /// Distinct lines this attempt has written.
    pub(crate) fn written_lines(&self) -> usize {
        self.lines.iter().filter(|e| e.written).count()
    }
}

/// Bounded-set HTM check (Kafousis): would an access of `line` (write when
/// `write`) push the attempt past `max_read_lines` (distinct touched lines)
/// or `max_write_lines` (distinct written lines)? Zero-cost when both knobs
/// are 0, the default. An access to a line whose permission the attempt
/// already holds can never trip a bound (the line is already counted), which
/// is why the permission-cache fast paths legitimately skip this check.
/// Shared with the speculative overlay so predictions stay faithful.
pub(crate) fn bound_exceeded(cfg: &MachineConfig, tx: &TxState, line: u64, write: bool) -> bool {
    if cfg.max_read_lines == 0 && cfg.max_write_lines == 0 {
        return false;
    }
    let write_bound = |tx: &TxState| {
        write && cfg.max_write_lines != 0 && tx.written_lines() >= cfg.max_write_lines
    };
    match tx.find(line) {
        // Known line: only a read→write upgrade can add a written line.
        Ok(i) => !tx.lines[i].written && write_bound(tx),
        Err(_) => {
            (cfg.max_read_lines != 0 && tx.lines.len() >= cfg.max_read_lines) || write_bound(tx)
        }
    }
}

/// One recorded scheduling event (when `record_trace` is on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub clock: u64,
    pub kind: TraceKind,
}

/// What happened at a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    Begin(u32),
    Commit,
    Abort,
}

/// A pending remote-initiated abort: what the hardware delivers to the
/// victim ([`AbortInfo`]) plus the observability-only attribution of who
/// doomed it — the requester core and the 12-bit tag of the requesting
/// access's PC (0 for nontransactional requesters).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Doomed {
    pub(crate) info: AbortInfo,
    pub(crate) aborter: u32,
    pub(crate) aborter_pc_tag: u16,
}

/// Per-core simulator state.
pub(crate) struct CoreState {
    pub clock: u64,
    pub finished: bool,
    pub waiting: bool,
    pub(crate) l1: CacheArray,
    pub(crate) l2: CacheArray,
    pub(crate) tx: Option<TxState>,
    /// Recycled transaction state: buffers from the last finished
    /// transaction, reused by the next `tx_begin` to avoid reallocation.
    pub(crate) spare_tx: Option<TxState>,
    pub(crate) doomed: Option<Doomed>,
    pub stats: CoreStats,
    pub(crate) arena_next: Addr,
    pub(crate) arena_end: Addr,
    pub trace: Vec<TraceEvent>,
    pub events: EventRing,
}

/// Speculative ownership of one line across cores. Under the eager
/// protocol at most one writer exists at a time; under the lazy protocol
/// multiple buffered writers may coexist until one commits. The member
/// masks are [`CoreSet`]s, so up to [`MAX_CORES`] cores can hold a line.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Owners {
    pub(crate) readers: CoreSet,
    pub(crate) writers: CoreSet,
}

impl Owners {
    #[cfg(test)]
    fn is_empty(&self) -> bool {
        self.readers.is_empty() && self.writers.is_empty()
    }
}

/// Everything under the machine mutex.
pub(crate) struct SimState {
    pub cfg: MachineConfig,
    pub(crate) mem: Vec<u64>,
    pub(crate) l3: CacheArray,
    pub cores: Vec<CoreState>,
    /// Speculative-ownership directory, indexed densely by line index
    /// (`addr / LINE_BYTES`). One entry per line of simulated memory: the
    /// conflict check on every transactional access is two array words,
    /// not a hash probe.
    pub(crate) owners: Vec<Owners>,
    pub(crate) heap_next: Addr,
    /// Derived from `cfg.perm_cache_lines`: direct-mapped permission-cache
    /// slot count (rounded up to a power of two; 0 = fast path disabled).
    pub(crate) perm_slots: usize,
    /// Cooperative-driver gate horizon: the minimum `(clock, id)` over
    /// unfinished cores *other than* the one currently resumed (set by
    /// [`SimState::schedule`]). While that core runs, no other core's
    /// clock can change, so its gates admit ops with one comparison
    /// against this pair instead of an `O(n_cores)` [`SimState::next_eligible`]
    /// scan. The threaded driver never reads it (its cores advance
    /// concurrently between gates, which would stale the cached pair).
    pub horizon: (u64, usize),
    /// Fallback lock word the hardware validates at commit under
    /// [`FallbackPolicy::LazySubscriptionSafe`] (the Dice-et-al-style
    /// fix): registered host-side by the runtime before threads start,
    /// `None` otherwise.
    pub(crate) commit_lock_addr: Option<Addr>,
    /// Indexed min-(clock, id) structure backing [`SimState::schedule`].
    /// Holds one (lazily repaired) entry per live core; sound because
    /// clocks only increase and cores only retire.
    pub(crate) sched: LazyMinHeap,
    /// Host-side scheduling-overhead counters (never simulated state).
    pub sched_stats: SchedStats,
}

/// First heap address — 0 stays an invalid ("null") address.
const HEAP_BASE: Addr = 4096;

impl SimState {
    pub fn new(cfg: MachineConfig) -> SimState {
        assert!(
            (1..=MAX_CORES).contains(&cfg.n_cores),
            "n_cores must be in 1..={MAX_CORES}, got {}",
            cfg.n_cores
        );
        let cores = (0..cfg.n_cores)
            .map(|_| CoreState {
                clock: 0,
                finished: false,
                waiting: false,
                l1: CacheArray::new(cfg.l1_sets, cfg.l1_ways),
                l2: CacheArray::new(cfg.l2_sets, cfg.l2_ways),
                tx: None,
                spare_tx: None,
                doomed: None,
                stats: CoreStats::default(),
                arena_next: 0,
                arena_end: 0,
                trace: Vec::new(),
                events: EventRing::new(cfg.event_ring_capacity),
            })
            .collect();
        SimState {
            mem: vec![0; cfg.mem_words],
            l3: CacheArray::new(cfg.l3_sets, cfg.l3_ways),
            cores,
            owners: vec![Owners::default(); cfg.mem_words / WORDS_PER_LINE as usize],
            heap_next: HEAP_BASE,
            perm_slots: if cfg.perm_cache_lines == 0 {
                0
            } else {
                cfg.perm_cache_lines.next_power_of_two()
            },
            horizon: (u64::MAX, usize::MAX),
            commit_lock_addr: None,
            sched: LazyMinHeap::new(cfg.n_cores),
            sched_stats: SchedStats::default(),
            cfg,
        }
    }

    /// The core whose turn it is: minimum clock among unfinished cores,
    /// ties by id. `None` when every core has finished.
    ///
    /// Retained as an O(n_cores) linear scan: the threaded driver calls it
    /// from arbitrary interleavings where the heap's monotonicity argument
    /// does not apply, and it serves as the reference implementation the
    /// indexed [`SimState::schedule`] is property-tested against.
    pub fn next_eligible(&self) -> Option<usize> {
        self.cores
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.finished)
            .min_by_key(|(i, c)| (c.clock, *i))
            .map(|(i, _)| i)
    }

    /// [`SimState::next_eligible`] plus the exact runner-up `(clock, id)`
    /// pair stored into [`SimState::horizon`]. The cooperative event loop
    /// calls this once per resumption; the chosen core's gates then stay
    /// eligible exactly while their own `(clock, id)` is `<=` the horizon.
    ///
    /// Backed by the lazy min-heap in [`SimState::sched`]: O(log n_cores)
    /// amortized per call instead of a linear scan, with identical
    /// (clock, id) ordering — ties by id, including at clock `u64::MAX`.
    pub fn schedule(&mut self) -> Option<usize> {
        self.sched_stats.schedule_calls += 1;
        let cores = &self.cores;
        let key_of = |i: usize| {
            let c = &cores[i];
            (!c.finished).then_some(c.clock)
        };
        let (best, second) = self.sched.min2(key_of);
        self.sched_stats.stale_refreshes = self.sched.stale_refreshes;
        self.horizon = second;
        best
    }

    // ----- memory & caches ----------------------------------------------

    fn read_word(&self, addr: Addr) -> u64 {
        let i = word_index(addr);
        assert!(
            i < self.mem.len(),
            "simulated address {addr:#x} out of range"
        );
        self.mem[i]
    }

    fn write_word(&mut self, addr: Addr, val: u64) {
        let i = word_index(addr);
        assert!(
            i < self.mem.len(),
            "simulated address {addr:#x} out of range"
        );
        self.mem[i] = val;
    }

    /// Ownership-directory entry of `line` (panics on out-of-range
    /// addresses, matching `read_word`/`write_word`).
    fn owner_mut(&mut self, line: u64) -> &mut Owners {
        let i = line as usize;
        assert!(
            i < self.owners.len(),
            "simulated address {:#x} out of range",
            line * LINE_BYTES
        );
        &mut self.owners[i]
    }

    /// True when no line has a speculative owner (test aid).
    #[cfg(test)]
    fn owners_empty(&self) -> bool {
        self.owners.iter().all(|o| o.is_empty())
    }

    /// Charge cache latency for `tid` touching `line`. If `speculative`,
    /// the line must be insertable into the L1 without evicting a pinned
    /// (speculative) way; failure is a capacity overflow.
    ///
    /// (The cache-to-cache and L3 arms charge the same latency on purpose —
    /// they differ in the `touch` side effect, so they must not be merged.)
    #[allow(clippy::if_same_then_else)]
    fn touch_caches(&mut self, tid: usize, line: u64, speculative: bool) -> Result<u64, ()> {
        let cfg_l1 = self.cfg.l1_latency;
        let cfg_l2 = self.cfg.l2_latency;
        let cfg_l3 = self.cfg.l3_latency;
        let cfg_mem = self.cfg.mem_latency;

        // L1 hit?
        if self.cores[tid].l1.touch(line) {
            return Ok(cfg_l1);
        }
        // Miss: find the source.
        let lat = if self.cores[tid].l2.touch(line) {
            cfg_l2
        } else if self
            .cores
            .iter()
            .enumerate()
            .any(|(i, c)| i != tid && (c.l1.contains(line) || c.l2.contains(line)))
        {
            cfg_l3 // cache-to-cache transfer, charged at L3 cost
        } else if self.l3.touch(line) {
            cfg_l3
        } else {
            cfg_mem
        };
        // Fill path: L1 (respecting speculative pinning), L2, L3.
        let core = &mut self.cores[tid];
        let spec_pred = |l: u64| core.tx.as_ref().is_some_and(|t| t.spec_contains(l));
        match core.l1.insert(line, spec_pred) {
            Ok(_) => {}
            Err(()) => {
                if speculative {
                    return Err(()); // capacity overflow
                }
                // Nontransactional access to a set full of speculative
                // lines: bypass the L1.
            }
        }
        let _ = core.l2.insert(line, |_| false);
        let _ = self.l3.insert(line, |_| false);
        Ok(lat)
    }

    /// Invalidate `line` in every core except `tid` (a write took exclusive
    /// ownership).
    fn invalidate_others(&mut self, tid: usize, line: u64) {
        for (i, c) in self.cores.iter_mut().enumerate() {
            if i != tid {
                c.l1.remove(line);
                c.l2.remove(line);
            }
        }
    }

    // ----- transactional machinery ---------------------------------------

    /// If a remote requester doomed us, consume the abort now, charging the
    /// abort-delivery cost (pipeline flush + handler dispatch + undo-log
    /// write-back, already performed by the requester on our behalf).
    fn check_doomed(&mut self, tid: usize) -> Result<(), TxError> {
        if let Some(d) = self.cores[tid].doomed.take() {
            let abort_cost = self.cfg.tx_abort_cost;
            let core = &mut self.cores[tid];
            core.clock += abort_cost;
            if let Some(tx) = core.tx.take() {
                debug_assert!(tx.rolled_back, "doomed tx must have been rolled back");
                core.stats.wasted_tx_cycles += core.clock.saturating_sub(tx.start_clock);
                core.spare_tx = Some(tx);
            }
            core.stats.conflict_aborts += 1;
            self.record(tid, TraceKind::Abort);
            self.note(
                tid,
                ObsKind::TxAbort {
                    cause: d.info.cause,
                    conf_addr: d.info.conf_addr,
                    victim_pc_tag: d.info.conf_pc_tag,
                    aborter_pc_tag: d.aborter_pc_tag,
                    aborter: d.aborter,
                },
            );
            return Err(TxError::Aborted(d.info));
        }
        Ok(())
    }

    /// Roll back `victim`'s transaction in place and mark it doomed with
    /// conflict info for `conf_addr`. Called by the *requester* under the
    /// simulator lock — the hardware analogue of the coherence message that
    /// kills the victim. `requester`/`req_pc` identify the winning access
    /// for conflict attribution (observability only; `req_pc` is 0 for
    /// nontransactional requesters).
    fn doom(&mut self, victim: usize, conf_addr: Addr, requester: usize, req_pc: u64) {
        let pc_mask = self.cfg.pc_tag_mask();
        let core = &mut self.cores[victim];
        let Some(tx) = core.tx.as_mut() else {
            return;
        };
        debug_assert!(!tx.rolled_back);
        // Undo eager writes, newest first; lazy victims simply discard
        // their private write buffer.
        let undo = std::mem::take(&mut tx.undo);
        tx.write_buffer.clear();
        let line = line_of(conf_addr);
        let first = tx.first_pc_of(line);
        let lines = std::mem::take(&mut tx.lines);
        tx.rolled_back = true;
        // The doomed attempt's cached permissions are void the instant its
        // ownership bits are released below. Strictly, no access can use
        // them anyway — the victim's next transactional op consumes the
        // doom in `check_doomed` before reaching the fast path — but
        // clearing here keeps the invariant local.
        tx.perm_clear();
        core.doomed = Some(Doomed {
            info: AbortInfo {
                cause: AbortCause::Conflict,
                conf_addr: crate::addr::line_addr(conf_addr),
                conf_pc_tag: (first & pc_mask) as u16,
                true_first_pc: first,
            },
            aborter: requester as u32,
            aborter_pc_tag: (req_pc & pc_mask) as u16,
        });
        for &(addr, old) in undo.iter().rev() {
            self.write_word(addr, old);
        }
        // The victim's cached copies of its speculatively-written lines are
        // stale after rollback: invalidate them, so the retry pays refill
        // latency (a real component of abort cost on eager HTM).
        for e in lines.iter().filter(|e| e.written) {
            self.cores[victim].l1.remove(e.line);
            self.cores[victim].l2.remove(e.line);
        }
        self.release_ownership(victim, &lines);
        // Hand the buffers back to the doomed transaction so the core's
        // next attempt reuses their capacity.
        if let Some(tx) = self.cores[victim].tx.as_mut() {
            tx.undo = undo;
            tx.undo.clear();
            tx.lines = lines;
            tx.lines.clear();
        }
    }

    fn release_ownership(&mut self, tid: usize, lines: &[TxLine]) {
        for e in lines {
            let o = &mut self.owners[e.line as usize];
            o.readers.remove(tid);
            o.writers.remove(tid);
        }
    }

    /// Abort every other core that holds `line` speculatively in a way that
    /// conflicts with an access of kind `is_write` by `tid`. `req_pc` is
    /// the requesting access's PC (0 when nontransactional), recorded for
    /// conflict attribution.
    fn resolve_conflicts(&mut self, tid: usize, addr: Addr, is_write: bool, req_pc: u64) {
        let line = line_of(addr);
        let Some(o) = self.owners.get(line as usize).copied() else {
            return;
        };
        let mut mask = o.writers;
        if is_write {
            mask = mask.union(o.readers);
        }
        mask.remove(tid);
        // Ascending-id victim walk — the doom order is part of the
        // bit-identical contract.
        for v in mask.iter() {
            self.doom(v, addr, tid, req_pc);
        }
    }

    fn record(&mut self, tid: usize, kind: TraceKind) {
        if self.cfg.record_trace {
            let clock = self.cores[tid].clock;
            self.cores[tid].trace.push(TraceEvent { clock, kind });
        }
    }

    /// Record an observability event for `tid` at its current clock.
    /// Piggybacks on operations that happen anyway (never a gated op of
    /// its own), so recording cannot perturb simulated time.
    fn note(&mut self, tid: usize, kind: ObsKind) {
        if self.cfg.record_events {
            let clock = self.cores[tid].clock;
            self.cores[tid].events.push(ObsEvent { clock, kind });
        }
    }

    /// Record an observability event for `tid` at an explicit clock —
    /// used by [`crate::machine::Core`] hooks whose logical time includes
    /// not-yet-folded pending cycles.
    pub fn note_at(&mut self, tid: usize, clock: u64, kind: ObsKind) {
        if self.cfg.record_events {
            self.cores[tid].events.push(ObsEvent { clock, kind });
        }
    }

    /// [`bound_exceeded`] against `tid`'s active transaction.
    fn set_bound_exceeded(&self, tid: usize, line: u64, write: bool) -> bool {
        let tx = self.cores[tid].tx.as_ref().expect("bound check outside tx");
        bound_exceeded(&self.cfg, tx, line, write)
    }

    /// Register the fallback lock word that commits validate under
    /// [`FallbackPolicy::LazySubscriptionSafe`]. Host-side (no cycles);
    /// called by the runtime during setup.
    pub fn register_commit_lock(&mut self, addr: Addr) {
        self.commit_lock_addr = Some(addr);
    }

    /// Begin a hardware transaction on `tid`.
    pub fn tx_begin(&mut self, tid: usize, ab_id: u32) -> u64 {
        self.record(tid, TraceKind::Begin(ab_id));
        self.note(tid, ObsKind::TxBegin { ab_id });
        let perm_slots = self.perm_slots;
        let core = &mut self.cores[tid];
        assert!(
            core.tx.is_none(),
            "nested hardware transaction on core {tid}"
        );
        // A doom left over from a transaction the runtime already gave up
        // on cannot exist: check_doomed consumed it. Defensive clear:
        core.doomed = None;
        let mut tx = core.spare_tx.take().unwrap_or_default();
        tx.reset(ab_id, core.clock, perm_slots);
        core.tx = Some(tx);
        self.cfg.tx_begin_cost
    }

    /// Is a transaction active (and not yet observed-doomed)?
    pub fn tx_active(&self, tid: usize) -> bool {
        self.cores[tid].tx.is_some()
    }

    /// The atomic-block id of the active transaction.
    pub fn tx_ab_id(&self, tid: usize) -> Option<u32> {
        self.cores[tid].tx.as_ref().map(|t| t.ab_id)
    }

    /// Transactional load.
    pub fn tx_load(&mut self, tid: usize, addr: Addr, pc: u64) -> (Result<u64, TxError>, u64) {
        if let Err(e) = self.check_doomed(tid) {
            return (Err(e), 0);
        }
        let line = line_of(addr);
        // Fast path: the attempt already holds (at least read) permission
        // for the line, so the conflict probe and directory/footprint
        // updates are provably no-ops — any remote access that could have
        // revoked the permission would have doomed us, and we just passed
        // `check_doomed`. The L1 is consulted with the side-effect-free
        // `contains` first, then touched exactly once, matching the slow
        // path's single LRU stamp on its L1-hit arm.
        let fast = {
            let core = &mut self.cores[tid];
            match core.tx.as_mut() {
                Some(tx) if tx.perm_has(line, false) && core.l1.contains(line) => {
                    debug_assert!(tx.spec_contains(line));
                    core.l1.touch(line);
                    core.stats.tx_mem_ops += 1;
                    Some(tx.buffered(addr))
                }
                _ => None,
            }
        };
        if let Some(buffered) = fast {
            debug_assert!(
                self.owners[line as usize].readers.contains(tid)
                    || self.owners[line as usize].writers.contains(tid),
                "cached permission without an ownership bit"
            );
            return (
                Ok(buffered.unwrap_or_else(|| self.read_word(addr))),
                self.cfg.l1_latency,
            );
        }
        assert!(self.tx_active(tid), "tx_load outside transaction");
        if self.set_bound_exceeded(tid, line, false) {
            return (Err(self.self_abort(tid, AbortCause::Capacity)), 0);
        }
        if self.cfg.protocol == HtmProtocol::Eager {
            // Eager: a read request aborts any remote speculative writer.
            self.resolve_conflicts(tid, addr, false, pc);
        }
        match self.touch_caches(tid, line, true) {
            Ok(lat) => {
                let core = &mut self.cores[tid];
                let tx = core.tx.as_mut().unwrap();
                tx.touch_line(line, pc, false);
                tx.perm_insert(line, false);
                core.stats.tx_mem_ops += 1;
                // Lazy: our own buffered write shadows memory.
                let buffered = tx.buffered(addr);
                self.owner_mut(line).readers.insert(tid);
                (Ok(buffered.unwrap_or_else(|| self.read_word(addr))), lat)
            }
            Err(()) => (Err(self.self_abort(tid, AbortCause::Capacity)), 0),
        }
    }

    /// Transactional store (eager versioning: in place, undo-logged).
    pub fn tx_store(
        &mut self,
        tid: usize,
        addr: Addr,
        val: u64,
        pc: u64,
    ) -> (Result<(), TxError>, u64) {
        if let Err(e) = self.check_doomed(tid) {
            return (Err(e), 0);
        }
        let eager = self.cfg.protocol == HtmProtocol::Eager;
        let line = line_of(addr);
        // Fast path: *write* permission already held (read permission is
        // not enough — remote readers may legitimately coexist with it,
        // and the slow path's conflict resolution must doom them). See
        // `tx_load` for the revocation-implies-doom argument.
        let fast = {
            let core = &mut self.cores[tid];
            match core.tx.as_mut() {
                Some(tx) if tx.perm_has(line, true) && core.l1.contains(line) => {
                    debug_assert!(tx.spec_contains(line));
                    core.l1.touch(line);
                    core.stats.tx_mem_ops += 1;
                    if !eager {
                        // Private buffer; published at commit.
                        tx.buffer_store(addr, val);
                    }
                    true
                }
                _ => false,
            }
        };
        if fast {
            debug_assert!(
                self.owners[line as usize].writers.contains(tid),
                "cached write permission without the writer bit"
            );
            if eager {
                // In place, undo-logged, exclusive — identical memory
                // effects, in the same order, as the slow path below.
                let old = self.read_word(addr);
                self.cores[tid].tx.as_mut().unwrap().undo.push((addr, old));
                self.write_word(addr, val);
                self.invalidate_others(tid, line);
            }
            return (Ok(()), self.cfg.l1_latency);
        }
        assert!(self.tx_active(tid), "tx_store outside transaction");
        if self.set_bound_exceeded(tid, line, true) {
            return (Err(self.self_abort(tid, AbortCause::Capacity)), 0);
        }
        if eager {
            self.resolve_conflicts(tid, addr, true, pc);
        }
        match self.touch_caches(tid, line, true) {
            Ok(lat) => {
                let old = self.read_word(addr);
                let core = &mut self.cores[tid];
                let tx = core.tx.as_mut().unwrap();
                tx.touch_line(line, pc, true);
                tx.perm_insert(line, true);
                core.stats.tx_mem_ops += 1;
                self.owner_mut(line).writers.insert(tid);
                let tx = self.cores[tid].tx.as_mut().unwrap();
                if eager {
                    // In place, undo-logged, exclusive.
                    tx.undo.push((addr, old));
                    self.write_word(addr, val);
                    self.invalidate_others(tid, line);
                } else {
                    // Private buffer; published at commit.
                    tx.buffer_store(addr, val);
                }
                (Ok(()), lat)
            }
            Err(()) => (Err(self.self_abort(tid, AbortCause::Capacity)), 0),
        }
    }

    /// Self-initiated abort (capacity, or explicit from the runtime).
    /// Rolls back, releases ownership, accounts the attempt as wasted.
    pub fn self_abort(&mut self, tid: usize, cause: AbortCause) -> TxError {
        let abort_cost = self.cfg.tx_abort_cost;
        let core = &mut self.cores[tid];
        let tx = core.tx.take().expect("self_abort without transaction");
        core.clock += abort_cost;
        core.stats.wasted_tx_cycles += core.clock.saturating_sub(tx.start_clock);
        match cause {
            AbortCause::Capacity => core.stats.capacity_aborts += 1,
            AbortCause::Explicit => core.stats.explicit_aborts += 1,
            AbortCause::SubscriptionValidation => core.stats.subscription_aborts += 1,
            AbortCause::Conflict => unreachable!("conflict aborts come from doom()"),
        }
        if !tx.rolled_back {
            for &(addr, old) in tx.undo.iter().rev() {
                self.write_word(addr, old);
            }
            for e in tx.lines.iter().filter(|e| e.written) {
                self.cores[tid].l1.remove(e.line);
                self.cores[tid].l2.remove(e.line);
            }
            self.release_ownership(tid, &tx.lines);
        }
        self.cores[tid].spare_tx = Some(tx);
        self.record(tid, TraceKind::Abort);
        self.note(
            tid,
            ObsKind::TxAbort {
                cause,
                conf_addr: 0,
                victim_pc_tag: 0,
                aborter_pc_tag: 0,
                aborter: tid as u32,
            },
        );
        TxError::Aborted(AbortInfo::simple(cause))
    }

    /// Commit the active transaction. Under the lazy protocol this is
    /// where conflicts are resolved: the committer wins, dooming every
    /// other transaction that read or wrote one of its written lines, then
    /// publishes its write buffer.
    pub fn tx_commit(&mut self, tid: usize) -> (Result<(), TxError>, u64) {
        if let Err(e) = self.check_doomed(tid) {
            return (Err(e), 0);
        }
        // Dice-et-al-style hardware fix for lazy subscription: commit
        // itself validates the registered fallback lock word, so a
        // transaction that raced an irrevocable section can never become
        // visible even though it skipped begin-time subscription. The probe
        // rides inside the commit microcode (no extra memory-op latency)
        // and never joins the read set.
        if self.cfg.fallback == FallbackPolicy::LazySubscriptionSafe {
            if let Some(lock) = self.commit_lock_addr {
                if self.read_word(lock) != 0 {
                    return (
                        Err(self.self_abort(tid, AbortCause::SubscriptionValidation)),
                        0,
                    );
                }
            }
        }
        let mut commit_cost = self.cfg.tx_commit_cost;
        if self.cfg.protocol == HtmProtocol::Lazy {
            // Take the transaction out so its footprint can drive dooms
            // and write-back without aliasing the simulator state.
            let tx = self.cores[tid]
                .tx
                .take()
                .expect("commit without transaction");
            for e in tx.lines.iter().filter(|e| e.written) {
                // Committer wins: doom every other reader/writer of the
                // line, attributed to the committer's first access to it.
                self.resolve_conflicts(tid, e.line * crate::addr::LINE_BYTES, true, e.first_pc);
            }
            commit_cost += tx.write_buffer.len() as u64; // write-back bandwidth
            for &(addr, val) in &tx.write_buffer {
                self.write_word(addr, val);
            }
            for e in tx.lines.iter().filter(|e| e.written) {
                self.invalidate_others(tid, e.line);
            }
            self.cores[tid].tx = Some(tx);
        }
        let core = &mut self.cores[tid];
        let tx = core.tx.take().expect("commit without transaction");
        core.stats.commits += 1;
        core.stats.useful_tx_cycles += core.clock.saturating_sub(tx.start_clock) + commit_cost;
        self.release_ownership(tid, &tx.lines);
        self.cores[tid].spare_tx = Some(tx);
        self.record(tid, TraceKind::Commit);
        self.note(tid, ObsKind::TxCommit);
        (Ok(()), commit_cost)
    }

    // ----- nontransactional operations -----------------------------------

    /// Plain (non-speculative) load by a thread running outside any
    /// transaction — e.g. irrevocable mode. As a real coherence read it must
    /// not observe another core's uncommitted eager write, so it dooms
    /// speculative *writers* of the line (requester wins); unlike `nt_load`,
    /// which is reserved for runtime metadata that is never accessed
    /// transactionally.
    pub fn plain_load(&mut self, tid: usize, addr: Addr) -> (u64, u64) {
        if self.cfg.protocol == HtmProtocol::Eager {
            self.resolve_conflicts(tid, addr, false, 0);
        }
        // Lazy: uncommitted data never reaches memory, so a plain read is
        // always consistent without dooming anyone.
        self.nt_load(tid, addr)
    }

    /// Nontransactional load: sees current memory, never kills anyone,
    /// never joins the read set. Legal inside or outside a transaction.
    pub fn nt_load(&mut self, tid: usize, addr: Addr) -> (u64, u64) {
        let line = line_of(addr);
        let lat = self
            .touch_caches(tid, line, false)
            .expect("nontransactional fills cannot overflow");
        self.cores[tid].stats.nt_mem_ops += 1;
        (self.read_word(addr), lat)
    }

    /// Nontransactional (or plain non-speculative) store: immediately
    /// visible; as a real coherence write it aborts *other* cores holding
    /// the line speculatively. Must not target the executing core's own
    /// speculative lines (the runtime never does — advisory locks live in
    /// dedicated lines).
    pub fn nt_store(&mut self, tid: usize, addr: Addr, val: u64) -> u64 {
        let line = line_of(addr);
        debug_assert!(
            self.cores[tid]
                .tx
                .as_ref()
                .is_none_or(|t| !t.spec_contains(line)),
            "NT store to own speculative line {line:#x}"
        );
        self.resolve_conflicts(tid, addr, true, 0);
        let lat = self
            .touch_caches(tid, line, false)
            .expect("nontransactional fills cannot overflow");
        self.cores[tid].stats.nt_mem_ops += 1;
        self.write_word(addr, val);
        self.invalidate_others(tid, line);
        lat
    }

    /// Nontransactional compare-and-swap; returns success. One memory
    /// operation's latency either way.
    pub fn nt_cas(&mut self, tid: usize, addr: Addr, old: u64, new: u64) -> (bool, u64) {
        let line = line_of(addr);
        let cur = self.read_word(addr);
        if cur == old {
            self.resolve_conflicts(tid, addr, true, 0);
            let lat = self.touch_caches(tid, line, false).unwrap();
            self.cores[tid].stats.nt_mem_ops += 1;
            self.write_word(addr, new);
            self.invalidate_others(tid, line);
            (true, lat)
        } else {
            let lat = self.touch_caches(tid, line, false).unwrap();
            self.cores[tid].stats.nt_mem_ops += 1;
            (false, lat)
        }
    }

    // ----- allocation -----------------------------------------------------

    /// Bump-allocate from `tid`'s arena, refilling from the global heap.
    pub fn alloc(&mut self, tid: usize, words: u64, line_align: bool) -> (Addr, u64) {
        let bytes = words * WORD_BYTES;
        let chunk = (self.cfg.arena_chunk_words as u64) * WORD_BYTES;
        assert!(
            bytes <= chunk,
            "allocation of {words} words exceeds arena chunk"
        );
        let core = &mut self.cores[tid];
        let mut start = core.arena_next;
        if line_align {
            start = (start + LINE_BYTES - 1) & !(LINE_BYTES - 1);
        }
        if start + bytes > core.arena_end {
            // Refill: carve a fresh chunk from the global heap (line
            // aligned so arenas of different threads never share lines).
            let base = (self.heap_next + LINE_BYTES - 1) & !(LINE_BYTES - 1);
            assert!(
                (base + chunk) / WORD_BYTES <= self.mem.len() as u64,
                "simulated heap exhausted"
            );
            self.heap_next = base + chunk;
            let core = &mut self.cores[tid];
            core.arena_next = base;
            core.arena_end = base + chunk;
            start = base;
        }
        let core = &mut self.cores[tid];
        core.arena_next = start + bytes;
        let cost = 10 + self.cfg.alloc_cost_per_word * words;
        (start, cost)
    }

    /// Host-side allocation (setup code, zero simulated cycles).
    pub fn host_alloc(&mut self, words: u64, line_align: bool) -> Addr {
        let bytes = words * WORD_BYTES;
        let mut base = self.heap_next;
        if line_align {
            base = (base + LINE_BYTES - 1) & !(LINE_BYTES - 1);
        }
        assert!(
            (base + bytes) / WORD_BYTES <= self.mem.len() as u64,
            "simulated heap exhausted"
        );
        self.heap_next = base + bytes;
        base
    }

    /// Host-side read (no cycles, no coherence effects).
    pub fn host_load(&self, addr: Addr) -> u64 {
        self.read_word(addr)
    }

    /// Host-side write (no cycles, no coherence effects). Only sound while
    /// no simulated threads run.
    pub fn host_store(&mut self, addr: Addr, val: u64) {
        self.write_word(addr, val);
    }
}

// ----- gated-operation descriptors --------------------------------------

/// A gated shared-state operation, reified so it can be (a) executed
/// directly by the cooperative/threaded gate, (b) executed against a
/// speculative overlay by the [`crate::spec`] scheduler, and (c) re-executed
/// against the real state by that scheduler's serial commit walk. Having one
/// descriptor per operation guarantees all three paths run *the same* op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    Begin { ab_id: u32 },
    Load { addr: Addr, pc: u64 },
    Store { addr: Addr, val: u64, pc: u64 },
    Commit,
    Abort,
    NtLoad { addr: Addr },
    PlainLoad { addr: Addr },
    NtStore { addr: Addr, val: u64 },
    NtCas { addr: Addr, old: u64, new: u64 },
    Alloc { words: u64, line_align: bool },
    LockWait { cycles: u64 },
    Backoff { cycles: u64 },
    Irrevocable { cycles: u64 },
}

/// Result of a gated operation — comparable, so the speculative scheduler
/// can validate a predicted result against the authoritative re-execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpResult {
    Unit,
    Val(u64),
    Flag(bool),
    TxUnit(Result<(), TxError>),
    TxVal(Result<u64, TxError>),
    TxErr(TxError),
}

/// Execute `op` for `tid` against the real simulator state, returning the
/// result and its latency. This is the single dispatch point used by every
/// scheduler's gate (and by the speculative commit walk), excluding only the
/// clock fold / `gated_ops` bookkeeping that the callers replicate.
pub(crate) fn apply_op(st: &mut SimState, tid: usize, op: &Op) -> (OpResult, u64) {
    match *op {
        Op::Begin { ab_id } => {
            let lat = st.tx_begin(tid, ab_id);
            (OpResult::Unit, lat)
        }
        Op::Load { addr, pc } => {
            let (r, lat) = st.tx_load(tid, addr, pc);
            (OpResult::TxVal(r), lat)
        }
        Op::Store { addr, val, pc } => {
            let (r, lat) = st.tx_store(tid, addr, val, pc);
            (OpResult::TxUnit(r), lat)
        }
        Op::Commit => {
            let (r, lat) = st.tx_commit(tid);
            (OpResult::TxUnit(r), lat)
        }
        Op::Abort => (OpResult::TxErr(st.self_abort(tid, AbortCause::Explicit)), 0),
        Op::NtLoad { addr } => {
            let (v, lat) = st.nt_load(tid, addr);
            (OpResult::Val(v), lat)
        }
        Op::PlainLoad { addr } => {
            let (v, lat) = st.plain_load(tid, addr);
            (OpResult::Val(v), lat)
        }
        Op::NtStore { addr, val } => {
            let lat = st.nt_store(tid, addr, val);
            (OpResult::Unit, lat)
        }
        Op::NtCas { addr, old, new } => {
            let (ok, lat) = st.nt_cas(tid, addr, old, new);
            (OpResult::Flag(ok), lat)
        }
        Op::Alloc { words, line_align } => {
            let (a, lat) = st.alloc(tid, words, line_align);
            (OpResult::Val(a), lat)
        }
        Op::LockWait { cycles } => {
            st.cores[tid].stats.lock_wait_cycles += cycles;
            (OpResult::Unit, 0)
        }
        Op::Backoff { cycles } => {
            st.cores[tid].stats.backoff_cycles += cycles;
            (OpResult::Unit, 0)
        }
        Op::Irrevocable { cycles } => {
            st.cores[tid].stats.irrevocable_cycles += cycles;
            st.cores[tid].stats.irrevocable_commits += 1;
            (OpResult::Unit, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(n: usize) -> SimState {
        SimState::new(MachineConfig::cores(n).small())
    }

    #[test]
    fn schedule_picks_min_and_caches_runner_up() {
        let mut s = state(3);
        s.cores[0].clock = 50;
        s.cores[1].clock = 10;
        s.cores[2].clock = 30;
        assert_eq!(s.schedule(), Some(1));
        assert_eq!(s.horizon, (30, 2), "runner-up becomes the horizon");
    }

    #[test]
    fn schedule_skips_retired_cores() {
        // Core retirement: a finished core must neither run nor act as the
        // horizon, even when its clock is the global minimum.
        let mut s = state(3);
        s.cores[0].clock = 5;
        s.cores[0].finished = true;
        s.cores[1].clock = 40;
        s.cores[2].clock = 20;
        assert_eq!(s.schedule(), Some(2));
        assert_eq!(s.horizon, (40, 1));
        assert_eq!(s.next_eligible(), Some(2));
    }

    #[test]
    fn schedule_breaks_clock_ties_by_id_even_at_max() {
        // Saturated clocks: ties at u64::MAX must still order by core id,
        // and the horizon pair must remain strictly comparable.
        let mut s = state(3);
        for c in s.cores.iter_mut() {
            c.clock = u64::MAX;
        }
        assert_eq!(s.schedule(), Some(0));
        assert_eq!(s.horizon, (u64::MAX, 1));
        // The chosen core stays eligible: its key equals neither horizon
        // component's successor — (MAX, 0) <= (MAX, 1).
        assert!((s.cores[0].clock, 0) <= s.horizon);
    }

    #[test]
    fn schedule_single_live_core_gets_open_horizon() {
        // Single-live-core fast path: with no runner-up the horizon must be
        // the +infinity sentinel so the survivor's gates never suspend.
        let mut s = state(2);
        s.cores[1].finished = true;
        s.cores[0].clock = 123;
        assert_eq!(s.schedule(), Some(0));
        assert_eq!(s.horizon, (u64::MAX, usize::MAX));
        // Even a clock at the sentinel value stays eligible by id ordering.
        s.cores[0].clock = u64::MAX;
        assert_eq!(s.schedule(), Some(0));
        assert!((s.cores[0].clock, 0) <= s.horizon);
    }

    #[test]
    fn schedule_all_finished_is_none() {
        let mut s = state(2);
        s.cores[0].finished = true;
        s.cores[1].finished = true;
        assert_eq!(s.schedule(), None);
        assert_eq!(s.next_eligible(), None);
        assert_eq!(s.horizon, (u64::MAX, usize::MAX));
    }

    #[test]
    fn indexed_schedule_matches_linear_reference() {
        // Property test: under random monotone clock advances (including
        // jumps to u64::MAX) and random retirements, the heap-backed
        // `schedule()` must pick the identical (core, horizon) pair as a
        // linear-scan reference at every step.
        use stagger_prng::Xoshiro256StarStar;
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xC0DE_2015);
        for trial in 0..40u64 {
            let n = 1 + rng.below(80) as usize;
            let mut s = state(n);
            for step in 0..200u64 {
                // Reference: one linear pass computing best + runner-up.
                let mut ref_best: Option<(u64, usize)> = None;
                let mut ref_second = (u64::MAX, usize::MAX);
                for (i, c) in s.cores.iter().enumerate() {
                    if c.finished {
                        continue;
                    }
                    let k = (c.clock, i);
                    match ref_best {
                        None => ref_best = Some(k),
                        Some(b) if k < b => {
                            ref_second = b;
                            ref_best = Some(k);
                        }
                        Some(_) => {
                            if k < ref_second {
                                ref_second = k;
                            }
                        }
                    }
                }
                let got = s.schedule();
                assert_eq!(
                    got,
                    ref_best.map(|(_, i)| i),
                    "trial {trial} step {step}: scheduled core diverged"
                );
                assert_eq!(
                    s.horizon, ref_second,
                    "trial {trial} step {step}: horizon diverged"
                );
                if got.is_none() {
                    break;
                }
                // Mutate: monotone clock advances on a few random cores
                // (the heap's soundness precondition), occasionally a jump
                // straight to u64::MAX, occasionally a retirement.
                for _ in 0..1 + rng.below(3) {
                    let i = rng.below(n as u64) as usize;
                    if s.cores[i].finished {
                        continue;
                    }
                    match rng.below(12) {
                        0 => s.cores[i].finished = true,
                        1 => s.cores[i].clock = u64::MAX,
                        _ => {
                            let c = &mut s.cores[i];
                            c.clock = c.clock.saturating_add(rng.below(100));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cores_past_32_conflict_correctly() {
        // The old u32 masks made `1 << tid` overflow beyond core 31; a
        // 33-core machine must now conflict-detect across that boundary in
        // both directions.
        let mut s = state(33);
        let a = s.host_alloc(8, true);
        s.tx_begin(32, 1);
        s.tx_store(32, a, 1, 0x400).0.unwrap();
        s.tx_begin(1, 1);
        s.tx_store(1, a, 2, 0x500).0.unwrap();
        assert!(s.tx_commit(32).0.is_err(), "core 32 must be doomable");
        s.tx_commit(1).0.unwrap();
        // And the reverse: a high-id requester dooms a low-id owner.
        s.tx_begin(0, 1);
        s.tx_store(0, a, 3, 0x600).0.unwrap();
        s.tx_begin(32, 2);
        s.tx_store(32, a, 4, 0x700).0.unwrap();
        assert!(s.tx_commit(0).0.is_err());
        s.tx_commit(32).0.unwrap();
        assert_eq!(s.host_load(a), 4);
        assert!(s.owners_empty());
    }

    #[test]
    fn doom_walk_is_ascending_across_words_at_256_cores() {
        // Readers spread across all four CoreSet words; a writer's
        // requester-wins walk must doom every one of them, in ascending id
        // order (checked indirectly: all are aborted, the writer commits).
        let mut s = state(256);
        let a = s.host_alloc(8, true);
        s.host_store(a, 7);
        let readers = [5usize, 70, 140, 255];
        for &t in &readers {
            s.tx_begin(t, 1);
            assert_eq!(s.tx_load(t, a, 0x100).0.unwrap(), 7);
        }
        s.tx_begin(9, 2);
        s.tx_store(9, a, 8, 0x200).0.unwrap();
        for &t in &readers {
            assert!(s.tx_commit(t).0.is_err(), "reader {t} must be doomed");
        }
        s.tx_commit(9).0.unwrap();
        assert_eq!(s.host_load(a), 8);
        assert!(s.owners_empty());
    }

    #[test]
    #[should_panic(expected = "n_cores")]
    fn more_than_max_cores_is_rejected() {
        // Through set_kv (the experiment-spec route), which bypasses the
        // `MachineConfig::cores` builder assert — SimState::new is the
        // backstop.
        let mut cfg = MachineConfig::cores(1).small();
        cfg.set_kv("n_cores", &(MAX_CORES + 1).to_string()).unwrap();
        let _ = SimState::new(cfg);
    }

    #[test]
    fn plain_read_write() {
        let mut s = state(2);
        let a = s.host_alloc(8, true);
        s.nt_store(0, a, 42);
        let (v, _) = s.nt_load(1, a);
        assert_eq!(v, 42);
    }

    #[test]
    fn tx_commit_makes_writes_durable() {
        let mut s = state(2);
        let a = s.host_alloc(8, true);
        s.tx_begin(0, 1);
        s.tx_store(0, a, 7, 0x400).0.unwrap();
        s.tx_commit(0).0.unwrap();
        assert_eq!(s.host_load(a), 7);
        assert_eq!(s.cores[0].stats.commits, 1);
        assert!(s.owners_empty(), "ownership released on commit");
    }

    #[test]
    fn requester_wins_write_write() {
        let mut s = state(2);
        let a = s.host_alloc(8, true);
        s.host_store(a, 1);
        s.tx_begin(0, 1);
        s.tx_store(0, a, 10, 0x400).0.unwrap();
        // Core 1 writes the same line: core 0 is the victim.
        s.tx_begin(1, 1);
        s.tx_store(1, a, 20, 0x500).0.unwrap();
        // Core 0's eager write must have been rolled back before core 1
        // read/wrote: memory holds 20 (core 1's speculative value).
        assert_eq!(s.host_load(a), 20);
        // Core 0 observes doom at its next operation.
        let (r, _) = s.tx_commit(0);
        let info = r.unwrap_err().info();
        assert_eq!(info.cause, AbortCause::Conflict);
        assert_eq!(info.conf_addr, crate::addr::line_addr(a));
        assert_eq!(info.true_first_pc, 0x400);
        assert_eq!(info.conf_pc_tag, 0x400);
        assert_eq!(s.cores[0].stats.conflict_aborts, 1);
        // Core 1 commits fine.
        s.tx_commit(1).0.unwrap();
        assert_eq!(s.host_load(a), 20);
    }

    #[test]
    fn requester_wins_read_write() {
        let mut s = state(2);
        let a = s.host_alloc(8, true);
        s.host_store(a, 5);
        s.tx_begin(0, 1);
        assert_eq!(s.tx_load(0, a, 0x100).0.unwrap(), 5);
        // A writer kills a reader.
        s.tx_begin(1, 1);
        s.tx_store(1, a, 6, 0x200).0.unwrap();
        assert!(s.tx_commit(0).0.is_err());
        s.tx_commit(1).0.unwrap();
        assert_eq!(s.host_load(a), 6);
    }

    #[test]
    fn readers_do_not_conflict() {
        let mut s = state(3);
        let a = s.host_alloc(8, true);
        s.host_store(a, 9);
        for t in 0..3 {
            s.tx_begin(t, 1);
            assert_eq!(s.tx_load(t, a, 0).0.unwrap(), 9);
        }
        for t in 0..3 {
            s.tx_commit(t).0.unwrap();
        }
    }

    #[test]
    fn bounded_read_set_aborts_with_capacity_cause() {
        let mut cfg = MachineConfig::cores(1).small();
        cfg.max_read_lines = 2;
        let mut s = SimState::new(cfg);
        let base = s.host_alloc(8 * 64, true);
        s.tx_begin(0, 1);
        s.tx_load(0, base, 0x100).0.unwrap();
        s.tx_load(0, base + LINE_BYTES, 0x104).0.unwrap();
        // Re-touching a counted line is free...
        s.tx_load(0, base, 0x108).0.unwrap();
        // ...but a third distinct line crosses the bound.
        let err = s.tx_load(0, base + 2 * LINE_BYTES, 0x10C).0.unwrap_err();
        assert_eq!(err.info().cause, AbortCause::Capacity);
        assert_eq!(s.cores[0].stats.capacity_aborts, 1);
        assert!(s.owners_empty());
    }

    #[test]
    fn bounded_write_set_counts_only_written_lines() {
        let mut cfg = MachineConfig::cores(1).small();
        cfg.max_write_lines = 1;
        let mut s = SimState::new(cfg);
        let base = s.host_alloc(8 * 64, true);
        s.tx_begin(0, 1);
        // Reads are unbounded here; one written line is fine.
        s.tx_load(0, base, 0x100).0.unwrap();
        s.tx_store(0, base + LINE_BYTES, 1, 0x104).0.unwrap();
        s.tx_store(0, base + LINE_BYTES + 8, 2, 0x108).0.unwrap();
        // Upgrading the read line to written would be a second written line.
        let err = s.tx_store(0, base, 3, 0x10C).0.unwrap_err();
        assert_eq!(err.info().cause, AbortCause::Capacity);
        assert_eq!(s.cores[0].stats.capacity_aborts, 1);
    }

    #[test]
    fn safe_lazy_subscription_validates_lock_at_commit() {
        let mut cfg = MachineConfig::cores(1).small();
        cfg.fallback = FallbackPolicy::LazySubscriptionSafe;
        let mut s = SimState::new(cfg);
        let lock = s.host_alloc(8, true);
        let a = s.host_alloc(8, true);
        s.register_commit_lock(lock);
        // Lock held at commit: the hardware validation aborts us.
        s.host_store(lock, 1);
        s.tx_begin(0, 1);
        s.tx_store(0, a, 7, 0x100).0.unwrap();
        let err = s.tx_commit(0).0.unwrap_err();
        assert_eq!(err.info().cause, AbortCause::SubscriptionValidation);
        assert_eq!(s.cores[0].stats.subscription_aborts, 1);
        assert_eq!(s.host_load(a), 0, "aborted write rolled back");
        // Lock free: commit proceeds.
        s.host_store(lock, 0);
        s.tx_begin(0, 1);
        s.tx_store(0, a, 7, 0x100).0.unwrap();
        s.tx_commit(0).0.unwrap();
        assert_eq!(s.host_load(a), 7);
        assert!(s.owners_empty());
    }

    #[test]
    fn reader_kills_writer() {
        let mut s = state(2);
        let a = s.host_alloc(8, true);
        s.host_store(a, 1);
        s.tx_begin(0, 1);
        s.tx_store(0, a, 2, 0).0.unwrap();
        s.tx_begin(1, 1);
        // Requester-wins: the *reader* requester aborts the writer and
        // reads the pre-transactional value.
        assert_eq!(s.tx_load(1, a, 0).0.unwrap(), 1);
        assert!(s.tx_commit(0).0.is_err());
        s.tx_commit(1).0.unwrap();
    }

    #[test]
    fn abort_rolls_back_multiple_writes_in_order() {
        let mut s = state(2);
        let a = s.host_alloc(16, true);
        s.host_store(a, 1);
        s.host_store(a + 8, 2);
        s.tx_begin(0, 1);
        s.tx_store(0, a, 100, 0).0.unwrap();
        s.tx_store(0, a + 8, 200, 0).0.unwrap();
        s.tx_store(0, a, 300, 0).0.unwrap(); // second write to same addr
        s.tx_begin(1, 1);
        s.tx_store(1, a, 999, 0).0.unwrap();
        // Victim rolled back completely: a+8 restored to 2.
        assert_eq!(s.host_load(a + 8), 2);
        assert!(s.tx_commit(0).0.is_err());
        s.tx_commit(1).0.unwrap();
        assert_eq!(s.host_load(a), 999);
    }

    #[test]
    fn nt_store_aborts_speculative_owner() {
        let mut s = state(2);
        let a = s.host_alloc(8, true);
        s.tx_begin(0, 1);
        s.tx_load(0, a, 0).0.unwrap();
        s.nt_store(1, a, 77);
        assert!(s.tx_commit(0).0.is_err());
        assert_eq!(s.host_load(a), 77);
    }

    #[test]
    fn plain_load_never_sees_uncommitted_data() {
        let mut s = state(2);
        let a = s.host_alloc(8, true);
        s.host_store(a, 1);
        s.tx_begin(0, 1);
        s.tx_store(0, a, 999, 0).0.unwrap(); // eager, in place
                                             // Irrevocable/plain reader must get the pre-transactional value and
                                             // doom the speculative writer.
        let (v, _) = s.plain_load(1, a);
        assert_eq!(v, 1);
        assert!(s.tx_commit(0).0.is_err());
    }

    #[test]
    fn nt_load_does_not_abort_anyone() {
        let mut s = state(2);
        let a = s.host_alloc(8, true);
        s.tx_begin(0, 1);
        s.tx_store(0, a, 3, 0).0.unwrap();
        let _ = s.nt_load(1, a);
        s.tx_commit(0).0.unwrap();
        assert_eq!(s.host_load(a), 3);
    }

    #[test]
    fn nt_cas_success_and_failure() {
        let mut s = state(1);
        let a = s.host_alloc(8, true);
        assert!(s.nt_cas(0, a, 0, 5).0);
        assert!(!s.nt_cas(0, a, 0, 9).0);
        assert_eq!(s.host_load(a), 5);
        assert!(s.nt_cas(0, a, 5, 9).0);
        assert_eq!(s.host_load(a), 9);
    }

    #[test]
    fn capacity_abort_on_set_overflow() {
        let mut s = state(1);
        // 9 distinct lines mapping to the same L1 set (set stride =
        // l1_sets lines).
        let stride = (s.cfg.l1_sets as u64) * LINE_BYTES;
        let base = s.host_alloc((s.cfg.l1_sets as u64) * 8 * 10, true);
        s.tx_begin(0, 1);
        let mut aborted = false;
        for i in 0..9u64 {
            let addr = base + i * stride;
            match s.tx_load(0, addr, 0).0 {
                Ok(_) => {}
                Err(e) => {
                    assert_eq!(e.info().cause, AbortCause::Capacity);
                    aborted = true;
                    break;
                }
            }
        }
        assert!(aborted, "9 same-set speculative lines must overflow 8 ways");
        assert_eq!(s.cores[0].stats.capacity_aborts, 1);
        assert!(!s.tx_active(0));
    }

    #[test]
    fn explicit_self_abort_rolls_back() {
        let mut s = state(1);
        let a = s.host_alloc(8, true);
        s.host_store(a, 4);
        s.tx_begin(0, 1);
        s.tx_store(0, a, 40, 0).0.unwrap();
        let e = s.self_abort(0, AbortCause::Explicit);
        assert_eq!(e.info().cause, AbortCause::Explicit);
        assert_eq!(s.host_load(a), 4);
        assert_eq!(s.cores[0].stats.explicit_aborts, 1);
    }

    #[test]
    fn latency_hierarchy_orders() {
        let mut s = state(2);
        let a = s.host_alloc(8, true);
        // Cold: memory latency.
        let (_, cold) = s.nt_load(0, a);
        assert_eq!(cold, s.cfg.mem_latency);
        // Hot: L1.
        let (_, hot) = s.nt_load(0, a);
        assert_eq!(hot, s.cfg.l1_latency);
        // Other core: cache-to-cache at L3 cost.
        let (_, remote) = s.nt_load(1, a);
        assert_eq!(remote, s.cfg.l3_latency);
    }

    #[test]
    fn write_invalidates_other_copies() {
        let mut s = state(2);
        let a = s.host_alloc(8, true);
        s.nt_load(0, a);
        s.nt_load(1, a);
        // Core 1 writes; core 0's copy must be gone (next access is a
        // transfer, not an L1 hit).
        s.nt_store(1, a, 1);
        let (_, lat) = s.nt_load(0, a);
        assert!(lat > s.cfg.l1_latency);
    }

    #[test]
    fn alloc_distinct_and_aligned() {
        let mut s = state(2);
        let (a, _) = s.alloc(0, 4, true);
        let (b, _) = s.alloc(0, 4, true);
        let (c, _) = s.alloc(1, 4, true);
        assert_eq!(a % LINE_BYTES, 0);
        assert_eq!(b % LINE_BYTES, 0);
        assert_ne!(line_of(a), line_of(b));
        // Different threads allocate from different arenas.
        assert_ne!(line_of(a), line_of(c));
    }

    #[test]
    fn alloc_unaligned_packs_words() {
        let mut s = state(1);
        let (a, _) = s.alloc(0, 2, false);
        let (b, _) = s.alloc(0, 2, false);
        assert_eq!(b, a + 16);
    }

    #[test]
    fn conflicting_pc_is_first_access_not_current() {
        let mut s = state(2);
        let a = s.host_alloc(8, true);
        s.tx_begin(0, 1);
        s.tx_load(0, a, 0x111).0.unwrap(); // first access at PC 0x111
        s.tx_store(0, a, 9, 0x222).0.unwrap(); // later store, same line
        s.tx_begin(1, 1);
        s.tx_store(1, a, 1, 0).0.unwrap();
        let (r, _) = s.tx_commit(0);
        let info = r.unwrap_err().info();
        assert_eq!(info.true_first_pc, 0x111, "PC tag set at first access only");
        s.tx_commit(1).0.unwrap();
    }

    #[test]
    fn pc_tag_truncated_to_12_bits() {
        let mut s = state(2);
        let a = s.host_alloc(8, true);
        s.tx_begin(0, 1);
        s.tx_load(0, a, 0x40_1234).0.unwrap();
        s.tx_begin(1, 1);
        s.tx_store(1, a, 1, 0).0.unwrap();
        let (r, _) = s.tx_commit(0);
        let info = r.unwrap_err().info();
        assert_eq!(info.conf_pc_tag, 0x234);
        assert_eq!(info.true_first_pc, 0x40_1234);
        s.tx_commit(1).0.unwrap();
    }

    // ----- lazy protocol ---------------------------------------------------

    fn lazy_state(n: usize) -> SimState {
        SimState::new(MachineConfig::cores(n).small().lazy())
    }

    #[test]
    fn lazy_writes_stay_private_until_commit() {
        let mut s = lazy_state(2);
        let a = s.host_alloc(8, true);
        s.host_store(a, 5);
        s.tx_begin(0, 1);
        s.tx_store(0, a, 99, 0x40).0.unwrap();
        // Memory still has the old value; another core's plain read sees it
        // and dooms no one.
        assert_eq!(s.plain_load(1, a).0, 5);
        // Our own transactional read sees the buffered value.
        assert_eq!(s.tx_load(0, a, 0x44).0.unwrap(), 99);
        s.tx_commit(0).0.unwrap();
        assert_eq!(s.host_load(a), 99);
    }

    #[test]
    fn lazy_committer_wins_over_reader() {
        let mut s = lazy_state(2);
        let a = s.host_alloc(8, true);
        s.tx_begin(0, 1);
        s.tx_store(0, a, 7, 0x100).0.unwrap();
        s.tx_begin(1, 1);
        // Reader proceeds freely (no eager conflict)...
        assert_eq!(s.tx_load(1, a, 0x200).0.unwrap(), 0);
        // ...until the writer commits: committer wins.
        s.tx_commit(0).0.unwrap();
        let e = s.tx_commit(1).0.unwrap_err();
        assert_eq!(e.info().cause, AbortCause::Conflict);
        assert_eq!(e.info().true_first_pc, 0x200);
        assert_eq!(s.host_load(a), 7);
    }

    #[test]
    fn lazy_concurrent_writers_coexist_until_commit() {
        let mut s = lazy_state(3);
        let a = s.host_alloc(8, true);
        for t in 0..3 {
            s.tx_begin(t, 1);
            s.tx_store(t, a, 10 + t as u64, 0).0.unwrap();
        }
        // First committer wins; the others are doomed at their commits.
        s.tx_commit(0).0.unwrap();
        assert!(s.tx_commit(1).0.is_err());
        assert!(s.tx_commit(2).0.is_err());
        assert_eq!(s.host_load(a), 10);
    }

    #[test]
    fn lazy_abort_discards_buffer_without_rollback() {
        let mut s = lazy_state(1);
        let a = s.host_alloc(8, true);
        s.host_store(a, 3);
        s.tx_begin(0, 1);
        s.tx_store(0, a, 42, 0).0.unwrap();
        let _ = s.self_abort(0, AbortCause::Explicit);
        assert_eq!(s.host_load(a), 3, "no eager write ever happened");
    }

    #[test]
    fn lazy_disjoint_writers_all_commit() {
        let mut s = lazy_state(2);
        let a = s.host_alloc(16, true);
        s.tx_begin(0, 1);
        s.tx_store(0, a, 1, 0).0.unwrap();
        s.tx_begin(1, 1);
        s.tx_store(1, a + 64, 2, 0).0.unwrap();
        s.tx_commit(0).0.unwrap();
        s.tx_commit(1).0.unwrap();
    }

    #[test]
    fn next_eligible_min_clock_ties_by_id() {
        let mut s = state(3);
        s.cores[0].clock = 5;
        s.cores[1].clock = 3;
        s.cores[2].clock = 3;
        assert_eq!(s.next_eligible(), Some(1));
        s.cores[1].finished = true;
        assert_eq!(s.next_eligible(), Some(2));
        s.cores[2].finished = true;
        assert_eq!(s.next_eligible(), Some(0));
        s.cores[0].finished = true;
        assert_eq!(s.next_eligible(), None);
    }

    #[test]
    fn wasted_and_useful_cycle_accounting() {
        let mut s = state(2);
        let a = s.host_alloc(8, true);
        s.tx_begin(0, 1);
        s.cores[0].clock += 100; // simulate work inside the attempt
        s.tx_store(0, a, 1, 0).0.unwrap();
        s.tx_begin(1, 1);
        s.tx_store(1, a, 2, 0).0.unwrap();
        s.cores[0].clock += 50; // doomed victim keeps running a bit
        assert!(s.tx_commit(0).0.is_err());
        // 100 + 50 cycles of attempt work plus the abort-delivery cost.
        assert_eq!(s.cores[0].stats.wasted_tx_cycles, 150 + s.cfg.tx_abort_cost);
        s.cores[1].clock += 30;
        s.tx_commit(1).0.unwrap();
        assert_eq!(s.cores[1].stats.useful_tx_cycles, 30 + s.cfg.tx_commit_cost);
    }

    #[test]
    fn perm_cache_repeat_accesses_hit_l1_latency() {
        let mut s = state(2);
        assert!(s.perm_slots > 0, "default config enables the fast path");
        let a = s.host_alloc(8, true);
        s.tx_begin(0, 1);
        // First store goes the slow way (owner-directory probe + fill).
        let (r, first_lat) = s.tx_store(0, a, 1, 0x400);
        r.unwrap();
        assert!(first_lat > s.cfg.l1_latency);
        // Repeats hold write permission: L1-latency fast path, same value
        // flow and footprint as the slow path.
        let (r, lat) = s.tx_store(0, a, 2, 0x400);
        r.unwrap();
        assert_eq!(lat, s.cfg.l1_latency);
        let (v, lat) = {
            let (r, lat) = s.tx_load(0, a, 0x404);
            (r.unwrap(), lat)
        };
        assert_eq!(v, 2);
        assert_eq!(lat, s.cfg.l1_latency);
        assert_eq!(s.cores[0].stats.tx_mem_ops, 3);
        s.tx_commit(0).0.unwrap();
        assert_eq!(s.host_load(a), 2);
        assert!(s.owners_empty());
    }

    #[test]
    fn perm_cache_conflicts_still_detected_after_fast_hits() {
        let mut s = state(2);
        let a = s.host_alloc(8, true);
        s.host_store(a, 5);
        s.tx_begin(0, 1);
        s.tx_store(0, a, 10, 0x400).0.unwrap();
        s.tx_store(0, a, 11, 0x400).0.unwrap(); // fast path
                                                // A remote writer must still doom core 0 exactly as before.
        s.tx_begin(1, 1);
        s.tx_store(1, a, 20, 0x500).0.unwrap();
        assert_eq!(s.host_load(a), 20, "core 0's writes rolled back");
        // The doomed core cannot sneak a fast-path access past the doom.
        let (r, _) = s.tx_load(0, a, 0x404);
        assert_eq!(r.unwrap_err().info().cause, AbortCause::Conflict);
        s.tx_commit(1).0.unwrap();
        // The permission cache died with the attempt: a fresh attempt by
        // core 0 probes the directory again and succeeds normally.
        s.tx_begin(0, 2);
        assert_eq!(s.tx_load(0, a, 0x408).0.unwrap(), 20);
        s.tx_commit(0).0.unwrap();
    }

    #[test]
    fn perm_cache_off_is_bit_identical() {
        // The same scripted contention schedule, with and without the
        // permission cache: every latency, stat and memory value matches.
        let run = |perm_lines: usize| {
            let mut s = SimState::new(MachineConfig::cores(2).small().perm_cache_lines(perm_lines));
            let a = s.host_alloc(16, true);
            let mut lats = Vec::new();
            s.tx_begin(0, 1);
            for i in 0..4 {
                let (r, lat) = s.tx_store(0, a, i, 0x400);
                r.unwrap();
                lats.push(lat);
                let (r, lat) = s.tx_load(0, a, 0x404);
                r.unwrap();
                lats.push(lat);
            }
            s.tx_begin(1, 2);
            let (r, lat) = s.tx_store(1, a, 99, 0x500);
            r.unwrap();
            lats.push(lat);
            assert!(s.tx_commit(0).0.is_err());
            s.tx_commit(1).0.unwrap();
            s.tx_begin(0, 1);
            let (r, lat) = s.tx_load(0, a, 0x408);
            lats.push(lat);
            assert_eq!(r.unwrap(), 99);
            s.tx_commit(0).0.unwrap();
            let stats: Vec<CoreStats> = s.cores.iter().map(|c| c.stats.clone()).collect();
            (lats, stats, s.host_load(a))
        };
        assert_eq!(run(0), run(32));
    }
}
