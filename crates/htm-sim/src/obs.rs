//! Cycle-stamped structured event telemetry — the observability layer.
//!
//! Where [`crate::trace`] records only transaction boundaries for the
//! timeline renderer, this module records *everything the paper's
//! profiling story needs*: the full transaction lifecycle with conflict
//! attribution (which core aborted us, at which victim/aborter PC tags),
//! every advisory-lock acquire/wait/timeout/release, backoff intervals,
//! and irrevocable entry/exit. The stream is the raw material for the
//! Section 3 conflict statistics that drive anchor selection.
//!
//! Recording is gated by [`crate::MachineConfig::record_events`] exactly
//! like `record_trace`: when disabled, every hook is a single branch on a
//! bool, no event is allocated, and — because events piggyback on
//! operations that happen anyway rather than adding gated ops — simulated
//! cycles, statistics and traces are bit-identical with recording on or
//! off. Events are ring-buffered per core
//! ([`crate::MachineConfig::event_ring_capacity`]); when the ring wraps,
//! the oldest events are dropped and counted.
//!
//! ## JSONL export schema
//!
//! [`write_jsonl`] emits one JSON object per line, one line per event,
//! cores concatenated in id order (hand-written like `bench`'s report
//! writer — the workspace builds offline with no serde). Common keys:
//! `core` (the recording core id), `clock` (its logical cycle stamp) and
//! `kind`. Kind-specific keys:
//!
//! ```json
//! {"core":0,"clock":10,"kind":"tx_begin","ab_id":1}
//! {"core":1,"clock":1145,"kind":"tx_commit"}
//! {"core":0,"clock":5385,"kind":"tx_abort","cause":"conflict","conf_addr":4096,
//!  "victim_pc_tag":273,"aborter_pc_tag":546,"aborter":1}
//! {"core":1,"clock":2000,"kind":"lock_acquire","word":65536,"waited":120}
//! {"core":1,"clock":2300,"kind":"lock_timeout","word":65536,"waited":200010}
//! {"core":1,"clock":2400,"kind":"lock_release","word":65536,"contended":true}
//! {"core":0,"clock":2500,"kind":"backoff","cycles":37}
//! {"core":0,"clock":2600,"kind":"irrevocable_enter"}
//! {"core":0,"clock":7600,"kind":"irrevocable_exit","cycles":5000}
//! ```
//!
//! `cause` is one of `"conflict" | "capacity" | "explicit" |
//! "subscription"` (`"subscription"` — commit-time fallback-lock
//! validation under the safe lazy-subscription policy — was added with
//! the protocol matrix; every pre-existing field is unchanged); for
//! non-conflict aborts `conf_addr` and both PC tags are 0 and `aborter`
//! is the core's own id. PC tags are the hardware's 12-bit truncation.
//! Duration-carrying events (`lock_acquire`/`lock_timeout` `waited`,
//! `irrevocable_exit`/`backoff` `cycles`) are stamped at the *end* of
//! their span, so the span is `[clock - duration, clock]`.

use crate::addr::Addr;
use crate::fx::FxHashMap;
use crate::sim::AbortCause;
use std::io::Write;

/// One cycle-stamped observability event, as recorded by one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsEvent {
    /// The recording core's logical clock at the event.
    pub clock: u64,
    pub kind: ObsKind,
}

/// What happened. See the module docs for the per-kind JSONL schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsKind {
    /// A hardware transaction began for atomic block `ab_id`.
    TxBegin { ab_id: u32 },
    /// The active transaction committed.
    TxCommit,
    /// The active transaction aborted. For conflicts, `victim_pc_tag` is
    /// the 12-bit tag of *our* first access to the conflicting line (what
    /// the hardware delivers in [`crate::AbortInfo`]), `aborter_pc_tag`
    /// the tag of the remote access that doomed us, and `aborter` the
    /// requester core's id. Capacity/explicit aborts carry zeros and the
    /// core's own id.
    TxAbort {
        cause: AbortCause,
        conf_addr: Addr,
        victim_pc_tag: u16,
        aborter_pc_tag: u16,
        aborter: u32,
    },
    /// An advisory lock was acquired after `waited` cycles of spinning
    /// (0 = uncontended or non-blocking try).
    LockAcquire { word: Addr, waited: u64 },
    /// An advisory-lock acquire gave up after `waited` cycles (advisory
    /// semantics: the transaction proceeds without the lock).
    LockTimeout { word: Addr, waited: u64 },
    /// An advisory lock was released; `contended` is true when a waiter
    /// spun on it while we held it.
    LockRelease { word: Addr, contended: bool },
    /// Retry backoff of `cycles` just completed.
    Backoff { cycles: u64 },
    /// Irrevocable (global-lock) execution begins.
    IrrevocableEnter,
    /// Irrevocable execution ends after `cycles`.
    IrrevocableExit { cycles: u64 },
}

/// Fixed-capacity per-core event buffer: when full, the oldest event is
/// overwritten and counted as dropped. Capacity 0 drops everything.
#[derive(Debug, Default)]
pub struct EventRing {
    buf: Vec<ObsEvent>,
    cap: usize,
    start: usize,
    dropped: u64,
}

impl EventRing {
    pub fn new(cap: usize) -> EventRing {
        EventRing {
            buf: Vec::new(),
            cap,
            start: 0,
            dropped: 0,
        }
    }

    pub fn push(&mut self, e: ObsEvent) {
        if self.cap == 0 {
            self.dropped += 1;
        } else if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[self.start] = e;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events dropped to the ring bound (oldest-first overwrite).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The buffered events, oldest first.
    pub fn into_vec(mut self) -> Vec<ObsEvent> {
        self.buf.rotate_left(self.start);
        self.buf
    }
}

/// Bucket index of `v` in a log2 histogram: bucket 0 holds exactly 0,
/// bucket `k >= 1` holds `[2^(k-1), 2^k - 1]` — so `log2_bucket(2^k)`
/// is `k + 1` and `log2_bucket(2^k - 1)` is `k` (exact at boundaries).
pub fn log2_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Number of log2 buckets (`log2_bucket(u64::MAX) == 64`).
pub const N_LOG2_BUCKETS: usize = 65;

/// The victim-PC-tag × aborter-PC-tag conflict matrix — the paper's
/// "which static access aborted which" profiling signal, aggregated over
/// all conflict-abort events.
#[derive(Debug, Default, Clone)]
pub struct ConflictMatrix {
    cells: FxHashMap<(u16, u16), u64>,
}

impl ConflictMatrix {
    pub fn record(&mut self, victim_tag: u16, aborter_tag: u16) {
        *self.cells.entry((victim_tag, aborter_tag)).or_insert(0) += 1;
    }

    /// Build from per-core event streams (conflict aborts only).
    pub fn from_events(streams: &[Vec<ObsEvent>]) -> ConflictMatrix {
        let mut m = ConflictMatrix::default();
        for stream in streams {
            for e in stream {
                if let ObsKind::TxAbort {
                    cause: AbortCause::Conflict,
                    victim_pc_tag,
                    aborter_pc_tag,
                    ..
                } = e.kind
                {
                    m.record(victim_pc_tag, aborter_pc_tag);
                }
            }
        }
        m
    }

    pub fn get(&self, victim_tag: u16, aborter_tag: u16) -> u64 {
        self.cells
            .get(&(victim_tag, aborter_tag))
            .copied()
            .unwrap_or(0)
    }

    pub fn iter(&self) -> impl Iterator<Item = ((u16, u16), u64)> + '_ {
        self.cells.iter().map(|(&k, &v)| (k, v))
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    pub fn total(&self) -> u64 {
        self.cells.values().sum()
    }

    /// The `n` heaviest cells, count-descending (ties by tag pair, so the
    /// order is deterministic).
    pub fn top(&self, n: usize) -> Vec<((u16, u16), u64)> {
        let mut v: Vec<_> = self.iter().collect();
        v.sort_by_key(|&((vt, at), c)| (std::cmp::Reverse(c), vt, at));
        v.truncate(n);
        v
    }
}

/// Per-lock-word wait-time statistics with log2-bucketed histograms.
#[derive(Debug, Default, Clone)]
pub struct WaitHistogram {
    per_word: FxHashMap<Addr, WordWaits>,
}

/// Wait statistics of one advisory lock word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordWaits {
    /// `buckets[log2_bucket(waited)]` counts acquire attempts (successful
    /// or timed out) by wait duration.
    pub buckets: [u64; N_LOG2_BUCKETS],
    pub acquires: u64,
    pub timeouts: u64,
    pub total_wait: u64,
}

impl Default for WordWaits {
    fn default() -> Self {
        WordWaits {
            buckets: [0; N_LOG2_BUCKETS],
            acquires: 0,
            timeouts: 0,
            total_wait: 0,
        }
    }
}

impl WaitHistogram {
    pub fn record(&mut self, word: Addr, waited: u64, timed_out: bool) {
        let w = self.per_word.entry(word).or_default();
        w.buckets[log2_bucket(waited)] += 1;
        if timed_out {
            w.timeouts += 1;
        } else {
            w.acquires += 1;
        }
        w.total_wait += waited;
    }

    /// Build from per-core event streams (lock acquire/timeout events).
    pub fn from_events(streams: &[Vec<ObsEvent>]) -> WaitHistogram {
        let mut h = WaitHistogram::default();
        for stream in streams {
            for e in stream {
                match e.kind {
                    ObsKind::LockAcquire { word, waited } => h.record(word, waited, false),
                    ObsKind::LockTimeout { word, waited } => h.record(word, waited, true),
                    _ => {}
                }
            }
        }
        h
    }

    pub fn word(&self, word: Addr) -> Option<&WordWaits> {
        self.per_word.get(&word)
    }

    pub fn is_empty(&self) -> bool {
        self.per_word.is_empty()
    }

    /// Lock words ordered by traffic (attempts descending, ties by
    /// address — deterministic).
    pub fn words_by_traffic(&self) -> Vec<(Addr, &WordWaits)> {
        let mut v: Vec<_> = self.per_word.iter().map(|(&w, s)| (w, s)).collect();
        v.sort_by_key(|&(w, s)| (std::cmp::Reverse(s.acquires + s.timeouts), w));
        v
    }
}

/// Abort-cause breakdown of one workload run, from the event stream.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AbortBreakdown {
    pub commits: u64,
    pub conflict: u64,
    pub capacity: u64,
    pub explicit: u64,
    /// Commit-time fallback-lock validation aborts (safe lazy
    /// subscription).
    pub subscription: u64,
}

impl AbortBreakdown {
    pub fn from_events(streams: &[Vec<ObsEvent>]) -> AbortBreakdown {
        let mut b = AbortBreakdown::default();
        for stream in streams {
            for e in stream {
                match e.kind {
                    ObsKind::TxCommit => b.commits += 1,
                    ObsKind::TxAbort { cause, .. } => match cause {
                        AbortCause::Conflict => b.conflict += 1,
                        AbortCause::Capacity => b.capacity += 1,
                        AbortCause::Explicit => b.explicit += 1,
                        AbortCause::SubscriptionValidation => b.subscription += 1,
                    },
                    _ => {}
                }
            }
        }
        b
    }

    pub fn aborts(&self) -> u64 {
        self.conflict + self.capacity + self.explicit + self.subscription
    }
}

fn cause_str(c: AbortCause) -> &'static str {
    match c {
        AbortCause::Conflict => "conflict",
        AbortCause::Capacity => "capacity",
        AbortCause::Explicit => "explicit",
        AbortCause::SubscriptionValidation => "subscription",
    }
}

/// One event as a JSONL line (no trailing newline). See the module docs
/// for the schema.
pub fn event_json(core: usize, e: &ObsEvent) -> String {
    let head = format!("{{\"core\":{core},\"clock\":{}", e.clock);
    match e.kind {
        ObsKind::TxBegin { ab_id } => {
            format!("{head},\"kind\":\"tx_begin\",\"ab_id\":{ab_id}}}")
        }
        ObsKind::TxCommit => format!("{head},\"kind\":\"tx_commit\"}}"),
        ObsKind::TxAbort {
            cause,
            conf_addr,
            victim_pc_tag,
            aborter_pc_tag,
            aborter,
        } => format!(
            "{head},\"kind\":\"tx_abort\",\"cause\":\"{}\",\"conf_addr\":{conf_addr},\
             \"victim_pc_tag\":{victim_pc_tag},\"aborter_pc_tag\":{aborter_pc_tag},\
             \"aborter\":{aborter}}}",
            cause_str(cause)
        ),
        ObsKind::LockAcquire { word, waited } => {
            format!("{head},\"kind\":\"lock_acquire\",\"word\":{word},\"waited\":{waited}}}")
        }
        ObsKind::LockTimeout { word, waited } => {
            format!("{head},\"kind\":\"lock_timeout\",\"word\":{word},\"waited\":{waited}}}")
        }
        ObsKind::LockRelease { word, contended } => {
            format!("{head},\"kind\":\"lock_release\",\"word\":{word},\"contended\":{contended}}}")
        }
        ObsKind::Backoff { cycles } => {
            format!("{head},\"kind\":\"backoff\",\"cycles\":{cycles}}}")
        }
        ObsKind::IrrevocableEnter => format!("{head},\"kind\":\"irrevocable_enter\"}}"),
        ObsKind::IrrevocableExit { cycles } => {
            format!("{head},\"kind\":\"irrevocable_exit\",\"cycles\":{cycles}}}")
        }
    }
}

/// Dump per-core event streams as JSONL, cores in id order.
pub fn write_jsonl<W: Write>(w: &mut W, streams: &[Vec<ObsEvent>]) -> std::io::Result<()> {
    for (core, stream) in streams.iter().enumerate() {
        for e in stream {
            writeln!(w, "{}", event_json(core, e))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{body, Machine, MachineConfig};

    #[test]
    fn log2_bucketing_exact_at_boundaries() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        for k in 1..63 {
            // 2^k - 1 falls in bucket k; 2^k starts bucket k + 1.
            assert_eq!(log2_bucket((1u64 << k) - 1), k, "below boundary 2^{k}");
            assert_eq!(log2_bucket(1u64 << k), k + 1, "at boundary 2^{k}");
        }
        assert_eq!(log2_bucket(u64::MAX), 64);
    }

    #[test]
    fn wait_histogram_buckets_and_counts() {
        let mut h = WaitHistogram::default();
        h.record(0x1000, 0, false);
        h.record(0x1000, 7, false); // bucket 3: [4, 7]
        h.record(0x1000, 8, false); // bucket 4: [8, 15]
        h.record(0x1000, 200_000, true);
        let w = h.word(0x1000).unwrap();
        assert_eq!(w.buckets[0], 1);
        assert_eq!(w.buckets[3], 1);
        assert_eq!(w.buckets[4], 1);
        assert_eq!(w.buckets[log2_bucket(200_000)], 1);
        assert_eq!(w.acquires, 3);
        assert_eq!(w.timeouts, 1);
        assert_eq!(w.total_wait, 200_015);
        assert!(h.word(0x2000).is_none());
    }

    #[test]
    fn ring_bounds_and_preserves_order() {
        let mut r = EventRing::new(3);
        for clock in 0..5 {
            r.push(ObsEvent {
                clock,
                kind: ObsKind::TxCommit,
            });
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let clocks: Vec<u64> = r.into_vec().iter().map(|e| e.clock).collect();
        assert_eq!(clocks, vec![2, 3, 4], "oldest dropped, order kept");
        // Capacity 0 records nothing.
        let mut z = EventRing::new(0);
        z.push(ObsEvent {
            clock: 1,
            kind: ObsKind::TxCommit,
        });
        assert!(z.is_empty());
        assert_eq!(z.dropped(), 1);
    }

    /// The tentpole attribution test: a hand-built two-core conflict must
    /// land in exactly the (victim PC tag, aborter PC tag) cell of the
    /// conflict matrix, with the aborter core identified.
    #[test]
    fn conflict_matrix_attributes_two_core_conflict() {
        let mut cfg = MachineConfig::cores(2).small();
        cfg.record_events = true;
        let m = Machine::new(cfg);
        let a = m.host_alloc(8, true);
        m.run(vec![
            body(move |mut c| async move {
                c.tx_begin(1).await;
                let _ = c.tx_load(a, 0x40_0111).await; // victim's first access
                c.compute(5_000); // keep the txn open across the remote store
                let _ = c.tx_commit().await; // observes the doom
            }),
            body(move |mut c| async move {
                c.compute(1_000); // start after core 0's load
                c.tx_begin(2).await;
                let _ = c.tx_store(a, 7, 0x40_0222).await; // requester wins
                let _ = c.tx_commit().await;
            }),
        ]);
        let streams = m.take_events();
        let abort = streams[0]
            .iter()
            .find_map(|e| match e.kind {
                ObsKind::TxAbort {
                    cause: AbortCause::Conflict,
                    victim_pc_tag,
                    aborter_pc_tag,
                    aborter,
                    ..
                } => Some((victim_pc_tag, aborter_pc_tag, aborter)),
                _ => None,
            })
            .expect("victim records a conflict abort");
        assert_eq!(abort, (0x111, 0x222, 1), "12-bit tags + aborter core");
        let matrix = ConflictMatrix::from_events(&streams);
        assert_eq!(matrix.get(0x111, 0x222), 1);
        assert_eq!(matrix.total(), 1);
        assert_eq!(matrix.top(4), vec![((0x111, 0x222), 1)]);
        let b = AbortBreakdown::from_events(&streams);
        assert_eq!(b.conflict, 1);
        assert_eq!(b.commits, 1, "the aborter commits");
    }

    #[test]
    fn recording_disabled_by_default_and_consuming() {
        let m = Machine::new(MachineConfig::cores(1).small());
        let a = m.host_alloc(8, true);
        m.run(vec![body(move |mut c| async move {
            c.tx_begin(0).await;
            c.tx_store(a, 1, 0).await.unwrap();
            c.tx_commit().await.unwrap();
        })]);
        assert!(m.take_events()[0].is_empty());

        let mut cfg = MachineConfig::cores(1).small();
        cfg.record_events = true;
        let m = Machine::new(cfg);
        let a = m.host_alloc(8, true);
        m.run(vec![body(move |mut c| async move {
            c.tx_begin(4).await;
            c.tx_store(a, 1, 0).await.unwrap();
            c.tx_commit().await.unwrap();
        })]);
        let streams = m.take_events();
        assert_eq!(streams[0].len(), 2);
        assert!(matches!(streams[0][0].kind, ObsKind::TxBegin { ab_id: 4 }));
        assert!(matches!(streams[0][1].kind, ObsKind::TxCommit));
        assert!(streams[0][1].clock >= streams[0][0].clock);
        // Consuming: a second take returns empty streams.
        assert!(m.take_events()[0].is_empty());
    }

    #[test]
    fn jsonl_lines_are_well_formed() {
        let streams = vec![vec![
            ObsEvent {
                clock: 10,
                kind: ObsKind::TxBegin { ab_id: 1 },
            },
            ObsEvent {
                clock: 40,
                kind: ObsKind::TxAbort {
                    cause: AbortCause::Conflict,
                    conf_addr: 4096,
                    victim_pc_tag: 0x111,
                    aborter_pc_tag: 0x222,
                    aborter: 1,
                },
            },
            ObsEvent {
                clock: 90,
                kind: ObsKind::LockAcquire {
                    word: 0x8000,
                    waited: 120,
                },
            },
            ObsEvent {
                clock: 95,
                kind: ObsKind::LockRelease {
                    word: 0x8000,
                    contended: false,
                },
            },
        ]];
        let mut out = Vec::new();
        write_jsonl(&mut out, &streams).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "object per line");
            assert!(l.contains("\"core\":0") && l.contains("\"clock\":"));
        }
        assert!(lines[1].contains("\"cause\":\"conflict\""));
        assert!(lines[1].contains("\"aborter\":1"));
        assert!(lines[2].contains("\"waited\":120"));
        assert!(lines[3].contains("\"contended\":false"));
    }
}
