//! Execution statistics — the raw numbers behind Tables 1/3/4 and Figures
//! 7/8.

/// Per-core counters, all in simulated cycles / event counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Committed hardware transactions.
    pub commits: u64,
    /// Aborts due to data conflicts.
    pub conflict_aborts: u64,
    /// Aborts due to speculative-capacity overflow.
    pub capacity_aborts: u64,
    /// Explicit self-aborts (e.g., global-lock subscription failure).
    pub explicit_aborts: u64,
    /// Commit-time fallback-lock validation aborts (safe lazy
    /// subscription; see `AbortCause::SubscriptionValidation`).
    pub subscription_aborts: u64,
    /// Transactions that gave up and ran irrevocably under the global lock.
    pub irrevocable_commits: u64,
    /// Cycles spent inside transaction attempts that committed.
    pub useful_tx_cycles: u64,
    /// Cycles spent inside transaction attempts that aborted.
    pub wasted_tx_cycles: u64,
    /// Cycles spent waiting for advisory locks (charged by the runtime).
    pub lock_wait_cycles: u64,
    /// Cycles spent in backoff between retries (charged by the runtime).
    pub backoff_cycles: u64,
    /// Cycles spent in irrevocable (global-lock) execution.
    pub irrevocable_cycles: u64,
    /// The core's final logical clock.
    pub total_cycles: u64,
    /// Dynamic count of memory µ-ops executed transactionally.
    pub tx_mem_ops: u64,
    /// Dynamic count of nontransactional memory operations.
    pub nt_mem_ops: u64,
    /// Gated (globally ordered) operations the core issued — each one was
    /// a mutex+condvar handoff under the threaded scheduler and is a plain
    /// uncontended lock under the cooperative one. Scheduler-overhead
    /// observability, not a paper metric.
    pub gated_ops: u64,
}

impl CoreStats {
    /// Total aborts of any cause.
    pub fn aborts(&self) -> u64 {
        self.conflict_aborts
            + self.capacity_aborts
            + self.explicit_aborts
            + self.subscription_aborts
    }

    fn add(&mut self, o: &CoreStats) {
        self.commits += o.commits;
        self.conflict_aborts += o.conflict_aborts;
        self.capacity_aborts += o.capacity_aborts;
        self.explicit_aborts += o.explicit_aborts;
        self.subscription_aborts += o.subscription_aborts;
        self.irrevocable_commits += o.irrevocable_commits;
        self.useful_tx_cycles += o.useful_tx_cycles;
        self.wasted_tx_cycles += o.wasted_tx_cycles;
        self.lock_wait_cycles += o.lock_wait_cycles;
        self.backoff_cycles += o.backoff_cycles;
        self.irrevocable_cycles += o.irrevocable_cycles;
        self.total_cycles = self.total_cycles.max(o.total_cycles);
        self.tx_mem_ops += o.tx_mem_ops;
        self.nt_mem_ops += o.nt_mem_ops;
        self.gated_ops += o.gated_ops;
    }
}

/// Host-side counters of the speculative (Block-STM-style) scheduler — how
/// well optimistic execution predicted the serial commit order. All zeros
/// under the cooperative and threaded schedulers. These are *host*
/// observability numbers: they never feed back into simulated quantities,
/// which stay bit-identical across schedulers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Speculate/commit rounds executed.
    pub rounds: u64,
    /// Gated ops executed optimistically against per-core overlays.
    pub speculated_ops: u64,
    /// Speculated ops whose (result, latency) matched the authoritative
    /// serial re-execution and were committed from the queue.
    pub committed_ops: u64,
    /// Mis-speculations: a speculated op whose result or latency diverged
    /// from the serial commit order (the rest of that core's queue is
    /// discarded and the core re-executed).
    pub mismatches: u64,
    /// Core re-executions (fresh program + replay of the committed prefix).
    pub rebuilds: u64,
    /// Gated ops replayed from committed logs during re-executions.
    pub replayed_ops: u64,
    /// Gated ops executed non-speculatively by demoted cores.
    pub direct_ops: u64,
    /// Cores demoted to direct (non-speculative) execution after repeated
    /// mis-speculation.
    pub demoted_cores: u64,
}

/// Whole-machine statistics snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    pub cores: Vec<CoreStats>,
    /// Execution time: the maximum core clock at the end of the run.
    pub exec_cycles: u64,
}

impl SimStats {
    /// Sum over cores (with `total_cycles`/`exec_cycles` taken as max).
    pub fn aggregate(&self) -> CoreStats {
        let mut t = CoreStats::default();
        for c in &self.cores {
            t.add(c);
        }
        t
    }

    /// Aborts per commit (the paper's Abts/C, Table 4 / Figure 8a).
    /// Irrevocable executions count as commits, as in the paper's runtime.
    pub fn aborts_per_commit(&self) -> f64 {
        let a = self.aggregate();
        let commits = a.commits + a.irrevocable_commits;
        if commits == 0 {
            0.0
        } else {
            a.aborts() as f64 / commits as f64
        }
    }

    /// Ratio of wasted to useful transactional cycles (W/U, Table 1 /
    /// Figure 8b).
    pub fn wasted_over_useful(&self) -> f64 {
        let a = self.aggregate();
        let useful = a.useful_tx_cycles + a.irrevocable_cycles;
        if useful == 0 {
            0.0
        } else {
            a.wasted_tx_cycles as f64 / useful as f64
        }
    }

    /// Fraction of transactions forced into irrevocable mode (%I, Table 1).
    pub fn irrevocable_fraction(&self) -> f64 {
        let a = self.aggregate();
        let done = a.commits + a.irrevocable_commits;
        if done == 0 {
            0.0
        } else {
            a.irrevocable_commits as f64 / done as f64
        }
    }

    /// Fraction of execution time spent in transactional work (%TM,
    /// Table 4): transactional (useful + wasted + irrevocable + waits)
    /// cycles over summed core cycles.
    pub fn tm_fraction(&self) -> f64 {
        let a = self.aggregate();
        let total: u64 = self.cores.iter().map(|c| c.total_cycles).sum();
        if total == 0 {
            return 0.0;
        }
        let tm = a.useful_tx_cycles
            + a.wasted_tx_cycles
            + a.irrevocable_cycles
            + a.lock_wait_cycles
            + a.backoff_cycles;
        tm as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(cores: Vec<CoreStats>, exec: u64) -> SimStats {
        SimStats {
            cores,
            exec_cycles: exec,
        }
    }

    #[test]
    fn aborts_per_commit_counts_irrevocable() {
        let c = CoreStats {
            commits: 8,
            irrevocable_commits: 2,
            conflict_aborts: 5,
            ..Default::default()
        };
        let s = stats_with(vec![c], 100);
        assert!((s.aborts_per_commit() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let s = stats_with(vec![CoreStats::default()], 0);
        assert_eq!(s.aborts_per_commit(), 0.0);
        assert_eq!(s.wasted_over_useful(), 0.0);
        assert_eq!(s.irrevocable_fraction(), 0.0);
        assert_eq!(s.tm_fraction(), 0.0);
    }

    #[test]
    fn aggregate_sums_and_maxes() {
        let a = CoreStats {
            commits: 3,
            total_cycles: 50,
            ..Default::default()
        };
        let b = CoreStats {
            commits: 4,
            total_cycles: 80,
            ..Default::default()
        };
        let s = stats_with(vec![a, b], 80);
        let t = s.aggregate();
        assert_eq!(t.commits, 7);
        assert_eq!(t.total_cycles, 80);
    }

    #[test]
    fn wasted_over_useful_ratio() {
        let c = CoreStats {
            useful_tx_cycles: 100,
            wasted_tx_cycles: 250,
            ..Default::default()
        };
        let s = stats_with(vec![c], 1000);
        assert!((s.wasted_over_useful() - 2.5).abs() < 1e-12);
    }
}
