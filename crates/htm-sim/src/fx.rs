//! An in-tree FxHash-style hasher for the simulator's and runtime's
//! remaining hash maps.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of cycles per
//! probe — real overhead on maps keyed by small integers (addresses, PCs,
//! atomic-block ids) that sit on simulation hot paths. This is the
//! multiply-and-rotate scheme popularized by the Rust compiler's FxHasher:
//! one wrapping multiply and a rotate per 8 bytes, deterministic across
//! runs and platforms (the reproduction's determinism guarantee never
//! depends on hash iteration order, but determinism of timing-irrelevant
//! paths keeps profiles comparable).
//!
//! Keys here are attacker-free simulator-internal integers, so the lack of
//! DoS resistance is irrelevant.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 2^64 / φ, the multiplicative-hashing constant.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
const ROTATE: u32 = 26;

/// A fast, non-cryptographic hasher for small integer-like keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 64, i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&i));
        }
        assert_eq!(m.get(&7), None);
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
        // Adjacent line addresses must not collide to the same value.
        assert_ne!(h(0x1000), h(0x1040));
    }

    #[test]
    fn string_keys_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("alpha".into(), 1);
        m.insert("beta".into(), 2);
        assert_eq!(m["alpha"], 1);
        assert_eq!(m["beta"], 2);
    }
}
