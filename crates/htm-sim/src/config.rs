//! Machine configuration — the reproduction of the paper's Table 2.

/// HTM conflict-resolution protocol (paper Section 7 taxonomy).
///
/// The paper evaluates on an eager requester-wins design and names lazy
/// protocols as future work; both are implemented here so the claim that
/// Staggered Transactions are "compatible with most conflict resolution
/// techniques" is testable (see the `ablations` harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HtmProtocol {
    /// Conflicts detected as they occur; in-place (undo-logged) writes;
    /// the requester wins and the current owner aborts.
    #[default]
    Eager,
    /// Writes buffered privately; conflicts detected at commit time; the
    /// committer wins and dooms transactions that read or wrote its lines.
    Lazy,
}

/// Host-side driver for the simulated cores. Both schedulers realize the
/// same simulated semantics — ops execute in increasing (logical clock,
/// core id) order — so results are bit-identical; they differ only in host
/// cost. See the `machine` module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Single host thread; an event loop resumes the minimum-clock core.
    /// No OS threads, no condvar handoffs — the default.
    #[default]
    Cooperative,
    /// One OS thread per simulated core, gated by a mutex + condvars (the
    /// original driver; kept for cross-scheduler equivalence testing).
    Threaded,
}

/// Configuration of the simulated machine.
///
/// Defaults mirror Table 2 of the paper:
///
/// | component | paper | here |
/// |---|---|---|
/// | CPU cores | 2.5 GHz, 4-wide OoO | in-order cost model, 2.5 GHz equivalents |
/// | L1 | 64 KB D, 8-way, 64 B lines, 2-cycle | 128 sets × 8 ways presence + speculative bits, 2-cycle |
/// | L2 | private 1 MB, 8-way, 10-cycle | 2048 sets × 8 ways presence, 10-cycle |
/// | L3 | shared 8 MB, 8-way, 30-cycle | 16384 sets × 8 ways presence, 30-cycle |
/// | memory | 50 ns | 125 cycles |
/// | HTM | 2-bit (r/w) per L1 line, eager requester-wins | same |
/// | Stag. Trans. | 12-bit PC tag per L1 line | same |
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of simulated cores (the paper models 16).
    pub n_cores: usize,
    /// Simulated memory size in 64-bit words.
    pub mem_words: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// L3 / cache-to-cache transfer latency in cycles.
    pub l3_latency: u64,
    /// Main-memory latency in cycles.
    pub mem_latency: u64,
    /// L1 geometry: sets × ways (ways also bounds speculative lines/set).
    pub l1_sets: usize,
    pub l1_ways: usize,
    /// L2 geometry.
    pub l2_sets: usize,
    pub l2_ways: usize,
    /// L3 geometry (shared).
    pub l3_sets: usize,
    pub l3_ways: usize,
    /// Cycles charged for transaction begin / commit bookkeeping.
    pub tx_begin_cost: u64,
    pub tx_commit_cost: u64,
    /// Cycles charged when an abort is delivered: pipeline flush, abort
    /// handler dispatch, and (for eager HTM) undo-log write-back. Real
    /// eager designs of the paper's era pay hundreds of cycles here.
    pub tx_abort_cost: u64,
    /// Cycles charged per word for a bump allocation (amortized allocator
    /// cost; the paper uses the Lockless allocator to keep this small).
    pub alloc_cost_per_word: u64,
    /// Per-thread arena chunk size in words (allocations are thread-local
    /// until a chunk is exhausted, avoiding allocator-induced conflicts).
    pub arena_chunk_words: usize,
    /// How many low bits of the first-access PC the per-line hardware tag
    /// keeps (paper: 12, < 2.4% L1 space overhead).
    pub pc_tag_bits: u32,
    /// Conflict-resolution protocol.
    pub protocol: HtmProtocol,
    /// Record per-core transaction begin/commit/abort events with their
    /// logical timestamps (for the timeline renderer in [`crate::trace`]).
    pub record_trace: bool,
    /// Record the full cycle-stamped observability event stream (see
    /// [`crate::obs`]): transaction lifecycle with conflict attribution,
    /// advisory-lock acquire/wait/timeout/release, backoff intervals and
    /// irrevocable entry/exit. Purely an observer: simulated cycles,
    /// stats and traces are bit-identical with recording on or off.
    pub record_events: bool,
    /// Per-core bound on buffered observability events; when a core's
    /// ring fills, the oldest events are overwritten (and counted as
    /// dropped). 0 disables buffering entirely even with `record_events`.
    pub event_ring_capacity: usize,
    /// Host-side core driver. Purely a host-performance knob: simulated
    /// cycles, stats and traces are identical across schedulers. The
    /// `HTM_SIM_SCHEDULER` environment variable (`cooperative`/`threads`)
    /// overrides this at [`crate::Machine::new`].
    pub scheduler: Scheduler,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            n_cores: 16,
            mem_words: 1 << 23, // 64 MiB
            l1_latency: 2,
            l2_latency: 10,
            l3_latency: 30,
            mem_latency: 125,
            l1_sets: 128,
            l1_ways: 8,
            l2_sets: 2048,
            l2_ways: 8,
            l3_sets: 16384,
            l3_ways: 8,
            tx_begin_cost: 10,
            tx_commit_cost: 10,
            tx_abort_cost: 250,
            alloc_cost_per_word: 1,
            arena_chunk_words: 8192,
            pc_tag_bits: 12,
            protocol: HtmProtocol::Eager,
            record_trace: false,
            record_events: false,
            event_ring_capacity: 1 << 20,
            scheduler: Scheduler::Cooperative,
        }
    }
}

impl MachineConfig {
    /// A config with `n` cores and defaults otherwise.
    pub fn with_cores(n: usize) -> Self {
        MachineConfig {
            n_cores: n,
            ..Default::default()
        }
    }

    /// A small-memory config for unit tests (fast to allocate/zero).
    pub fn small(n_cores: usize) -> Self {
        MachineConfig {
            n_cores,
            mem_words: 1 << 18, // 2 MiB
            ..Default::default()
        }
    }

    /// Like [`Self::small`], but with lazy (commit-time) conflict
    /// resolution.
    pub fn small_lazy(n_cores: usize) -> Self {
        MachineConfig {
            protocol: HtmProtocol::Lazy,
            ..Self::small(n_cores)
        }
    }

    /// Mask for the PC tag.
    pub fn pc_tag_mask(&self) -> u64 {
        (1u64 << self.pc_tag_bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = MachineConfig::default();
        assert_eq!(c.n_cores, 16);
        assert_eq!(c.l1_latency, 2);
        assert_eq!(c.l2_latency, 10);
        assert_eq!(c.l3_latency, 30);
        assert_eq!(c.l1_sets * c.l1_ways * 64, 64 * 1024); // 64 KB L1
        assert_eq!(c.l2_sets * c.l2_ways * 64, 1024 * 1024); // 1 MB L2
        assert_eq!(c.l3_sets * c.l3_ways * 64, 8 * 1024 * 1024); // 8 MB L3
        assert_eq!(c.pc_tag_bits, 12);
        assert_eq!(c.pc_tag_mask(), 0xFFF);
    }

    #[test]
    fn small_config_shrinks_memory_only() {
        let c = MachineConfig::small(4);
        assert_eq!(c.n_cores, 4);
        assert!(c.mem_words < MachineConfig::default().mem_words);
        assert_eq!(c.l1_latency, 2);
    }
}
