//! Machine configuration — the reproduction of the paper's Table 2.

/// HTM conflict-resolution protocol (paper Section 7 taxonomy).
///
/// The paper evaluates on an eager requester-wins design and names lazy
/// protocols as future work; both are implemented here so the claim that
/// Staggered Transactions are "compatible with most conflict resolution
/// techniques" is testable (see the `ablations` harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HtmProtocol {
    /// Conflicts detected as they occur; in-place (undo-logged) writes;
    /// the requester wins and the current owner aborts.
    #[default]
    Eager,
    /// Writes buffered privately; conflicts detected at commit time; the
    /// committer wins and dooms transactions that read or wrote its lines.
    Lazy,
}

impl HtmProtocol {
    /// Canonical name, stable across releases (used by experiment specs).
    pub fn name(&self) -> &'static str {
        match self {
            HtmProtocol::Eager => "eager",
            HtmProtocol::Lazy => "lazy",
        }
    }

    /// Parse a protocol by its canonical name, case-insensitively.
    pub fn parse(s: &str) -> Option<HtmProtocol> {
        match s.to_ascii_lowercase().as_str() {
            "eager" => Some(HtmProtocol::Eager),
            "lazy" => Some(HtmProtocol::Lazy),
            _ => None,
        }
    }
}

/// What happens when a transaction exhausts its hardware retries (and
/// how speculative transactions coordinate with that path). The paper
/// evaluates only the irrevocable global-lock fallback; the alternatives
/// come from the hybrid-TM literature (see DESIGN.md "Protocol matrix").
///
/// This used to be folded into the retry protocol itself; splitting it
/// out of `HtmProtocol` keeps conflict *resolution* (eager/lazy)
/// orthogonal to fallback *coordination*, so the two sweep independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FallbackPolicy {
    /// The paper's protocol: acquire a global lock, run irrevocably,
    /// and have speculative transactions subscribe to the lock word
    /// (transactionally) immediately before commit.
    #[default]
    Irrevocable,
    /// Hybrid TM (Brown & Ravi): exhausted transactions retry on an
    /// instrumented software path under per-line ownership stripes that
    /// concurrent hardware transactions also check — charging the
    /// instrumentation cost on every access of both paths while the
    /// hybrid machinery is live, instead of stopping the world.
    HybridStm,
    /// Lazy subscription *without* the hardware fix (Dice et al.): the
    /// executor never subscribes to the fallback lock, so a hardware
    /// transaction can commit mid-irrevocable-section and observe a torn
    /// result. Deliberately unsafe — exists to reproduce the documented
    /// interleaving as a regression test. Never used in sweeps.
    LazySubscription,
    /// Lazy subscription with the Dice-et-al-style hardware fix: commit
    /// itself validates the fallback lock word and aborts the
    /// transaction (cause `SubscriptionValidation`) when the lock is
    /// held, restoring opacity without begin-time subscription.
    LazySubscriptionSafe,
}

impl FallbackPolicy {
    /// Every policy, in canonical order.
    pub const ALL: [FallbackPolicy; 4] = [
        FallbackPolicy::Irrevocable,
        FallbackPolicy::HybridStm,
        FallbackPolicy::LazySubscription,
        FallbackPolicy::LazySubscriptionSafe,
    ];

    /// Canonical name, stable across releases (used by experiment specs).
    pub fn name(&self) -> &'static str {
        match self {
            FallbackPolicy::Irrevocable => "irrevocable",
            FallbackPolicy::HybridStm => "hybrid-stm",
            FallbackPolicy::LazySubscription => "lazy-subscription",
            FallbackPolicy::LazySubscriptionSafe => "lazy-subscription-safe",
        }
    }

    /// Parse a policy by its canonical name, case-insensitively.
    pub fn parse(s: &str) -> Option<FallbackPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "irrevocable" => Some(FallbackPolicy::Irrevocable),
            "hybrid-stm" | "hybrid" => Some(FallbackPolicy::HybridStm),
            "lazy-subscription" | "lazy-sub" => Some(FallbackPolicy::LazySubscription),
            "lazy-subscription-safe" | "lazy-sub-safe" => {
                Some(FallbackPolicy::LazySubscriptionSafe)
            }
            _ => None,
        }
    }
}

/// Host-side driver for the simulated cores. All schedulers realize the
/// same simulated semantics — ops execute in increasing (logical clock,
/// core id) order — so results are bit-identical; they differ only in host
/// cost. See the `machine` module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Single host thread; an event loop resumes the minimum-clock core.
    /// No OS threads, no condvar handoffs — the default.
    #[default]
    Cooperative,
    /// One OS thread per simulated core, gated by a mutex + condvars (the
    /// original driver; kept for cross-scheduler equivalence testing).
    Threaded,
    /// Block-STM-style optimistic executor: host worker threads run each
    /// core's next quantum of gated ops against a private overlay view of
    /// the simulator state, and a serial commit walk re-applies the
    /// recorded ops to the real state in strict (clock, id) order,
    /// re-executing any core whose speculated results were invalidated by
    /// an earlier-ordered commit. See the `spec` module docs.
    Speculative,
}

impl Scheduler {
    /// Canonical name, stable across releases (used by experiment specs).
    pub fn name(&self) -> &'static str {
        match self {
            Scheduler::Cooperative => "cooperative",
            Scheduler::Threaded => "threaded",
            Scheduler::Speculative => "speculative",
        }
    }

    /// Parse a scheduler by name, case-insensitively. Accepts the same
    /// spellings as the `HTM_SIM_SCHEDULER` environment variable:
    /// `cooperative`/`coop`/`single`, `threaded`/`threads`, and
    /// `speculative`/`spec`.
    pub fn parse(s: &str) -> Option<Scheduler> {
        match s.to_ascii_lowercase().as_str() {
            "cooperative" | "coop" | "single" => Some(Scheduler::Cooperative),
            "threaded" | "threads" => Some(Scheduler::Threaded),
            "speculative" | "spec" => Some(Scheduler::Speculative),
            _ => None,
        }
    }
}

/// Configuration of the simulated machine.
///
/// Defaults mirror Table 2 of the paper:
///
/// | component | paper | here |
/// |---|---|---|
/// | CPU cores | 2.5 GHz, 4-wide OoO | in-order cost model, 2.5 GHz equivalents |
/// | L1 | 64 KB D, 8-way, 64 B lines, 2-cycle | 128 sets × 8 ways presence + speculative bits, 2-cycle |
/// | L2 | private 1 MB, 8-way, 10-cycle | 2048 sets × 8 ways presence, 10-cycle |
/// | L3 | shared 8 MB, 8-way, 30-cycle | 16384 sets × 8 ways presence, 30-cycle |
/// | memory | 50 ns | 125 cycles |
/// | HTM | 2-bit (r/w) per L1 line, eager requester-wins | same |
/// | Stag. Trans. | 12-bit PC tag per L1 line | same |
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of simulated cores (the paper models 16).
    pub n_cores: usize,
    /// Simulated memory size in 64-bit words.
    pub mem_words: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// L3 / cache-to-cache transfer latency in cycles.
    pub l3_latency: u64,
    /// Main-memory latency in cycles.
    pub mem_latency: u64,
    /// L1 geometry: sets × ways (ways also bounds speculative lines/set).
    pub l1_sets: usize,
    pub l1_ways: usize,
    /// L2 geometry.
    pub l2_sets: usize,
    pub l2_ways: usize,
    /// L3 geometry (shared).
    pub l3_sets: usize,
    pub l3_ways: usize,
    /// Cycles charged for transaction begin / commit bookkeeping.
    pub tx_begin_cost: u64,
    pub tx_commit_cost: u64,
    /// Cycles charged when an abort is delivered: pipeline flush, abort
    /// handler dispatch, and (for eager HTM) undo-log write-back. Real
    /// eager designs of the paper's era pay hundreds of cycles here.
    pub tx_abort_cost: u64,
    /// Cycles charged per word for a bump allocation (amortized allocator
    /// cost; the paper uses the Lockless allocator to keep this small).
    pub alloc_cost_per_word: u64,
    /// Per-thread arena chunk size in words (allocations are thread-local
    /// until a chunk is exhausted, avoiding allocator-induced conflicts).
    pub arena_chunk_words: usize,
    /// How many low bits of the first-access PC the per-line hardware tag
    /// keeps (paper: 12, < 2.4% L1 space overhead).
    pub pc_tag_bits: u32,
    /// Conflict-resolution protocol.
    pub protocol: HtmProtocol,
    /// Fallback coordination policy for exhausted-retry transactions
    /// (and the commit-time validation the hardware performs on their
    /// behalf). Orthogonal to `protocol`. Default: the paper's
    /// irrevocable global-lock path.
    pub fallback: FallbackPolicy,
    /// Bounded-set HTM (Kafousis): maximum distinct lines one hardware
    /// transaction attempt may *touch* (read or write) before the next
    /// new line aborts it with a capacity cause. 0 (default) leaves the
    /// cache-geometry capacity model as the only bound.
    pub max_read_lines: usize,
    /// Maximum distinct lines one attempt may *write*; 0 disables.
    pub max_write_lines: usize,
    /// Record per-core transaction begin/commit/abort events with their
    /// logical timestamps (for the timeline renderer in [`crate::trace`]).
    pub record_trace: bool,
    /// Record the full cycle-stamped observability event stream (see
    /// [`crate::obs`]): transaction lifecycle with conflict attribution,
    /// advisory-lock acquire/wait/timeout/release, backoff intervals and
    /// irrevocable entry/exit. Purely an observer: simulated cycles,
    /// stats and traces are bit-identical with recording on or off.
    pub record_events: bool,
    /// Per-core bound on buffered observability events; when a core's
    /// ring fills, the oldest events are overwritten (and counted as
    /// dropped). 0 disables buffering entirely even with `record_events`.
    pub event_ring_capacity: usize,
    /// Host-side core driver. Purely a host-performance knob: simulated
    /// cycles, stats and traces are identical across schedulers. Unless
    /// [`Self::scheduler_pinned`] is set, the `HTM_SIM_SCHEDULER`
    /// environment variable (`cooperative`/`threads`) overrides this at
    /// [`crate::Machine::new`].
    pub scheduler: Scheduler,
    /// When set, the scheduler was chosen explicitly (a `--scheduler`
    /// flag or an experiment spec) and the `HTM_SIM_SCHEDULER` environment
    /// variable is only a fallback — it no longer overrides. Set by the
    /// `scheduler(..)` builder method and by [`Self::set_kv`].
    pub scheduler_pinned: bool,
    /// Capacity (in lines, rounded up to a power of two; 0 disables) of
    /// the per-core line-permission cache: per transaction attempt, the
    /// simulator remembers lines whose read/write ownership bits it has
    /// already set so repeat accesses skip the owner-directory probe.
    /// Host-only: under requester-wins conflict resolution a held
    /// permission can only be revoked by dooming this core (which clears
    /// the cache), so simulated cycles, stats, traces and events are
    /// bit-identical at any size. Like `Interp`, the knob is therefore
    /// excluded from `to_kv`/`set_kv` so experiment-spec run keys never
    /// depend on it.
    pub perm_cache_lines: usize,
    /// Host worker threads for [`Scheduler::Speculative`]; 0 (default)
    /// resolves to the host's available parallelism at run time. Host-only
    /// like `perm_cache_lines`: the speculative commit walk applies ops in
    /// the same (clock, id) order at any worker count, so simulated
    /// cycles, stats, traces and events cannot depend on it — it is
    /// excluded from `to_kv`/`set_kv` so run keys never fork on it.
    pub host_threads: usize,
    /// Gated ops one speculative quantum may run before its core suspends
    /// (the unit of optimistic execution and validation). Host-only for
    /// the same reason as `host_threads`: quantum length changes how much
    /// work mis-speculation wastes, never what the simulated machine
    /// does. Clamped to at least 1 at run time.
    pub spec_quantum: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            n_cores: 16,
            mem_words: 1 << 23, // 64 MiB
            l1_latency: 2,
            l2_latency: 10,
            l3_latency: 30,
            mem_latency: 125,
            l1_sets: 128,
            l1_ways: 8,
            l2_sets: 2048,
            l2_ways: 8,
            l3_sets: 16384,
            l3_ways: 8,
            tx_begin_cost: 10,
            tx_commit_cost: 10,
            tx_abort_cost: 250,
            alloc_cost_per_word: 1,
            arena_chunk_words: 8192,
            pc_tag_bits: 12,
            protocol: HtmProtocol::Eager,
            fallback: FallbackPolicy::Irrevocable,
            max_read_lines: 0,
            max_write_lines: 0,
            record_trace: false,
            record_events: false,
            event_ring_capacity: 1 << 20,
            scheduler: Scheduler::Cooperative,
            scheduler_pinned: false,
            perm_cache_lines: 32,
            host_threads: 0,
            spec_quantum: 64,
        }
    }
}

impl MachineConfig {
    /// Entry point of the fluent builder: a config with `n` cores and
    /// defaults otherwise. Chain the builder methods to deviate from
    /// Table 2, e.g. `MachineConfig::cores(4).small().lazy()`.
    ///
    /// Panics when `n` is outside `1..=`[`crate::coreset::MAX_CORES`] —
    /// the ownership directory's [`crate::coreset::CoreSet`] capacity —
    /// so an unsupported core count fails loudly at construction time
    /// instead of corrupting conflict detection later.
    pub fn cores(n: usize) -> Self {
        assert!(
            (1..=crate::coreset::MAX_CORES).contains(&n),
            "n_cores must be in 1..={}, got {n}",
            crate::coreset::MAX_CORES
        );
        MachineConfig {
            n_cores: n,
            ..Default::default()
        }
    }

    /// Shrink simulated memory to 2 MiB — fast to allocate/zero, the
    /// right size for unit tests.
    pub fn small(mut self) -> Self {
        self.mem_words = 1 << 18; // 2 MiB
        self
    }

    /// Select lazy (commit-time) conflict resolution.
    pub fn lazy(mut self) -> Self {
        self.protocol = HtmProtocol::Lazy;
        self
    }

    /// Select the conflict-resolution protocol.
    pub fn protocol(mut self, p: HtmProtocol) -> Self {
        self.protocol = p;
        self
    }

    /// Select the fallback coordination policy.
    pub fn fallback(mut self, f: FallbackPolicy) -> Self {
        self.fallback = f;
        self
    }

    /// Bound the distinct lines a transaction attempt may touch / write
    /// (bounded-set HTM; 0 disables either bound).
    pub fn bounded_sets(mut self, max_read_lines: usize, max_write_lines: usize) -> Self {
        self.max_read_lines = max_read_lines;
        self.max_write_lines = max_write_lines;
        self
    }

    /// Set the conflicting-PC tag width.
    pub fn pc_tag_bits(mut self, bits: u32) -> Self {
        self.pc_tag_bits = bits;
        self
    }

    /// Enable the begin/commit/abort trace for the timeline renderer.
    pub fn record_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Enable the cycle-stamped observability event stream.
    pub fn record_events(mut self) -> Self {
        self.record_events = true;
        self
    }

    /// Pin the host-side scheduler explicitly: the `HTM_SIM_SCHEDULER`
    /// environment variable no longer overrides it.
    pub fn scheduler(mut self, s: Scheduler) -> Self {
        self.scheduler = s;
        self.scheduler_pinned = true;
        self
    }

    /// Size the per-core line-permission cache (0 disables the fast path).
    pub fn perm_cache_lines(mut self, lines: usize) -> Self {
        self.perm_cache_lines = lines;
        self
    }

    /// Set the speculative scheduler's host worker-thread count (0 = the
    /// host's available parallelism).
    pub fn host_threads(mut self, n: usize) -> Self {
        self.host_threads = n;
        self
    }

    /// Set the speculative scheduler's quantum length in gated ops.
    pub fn spec_quantum(mut self, ops: usize) -> Self {
        self.spec_quantum = ops;
        self
    }

    /// Mask for the PC tag.
    pub fn pc_tag_mask(&self) -> u64 {
        (1u64 << self.pc_tag_bits) - 1
    }

    /// Serialize every knob as canonical `(key, value)` pairs, in a fixed
    /// order. The inverse of [`Self::set_kv`]; experiment specs embed
    /// these under a `machine.` prefix.
    ///
    /// Keys added after the sweep cache shipped (`fallback`,
    /// `max_read_lines`, `max_write_lines`) are emitted only when they
    /// deviate from their defaults, so every pre-existing spec
    /// serializes to the same canonical text (and the same run key) it
    /// always did — absent means default.
    pub fn to_kv(&self) -> Vec<(&'static str, String)> {
        let mut kv = vec![
            ("n_cores", self.n_cores.to_string()),
            ("mem_words", self.mem_words.to_string()),
            ("l1_latency", self.l1_latency.to_string()),
            ("l2_latency", self.l2_latency.to_string()),
            ("l3_latency", self.l3_latency.to_string()),
            ("mem_latency", self.mem_latency.to_string()),
            ("l1_sets", self.l1_sets.to_string()),
            ("l1_ways", self.l1_ways.to_string()),
            ("l2_sets", self.l2_sets.to_string()),
            ("l2_ways", self.l2_ways.to_string()),
            ("l3_sets", self.l3_sets.to_string()),
            ("l3_ways", self.l3_ways.to_string()),
            ("tx_begin_cost", self.tx_begin_cost.to_string()),
            ("tx_commit_cost", self.tx_commit_cost.to_string()),
            ("tx_abort_cost", self.tx_abort_cost.to_string()),
            ("alloc_cost_per_word", self.alloc_cost_per_word.to_string()),
            ("arena_chunk_words", self.arena_chunk_words.to_string()),
            ("pc_tag_bits", self.pc_tag_bits.to_string()),
            ("protocol", self.protocol.name().to_string()),
            ("record_trace", self.record_trace.to_string()),
            ("record_events", self.record_events.to_string()),
            ("event_ring_capacity", self.event_ring_capacity.to_string()),
            ("scheduler", self.scheduler.name().to_string()),
        ];
        if self.fallback != FallbackPolicy::Irrevocable {
            kv.push(("fallback", self.fallback.name().to_string()));
        }
        if self.max_read_lines != 0 {
            kv.push(("max_read_lines", self.max_read_lines.to_string()));
        }
        if self.max_write_lines != 0 {
            kv.push(("max_write_lines", self.max_write_lines.to_string()));
        }
        kv
    }

    /// Set one knob by its canonical key. Setting `scheduler` pins it
    /// (explicit configuration beats the environment variable). Returns a
    /// descriptive error for an unknown key or an unparsable value.
    pub fn set_kv(&mut self, key: &str, value: &str) -> Result<(), String> {
        fn num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
            value
                .parse()
                .map_err(|_| format!("machine.{key}: invalid value '{value}'"))
        }
        match key {
            "n_cores" => self.n_cores = num(key, value)?,
            "mem_words" => self.mem_words = num(key, value)?,
            "l1_latency" => self.l1_latency = num(key, value)?,
            "l2_latency" => self.l2_latency = num(key, value)?,
            "l3_latency" => self.l3_latency = num(key, value)?,
            "mem_latency" => self.mem_latency = num(key, value)?,
            "l1_sets" => self.l1_sets = num(key, value)?,
            "l1_ways" => self.l1_ways = num(key, value)?,
            "l2_sets" => self.l2_sets = num(key, value)?,
            "l2_ways" => self.l2_ways = num(key, value)?,
            "l3_sets" => self.l3_sets = num(key, value)?,
            "l3_ways" => self.l3_ways = num(key, value)?,
            "tx_begin_cost" => self.tx_begin_cost = num(key, value)?,
            "tx_commit_cost" => self.tx_commit_cost = num(key, value)?,
            "tx_abort_cost" => self.tx_abort_cost = num(key, value)?,
            "alloc_cost_per_word" => self.alloc_cost_per_word = num(key, value)?,
            "arena_chunk_words" => self.arena_chunk_words = num(key, value)?,
            "pc_tag_bits" => self.pc_tag_bits = num(key, value)?,
            "protocol" => {
                self.protocol = HtmProtocol::parse(value)
                    .ok_or_else(|| format!("machine.protocol: invalid value '{value}'"))?;
            }
            "fallback" => {
                self.fallback = FallbackPolicy::parse(value)
                    .ok_or_else(|| format!("machine.fallback: invalid value '{value}'"))?;
            }
            "max_read_lines" => self.max_read_lines = num(key, value)?,
            "max_write_lines" => self.max_write_lines = num(key, value)?,
            "record_trace" => self.record_trace = num(key, value)?,
            "record_events" => self.record_events = num(key, value)?,
            "event_ring_capacity" => self.event_ring_capacity = num(key, value)?,
            "scheduler" => {
                self.scheduler = Scheduler::parse(value)
                    .ok_or_else(|| format!("machine.scheduler: invalid value '{value}'"))?;
                self.scheduler_pinned = true;
            }
            // `perm_cache_lines`, `host_threads` and `spec_quantum` are
            // intentionally not settable here: they cannot change
            // simulated results, so they are not part of the experiment
            // spec (accepting them would silently fork run keys).
            other => return Err(format!("machine.{other}: unknown key")),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = MachineConfig::default();
        assert_eq!(c.n_cores, 16);
        assert_eq!(c.l1_latency, 2);
        assert_eq!(c.l2_latency, 10);
        assert_eq!(c.l3_latency, 30);
        assert_eq!(c.l1_sets * c.l1_ways * 64, 64 * 1024); // 64 KB L1
        assert_eq!(c.l2_sets * c.l2_ways * 64, 1024 * 1024); // 1 MB L2
        assert_eq!(c.l3_sets * c.l3_ways * 64, 8 * 1024 * 1024); // 8 MB L3
        assert_eq!(c.pc_tag_bits, 12);
        assert_eq!(c.pc_tag_mask(), 0xFFF);
    }

    #[test]
    fn cores_past_the_old_u32_boundary_are_accepted() {
        // 33 cores used to overflow the u32 ownership masks; with CoreSet
        // the builder accepts everything up to MAX_CORES.
        assert_eq!(MachineConfig::cores(33).n_cores, 33);
        assert_eq!(
            MachineConfig::cores(crate::coreset::MAX_CORES).n_cores,
            crate::coreset::MAX_CORES
        );
    }

    #[test]
    #[should_panic(expected = "n_cores")]
    fn cores_above_max_are_rejected_at_construction() {
        let _ = MachineConfig::cores(crate::coreset::MAX_CORES + 1);
    }

    #[test]
    #[should_panic(expected = "n_cores")]
    fn zero_cores_are_rejected_at_construction() {
        let _ = MachineConfig::cores(0);
    }

    #[test]
    fn small_config_shrinks_memory_only() {
        let c = MachineConfig::cores(4).small();
        assert_eq!(c.n_cores, 4);
        assert!(c.mem_words < MachineConfig::default().mem_words);
        assert_eq!(c.l1_latency, 2);
    }

    #[test]
    fn builder_composes() {
        let c = MachineConfig::cores(8)
            .small()
            .lazy()
            .pc_tag_bits(6)
            .record_events()
            .scheduler(Scheduler::Threaded);
        assert_eq!(c.n_cores, 8);
        assert_eq!(c.protocol, HtmProtocol::Lazy);
        assert_eq!(c.pc_tag_bits, 6);
        assert!(c.record_events && !c.record_trace);
        assert_eq!(c.scheduler, Scheduler::Threaded);
        assert!(c.scheduler_pinned);
    }

    #[test]
    fn kv_round_trips_every_key() {
        let c = MachineConfig::cores(3)
            .small()
            .lazy()
            .pc_tag_bits(9)
            .scheduler(Scheduler::Threaded)
            .fallback(FallbackPolicy::HybridStm)
            .bounded_sets(16, 8);
        let mut d = MachineConfig::default();
        for (k, v) in c.to_kv() {
            d.set_kv(k, &v).unwrap();
        }
        assert_eq!(c.to_kv(), d.to_kv());
        assert!(d.scheduler_pinned, "set_kv(scheduler) pins");
    }

    #[test]
    fn default_fallback_and_bounds_stay_out_of_the_kv() {
        // Pre-existing specs must keep serializing to the exact canonical
        // text (and hence run key) they had before the fallback/bounded-set
        // knobs existed: the new keys only appear when non-default.
        let kv = MachineConfig::cores(2).to_kv();
        assert!(kv.iter().all(|(k, _)| {
            *k != "fallback" && *k != "max_read_lines" && *k != "max_write_lines"
        }));
        // But parsing them back in is always accepted.
        let mut c = MachineConfig::default();
        c.set_kv("fallback", "lazy-subscription-safe").unwrap();
        c.set_kv("max_read_lines", "16").unwrap();
        c.set_kv("max_write_lines", "8").unwrap();
        assert_eq!(c.fallback, FallbackPolicy::LazySubscriptionSafe);
        assert_eq!((c.max_read_lines, c.max_write_lines), (16, 8));
        let kv = c.to_kv();
        assert!(kv
            .iter()
            .any(|(k, v)| *k == "fallback" && v == "lazy-subscription-safe"));
    }

    #[test]
    fn kv_rejects_unknown_and_bad_values() {
        let mut c = MachineConfig::default();
        assert!(c.set_kv("no_such_knob", "1").is_err());
        assert!(c.set_kv("pc_tag_bits", "wide").is_err());
        assert!(c.set_kv("protocol", "psychic").is_err());
        assert!(c.set_kv("fallback", "optimism").is_err());
        assert!(c.set_kv("max_read_lines", "many").is_err());
        assert!(c.set_kv("scheduler", "gpu").is_err());
        assert!(
            c.set_kv("perm_cache_lines", "64").is_err(),
            "perm_cache_lines is host-only and must not enter run keys"
        );
        assert!(
            c.set_kv("host_threads", "4").is_err(),
            "host_threads is host-only and must not enter run keys"
        );
        assert!(
            c.set_kv("spec_quantum", "16").is_err(),
            "spec_quantum is host-only and must not enter run keys"
        );
    }

    #[test]
    fn perm_cache_is_a_host_knob_outside_the_spec() {
        let c = MachineConfig::cores(2).perm_cache_lines(64);
        assert_eq!(c.perm_cache_lines, 64);
        // Varying it must not change the serialized spec (and hence no
        // sweep-cell run key).
        assert_eq!(c.to_kv(), MachineConfig::cores(2).to_kv());
    }

    #[test]
    fn speculative_knobs_are_host_only_outside_the_spec() {
        let c = MachineConfig::cores(2).host_threads(4).spec_quantum(16);
        assert_eq!(c.host_threads, 4);
        assert_eq!(c.spec_quantum, 16);
        assert_eq!(c.to_kv(), MachineConfig::cores(2).to_kv());
    }

    #[test]
    fn protocol_and_scheduler_names_parse_back() {
        for p in [HtmProtocol::Eager, HtmProtocol::Lazy] {
            assert_eq!(HtmProtocol::parse(p.name()), Some(p));
        }
        for f in FallbackPolicy::ALL {
            assert_eq!(FallbackPolicy::parse(f.name()), Some(f));
        }
        assert_eq!(
            FallbackPolicy::parse("HYBRID"),
            Some(FallbackPolicy::HybridStm)
        );
        assert_eq!(FallbackPolicy::parse("pessimism"), None);
        for s in [
            Scheduler::Cooperative,
            Scheduler::Threaded,
            Scheduler::Speculative,
        ] {
            assert_eq!(Scheduler::parse(s.name()), Some(s));
        }
        assert_eq!(Scheduler::parse("coop"), Some(Scheduler::Cooperative));
        assert_eq!(Scheduler::parse("threads"), Some(Scheduler::Threaded));
        assert_eq!(Scheduler::parse("spec"), Some(Scheduler::Speculative));
        assert_eq!(HtmProtocol::parse("none"), None);
    }
}
