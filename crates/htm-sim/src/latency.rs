//! Request-level latency derivation and streaming percentile histograms.
//!
//! The serving-scenario exhibits judge the machine the way a service
//! owner would: by per-request latency percentiles under offered load,
//! not aborts per commit. This module turns the [`crate::obs`] event
//! stream — a pure observer, bit-identical across schedulers and with
//! recording on or off — into request latencies, attributes each tail
//! request to the span that dominated it (lock waits, abort retries,
//! backoff, queueing), and aggregates into HDR-style log-bucketed
//! histograms whose merge is associative and commutative, so per-core
//! (or per-shard) histograms combine deterministically.
//!
//! ## Segmentation model
//!
//! A workload thread that serves a stream of requests executes exactly
//! one atomic block per request, so the k-th *completed* transaction on
//! core `c` is the k-th request of core `c`'s schedule. A completion is
//! a [`ObsKind::TxCommit`] **or** an [`ObsKind::IrrevocableExit`]: the
//! irrevocable (global-lock) fallback path never emits `TxCommit`, and
//! missing it would silently shift every later request on that core. A
//! request's events are everything from the first `TxBegin` (or
//! `IrrevocableEnter`) after the previous completion through its own
//! completion; duration-carrying events (`lock_acquire`/`lock_timeout`
//! `waited`, `backoff`/`irrevocable_exit` `cycles`) are stamped at span
//! *end*, so each span lies inside its request's window by construction.
//!
//! Request latency is `completion - arrival` when the caller knows the
//! arrival timestamps (an open-loop load generator does — the schedule
//! is a pure function of the workload config), and
//! `completion - first_begin` otherwise (closed loop: a request "exists"
//! only once its thread starts it).

use crate::obs::{ObsEvent, ObsKind};

/// Linear sub-bucket bits per power-of-two range. 32 sub-buckets bound
/// the relative quantization error at ~3%; values below
/// `2^(SUB_BITS + 1)` are recorded exactly.
pub const SUB_BITS: u32 = 5;

/// Total bucket count for `SUB_BITS` (covers all of `u64`).
pub const N_BUCKETS: usize = ((65 - SUB_BITS) as usize) << SUB_BITS;

/// Bucket index of `v`: exact below `2^(SUB_BITS + 1)`, then
/// `2^SUB_BITS` linear sub-buckets per power-of-two range (the HDR
/// histogram layout).
pub fn bucket_of(v: u64) -> usize {
    let b = SUB_BITS;
    if v < (1 << b) {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // v in [2^e, 2^(e+1)), e >= b
        let sub = (v >> (e - b)) as usize - (1 << b);
        (((e - b + 1) as usize) << b) + sub
    }
}

/// Inclusive upper bound of bucket `i` — what percentile extraction
/// reports, so a reported quantile never under-states the true value.
pub fn bucket_upper(i: usize) -> u64 {
    let b = SUB_BITS;
    if i < (1 << (b + 1)) {
        i as u64 // exact range: singleton buckets
    } else {
        let e = (i as u32 >> b) + b - 1;
        let sub = (i & ((1 << b) - 1)) as u128;
        // The very top bucket's exclusive bound is 2^64; widen so it
        // saturates to u64::MAX instead of overflowing.
        let bound = ((1u128 << b) + sub + 1) << (e - b);
        (bound - 1).min(u64::MAX as u128) as u64
    }
}

/// Streaming log-bucketed (HDR-style) latency histogram.
///
/// `merge` is element-wise addition plus a max/count/total fold, so it is
/// associative and commutative and a merged histogram is byte-identical
/// no matter how the inputs were sharded — the property the serve
/// exhibit's deterministic tables rest on. The maximum is tracked
/// exactly (not quantized).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    total: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0; N_BUCKETS],
            count: 0,
            total: 0,
            max: 0,
        }
    }

    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(v);
        self.max = self.max.max(v);
    }

    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of recorded values (saturating).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Nearest-rank quantile `num/den` (e.g. p99.9 = `quantile(999,
    /// 1000)`): the upper bound of the bucket holding the
    /// `ceil(count * num / den)`-th smallest recorded value. Integer
    /// arithmetic throughout, so extraction is deterministic across
    /// hosts. Returns 0 on an empty histogram.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count * num).div_ceil(den)).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        unreachable!("count is the sum of bucket counts");
    }

    /// The fixed percentile set every report exposes.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            p50: self.quantile(50, 100),
            p90: self.quantile(90, 100),
            p99: self.quantile(99, 100),
            p999: self.quantile(999, 1000),
            max: self.max,
            total: self.total,
        }
    }
}

/// The percentile digest of one run's request-latency distribution, as
/// carried into `--json` reports. All simulated quantities — identical
/// across schedulers and interpreters for a given spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    pub count: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
    pub max: u64,
    /// Sum of latencies (saturating) — `total / count` is the mean.
    pub total: u64,
}

impl LatencySummary {
    pub fn mean(&self) -> u64 {
        self.total.checked_div(self.count).unwrap_or(0)
    }
}

/// One request's derived latency and its component breakdown. All
/// component cycles are disjoint spans inside `[arrival, completion]`;
/// `other()` is the (clamped) remainder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestLatency {
    /// Core the request was served on.
    pub core: usize,
    /// Index of the request within its core's schedule.
    pub index: usize,
    /// Arrival timestamp (caller-provided for open loop; the first
    /// attempt's begin otherwise).
    pub arrival: u64,
    /// Clock of the first `TxBegin`/`IrrevocableEnter` of the request.
    pub first_begin: u64,
    /// Clock of the completing `TxCommit`/`IrrevocableExit`.
    pub completion: u64,
    /// Cycles between arrival and first attempt (open-loop queueing
    /// when the core is still serving earlier requests; 0 closed-loop).
    pub queue: u64,
    /// Advisory-lock spin cycles (acquired or timed out).
    pub lock_wait: u64,
    /// Retry-backoff cycles between attempts.
    pub backoff: u64,
    /// Cycles inside aborted transaction attempts (begin → abort).
    pub retry: u64,
    /// Cycles of irrevocable (global-lock) execution, when the request
    /// fell back to the serial path.
    pub irrevocable: u64,
    /// Cycles of the committed attempt (begin → commit; 0 when the
    /// request completed irrevocably).
    pub service: u64,
    /// Aborted attempts before completion.
    pub aborted_attempts: u32,
}

impl RequestLatency {
    /// End-to-end latency: completion − arrival.
    pub fn total(&self) -> u64 {
        self.completion - self.arrival
    }

    /// Cycles not covered by a named component (abort delivery, gaps
    /// between spans).
    pub fn other(&self) -> u64 {
        self.total().saturating_sub(
            self.queue
                + self.lock_wait
                + self.backoff
                + self.retry
                + self.irrevocable
                + self.service,
        )
    }

    /// The named component that dominated this request's latency —
    /// what a tail-latency report blames. Ties break toward the earlier
    /// entry of the fixed order below (deterministic).
    pub fn dominant(&self) -> (&'static str, u64) {
        let parts = [
            ("queue", self.queue),
            ("lock_wait", self.lock_wait),
            ("backoff", self.backoff),
            ("retry", self.retry),
            ("irrevocable", self.irrevocable),
            ("service", self.service),
            ("other", self.other()),
        ];
        let mut best = parts[0];
        for p in parts {
            if p.1 > best.1 {
                best = p;
            }
        }
        best
    }
}

/// Derive per-request latencies from per-core event streams.
///
/// `arrivals[c]` holds core `c`'s request-arrival timestamps in
/// schedule order (the open-loop case; pass empty vectors — or an empty
/// slice — for closed-loop/plain workloads, where arrival is defined as
/// the first attempt's begin). When arrivals are supplied, completions
/// beyond the provided count fall back to first-begin arrivals rather
/// than panicking, so the derivation stays total on foreign streams.
///
/// Requests are returned core-major in schedule order — deterministic,
/// and bit-identical across schedulers because the event streams are.
pub fn request_latencies(streams: &[Vec<ObsEvent>], arrivals: &[Vec<u64>]) -> Vec<RequestLatency> {
    let mut out = Vec::new();
    for (core, stream) in streams.iter().enumerate() {
        let arr = arrivals.get(core).map(Vec::as_slice).unwrap_or(&[]);
        let mut index = 0usize;
        // In-flight request accumulator.
        let mut first_begin: Option<u64> = None;
        let mut attempt_begin: Option<u64> = None;
        // Lock-wait/backoff cycles inside the *current* attempt's span —
        // subtracted from that attempt's retry/service share so the
        // named components stay disjoint (a spin during a transaction is
        // blamed on the lock, not on transactional work).
        let mut attempt_overlap = 0u64;
        let mut lock_wait = 0u64;
        let mut backoff = 0u64;
        let mut retry = 0u64;
        let mut aborted = 0u32;
        for e in stream {
            match e.kind {
                ObsKind::TxBegin { .. } | ObsKind::IrrevocableEnter => {
                    first_begin.get_or_insert(e.clock);
                    if matches!(e.kind, ObsKind::TxBegin { .. }) {
                        attempt_begin = Some(e.clock);
                        attempt_overlap = 0;
                    }
                }
                ObsKind::TxAbort { .. } => {
                    if let Some(b) = attempt_begin.take() {
                        retry += (e.clock - b).saturating_sub(attempt_overlap);
                        aborted += 1;
                    }
                }
                ObsKind::LockAcquire { waited, .. } | ObsKind::LockTimeout { waited, .. } => {
                    // Lock waits before a request's first attempt (the
                    // runtime may pre-wait) still belong to it.
                    first_begin.get_or_insert(e.clock - waited);
                    lock_wait += waited;
                    if let Some(b) = attempt_begin {
                        attempt_overlap += waited.min(e.clock - b);
                    }
                }
                ObsKind::Backoff { cycles } => {
                    backoff += cycles;
                    if let Some(b) = attempt_begin {
                        attempt_overlap += cycles.min(e.clock - b);
                    }
                }
                ObsKind::TxCommit | ObsKind::IrrevocableExit { .. } => {
                    let fb = first_begin.take().unwrap_or(e.clock);
                    let (irrevocable, service) = match e.kind {
                        ObsKind::IrrevocableExit { cycles } => (cycles, 0),
                        _ => {
                            let span = e.clock - attempt_begin.unwrap_or(e.clock);
                            (0, span.saturating_sub(attempt_overlap))
                        }
                    };
                    let arrival = arr.get(index).copied().unwrap_or(fb).min(fb);
                    out.push(RequestLatency {
                        core,
                        index,
                        arrival,
                        first_begin: fb,
                        completion: e.clock,
                        queue: fb - arrival,
                        lock_wait,
                        backoff,
                        retry,
                        irrevocable,
                        service,
                        aborted_attempts: aborted,
                    });
                    index += 1;
                    attempt_begin = None;
                    lock_wait = 0;
                    backoff = 0;
                    retry = 0;
                    aborted = 0;
                }
                ObsKind::LockRelease { .. } => {}
            }
        }
    }
    out
}

/// Per-transaction latencies (first begin → completion, aborted attempts
/// included) when no arrival schedule exists — the digest every `--json`
/// report can expose for any workload run with event recording on.
pub fn txn_latencies(streams: &[Vec<ObsEvent>]) -> Vec<RequestLatency> {
    request_latencies(streams, &[])
}

/// Fold request latencies into a [`LogHistogram`] of end-to-end totals.
pub fn histogram_of(requests: &[RequestLatency]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for r in requests {
        h.record(r.total());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::AbortCause;

    fn ev(clock: u64, kind: ObsKind) -> ObsEvent {
        ObsEvent { clock, kind }
    }

    fn abort(clock: u64) -> ObsEvent {
        ev(
            clock,
            ObsKind::TxAbort {
                cause: AbortCause::Conflict,
                conf_addr: 0,
                victim_pc_tag: 0,
                aborter_pc_tag: 0,
                aborter: 0,
            },
        )
    }

    /// Deterministic test PRNG (splitmix64) — the module under test must
    /// not depend on the workspace PRNG crate.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        // Every value maps into a bucket whose upper bound is >= the
        // value, and bucket indices are monotone in the value.
        let mut prev = 0usize;
        for k in 0..64u32 {
            for v in [(1u64 << k).saturating_sub(1), 1u64 << k, (1u64 << k) + 1] {
                let i = bucket_of(v);
                assert!(i >= prev || v < prev as u64, "monotone at {v}");
                assert!(bucket_upper(i) >= v, "upper bound covers {v}");
                assert!(i < N_BUCKETS);
                prev = i;
            }
        }
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_upper(N_BUCKETS - 1), u64::MAX);
        // Exact below 2^(SUB_BITS + 1).
        for v in 0..(1u64 << (SUB_BITS + 1)) {
            assert_eq!(bucket_upper(bucket_of(v)), v, "exact at {v}");
        }
    }

    #[test]
    fn histogram_percentiles_match_sorted_reference() {
        // Property: nearest-rank quantiles equal the quantized sorted
        // vector reference on randomized inputs, across scales.
        let mut state = 2015u64;
        for round in 0..20 {
            let n = 1 + (splitmix(&mut state) % 500) as usize;
            let shift = (splitmix(&mut state) % 40) as u32;
            let vals: Vec<u64> = (0..n).map(|_| splitmix(&mut state) >> shift).collect();
            let mut h = LogHistogram::new();
            for &v in &vals {
                h.record(v);
            }
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            for (num, den) in [(1, 100), (50, 100), (90, 100), (99, 100), (999, 1000)] {
                let rank = ((n as u64 * num).div_ceil(den)).clamp(1, n as u64);
                let want = bucket_upper(bucket_of(sorted[rank as usize - 1]));
                assert_eq!(
                    h.quantile(num, den),
                    want,
                    "round {round}: q{num}/{den} over {n} values"
                );
            }
            assert_eq!(h.max(), *sorted.last().unwrap());
            assert_eq!(h.count(), n as u64);
        }
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        let mut state = 7u64;
        let parts: Vec<LogHistogram> = (0..4)
            .map(|_| {
                let mut h = LogHistogram::new();
                for _ in 0..200 {
                    h.record(splitmix(&mut state) % 1_000_000);
                }
                h
            })
            .collect();
        // ((a+b)+c)+d == (d+c)+(b+a), and merging equals recording the
        // union directly.
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        left.merge(&parts[3]);
        let mut right = parts[3].clone();
        right.merge(&parts[2]);
        let mut ba = parts[1].clone();
        ba.merge(&parts[0]);
        right.merge(&ba);
        assert_eq!(left, right);
        for (num, den) in [(50, 100), (99, 100), (999, 1000)] {
            assert_eq!(left.quantile(num, den), right.quantile(num, den));
        }
        assert_eq!(left.summary(), right.summary());
    }

    #[test]
    fn empty_histogram_is_harmless() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(99, 100), 0);
        let s = h.summary();
        assert_eq!((s.count, s.p999, s.max, s.mean()), (0, 0, 0, 0));
    }

    /// The attribution satellite: a hand-built two-core scenario where a
    /// known lock-wait span dominates one core's request and a known
    /// abort-retry dominates the other's — the derived breakdown must
    /// name them.
    #[test]
    fn attribution_names_lock_wait_and_abort_retry() {
        // Core 0: arrival 100, begins at 150, spins 5000 cycles on an
        // advisory lock (acquired at 5350), commits at 5500.
        let core0 = vec![
            ev(150, ObsKind::TxBegin { ab_id: 1 }),
            ev(
                5350,
                ObsKind::LockAcquire {
                    word: 0x1000,
                    waited: 5000,
                },
            ),
            ev(5500, ObsKind::TxCommit),
        ];
        // Core 1: arrival 200, first attempt 200→6200 aborts (6000
        // cycles of retry), 50 cycles of backoff, second attempt
        // 6300→6500 commits.
        let core1 = vec![
            ev(200, ObsKind::TxBegin { ab_id: 1 }),
            abort(6200),
            ev(6250, ObsKind::Backoff { cycles: 50 }),
            ev(6300, ObsKind::TxBegin { ab_id: 1 }),
            ev(6500, ObsKind::TxCommit),
        ];
        let arrivals = vec![vec![100], vec![200]];
        let reqs = request_latencies(&[core0, core1], &arrivals);
        assert_eq!(reqs.len(), 2);

        let r0 = &reqs[0];
        assert_eq!((r0.core, r0.index), (0, 0));
        assert_eq!(r0.total(), 5400);
        assert_eq!(r0.queue, 50);
        assert_eq!(r0.lock_wait, 5000);
        assert_eq!(r0.dominant().0, "lock_wait");

        let r1 = &reqs[1];
        assert_eq!(r1.total(), 6300);
        assert_eq!(r1.retry, 6000);
        assert_eq!(r1.backoff, 50);
        assert_eq!(r1.service, 200);
        assert_eq!(r1.aborted_attempts, 1);
        assert_eq!(r1.dominant().0, "retry");
        // Components never exceed the total.
        assert!(r1.other() <= r1.total());
    }

    #[test]
    fn irrevocable_exit_completes_a_request() {
        // A request that exhausts retries: attempt aborts, then the
        // irrevocable fallback runs 4000..9000. No TxCommit is emitted —
        // IrrevocableExit must terminate the segment, and the next
        // commit must become request 1.
        let stream = vec![
            ev(1000, ObsKind::TxBegin { ab_id: 0 }),
            abort(2000),
            ev(4000, ObsKind::IrrevocableEnter),
            ev(9000, ObsKind::IrrevocableExit { cycles: 5000 }),
            ev(9100, ObsKind::TxBegin { ab_id: 0 }),
            ev(9400, ObsKind::TxCommit),
        ];
        let reqs = request_latencies(&[stream], &[vec![500, 9050]]);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].total(), 8500);
        assert_eq!(reqs[0].irrevocable, 5000);
        assert_eq!(reqs[0].retry, 1000);
        assert_eq!(reqs[0].dominant().0, "irrevocable");
        assert_eq!((reqs[1].index, reqs[1].total()), (1, 350));
        assert_eq!(reqs[1].service, 300);
    }

    #[test]
    fn closed_loop_uses_first_begin_as_arrival() {
        let stream = vec![
            ev(300, ObsKind::TxBegin { ab_id: 0 }),
            ev(450, ObsKind::TxCommit),
        ];
        let reqs = txn_latencies(&[stream]);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].arrival, 300);
        assert_eq!(reqs[0].total(), 150);
        assert_eq!(reqs[0].queue, 0);
        let h = histogram_of(&reqs);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 150);
    }
}
