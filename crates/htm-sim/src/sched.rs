//! Indexed min-(clock, id) scheduling: a lazy binary heap over core keys.
//!
//! Both the cooperative driver ([`crate::sim::SimState::schedule`]) and the
//! speculative commit walk repeatedly need "the unfinished core with the
//! minimum `(clock, id)`, plus the exact runner-up" — previously an
//! O(n_cores) scan per resumption, i.e. quadratic over a run. [`LazyMinHeap`]
//! makes it O(log n) amortized by exploiting a structural property of the
//! simulator: **a core's clock only ever increases, and cores only retire**
//! (they never un-finish). Every heap entry is therefore a *lower bound* on
//! its core's current key, so the heap needs no decrease-key and no explicit
//! update calls at all:
//!
//! * Each core keeps exactly one entry `(clock, id)` in a hand-rolled array
//!   heap — possibly stale (too small), never too large.
//! * [`LazyMinHeap::clean`] repairs a stale entry *in place*: overwrite the
//!   key with the fresh one and sift down (one sift, where a pop+push pair
//!   on `std`'s `BinaryHeap` would cost two). Since a repaired entry's key
//!   is final for this call (keys don't change mid-call), each entry is
//!   repaired at most once and the loop terminates with a fresh minimum.
//! * Retired cores' entries are overwritten with a maximal sentinel
//!   `(u64::MAX, usize::MAX)` that sinks below every live key — a sentinel
//!   on top therefore means its whole subtree is retired.
//! * The exact runner-up is the smaller of the root's two *cleaned*
//!   children: every stored key is a lower bound on its core's true key and
//!   at least its (fresh) ancestor child's stored key, so no deeper entry
//!   can beat the children once they are fresh. This keeps `min2` from ever
//!   moving the root at all.
//!
//! The caller supplies the current key through a `key_of(id) -> Option<u64>`
//! closure (`None` = retired), keeping this structure free of any borrow of
//! the core array itself.

/// Retired-core sentinel: strictly greater than any live `(clock, id)` key
/// (a live id is `< MAX_CORES`), and doubling as the "no runner-up" horizon.
const RETIRED: (u64, usize) = (u64::MAX, usize::MAX);

/// Host-side scheduling-overhead counters (never part of the simulated
/// state; reported by the `scaling` exhibit).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SchedStats {
    /// Calls to [`crate::sim::SimState::schedule`] (one per cooperative
    /// resumption).
    pub schedule_calls: u64,
    /// Stale heap entries repaired (overwritten with a fresh key in place).
    pub stale_refreshes: u64,
}

/// Lazy min-heap over `(clock, id)` keys, one entry per core.
#[derive(Debug, Clone, Default)]
pub(crate) struct LazyMinHeap {
    heap: Vec<(u64, usize)>,
    /// Stale-entry repairs performed (mirrored into [`SchedStats`]).
    pub(crate) stale_refreshes: u64,
}

impl LazyMinHeap {
    /// Heap seeded with `(0, id)` for every core — the simulator's initial
    /// clocks (already heap-ordered). Sound for any later state reached by
    /// increases/retirements.
    pub(crate) fn new(n_cores: usize) -> LazyMinHeap {
        LazyMinHeap {
            heap: (0..n_cores).map(|i| (0, i)).collect(),
            stale_refreshes: 0,
        }
    }

    /// Restore the heap invariant below `i` after its key increased.
    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                return;
            }
            let r = l + 1;
            let c = if r < n && self.heap[r] < self.heap[l] {
                r
            } else {
                l
            };
            if self.heap[c] < self.heap[i] {
                self.heap.swap(i, c);
                i = c;
            } else {
                return;
            }
        }
    }

    /// Repair position `i` until its entry is fresh; returns that entry, or
    /// `None` when the whole subtree under `i` has retired.
    #[inline]
    fn clean(&mut self, i: usize, key_of: &impl Fn(usize) -> Option<u64>) -> Option<(u64, usize)> {
        loop {
            let (clock, id) = self.heap[i];
            if id == usize::MAX {
                return None;
            }
            match key_of(id) {
                None => {
                    self.heap[i] = RETIRED;
                    self.sift_down(i);
                }
                Some(cur) if cur != clock => {
                    debug_assert!(cur > clock, "core clocks must be monotone");
                    self.heap[i] = (cur, id);
                    self.stale_refreshes += 1;
                    self.sift_down(i);
                }
                Some(_) => return Some((clock, id)),
            }
        }
    }

    /// The minimum live key plus the exact runner-up (the cooperative
    /// horizon), `(u64::MAX, usize::MAX)` when no runner-up exists. Ties
    /// order by id, including at clock `u64::MAX`, exactly like the linear
    /// reference scan.
    pub(crate) fn min2(
        &mut self,
        key_of: impl Fn(usize) -> Option<u64>,
    ) -> (Option<usize>, (u64, usize)) {
        if self.heap.is_empty() {
            return (None, RETIRED);
        }
        let Some(best) = self.clean(0, &key_of) else {
            return (None, RETIRED);
        };
        let mut second = RETIRED;
        for c in [1, 2] {
            if c < self.heap.len() {
                if let Some(k) = self.clean(c, &key_of) {
                    second = second.min(k);
                }
            }
        }
        (Some(best.1), second)
    }

    /// The minimum live key alone (the speculative commit walk's probe).
    pub(crate) fn min(&mut self, key_of: impl Fn(usize) -> Option<u64>) -> Option<(u64, usize)> {
        if self.heap.is_empty() {
            return None;
        }
        self.clean(0, &key_of)
    }

    /// Re-key every core and rebuild the heap in place (retaining the
    /// allocation; retired cores become sentinels). The speculative commit
    /// walk reseeds at every walk entry: *between* walks a cleared queue can
    /// drop a core's key back toward its committed clock, which would break
    /// the lower-bound invariant a persistent heap relies on.
    pub(crate) fn reseed(&mut self, n: usize, key_of: impl Fn(usize) -> Option<u64>) {
        self.heap.clear();
        self.heap.extend((0..n).map(|i| match key_of(i) {
            Some(k) => (k, i),
            None => RETIRED,
        }));
        for i in (0..n / 2).rev() {
            self.sift_down(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_increasing_clocks_without_updates() {
        let mut h = LazyMinHeap::new(3);
        let clocks = [50u64, 10, 30];
        let key = |i: usize| Some(clocks[i]);
        assert_eq!(h.min2(key), (Some(1), (30, 2)));
        let clocks = [50u64, 60, 30];
        let key = |i: usize| Some(clocks[i]);
        assert_eq!(h.min2(key), (Some(2), (50, 0)));
        assert!(h.stale_refreshes > 0);
    }

    #[test]
    fn retired_cores_drop_out() {
        let mut h = LazyMinHeap::new(3);
        let clocks = [5u64, 40, 20];
        let key = |i: usize| if i == 0 { None } else { Some(clocks[i]) };
        assert_eq!(h.min2(key), (Some(2), (40, 1)));
        assert_eq!(h.min2(|_| None), (None, (u64::MAX, usize::MAX)));
    }

    #[test]
    fn ties_at_max_order_by_id() {
        let mut h = LazyMinHeap::new(3);
        let key = |_: usize| Some(u64::MAX);
        assert_eq!(h.min2(key), (Some(0), (u64::MAX, 1)));
    }

    #[test]
    fn single_live_core_has_open_horizon() {
        let mut h = LazyMinHeap::new(2);
        let key = |i: usize| if i == 1 { None } else { Some(123u64) };
        assert_eq!(h.min2(key), (Some(0), (u64::MAX, usize::MAX)));
    }

    #[test]
    fn reseed_rebuilds_from_arbitrary_keys() {
        let mut h = LazyMinHeap::new(2);
        let clocks = [90u64, 80, 10, 70];
        h.reseed(4, |i| if i == 2 { None } else { Some(clocks[i]) });
        let key = |i: usize| if i == 2 { None } else { Some(clocks[i]) };
        assert_eq!(h.min2(key), (Some(3), (80, 1)));
    }
}
