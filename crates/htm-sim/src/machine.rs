//! The machine façade: deterministic scheduling of simulated cores and the
//! per-core operation API.
//!
//! Each simulated core runs on an OS thread, but all shared-state operations
//! go through the core's gate: the calling core blocks until its logical
//! clock is the global minimum (ties by core id), performs the operation
//! under the machine mutex, advances its clock by the operation's latency,
//! and wakes whichever core becomes eligible next. The resulting simulated
//! interleaving is a pure function of the program and its seeds — the same
//! run is bit-for-bit reproducible, like the paper's MARSSx86 runs with
//! threads pinned to cores.

use crate::addr::Addr;
use crate::config::MachineConfig;
use crate::sim::{AbortCause, SimState, TxError};
use crate::stats::SimStats;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

struct Shared {
    state: Mutex<SimState>,
    cvs: Vec<Condvar>,
}

impl Shared {
    /// Lock the simulator state. A panic on one simulated core poisons the
    /// mutex; recovering the guard keeps the remaining cores' teardown
    /// deterministic (the panic itself still propagates through the scope).
    fn lock(&self) -> MutexGuard<'_, SimState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A simulated multicore machine with HTM.
pub struct Machine {
    shared: Arc<Shared>,
    cfg: MachineConfig,
}

impl Machine {
    pub fn new(cfg: MachineConfig) -> Machine {
        let shared = Arc::new(Shared {
            state: Mutex::new(SimState::new(cfg.clone())),
            cvs: (0..cfg.n_cores).map(|_| Condvar::new()).collect(),
        });
        Machine { shared, cfg }
    }

    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Run one closure per simulated core to completion. Closures execute
    /// on real threads; every simulated operation is deterministically
    /// ordered by logical time. May be called once per machine.
    pub fn run(&self, bodies: Vec<Box<dyn FnOnce(&mut Core) + Send + '_>>) {
        assert_eq!(
            bodies.len(),
            self.cfg.n_cores,
            "need exactly one body per core"
        );
        std::thread::scope(|s| {
            for (tid, body) in bodies.into_iter().enumerate() {
                let shared = &self.shared;
                s.spawn(move || {
                    let mut core = Core {
                        shared,
                        tid,
                        pending: 0,
                        last_clock: 0,
                    };
                    body(&mut core);
                    core.finish();
                });
            }
        });
    }

    /// Convenience: run the same closure on every core (receives the core).
    pub fn run_uniform<F>(&self, f: F)
    where
        F: Fn(&mut Core) + Send + Sync,
    {
        let bodies: Vec<Box<dyn FnOnce(&mut Core) + Send + '_>> = (0..self.cfg.n_cores)
            .map(|_| {
                let f = &f;
                Box::new(move |c: &mut Core| f(c)) as Box<dyn FnOnce(&mut Core) + Send>
            })
            .collect();
        self.run(bodies);
    }

    /// Statistics snapshot (meaningful after `run` returns).
    pub fn stats(&self) -> SimStats {
        let st = self.shared.lock();
        let cores = st
            .cores
            .iter()
            .map(|c| {
                let mut s = c.stats.clone();
                s.total_cycles = c.clock;
                s
            })
            .collect::<Vec<_>>();
        let exec_cycles = st.cores.iter().map(|c| c.clock).max().unwrap_or(0);
        SimStats { cores, exec_cycles }
    }

    /// Per-core begin/commit/abort event traces (empty unless
    /// [`MachineConfig::record_trace`] was set).
    pub fn trace(&self) -> Vec<Vec<crate::sim::TraceEvent>> {
        let st = self.shared.lock();
        st.cores.iter().map(|c| c.trace.clone()).collect()
    }

    /// Host-side allocation for setup (no simulated cycles).
    pub fn host_alloc(&self, words: u64, line_align: bool) -> Addr {
        self.shared.lock().host_alloc(words, line_align)
    }

    /// Host-side memory read (setup/validation only).
    pub fn host_load(&self, addr: Addr) -> u64 {
        self.shared.lock().host_load(addr)
    }

    /// Host-side memory write (setup only; unsound during `run`).
    pub fn host_store(&self, addr: Addr, val: u64) {
        self.shared.lock().host_store(addr, val)
    }
}

/// Handle through which one simulated core issues operations.
pub struct Core<'m> {
    shared: &'m Shared,
    tid: usize,
    /// Locally accumulated compute cycles, folded into the logical clock at
    /// the next gated operation.
    pending: u64,
    /// Clock value observed at the last gate (plus pending = `now`).
    last_clock: u64,
}

impl Core<'_> {
    /// This core's id.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Approximate current logical time (exact at gate boundaries).
    pub fn now(&self) -> u64 {
        self.last_clock + self.pending
    }

    /// Model `cycles` of local computation. Free of synchronization: the
    /// cycles are folded into the clock at the next shared operation.
    pub fn compute(&mut self, cycles: u64) {
        self.pending += cycles;
    }

    /// Perform `f` on the shared state at this core's logical turn; `f`
    /// returns `(result, latency)`.
    fn gate<R>(&mut self, f: impl FnOnce(&mut SimState, usize) -> (R, u64)) -> R {
        let tid = self.tid;
        let mut st = self.shared.lock();
        st.cores[tid].clock += self.pending;
        self.pending = 0;
        loop {
            match st.next_eligible() {
                Some(n) if n == tid => break,
                Some(n) => {
                    // Our arrival may have shifted the minimum to a parked
                    // core — wake it before we sleep.
                    if st.cores[n].waiting {
                        self.shared.cvs[n].notify_one();
                    }
                    st.cores[tid].waiting = true;
                    st = self.shared.cvs[tid]
                        .wait(st)
                        .unwrap_or_else(|e| e.into_inner());
                    st.cores[tid].waiting = false;
                }
                None => unreachable!("calling core cannot be finished"),
            }
        }
        let (r, lat) = f(&mut st, tid);
        st.cores[tid].clock += lat;
        self.last_clock = st.cores[tid].clock;
        if let Some(n) = st.next_eligible() {
            if n != tid && st.cores[n].waiting {
                self.shared.cvs[n].notify_one();
            }
        }
        r
    }

    fn finish(&mut self) {
        let tid = self.tid;
        let mut st = self.shared.lock();
        st.cores[tid].clock += self.pending;
        self.pending = 0;
        st.cores[tid].finished = true;
        self.last_clock = st.cores[tid].clock;
        if let Some(n) = st.next_eligible() {
            if st.cores[n].waiting {
                self.shared.cvs[n].notify_one();
            }
        }
    }

    // ----- transactional API ---------------------------------------------

    /// Begin a hardware transaction for atomic block `ab_id`.
    pub fn tx_begin(&mut self, ab_id: u32) {
        self.gate(|st, tid| ((), st.tx_begin(tid, ab_id)));
    }

    /// Transactional load at instruction address `pc`.
    pub fn tx_load(&mut self, addr: Addr, pc: u64) -> Result<u64, TxError> {
        self.gate(|st, tid| st.tx_load(tid, addr, pc))
    }

    /// Transactional store at instruction address `pc`.
    pub fn tx_store(&mut self, addr: Addr, val: u64, pc: u64) -> Result<(), TxError> {
        self.gate(|st, tid| st.tx_store(tid, addr, val, pc))
    }

    /// Attempt to commit.
    pub fn tx_commit(&mut self) -> Result<(), TxError> {
        self.gate(|st, tid| st.tx_commit(tid))
    }

    /// Explicitly abort the active transaction (runtime-initiated).
    pub fn tx_abort(&mut self) -> TxError {
        self.gate(|st, tid| (st.self_abort(tid, AbortCause::Explicit), 0))
    }

    /// Is a transaction currently active (not yet observed-doomed)?
    pub fn tx_active(&mut self) -> bool {
        let tid = self.tid;
        self.shared.lock().tx_active(tid)
    }

    /// Atomic-block id of the active transaction, if any.
    pub fn tx_ab_id(&mut self) -> Option<u32> {
        let tid = self.tid;
        self.shared.lock().tx_ab_id(tid)
    }

    // ----- nontransactional API --------------------------------------------

    /// Nontransactional load (escapes isolation; never aborts anyone).
    pub fn nt_load(&mut self, addr: Addr) -> u64 {
        self.gate(|st, tid| st.nt_load(tid, addr))
    }

    /// Plain non-speculative load (outside transactions / irrevocable
    /// mode): dooms speculative writers of the line so uncommitted data is
    /// never observed.
    pub fn plain_load(&mut self, addr: Addr) -> u64 {
        self.gate(|st, tid| st.plain_load(tid, addr))
    }

    /// Plain non-speculative store — identical coherence behaviour to
    /// [`Core::nt_store`] (dooms all speculative owners of the line).
    pub fn plain_store(&mut self, addr: Addr, val: u64) {
        self.nt_store(addr, val)
    }

    /// Nontransactional store (immediately visible; aborts conflicting
    /// speculative owners on other cores).
    pub fn nt_store(&mut self, addr: Addr, val: u64) {
        self.gate(|st, tid| ((), st.nt_store(tid, addr, val)));
    }

    /// Nontransactional compare-and-swap.
    pub fn nt_cas(&mut self, addr: Addr, old: u64, new: u64) -> bool {
        self.gate(|st, tid| st.nt_cas(tid, addr, old, new))
    }

    // ----- services ---------------------------------------------------------

    /// Allocate `words` from this core's arena.
    pub fn alloc(&mut self, words: u64, line_align: bool) -> Addr {
        self.gate(|st, tid| st.alloc(tid, words, line_align))
    }

    /// Charge advisory-lock wait cycles (runtime bookkeeping: advances the
    /// clock like `compute` and records the amount in the core's stats).
    pub fn charge_lock_wait(&mut self, cycles: u64) {
        self.compute(cycles);
        self.gate(move |st, tid| {
            st.cores[tid].stats.lock_wait_cycles += cycles;
            ((), 0)
        });
    }

    /// Charge retry-backoff cycles.
    pub fn charge_backoff(&mut self, cycles: u64) {
        self.compute(cycles);
        self.gate(move |st, tid| {
            st.cores[tid].stats.backoff_cycles += cycles;
            ((), 0)
        });
    }

    /// Record an irrevocable (global-lock) execution: `cycles` spent and
    /// one irrevocable commit.
    pub fn record_irrevocable(&mut self, cycles: u64) {
        self.gate(move |st, tid| {
            st.cores[tid].stats.irrevocable_cycles += cycles;
            st.cores[tid].stats.irrevocable_commits += 1;
            ((), 0)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::AbortCause;

    fn machine(n: usize) -> Machine {
        Machine::new(MachineConfig::small(n))
    }

    #[test]
    fn single_thread_counter() {
        let m = machine(1);
        let a = m.host_alloc(8, true);
        m.run(vec![Box::new(move |c: &mut Core| {
            for _ in 0..10 {
                c.tx_begin(0);
                let v = c.tx_load(a, 0x400).unwrap();
                c.tx_store(a, v + 1, 0x404).unwrap();
                c.tx_commit().unwrap();
            }
        })]);
        assert_eq!(m.host_load(a), 10);
        let st = m.stats();
        assert_eq!(st.aggregate().commits, 10);
        assert_eq!(st.aggregate().aborts(), 0);
        assert!(st.exec_cycles > 0);
    }

    #[test]
    fn concurrent_counter_is_serializable() {
        // 4 cores × 50 increments with retry loops: the final value must be
        // exactly 200 — the fundamental HTM correctness property.
        let m = machine(4);
        let a = m.host_alloc(8, true);
        m.run_uniform(|c| {
            for _ in 0..50 {
                loop {
                    c.tx_begin(0);
                    let r = (|| {
                        let v = c.tx_load(a, 0x400)?;
                        c.compute(20); // widen the conflict window
                        c.tx_store(a, v + 1, 0x404)?;
                        Ok::<_, TxError>(())
                    })();
                    match r.and_then(|()| c.tx_commit()) {
                        Ok(()) => break,
                        Err(_) => continue,
                    }
                }
            }
        });
        assert_eq!(m.host_load(a), 200);
        let agg = m.stats().aggregate();
        assert_eq!(agg.commits, 200);
        assert!(agg.aborts() > 0, "contended counter must abort sometimes");
    }

    #[test]
    fn determinism_across_runs() {
        let run_once = || {
            let m = machine(4);
            let a = m.host_alloc(8, true);
            m.run_uniform(|c| {
                for i in 0..30u64 {
                    loop {
                        c.tx_begin(0);
                        let r = (|| {
                            let v = c.tx_load(a, 0x400)?;
                            c.compute((c.tid() as u64) * 7 + i % 5);
                            c.tx_store(a, v + 1, 0x404)?;
                            Ok::<_, TxError>(())
                        })();
                        if r.and_then(|()| c.tx_commit()).is_ok() {
                            break;
                        }
                    }
                }
            });
            let st = m.stats();
            (
                st.exec_cycles,
                st.aggregate().aborts(),
                st.cores.iter().map(|c| c.total_cycles).collect::<Vec<_>>(),
            )
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "simulation must be bit-for-bit deterministic");
    }

    #[test]
    fn disjoint_lines_never_conflict() {
        let m = machine(4);
        let base = m.host_alloc(8 * 8 * 4, true);
        m.run_uniform(move |c| {
            let a = base + (c.tid() as u64) * 64;
            for _ in 0..25 {
                c.tx_begin(0);
                let v = c.tx_load(a, 0).unwrap();
                c.tx_store(a, v + 1, 0).unwrap();
                c.tx_commit().unwrap();
            }
        });
        let agg = m.stats().aggregate();
        assert_eq!(agg.commits, 100);
        assert_eq!(agg.aborts(), 0);
    }

    #[test]
    fn nt_cas_lock_mutual_exclusion() {
        // An advisory-lock-style spinlock built from NT CAS protects a
        // plain (nontransactional) counter.
        let m = machine(4);
        let lock = m.host_alloc(8, true);
        let counter = m.host_alloc(8, true);
        m.run_uniform(move |c| {
            for _ in 0..25 {
                while !c.nt_cas(lock, 0, (c.tid() + 1) as u64) {
                    c.compute(20);
                }
                let v = c.nt_load(counter);
                c.compute(5);
                c.nt_store(counter, v + 1);
                c.nt_store(lock, 0);
            }
        });
        assert_eq!(m.host_load(counter), 100);
    }

    #[test]
    fn advisory_lock_inside_transaction() {
        // The paper's core mechanism: acquire an NT lock inside an active
        // transaction; serialized sections stop aborting each other.
        let m = machine(4);
        let lock = m.host_alloc(8, true);
        let data = m.host_alloc(8, true);
        m.run_uniform(move |c| {
            for _ in 0..20 {
                loop {
                    c.tx_begin(0);
                    // Advisory lock acquire via NT CAS, inside the txn.
                    let mut spins = 0u64;
                    while !c.nt_cas(lock, 0, (c.tid() + 1) as u64) {
                        c.charge_lock_wait(30);
                        spins += 1;
                        if spins > 10_000 {
                            break; // timeout: proceed without the lock
                        }
                    }
                    let r = (|| {
                        let v = c.tx_load(data, 0x100)?;
                        c.compute(30);
                        c.tx_store(data, v + 1, 0x104)?;
                        Ok::<_, TxError>(())
                    })();
                    let committed = r.and_then(|()| c.tx_commit()).is_ok();
                    // Release even on abort, as the runtime does.
                    c.nt_store(lock, 0);
                    if committed {
                        break;
                    }
                }
            }
        });
        assert_eq!(m.host_load(data), 80);
        let agg = m.stats().aggregate();
        assert_eq!(agg.commits, 80);
        // Staggered by the advisory lock: conflicts should be rare.
        assert!(
            agg.aborts() <= 8,
            "advisory lock should nearly eliminate aborts, got {}",
            agg.aborts()
        );
        assert!(agg.lock_wait_cycles > 0);
    }

    #[test]
    fn explicit_abort_counts() {
        let m = machine(1);
        let a = m.host_alloc(8, true);
        m.run(vec![Box::new(move |c: &mut Core| {
            assert_eq!(c.tx_ab_id(), None);
            c.tx_begin(0);
            assert_eq!(c.tx_ab_id(), Some(0));
            c.tx_store(a, 5, 0).unwrap();
            let e = c.tx_abort();
            assert_eq!(e.info().cause, AbortCause::Explicit);
        })]);
        assert_eq!(m.host_load(a), 0, "aborted write must roll back");
        assert_eq!(m.stats().aggregate().explicit_aborts, 1);
    }

    #[test]
    fn alloc_in_threads_disjoint() {
        let m = machine(4);
        let out = m.host_alloc(8 * 4, true);
        m.run_uniform(move |c| {
            let p = c.alloc(8, true);
            c.nt_store(p, c.tid() as u64 + 100);
            c.nt_store(out + (c.tid() as u64) * 8, p);
        });
        let mut ptrs: Vec<u64> = (0..4).map(|i| m.host_load(out + i * 8)).collect();
        ptrs.sort();
        ptrs.dedup();
        assert_eq!(ptrs.len(), 4, "allocations must not alias");
        for (i, &p) in (0..4).zip(ptrs.iter()) {
            let _ = i;
            assert!(m.host_load(p) >= 100);
        }
    }

    #[test]
    fn clocks_interleave_fairly() {
        // A core that does tiny ops and one that does huge computes: total
        // time is driven by the slow core, and the fast core should not be
        // starved (its ops happen "during" the slow core's computes).
        let m = machine(2);
        let a = m.host_alloc(16, true);
        m.run(vec![
            Box::new(move |c: &mut Core| {
                for _ in 0..100 {
                    c.nt_store(a, c.now());
                }
            }),
            Box::new(move |c: &mut Core| {
                for _ in 0..5 {
                    c.compute(10_000);
                    c.nt_store(a + 8, c.now());
                }
            }),
        ]);
        let st = m.stats();
        assert!(st.cores[1].total_cycles >= 50_000);
        assert!(st.cores[0].total_cycles < st.cores[1].total_cycles);
    }

    #[test]
    fn stats_snapshot_exec_cycles_is_max() {
        let m = machine(2);
        m.run(vec![
            Box::new(|c: &mut Core| c.compute(100)),
            Box::new(|c: &mut Core| c.compute(500)),
        ]);
        let st = m.stats();
        assert_eq!(
            st.exec_cycles,
            st.cores.iter().map(|c| c.total_cycles).max().unwrap()
        );
        assert_eq!(st.exec_cycles, 500);
    }
}
