//! The machine façade: deterministic scheduling of simulated cores and the
//! per-core operation API.
//!
//! Each simulated core is a *resumable program*: an `async` body suspended
//! at every gated shared-state operation. A core's gate admits the
//! operation only when the core's logical clock is the global minimum over
//! unfinished cores (ties by core id), so ops execute in increasing
//! (clock, id) order and the simulated interleaving is a pure function of
//! the program and its seeds — bit-for-bit reproducible, like the paper's
//! MARSSx86 runs with threads pinned to cores.
//!
//! Three host-side drivers realize that order (see
//! [`Scheduler`](crate::config::Scheduler)):
//!
//! * **Cooperative** (default): a single host thread runs a plain event
//!   loop — pick the minimum-clock core, poll its program until it either
//!   finishes or stops being the minimum. No OS threads per core, no
//!   condvar handoffs; the per-op cost is one uncontended mutex
//!   acquisition, and a core that stays minimal executes arbitrarily many
//!   consecutive ops in one resumption.
//! * **Threaded**: one OS thread per core; a core whose gate finds it
//!   ineligible parks on its condvar and is woken by the op that makes it
//!   the minimum. This was the original driver; it is kept for the
//!   cross-scheduler equivalence suite and pays a futex round-trip per
//!   handoff.
//! * **Speculative**: a Block-STM-style optimistic executor — host worker
//!   threads run cores' op quanta against private overlay views of the
//!   state, and a serial commit walk re-executes the queued ops against
//!   the real state in exactly the cooperative (clock, id) order,
//!   re-executing any core whose predictions diverged (see
//!   [`crate::spec`]). Requires resumable core *factories*
//!   ([`Machine::run_factories`]); with plain one-shot bodies it falls
//!   back to the cooperative driver.
//!
//! Because all drivers admit ops in exactly the same (clock, id) order,
//! simulated cycles, statistics, traces and obs events are bit-identical
//! between them.

use crate::addr::Addr;
use crate::config::{MachineConfig, Scheduler};
use crate::obs::{EventRing, ObsEvent, ObsKind};
use crate::sim::{apply_op, AbortCause, Op, OpResult, SimState, TraceEvent, TxError};
use crate::spec::{
    commit_walk, spec_poll, with_base, FutCell, NgKind, NgValue, SpecMode, SpecSlot, SpecView,
    TaskCtl, WalkStep,
};
use crate::stats::{SimStats, SpecStats};
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::task::{Context, Poll, Waker};

struct Shared {
    state: Mutex<SimState>,
    cvs: Vec<Condvar>,
    /// Host-side counters of the speculative scheduler's last run (all
    /// zeros for the other drivers).
    spec: Mutex<SpecStats>,
}

impl Shared {
    /// Lock the simulator state. A panic on one simulated core poisons the
    /// mutex; recovering the guard keeps the remaining cores' teardown
    /// deterministic (the panic itself still propagates out of `run`).
    fn lock(&self) -> MutexGuard<'_, SimState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A suspended simulated-core program, resumable at every gated operation.
pub type CoreBody<'m> = Pin<Box<dyn Future<Output = ()> + Send + 'm>>;

/// Builds one core's program from its [`Core`] handle, consuming the
/// builder.
pub type CoreFn<'m> = Box<dyn FnOnce(Core<'m>) -> CoreBody<'m> + Send + 'm>;

/// Builds one core's program from its [`Core`] handle, *reusably* — the
/// speculative scheduler re-invokes the factory to re-execute a core whose
/// optimistic predictions were invalidated.
pub type CoreFactory<'m> = Box<dyn Fn(Core<'m>) -> CoreBody<'m> + Send + 'm>;

/// Box an async core body into the form [`Machine::run`] accepts:
/// `machine.run(vec![body(|mut c| async move { ... })])`.
pub fn body<'m, F, Fut>(f: F) -> CoreFn<'m>
where
    F: FnOnce(Core<'m>) -> Fut + Send + 'm,
    Fut: Future<Output = ()> + Send + 'm,
{
    Box::new(move |core| Box::pin(f(core)) as CoreBody<'m>)
}

/// Box a *re-invocable* async core body into the form
/// [`Machine::run_factories`] accepts. The closure must build a fresh,
/// deterministic program each call (clone captured state inside).
pub fn factory<'m, F, Fut>(f: F) -> CoreFactory<'m>
where
    F: Fn(Core<'m>) -> Fut + Send + 'm,
    Fut: Future<Output = ()> + Send + 'm,
{
    Box::new(move |core| Box::pin(f(core)) as CoreBody<'m>)
}

/// How a [`Core`]'s gates reach the simulator state.
enum Drive {
    /// Cooperative event loop: eligibility is one comparison against the
    /// cached [`SimState::horizon`] pair; nobody parks, nobody is woken.
    Coop,
    /// Thread-per-core: ineligible gates park on a condvar and are woken by
    /// whichever op makes them the minimum.
    Threaded,
    /// Speculative: ops run against the per-core overlay slot (or, for a
    /// demoted core, directly against real state when the commit walk
    /// admits them).
    Spec(Arc<SpecSlot>),
}

/// A simulated multicore machine with HTM.
pub struct Machine {
    shared: Arc<Shared>,
    cfg: MachineConfig,
}

impl Machine {
    pub fn new(mut cfg: MachineConfig) -> Machine {
        // The environment variable is a fallback: an explicitly pinned
        // scheduler (a `--scheduler` flag or an experiment spec) wins.
        if !cfg.scheduler_pinned {
            if let Some(s) = std::env::var("HTM_SIM_SCHEDULER")
                .ok()
                .and_then(|v| Scheduler::parse(&v))
            {
                cfg.scheduler = s;
            }
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(SimState::new(cfg.clone())),
            cvs: (0..cfg.n_cores).map(|_| Condvar::new()).collect(),
            spec: Mutex::new(SpecStats::default()),
        });
        Machine { shared, cfg }
    }

    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Run one program per simulated core to completion; every simulated
    /// operation is deterministically ordered by logical time. May be
    /// called once per machine.
    ///
    /// One-shot bodies cannot be re-executed, so under
    /// [`Scheduler::Speculative`] this falls back to the (bit-identical)
    /// cooperative driver; use [`Machine::run_factories`] to opt into
    /// optimistic parallelism.
    pub fn run<'m>(&'m self, bodies: Vec<CoreFn<'m>>) {
        assert_eq!(
            bodies.len(),
            self.cfg.n_cores,
            "need exactly one body per core"
        );
        match self.cfg.scheduler {
            Scheduler::Cooperative | Scheduler::Speculative => self.run_cooperative(bodies),
            Scheduler::Threaded => self.run_threaded(bodies),
        }
    }

    /// Run one *re-invocable* program factory per core. Under
    /// [`Scheduler::Speculative`] cores execute optimistically in parallel
    /// on host worker threads (with bit-identical results); under the
    /// other schedulers this is equivalent to [`Machine::run`].
    pub fn run_factories<'m>(&'m self, factories: Vec<CoreFactory<'m>>) {
        assert_eq!(
            factories.len(),
            self.cfg.n_cores,
            "need exactly one factory per core"
        );
        match self.cfg.scheduler {
            Scheduler::Speculative => self.run_speculative(factories),
            Scheduler::Cooperative | Scheduler::Threaded => {
                let bodies = factories
                    .into_iter()
                    .map(|f| Box::new(move |c: Core<'m>| f(c)) as CoreFn<'m>)
                    .collect();
                self.run(bodies);
            }
        }
    }

    /// The default driver: a single-threaded event loop that resumes the
    /// minimum-clock core. A resumed program runs ops for as long as it
    /// remains the minimum and suspends (without any syscall) as soon as
    /// its gate finds another core eligible.
    fn run_cooperative<'m>(&'m self, bodies: Vec<CoreFn<'m>>) {
        let mut programs: Vec<Option<CoreBody<'m>>> = bodies
            .into_iter()
            .enumerate()
            .map(|(tid, mk)| {
                Some(mk(Core {
                    shared: &self.shared,
                    tid,
                    pending: 0,
                    last_clock: 0,
                    record: self.cfg.record_events,
                    drive: Drive::Coop,
                }))
            })
            .collect();
        let mut cx = Context::from_waker(Waker::noop());
        // `schedule` also caches the runner-up (clock, id) pair, against
        // which the resumed core's gates test eligibility without a scan.
        let mut next = self.shared.lock().schedule();
        while let Some(n) = next {
            let prog = programs[n].as_mut().expect("eligible core has a program");
            let ready = prog.as_mut().poll(&mut cx).is_ready();
            if ready {
                programs[n] = None;
            }
            next = self.shared.lock().schedule();
            if !ready && next == Some(n) {
                // A gate never suspends while its core is eligible, so a
                // pending program that is still the minimum awaited some
                // foreign future — which this executor cannot wake.
                panic!("core {n} suspended while eligible: body awaited a non-gate future");
            }
        }
    }

    /// The original driver: one OS thread per core. A pending program
    /// parks on its condvar until the gate of another core (or a finishing
    /// core) makes it the minimum and wakes it.
    fn run_threaded<'m>(&'m self, bodies: Vec<CoreFn<'m>>) {
        std::thread::scope(|s| {
            for (tid, mk) in bodies.into_iter().enumerate() {
                let shared = &*self.shared;
                let record = self.cfg.record_events;
                s.spawn(move || {
                    let mut prog = mk(Core {
                        shared,
                        tid,
                        pending: 0,
                        last_clock: 0,
                        record,
                        drive: Drive::Threaded,
                    });
                    let mut cx = Context::from_waker(Waker::noop());
                    while prog.as_mut().poll(&mut cx).is_pending() {
                        let mut st = shared.lock();
                        loop {
                            match st.next_eligible() {
                                Some(n) if n == tid => break,
                                Some(_) => {
                                    st.cores[tid].waiting = true;
                                    st =
                                        shared.cvs[tid].wait(st).unwrap_or_else(|e| e.into_inner());
                                    st.cores[tid].waiting = false;
                                }
                                None => unreachable!("running core cannot be finished"),
                            }
                        }
                    }
                });
            }
        });
    }

    /// The Block-STM-style optimistic driver (see [`crate::spec`] for the
    /// protocol). Round structure:
    ///
    /// 1. **Rebuild** — cores whose predictions were invalidated get a
    ///    fresh program from their factory; it deterministically replays
    ///    the committed-prefix log (no real-state access). A core that
    ///    mis-speculates repeatedly is demoted to *direct* execution.
    /// 2. **Speculate** — worker threads poll live cores' programs in
    ///    parallel; each gate executes against the core's private overlay
    ///    and queues an `(op, predicted result, latency)` record. The
    ///    driver holds the state lock for the whole phase, so workers read
    ///    a frozen base state.
    /// 3. **Commit** — a serial walk validates queue heads in global
    ///    min-(clock, id) order, re-executing each op against the real
    ///    state (the authoritative execution all results come from).
    ///    Direct cores are admitted one op at a time at their turn.
    fn run_speculative<'m>(&'m self, factories: Vec<CoreFactory<'m>>) {
        let n = self.cfg.n_cores;
        let q = self.cfg.spec_quantum.max(1);
        let workers = match self.cfg.host_threads {
            0 => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            t => t,
        }
        .clamp(1, n.max(1));
        /// Rebuilds after which a core stops speculating: each rebuild
        /// replays the whole committed prefix, so repeated mis-speculation
        /// on a long-running core would otherwise cost O(n²) replay work.
        const DEMOTE_LIMIT: u32 = 4;

        let slots: Vec<Arc<SpecSlot>> = (0..n).map(|i| Arc::new(SpecSlot::new(i))).collect();
        let record = self.cfg.record_events;
        let mk_core = |tid: usize| Core {
            shared: &self.shared,
            tid,
            pending: 0,
            last_clock: 0,
            record,
            drive: Drive::Spec(Arc::clone(&slots[tid])),
        };
        let futs: Vec<FutCell<'m>> = factories
            .iter()
            .enumerate()
            .map(|(tid, mk)| Mutex::new(Some(mk(mk_core(tid)))))
            .collect();
        let lock_fut = |tid: usize| futs[tid].lock().unwrap_or_else(|e| e.into_inner());
        let mut ctl: Vec<TaskCtl> = (0..n).map(|_| TaskCtl::default()).collect();
        let mut sstats = SpecStats::default();
        // Indexed min-(clock, id) structure for the commit walk; reseeded
        // at each walk entry, reusing the allocation across rounds.
        let mut walk_heap = crate::sched::LazyMinHeap::default();
        let mut cx = Context::from_waker(Waker::noop());

        loop {
            // ---- Phase 1: rebuild invalidated cores ----------------------
            for tid in 0..n {
                if !ctl[tid].needs_rebuild {
                    continue;
                }
                ctl[tid].needs_rebuild = false;
                ctl[tid].rebuilds += 1;
                sstats.rebuilds += 1;
                let demote = ctl[tid].rebuilds > DEMOTE_LIMIT;
                {
                    let mut s = slots[tid].lock();
                    s.mode = SpecMode::Poisoned;
                    s.view = None;
                    s.queue.clear();
                    s.budget = 0;
                    s.admitted = false;
                    s.panicked = false;
                    s.replay_pos = 0;
                    s.demote_on_replay_end = demote;
                    sstats.replayed_ops += s.log.len() as u64;
                }
                // Drop the stale program while the slot is Poisoned (its
                // Core's drop hook is then a no-op), then install a fresh
                // one and switch to replay.
                *lock_fut(tid) = None;
                slots[tid].lock().mode = SpecMode::Replaying;
                if demote {
                    ctl[tid].direct = true;
                    sstats.demoted_cores += 1;
                }
                *lock_fut(tid) = Some(factories[tid](mk_core(tid)));
                // Replay never suspends, so one poll consumes the whole
                // committed prefix. The base pointer is installed without
                // holding the state lock: a just-demoted program gates
                // directly against real state inside this same poll.
                let base_ptr: *const SimState = {
                    let g = self.shared.lock();
                    &*g as *const SimState
                };
                let ready = with_base(base_ptr, || {
                    let mut g = lock_fut(tid);
                    let fut = g.as_mut().expect("rebuilt core has a program");
                    fut.as_mut().poll(&mut cx).is_ready()
                });
                if ready {
                    *lock_fut(tid) = None;
                }
                {
                    let s = slots[tid].lock();
                    if s.panicked || s.replay_pos != s.log.len() {
                        panic!("core {tid} diverged during speculative replay");
                    }
                }
                if ready && ctl[tid].direct {
                    // A direct program that ran to completion retired
                    // itself against real state in its drop hook.
                    ctl[tid].done = true;
                }
            }
            if ctl.iter().all(|c| c.done) {
                break;
            }

            // ---- Phase 2: parallel speculation ---------------------------
            {
                let st = self.shared.lock();
                let mut live = Vec::with_capacity(n);
                for (tid, c) in ctl.iter().enumerate() {
                    if c.done || c.direct {
                        continue;
                    }
                    live.push(tid);
                    let mut s = slots[tid].lock();
                    if !matches!(s.mode, SpecMode::Speculating) {
                        continue;
                    }
                    if s.queue.len() >= 4 * q {
                        // Backpressure: far ahead of the walk already.
                        s.budget = 0;
                    } else {
                        if s.queue.is_empty() {
                            // All predictions committed: speculate onward
                            // from a fresh (current) snapshot.
                            s.view = Some(SpecView::snapshot(&st, tid));
                        }
                        s.budget = q;
                    }
                }
                sstats.rounds += 1;
                if workers <= 1 || live.len() <= 1 {
                    for &i in &live {
                        spec_poll(&st, &futs[i], &slots[i]);
                    }
                } else {
                    let next = std::sync::atomic::AtomicUsize::new(0);
                    let base: &SimState = &st;
                    let live = &live;
                    let futs = &futs;
                    let slots = &slots;
                    std::thread::scope(|scope| {
                        for _ in 0..workers.min(live.len()) {
                            scope.spawn(|| loop {
                                let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                let Some(&i) = live.get(k) else { break };
                                spec_poll(base, &futs[i], &slots[i]);
                            });
                        }
                    });
                }
                drop(st);
                // Post-phase triage: contain panics, detect foreign waits.
                for &i in &live {
                    let mut s = slots[i].lock();
                    if s.panicked {
                        s.panicked = false;
                        s.queue.clear();
                        s.view = None;
                        drop(s);
                        ctl[i].needs_rebuild = true;
                        continue;
                    }
                    if matches!(s.mode, SpecMode::Speculating)
                        && s.budget == q
                        && s.queue.is_empty()
                        && lock_fut(i).is_some()
                    {
                        // Had budget, produced nothing, didn't finish: the
                        // body awaited something that is not a gate.
                        panic!(
                            "core {i} suspended without gate progress: \
                             body awaited a non-gate future"
                        );
                    }
                }
            }

            // ---- Phase 3: serial validate-and-commit walk ----------------
            let mut st = self.shared.lock();
            loop {
                match commit_walk(&mut st, &slots, &mut ctl, &mut sstats, &mut walk_heap) {
                    WalkStep::RoundDone => break,
                    WalkStep::Direct(tid) => {
                        // It is globally this direct core's turn: admit one
                        // op and poll its program on the driver thread
                        // (dropping the guard — direct gates lock the real
                        // state themselves).
                        slots[tid].lock().admitted = true;
                        drop(st);
                        let ready = {
                            let mut g = lock_fut(tid);
                            match g.as_mut() {
                                Some(fut) => {
                                    let r = fut.as_mut().poll(&mut cx).is_ready();
                                    if r {
                                        *g = None;
                                    }
                                    r
                                }
                                None => true,
                            }
                        };
                        if ready {
                            ctl[tid].done = true;
                        } else if slots[tid].lock().admitted {
                            panic!(
                                "core {tid} suspended without gate progress: \
                                 body awaited a non-gate future"
                            );
                        }
                        st = self.shared.lock();
                    }
                }
            }
            drop(st);
        }

        for slot in &slots {
            let s = slot.lock();
            sstats.speculated_ops += s.speculated;
            sstats.direct_ops += s.direct_ops;
        }
        *self.shared.spec.lock().unwrap_or_else(|e| e.into_inner()) = sstats;
    }

    /// Convenience: run the same async body on every core (receives the
    /// core handle). The closure is shared, so values it moves into the
    /// body must be `Copy` (or clone inside). Being re-invocable, it runs
    /// with full optimistic parallelism under [`Scheduler::Speculative`].
    pub fn run_uniform<'m, F, Fut>(&'m self, f: F)
    where
        F: Fn(Core<'m>) -> Fut + Send + Sync + 'm,
        Fut: Future<Output = ()> + Send + 'm,
    {
        let f = Arc::new(f);
        let factories: Vec<CoreFactory<'m>> = (0..self.cfg.n_cores)
            .map(|_| {
                let f = Arc::clone(&f);
                Box::new(move |c: Core<'m>| Box::pin(f(c)) as CoreBody<'m>) as CoreFactory<'m>
            })
            .collect();
        self.run_factories(factories);
    }

    /// Statistics snapshot (meaningful after `run` returns). The per-core
    /// counters are fixed-size scalar structs, so a snapshot is cheap; the
    /// unbounded per-core data (traces) moves out via [`Machine::take_trace`].
    pub fn stats(&self) -> SimStats {
        let st = self.shared.lock();
        let cores = st
            .cores
            .iter()
            .map(|c| {
                let mut s = c.stats.clone();
                s.total_cycles = c.clock;
                s
            })
            .collect::<Vec<_>>();
        let exec_cycles = st.cores.iter().map(|c| c.clock).max().unwrap_or(0);
        SimStats { cores, exec_cycles }
    }

    /// Host-side counters of the speculative scheduler's last run: how well
    /// optimistic execution predicted the serial commit order. All zeros
    /// under the cooperative/threaded drivers (and for speculative `run`
    /// calls that fell back to cooperative). Never feeds back into
    /// simulated quantities.
    pub fn spec_stats(&self) -> SpecStats {
        *self.shared.spec.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Host-side scheduling-overhead counters: cooperative `schedule()`
    /// calls and lazy-heap stale-entry repairs. Like [`Machine::spec_stats`]
    /// these never feed back into simulated quantities (and are therefore
    /// not part of [`Machine::stats`], which cross-scheduler equivalence
    /// tests compare for equality).
    pub fn sched_stats(&self) -> crate::sched::SchedStats {
        self.shared.lock().sched_stats
    }

    /// Move out the per-core begin/commit/abort event traces (empty unless
    /// [`MachineConfig::record_trace`] was set). Consuming: a second call
    /// returns empty traces — the event vectors are unbounded, so they are
    /// taken rather than cloned.
    pub fn take_trace(&self) -> Vec<Vec<TraceEvent>> {
        let mut st = self.shared.lock();
        st.cores
            .iter_mut()
            .map(|c| std::mem::take(&mut c.trace))
            .collect()
    }

    /// Move out the per-core observability event streams, oldest first
    /// (empty unless [`MachineConfig::record_events`] was set). Consuming
    /// like [`Machine::take_trace`]: each core's ring is replaced with a
    /// fresh one of the same capacity.
    pub fn take_events(&self) -> Vec<Vec<ObsEvent>> {
        let mut st = self.shared.lock();
        st.cores
            .iter_mut()
            .map(|c| {
                let cap = c.events.capacity();
                std::mem::replace(&mut c.events, EventRing::new(cap)).into_vec()
            })
            .collect()
    }

    /// Host-side allocation for setup (no simulated cycles).
    pub fn host_alloc(&self, words: u64, line_align: bool) -> Addr {
        self.shared.lock().host_alloc(words, line_align)
    }

    /// Host-side memory read (setup/validation only).
    pub fn host_load(&self, addr: Addr) -> u64 {
        self.shared.lock().host_load(addr)
    }

    /// Host-side memory write (setup only; unsound during `run`).
    pub fn host_store(&self, addr: Addr, val: u64) {
        self.shared.lock().host_store(addr, val)
    }

    /// Register the fallback lock word that hardware commits validate
    /// under [`crate::FallbackPolicy::LazySubscriptionSafe`] (the
    /// Dice-et-al-style fix). Host-side setup, no simulated cycles;
    /// called by the runtime before threads start.
    pub fn register_commit_lock(&self, addr: Addr) {
        self.shared.lock().register_commit_lock(addr)
    }
}

/// Handle through which one simulated core issues operations. Owned by the
/// core's program; dropping it (body completion or unwind) marks the core
/// finished so the remaining cores keep running deterministically.
pub struct Core<'m> {
    shared: &'m Shared,
    tid: usize,
    /// Locally accumulated compute cycles, folded into the logical clock at
    /// the next gated operation.
    pending: u64,
    /// Clock value observed at the last gate (plus pending = `now`).
    last_clock: u64,
    /// Cached [`MachineConfig::record_events`]: when false, [`Core::note`]
    /// is a single branch (no lock, no allocation).
    record: bool,
    /// Which driver this core runs under (see [`Drive`]).
    drive: Drive,
}

impl<'m> Core<'m> {
    /// This core's id.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Approximate current logical time (exact at gate boundaries).
    pub fn now(&self) -> u64 {
        self.last_clock + self.pending
    }

    /// Model `cycles` of local computation. Free of synchronization: the
    /// cycles are folded into the clock at the next shared operation.
    pub fn compute(&mut self, cycles: u64) {
        self.pending += cycles;
    }

    /// Advance this core's logical time to at least `cycle` (a no-op when
    /// the deadline already passed). Purely local like [`Core::compute`]
    /// — it only widens `pending` — so it is deterministic under every
    /// scheduler. This is how open-loop load generators park a core until
    /// its next request's arrival timestamp.
    pub fn idle_until(&mut self, cycle: u64) {
        let now = self.now();
        if cycle > now {
            self.pending += cycle - now;
        }
    }

    /// Is this core driven by the speculative scheduler? Decides, per op,
    /// between the monomorphized closure gate (fast path) and the
    /// [`Op`]-value gate the overlay machinery requires.
    fn is_spec(&self) -> bool {
        matches!(self.drive, Drive::Spec(_))
    }

    /// Perform `f` on the shared state at this core's logical turn; `f`
    /// returns `(result, latency)`. The fast path for the cooperative and
    /// threaded drivers: monomorphized per call site, so the op body
    /// inlines straight into the gate with no enum dispatch. Each poll
    /// folds pending compute cycles (idempotent — they reset to zero) and
    /// either runs the op, if this core is the minimum, or suspends after
    /// waking an eligible parked core (threaded driver only; cooperative
    /// cores never park, so no notification syscall is issued there).
    fn gate<'a, R, F>(&'a mut self, f: F) -> impl Future<Output = R> + Send + use<'a, 'm, R, F>
    where
        F: FnOnce(&mut SimState, usize) -> (R, u64) + Send + 'a,
    {
        let mut f = Some(f);
        std::future::poll_fn(move |_cx| {
            let tid = self.tid;
            let mut st = self.shared.lock();
            st.cores[tid].clock += self.pending;
            self.pending = 0;
            match self.drive {
                Drive::Coop => {
                    // Only this core's clock can have moved since the event
                    // loop resumed it, so eligibility is one comparison
                    // against the cached runner-up; no core ever parks, so
                    // there is nobody to wake on either side of the op.
                    if (st.cores[tid].clock, tid) > st.horizon {
                        return Poll::Pending;
                    }
                }
                Drive::Threaded => match st.next_eligible() {
                    Some(n) if n == tid => {}
                    Some(n) => {
                        // Our arrival may have shifted the minimum to a
                        // parked core — wake it before we suspend.
                        if st.cores[n].waiting {
                            self.shared.cvs[n].notify_one();
                        }
                        return Poll::Pending;
                    }
                    None => unreachable!("calling core cannot be finished"),
                },
                Drive::Spec(_) => unreachable!("speculative cores gate through gate_op"),
            }
            st.cores[tid].stats.gated_ops += 1;
            let (r, lat) = (f.take().expect("gate op polled after completion"))(&mut st, tid);
            st.cores[tid].clock += lat;
            self.last_clock = st.cores[tid].clock;
            if matches!(self.drive, Drive::Threaded) {
                if let Some(n) = st.next_eligible() {
                    if n != tid && st.cores[n].waiting {
                        self.shared.cvs[n].notify_one();
                    }
                }
            }
            Poll::Ready(r)
        })
    }

    /// Perform one gated operation under the speculative driver: it
    /// executes against this core's overlay slot (or directly against real
    /// state, once admitted by the commit walk, for demoted cores). The op
    /// travels as an [`Op`] value because the overlay must execute it, and
    /// the commit walk later re-executes it authoritatively.
    fn gate_op<'a>(&'a mut self, op: Op) -> impl Future<Output = OpResult> + Send + use<'a, 'm> {
        std::future::poll_fn(move |_cx| {
            let Drive::Spec(slot) = &self.drive else {
                unreachable!("gate_op is the speculative-drive gate")
            };
            let slot = Arc::clone(slot);
            match slot.gate(&mut self.pending, &mut self.last_clock, &op) {
                crate::spec::SpecGate::Ready(r) => Poll::Ready(r),
                crate::spec::SpecGate::Pending => Poll::Pending,
                crate::spec::SpecGate::Direct => self.direct_gate(&slot, &op),
            }
        })
    }

    /// Gate one op of a demoted (direct) core against the real state. The
    /// commit walk grants a one-shot `admitted` token when it is globally
    /// this core's turn; until then the gate folds compute cycles (making
    /// the core's (clock, id) key exact for the walk) and stays pending.
    fn direct_gate(&mut self, slot: &SpecSlot, op: &Op) -> Poll<OpResult> {
        let tid = self.tid;
        let mut st = self.shared.lock();
        st.cores[tid].clock += self.pending;
        self.pending = 0;
        let admitted = {
            let mut s = slot.lock();
            let a = s.admitted;
            if a {
                s.admitted = false;
                s.direct_ops += 1;
            }
            a
        };
        if !admitted {
            self.last_clock = st.cores[tid].clock;
            return Poll::Pending;
        }
        st.cores[tid].stats.gated_ops += 1;
        let (r, lat) = apply_op(&mut st, tid, op);
        st.cores[tid].clock += lat;
        self.last_clock = st.cores[tid].clock;
        Poll::Ready(r)
    }

    fn expect_unit(r: OpResult) {
        match r {
            OpResult::Unit => {}
            r => unreachable!("expected Unit result, got {r:?}"),
        }
    }

    // ----- transactional API ---------------------------------------------

    /// Begin a hardware transaction for atomic block `ab_id`.
    pub async fn tx_begin(&mut self, ab_id: u32) {
        if self.is_spec() {
            Self::expect_unit(self.gate_op(Op::Begin { ab_id }).await)
        } else {
            self.gate(|st, tid| ((), st.tx_begin(tid, ab_id))).await
        }
    }

    /// Transactional load at instruction address `pc`.
    pub async fn tx_load(&mut self, addr: Addr, pc: u64) -> Result<u64, TxError> {
        if self.is_spec() {
            match self.gate_op(Op::Load { addr, pc }).await {
                OpResult::TxVal(r) => r,
                r => unreachable!("expected TxVal result, got {r:?}"),
            }
        } else {
            self.gate(|st, tid| st.tx_load(tid, addr, pc)).await
        }
    }

    /// Transactional store at instruction address `pc`.
    pub async fn tx_store(&mut self, addr: Addr, val: u64, pc: u64) -> Result<(), TxError> {
        if self.is_spec() {
            match self.gate_op(Op::Store { addr, val, pc }).await {
                OpResult::TxUnit(r) => r,
                r => unreachable!("expected TxUnit result, got {r:?}"),
            }
        } else {
            self.gate(|st, tid| st.tx_store(tid, addr, val, pc)).await
        }
    }

    /// Attempt to commit.
    pub async fn tx_commit(&mut self) -> Result<(), TxError> {
        if self.is_spec() {
            match self.gate_op(Op::Commit).await {
                OpResult::TxUnit(r) => r,
                r => unreachable!("expected TxUnit result, got {r:?}"),
            }
        } else {
            self.gate(|st, tid| st.tx_commit(tid)).await
        }
    }

    /// Explicitly abort the active transaction (runtime-initiated).
    pub async fn tx_abort(&mut self) -> TxError {
        if self.is_spec() {
            match self.gate_op(Op::Abort).await {
                OpResult::TxErr(e) => e,
                r => unreachable!("expected TxErr result, got {r:?}"),
            }
        } else {
            self.gate(|st, tid| (st.self_abort(tid, AbortCause::Explicit), 0))
                .await
        }
    }

    /// Is a transaction currently active (not yet observed-doomed)?
    /// Reads only this core's own state, so it needs no gating (under the
    /// speculative driver it is answered from the overlay and validated at
    /// commit time).
    pub fn tx_active(&mut self) -> bool {
        let tid = self.tid;
        if let Drive::Spec(slot) = &self.drive {
            if !matches!(slot.lock().mode, SpecMode::Direct | SpecMode::Poisoned) {
                return match slot.nongated(NgKind::Active) {
                    NgValue::Active(b) => b,
                    v => unreachable!("expected Active answer, got {v:?}"),
                };
            }
        }
        self.shared.lock().tx_active(tid)
    }

    /// Atomic-block id of the active transaction, if any.
    pub fn tx_ab_id(&mut self) -> Option<u32> {
        let tid = self.tid;
        if let Drive::Spec(slot) = &self.drive {
            if !matches!(slot.lock().mode, SpecMode::Direct | SpecMode::Poisoned) {
                return match slot.nongated(NgKind::AbId) {
                    NgValue::AbId(id) => id,
                    v => unreachable!("expected AbId answer, got {v:?}"),
                };
            }
        }
        self.shared.lock().tx_ab_id(tid)
    }

    // ----- nontransactional API --------------------------------------------

    /// Nontransactional load (escapes isolation; never aborts anyone).
    pub async fn nt_load(&mut self, addr: Addr) -> u64 {
        if self.is_spec() {
            match self.gate_op(Op::NtLoad { addr }).await {
                OpResult::Val(v) => v,
                r => unreachable!("expected Val result, got {r:?}"),
            }
        } else {
            self.gate(|st, tid| st.nt_load(tid, addr)).await
        }
    }

    /// Plain non-speculative load (outside transactions / irrevocable
    /// mode): dooms speculative writers of the line so uncommitted data is
    /// never observed.
    pub async fn plain_load(&mut self, addr: Addr) -> u64 {
        if self.is_spec() {
            match self.gate_op(Op::PlainLoad { addr }).await {
                OpResult::Val(v) => v,
                r => unreachable!("expected Val result, got {r:?}"),
            }
        } else {
            self.gate(|st, tid| st.plain_load(tid, addr)).await
        }
    }

    /// Plain non-speculative store — identical coherence behaviour to
    /// [`Core::nt_store`] (dooms all speculative owners of the line).
    pub async fn plain_store(&mut self, addr: Addr, val: u64) {
        self.nt_store(addr, val).await
    }

    /// Nontransactional store (immediately visible; aborts conflicting
    /// speculative owners on other cores).
    pub async fn nt_store(&mut self, addr: Addr, val: u64) {
        if self.is_spec() {
            Self::expect_unit(self.gate_op(Op::NtStore { addr, val }).await)
        } else {
            self.gate(|st, tid| ((), st.nt_store(tid, addr, val))).await
        }
    }

    /// Nontransactional compare-and-swap.
    pub async fn nt_cas(&mut self, addr: Addr, old: u64, new: u64) -> bool {
        if self.is_spec() {
            match self.gate_op(Op::NtCas { addr, old, new }).await {
                OpResult::Flag(b) => b,
                r => unreachable!("expected Flag result, got {r:?}"),
            }
        } else {
            self.gate(|st, tid| st.nt_cas(tid, addr, old, new)).await
        }
    }

    // ----- services ---------------------------------------------------------

    /// Allocate `words` from this core's arena.
    pub async fn alloc(&mut self, words: u64, line_align: bool) -> Addr {
        if self.is_spec() {
            match self.gate_op(Op::Alloc { words, line_align }).await {
                OpResult::Val(a) => a,
                r => unreachable!("expected Val result, got {r:?}"),
            }
        } else {
            self.gate(|st, tid| st.alloc(tid, words, line_align)).await
        }
    }

    /// Charge advisory-lock wait cycles (runtime bookkeeping: advances the
    /// clock like `compute` and records the amount in the core's stats).
    pub async fn charge_lock_wait(&mut self, cycles: u64) {
        self.compute(cycles);
        if self.is_spec() {
            Self::expect_unit(self.gate_op(Op::LockWait { cycles }).await)
        } else {
            self.gate(move |st, tid| {
                st.cores[tid].stats.lock_wait_cycles += cycles;
                ((), 0)
            })
            .await
        }
    }

    /// Charge retry-backoff cycles.
    pub async fn charge_backoff(&mut self, cycles: u64) {
        self.compute(cycles);
        if self.is_spec() {
            Self::expect_unit(self.gate_op(Op::Backoff { cycles }).await)
        } else {
            self.gate(move |st, tid| {
                st.cores[tid].stats.backoff_cycles += cycles;
                ((), 0)
            })
            .await
        }
    }

    /// Record an irrevocable (global-lock) execution: `cycles` spent and
    /// one irrevocable commit.
    pub async fn record_irrevocable(&mut self, cycles: u64) {
        if self.is_spec() {
            Self::expect_unit(self.gate_op(Op::Irrevocable { cycles }).await)
        } else {
            self.gate(move |st, tid| {
                st.cores[tid].stats.irrevocable_cycles += cycles;
                st.cores[tid].stats.irrevocable_commits += 1;
                ((), 0)
            })
            .await
        }
    }

    /// Record an observability event at this core's current logical time
    /// ([`Core::now`], which includes pending compute cycles). NOT a gated
    /// op: it pushes to this core's own ring without advancing any clock or
    /// touching any counter, so recording cannot perturb the simulation —
    /// and with [`MachineConfig::record_events`] off it is a single branch.
    pub fn note(&mut self, kind: ObsKind) {
        if !self.record {
            return;
        }
        let tid = self.tid;
        let clock = self.now();
        if let Drive::Spec(slot) = &self.drive {
            // Speculating: queued with the overlay clock and emitted at
            // commit time in per-core order. Replaying: consumed against the
            // committed prefix (re-queued if it falls past it). Only a
            // Direct core falls through to emit against real state.
            if slot.note(clock, kind) {
                return;
            }
        }
        self.shared.lock().note_at(tid, clock, kind);
    }
}

impl Drop for Core<'_> {
    /// Retire the core: fold any pending compute cycles, mark it finished,
    /// and wake whichever core becomes the minimum. Running this on drop
    /// (rather than after a normal body return) also retires cores whose
    /// bodies unwound, so a panic on one core cannot park the rest forever.
    fn drop(&mut self) {
        let tid = self.tid;
        if let Drive::Spec(slot) = &self.drive {
            if slot.finish(self.pending) {
                // Queued as a Finish record (or dropped, for a poisoned or
                // mid-replay teardown); the commit walk retires the core.
                self.pending = 0;
                return;
            }
            // Direct cores (including one demoted by this very finish)
            // retire against real state, with nobody to wake.
            let mut st = self.shared.lock();
            st.cores[tid].clock += self.pending;
            self.pending = 0;
            st.cores[tid].finished = true;
            self.last_clock = st.cores[tid].clock;
            return;
        }
        let mut st = self.shared.lock();
        st.cores[tid].clock += self.pending;
        self.pending = 0;
        st.cores[tid].finished = true;
        self.last_clock = st.cores[tid].clock;
        if matches!(self.drive, Drive::Threaded) {
            if let Some(n) = st.next_eligible() {
                if st.cores[n].waiting {
                    self.shared.cvs[n].notify_one();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::AbortCause;

    /// Every test runs under all three drivers via this helper, so the
    /// suite exercises scheduler equivalence at the unit level too. (Tests
    /// that use `run` rather than `run_uniform` exercise the speculative
    /// machine's cooperative fallback, which must be equivalent too.)
    fn machines(n: usize) -> [Machine; 3] {
        let mut threaded = MachineConfig::cores(n).small();
        threaded.scheduler = Scheduler::Threaded;
        let mut speculative = MachineConfig::cores(n).small();
        speculative.scheduler = Scheduler::Speculative;
        [
            Machine::new(MachineConfig::cores(n).small()),
            Machine::new(threaded),
            Machine::new(speculative),
        ]
    }

    #[test]
    fn single_thread_counter() {
        for m in machines(1) {
            let a = m.host_alloc(8, true);
            m.run_uniform(move |mut c| async move {
                for _ in 0..10 {
                    c.tx_begin(0).await;
                    let v = c.tx_load(a, 0x400).await.unwrap();
                    c.tx_store(a, v + 1, 0x404).await.unwrap();
                    c.tx_commit().await.unwrap();
                }
            });
            assert_eq!(m.host_load(a), 10);
            let st = m.stats();
            assert_eq!(st.aggregate().commits, 10);
            assert_eq!(st.aggregate().aborts(), 0);
            assert!(st.exec_cycles > 0);
            // begin + load + store + commit, 10 iterations.
            assert_eq!(st.aggregate().gated_ops, 40);
        }
    }

    #[test]
    fn concurrent_counter_is_serializable() {
        // 4 cores × 50 increments with retry loops: the final value must be
        // exactly 200 — the fundamental HTM correctness property.
        for m in machines(4) {
            let a = m.host_alloc(8, true);
            m.run_uniform(move |mut c| async move {
                for _ in 0..50 {
                    loop {
                        c.tx_begin(0).await;
                        let r = match c.tx_load(a, 0x400).await {
                            Ok(v) => {
                                c.compute(20); // widen the conflict window
                                c.tx_store(a, v + 1, 0x404).await
                            }
                            Err(e) => Err(e),
                        };
                        let committed = match r {
                            Ok(()) => c.tx_commit().await.is_ok(),
                            Err(_) => false,
                        };
                        if committed {
                            break;
                        }
                    }
                }
            });
            assert_eq!(m.host_load(a), 200);
            let agg = m.stats().aggregate();
            assert_eq!(agg.commits, 200);
            assert!(agg.aborts() > 0, "contended counter must abort sometimes");
        }
    }

    fn contended_run(scheduler: Scheduler) -> (u64, u64, u64, Vec<u64>) {
        let mut cfg = MachineConfig::cores(4).small();
        cfg.scheduler = scheduler;
        let m = Machine::new(cfg);
        let a = m.host_alloc(8, true);
        m.run_uniform(move |mut c| async move {
            for i in 0..30u64 {
                loop {
                    c.tx_begin(0).await;
                    let r = match c.tx_load(a, 0x400).await {
                        Ok(v) => {
                            c.compute((c.tid() as u64) * 7 + i % 5);
                            c.tx_store(a, v + 1, 0x404).await
                        }
                        Err(e) => Err(e),
                    };
                    let committed = match r {
                        Ok(()) => c.tx_commit().await.is_ok(),
                        Err(_) => false,
                    };
                    if committed {
                        break;
                    }
                }
            }
        });
        let st = m.stats();
        (
            st.exec_cycles,
            st.aggregate().aborts(),
            st.aggregate().gated_ops,
            st.cores.iter().map(|c| c.total_cycles).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn determinism_across_runs_and_schedulers() {
        let a = contended_run(Scheduler::Cooperative);
        let b = contended_run(Scheduler::Cooperative);
        assert_eq!(a, b, "simulation must be bit-for-bit deterministic");
        let c = contended_run(Scheduler::Threaded);
        assert_eq!(a, c, "schedulers must produce identical simulations");
        let d = contended_run(Scheduler::Speculative);
        assert_eq!(a, d, "speculative execution must be invisible");
    }

    #[test]
    fn speculative_scheduler_reports_its_work() {
        let mut cfg = MachineConfig::cores(2).small();
        cfg.scheduler = Scheduler::Speculative;
        let m = Machine::new(cfg);
        let a = m.host_alloc(16, true);
        m.run_uniform(move |mut c| async move {
            let a = a + (c.tid() as u64) * 64;
            for _ in 0..20 {
                c.tx_begin(0).await;
                let v = c.tx_load(a, 0).await.unwrap();
                c.tx_store(a, v + 1, 0).await.unwrap();
                c.tx_commit().await.unwrap();
            }
        });
        let s = m.spec_stats();
        assert!(s.rounds > 0, "speculative driver must have run rounds");
        assert!(s.speculated_ops > 0);
        // Disjoint lines: every prediction must validate.
        assert_eq!(s.mismatches, 0);
        assert_eq!(s.committed_ops, s.speculated_ops);
        // And the simulation itself is unperturbed.
        assert_eq!(m.stats().aggregate().commits, 40);
    }

    #[test]
    fn speculative_mismatches_rebuild_and_converge() {
        // Same hot-counter workload as the equivalence test: cross-core
        // conflicts guarantee stale overlay predictions, exercising the
        // mismatch → rebuild → replay path.
        let mut cfg = MachineConfig::cores(4).small();
        cfg.scheduler = Scheduler::Speculative;
        let m = Machine::new(cfg);
        let a = m.host_alloc(8, true);
        m.run_uniform(move |mut c| async move {
            for _ in 0..25 {
                loop {
                    c.tx_begin(0).await;
                    let r = match c.tx_load(a, 0x400).await {
                        Ok(v) => {
                            c.compute(20);
                            c.tx_store(a, v + 1, 0x404).await
                        }
                        Err(e) => Err(e),
                    };
                    let committed = match r {
                        Ok(()) => c.tx_commit().await.is_ok(),
                        Err(_) => false,
                    };
                    if committed {
                        break;
                    }
                }
            }
        });
        assert_eq!(m.host_load(a), 100);
        let s = m.spec_stats();
        assert!(
            s.mismatches > 0 && s.rebuilds > 0,
            "hot counter must force mis-speculation (got {s:?})"
        );
    }

    #[test]
    fn disjoint_lines_never_conflict() {
        for m in machines(4) {
            let base = m.host_alloc(8 * 8 * 4, true);
            m.run_uniform(move |mut c| async move {
                let a = base + (c.tid() as u64) * 64;
                for _ in 0..25 {
                    c.tx_begin(0).await;
                    let v = c.tx_load(a, 0).await.unwrap();
                    c.tx_store(a, v + 1, 0).await.unwrap();
                    c.tx_commit().await.unwrap();
                }
            });
            let agg = m.stats().aggregate();
            assert_eq!(agg.commits, 100);
            assert_eq!(agg.aborts(), 0);
        }
    }

    #[test]
    fn nt_cas_lock_mutual_exclusion() {
        // An advisory-lock-style spinlock built from NT CAS protects a
        // plain (nontransactional) counter.
        for m in machines(4) {
            let lock = m.host_alloc(8, true);
            let counter = m.host_alloc(8, true);
            m.run_uniform(move |mut c| async move {
                for _ in 0..25 {
                    while !c.nt_cas(lock, 0, (c.tid() + 1) as u64).await {
                        c.compute(20);
                    }
                    let v = c.nt_load(counter).await;
                    c.compute(5);
                    c.nt_store(counter, v + 1).await;
                    c.nt_store(lock, 0).await;
                }
            });
            assert_eq!(m.host_load(counter), 100);
        }
    }

    #[test]
    fn advisory_lock_inside_transaction() {
        // The paper's core mechanism: acquire an NT lock inside an active
        // transaction; serialized sections stop aborting each other.
        for m in machines(4) {
            let lock = m.host_alloc(8, true);
            let data = m.host_alloc(8, true);
            m.run_uniform(move |mut c| async move {
                for _ in 0..20 {
                    loop {
                        c.tx_begin(0).await;
                        // Advisory lock acquire via NT CAS, inside the txn.
                        let mut spins = 0u64;
                        while !c.nt_cas(lock, 0, (c.tid() + 1) as u64).await {
                            c.charge_lock_wait(30).await;
                            spins += 1;
                            if spins > 10_000 {
                                break; // timeout: proceed without the lock
                            }
                        }
                        let r = match c.tx_load(data, 0x100).await {
                            Ok(v) => {
                                c.compute(30);
                                c.tx_store(data, v + 1, 0x104).await
                            }
                            Err(e) => Err(e),
                        };
                        let committed = match r {
                            Ok(()) => c.tx_commit().await.is_ok(),
                            Err(_) => false,
                        };
                        // Release even on abort, as the runtime does.
                        c.nt_store(lock, 0).await;
                        if committed {
                            break;
                        }
                    }
                }
            });
            assert_eq!(m.host_load(data), 80);
            let agg = m.stats().aggregate();
            assert_eq!(agg.commits, 80);
            // Staggered by the advisory lock: conflicts should be rare.
            assert!(
                agg.aborts() <= 8,
                "advisory lock should nearly eliminate aborts, got {}",
                agg.aborts()
            );
            assert!(agg.lock_wait_cycles > 0);
        }
    }

    #[test]
    fn explicit_abort_counts() {
        for m in machines(1) {
            let a = m.host_alloc(8, true);
            m.run_uniform(move |mut c| async move {
                assert_eq!(c.tx_ab_id(), None);
                c.tx_begin(0).await;
                assert_eq!(c.tx_ab_id(), Some(0));
                c.tx_store(a, 5, 0).await.unwrap();
                let e = c.tx_abort().await;
                assert_eq!(e.info().cause, AbortCause::Explicit);
            });
            assert_eq!(m.host_load(a), 0, "aborted write must roll back");
            assert_eq!(m.stats().aggregate().explicit_aborts, 1);
        }
    }

    #[test]
    fn alloc_in_threads_disjoint() {
        for m in machines(4) {
            let out = m.host_alloc(8 * 4, true);
            m.run_uniform(move |mut c| async move {
                let p = c.alloc(8, true).await;
                c.nt_store(p, c.tid() as u64 + 100).await;
                c.nt_store(out + (c.tid() as u64) * 8, p).await;
            });
            let mut ptrs: Vec<u64> = (0..4).map(|i| m.host_load(out + i * 8)).collect();
            ptrs.sort();
            ptrs.dedup();
            assert_eq!(ptrs.len(), 4, "allocations must not alias");
            for &p in ptrs.iter() {
                assert!(m.host_load(p) >= 100);
            }
        }
    }

    #[test]
    fn clocks_interleave_fairly() {
        // A core that does tiny ops and one that does huge computes: total
        // time is driven by the slow core, and the fast core should not be
        // starved (its ops happen "during" the slow core's computes).
        for m in machines(2) {
            let a = m.host_alloc(16, true);
            m.run(vec![
                body(move |mut c| async move {
                    for _ in 0..100 {
                        let now = c.now();
                        c.nt_store(a, now).await;
                    }
                }),
                body(move |mut c| async move {
                    for _ in 0..5 {
                        c.compute(10_000);
                        let now = c.now();
                        c.nt_store(a + 8, now).await;
                    }
                }),
            ]);
            let st = m.stats();
            assert!(st.cores[1].total_cycles >= 50_000);
            assert!(st.cores[0].total_cycles < st.cores[1].total_cycles);
        }
    }

    #[test]
    fn stats_snapshot_exec_cycles_is_max() {
        for m in machines(2) {
            m.run(vec![
                body(|mut c| async move { c.compute(100) }),
                body(|mut c| async move { c.compute(500) }),
            ]);
            let st = m.stats();
            assert_eq!(
                st.exec_cycles,
                st.cores.iter().map(|c| c.total_cycles).max().unwrap()
            );
            assert_eq!(st.exec_cycles, 500);
        }
    }

    #[test]
    fn env_var_is_a_fallback_for_unpinned_configs() {
        // Env mutation is process-global; a Machine::new racing this window
        // merely runs threaded, which is semantically equivalent.
        std::env::set_var("HTM_SIM_SCHEDULER", "threads");
        let m = Machine::new(MachineConfig::cores(1).small());
        // An explicitly pinned scheduler beats the environment variable.
        let pinned = Machine::new(
            MachineConfig::cores(1)
                .small()
                .scheduler(Scheduler::Cooperative),
        );
        std::env::remove_var("HTM_SIM_SCHEDULER");
        assert_eq!(m.config().scheduler, Scheduler::Threaded);
        assert_eq!(pinned.config().scheduler, Scheduler::Cooperative);
        let m = Machine::new(MachineConfig::cores(1).small());
        assert_eq!(m.config().scheduler, Scheduler::Cooperative);
    }
}
