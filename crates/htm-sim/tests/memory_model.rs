//! Randomized tests for the simulated machine's memory model, driven by a
//! fixed-seed in-tree PRNG so every run checks the same cases.

use htm_sim::{body, Machine, MachineConfig};
use stagger_prng::Xoshiro256StarStar;
use std::collections::HashMap;

/// A random single-core sequence of transactional/nontransactional
/// operations, interpreted against a plain HashMap reference model, must
/// produce identical memory contents (single-threaded transactions always
/// commit, so they are just sequenced stores).
#[derive(Debug, Clone)]
enum Op {
    NtStore(u64, u64),
    NtLoad(u64),
    Txn(Vec<(u64, u64)>), // read-modify-write pairs: addr += delta
}

fn random_op(rng: &mut Xoshiro256StarStar) -> Op {
    let addr = |rng: &mut Xoshiro256StarStar| 4096 + rng.below(32) * 8;
    match rng.below(3) {
        0 => Op::NtStore(addr(rng), rng.next_u64()),
        1 => Op::NtLoad(addr(rng)),
        _ => {
            let n = rng.gen_range(1, 6);
            Op::Txn((0..n).map(|_| (addr(rng), rng.gen_range(1, 100))).collect())
        }
    }
}

#[test]
fn single_core_matches_reference_model() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x6D6F_64656C);
    for _case in 0..16 {
        let n_ops = rng.gen_range(1, 40) as usize;
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();

        let machine = Machine::new(MachineConfig::cores(1).small());
        let _heap = machine.host_alloc(64, true); // cover the address range
        let mut model: HashMap<u64, u64> = HashMap::new();

        let ops2 = ops.clone();
        machine.run(vec![body(move |mut c| async move {
            for op in &ops2 {
                match op {
                    Op::NtStore(a, v) => c.nt_store(*a, *v).await,
                    Op::NtLoad(a) => {
                        let _ = c.nt_load(*a).await;
                    }
                    Op::Txn(rmws) => {
                        c.tx_begin(0).await;
                        for (a, d) in rmws {
                            let v = c.tx_load(*a, 0x400).await.unwrap();
                            c.tx_store(*a, v + d, 0x404).await.unwrap();
                        }
                        c.tx_commit().await.unwrap();
                    }
                }
            }
        })]);

        for op in &ops {
            match op {
                Op::NtStore(a, v) => {
                    model.insert(*a, *v);
                }
                Op::NtLoad(_) => {}
                Op::Txn(rmws) => {
                    for (a, d) in rmws {
                        *model.entry(*a).or_insert(0) += d;
                    }
                }
            }
        }
        for (a, v) in &model {
            assert_eq!(machine.host_load(*a), *v, "address {a:#x}");
        }
    }
}

/// Concurrent increments to per-thread-disjoint lines never conflict
/// and always land, for any partitioning.
#[test]
fn disjoint_lines_always_commit() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x6469_736A);
    for _case in 0..8 {
        let n_threads = rng.gen_range(2, 5) as usize;
        let incs = rng.gen_range(1, 20);
        let machine = Machine::new(MachineConfig::cores(n_threads).small());
        let base = machine.host_alloc(n_threads as u64 * 8, true);
        machine.run_uniform(move |mut c| async move {
            let a = base + c.tid() as u64 * 64;
            for _ in 0..incs {
                c.tx_begin(0).await;
                let v = c.tx_load(a, 0).await.unwrap();
                c.tx_store(a, v + 1, 0).await.unwrap();
                c.tx_commit().await.unwrap();
            }
        });
        let agg = machine.stats().aggregate();
        assert_eq!(agg.aborts(), 0);
        for t in 0..n_threads as u64 {
            assert_eq!(machine.host_load(base + t * 64), incs);
        }
    }
}

/// The fundamental HTM property under arbitrary contention: N threads
/// each performing K retried increments of one shared counter always
/// sum exactly, in both protocols.
#[test]
fn contended_counter_is_exact() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x636F_756E74);
    for _case in 0..12 {
        let n_threads = rng.gen_range(2, 5) as usize;
        let incs = rng.gen_range(1, 15);
        let lazy = rng.gen_bool();
        let pad = rng.below(60);
        let cfg = if lazy {
            MachineConfig::cores(n_threads).small().lazy()
        } else {
            MachineConfig::cores(n_threads).small()
        };
        let machine = Machine::new(cfg);
        let a = machine.host_alloc(8, true);
        machine.run_uniform(move |mut c| async move {
            for _ in 0..incs {
                loop {
                    c.tx_begin(0).await;
                    let r = match c.tx_load(a, 0x100).await {
                        Ok(v) => {
                            c.compute(pad);
                            c.tx_store(a, v + 1, 0x104).await
                        }
                        Err(e) => Err(e),
                    };
                    let committed = match r {
                        Ok(()) => c.tx_commit().await.is_ok(),
                        Err(_) => false,
                    };
                    if committed {
                        break;
                    }
                }
            }
        });
        assert_eq!(
            machine.host_load(a),
            n_threads as u64 * incs,
            "threads {n_threads} incs {incs} lazy {lazy} pad {pad}"
        );
    }
}
