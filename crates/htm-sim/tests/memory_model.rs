//! Property tests for the simulated machine's memory model.

use htm_sim::{Core, Machine, MachineConfig};
use proptest::prelude::*;
use std::collections::HashMap;

/// A random single-core sequence of transactional/nontransactional
/// operations, interpreted against a plain HashMap reference model, must
/// produce identical memory contents (single-threaded transactions always
/// commit, so they are just sequenced stores).
#[derive(Debug, Clone)]
enum Op {
    NtStore(u64, u64),
    NtLoad(u64),
    Txn(Vec<(u64, u64)>), // read-modify-write pairs: addr += delta
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let addr = (0u64..32).prop_map(|i| 4096 + i * 8);
    prop_oneof![
        (addr.clone(), any::<u64>()).prop_map(|(a, v)| Op::NtStore(a, v)),
        addr.clone().prop_map(Op::NtLoad),
        proptest::collection::vec((addr, 1u64..100), 1..6).prop_map(Op::Txn),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn single_core_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let machine = Machine::new(MachineConfig::small(1));
        let _heap = machine.host_alloc(64, true); // cover the address range
        let mut model: HashMap<u64, u64> = HashMap::new();

        let ops2 = ops.clone();
        machine.run(vec![Box::new(move |c: &mut Core| {
            for op in &ops2 {
                match op {
                    Op::NtStore(a, v) => c.nt_store(*a, *v),
                    Op::NtLoad(a) => {
                        let _ = c.nt_load(*a);
                    }
                    Op::Txn(rmws) => {
                        c.tx_begin(0);
                        for (a, d) in rmws {
                            let v = c.tx_load(*a, 0x400).unwrap();
                            c.tx_store(*a, v + d, 0x404).unwrap();
                        }
                        c.tx_commit().unwrap();
                    }
                }
            }
        })]);

        for op in &ops {
            match op {
                Op::NtStore(a, v) => {
                    model.insert(*a, *v);
                }
                Op::NtLoad(_) => {}
                Op::Txn(rmws) => {
                    for (a, d) in rmws {
                        *model.entry(*a).or_insert(0) += d;
                    }
                }
            }
        }
        for (a, v) in &model {
            prop_assert_eq!(machine.host_load(*a), *v, "address {:#x}", a);
        }
    }

    /// Concurrent increments to per-thread-disjoint lines never conflict
    /// and always land, for any partitioning.
    #[test]
    fn disjoint_lines_always_commit(
        n_threads in 2usize..5,
        incs in 1u64..20,
    ) {
        let machine = Machine::new(MachineConfig::small(n_threads));
        let base = machine.host_alloc(n_threads as u64 * 8, true);
        machine.run_uniform(|c| {
            let a = base + c.tid() as u64 * 64;
            for _ in 0..incs {
                c.tx_begin(0);
                let v = c.tx_load(a, 0).unwrap();
                c.tx_store(a, v + 1, 0).unwrap();
                c.tx_commit().unwrap();
            }
        });
        let agg = machine.stats().aggregate();
        prop_assert_eq!(agg.aborts(), 0);
        for t in 0..n_threads as u64 {
            prop_assert_eq!(machine.host_load(base + t * 64), incs);
        }
    }

    /// The fundamental HTM property under arbitrary contention: N threads
    /// each performing K retried increments of one shared counter always
    /// sum exactly, in both protocols.
    #[test]
    fn contended_counter_is_exact(
        n_threads in 2usize..5,
        incs in 1u64..15,
        lazy in any::<bool>(),
        pad in 0u32..60,
    ) {
        let cfg = if lazy {
            MachineConfig::small_lazy(n_threads)
        } else {
            MachineConfig::small(n_threads)
        };
        let machine = Machine::new(cfg);
        let a = machine.host_alloc(8, true);
        machine.run_uniform(|c| {
            for _ in 0..incs {
                loop {
                    c.tx_begin(0);
                    let r = (|| {
                        let v = c.tx_load(a, 0x100)?;
                        c.compute(pad as u64);
                        c.tx_store(a, v + 1, 0x104)?;
                        Ok::<_, htm_sim::TxError>(())
                    })();
                    if r.and_then(|()| c.tx_commit()).is_ok() {
                        break;
                    }
                }
            }
        });
        prop_assert_eq!(machine.host_load(a), n_threads as u64 * incs);
    }
}
