//! Randomized cross-scheduler stress test.
//!
//! 500 short simulations with randomized core counts, speculation quantum
//! lengths, host thread counts and per-core op mixes (transactions with
//! retry, plain and non-transactional accesses, CAS, compute bursts and
//! observability notes). Every scenario runs under all three schedulers
//! and must produce byte-identical stats, traces and event streams —
//! the speculative driver's whole contract is that randomizing *host*
//! knobs (`spec_quantum`, `host_threads`) is invisible to the simulation.

use htm_sim::{Machine, MachineConfig, ObsEvent, ObsKind, Scheduler, SimStats, TraceEvent};
use stagger_prng::Xoshiro256StarStar;

const SCENARIOS: u64 = 500;

type Artifacts = (SimStats, Vec<Vec<TraceEvent>>, Vec<Vec<ObsEvent>>);

/// One short run: each core executes a deterministic pseudo-random op
/// sequence derived from `(seed, tid)`, hammering a small pool of shared
/// cache lines so transactions genuinely conflict and abort.
fn run_scenario(
    seed: u64,
    n_cores: usize,
    iters: u64,
    n_lines: u64,
    scheduler: Scheduler,
    spec_quantum: usize,
    host_threads: usize,
) -> Artifacts {
    let cfg = MachineConfig::cores(n_cores)
        .small()
        .record_trace()
        .record_events()
        .spec_quantum(spec_quantum)
        .host_threads(host_threads);
    let mut cfg = cfg;
    cfg.scheduler = scheduler;
    let m = Machine::new(cfg);
    let base = m.host_alloc(8 * n_lines, true);
    m.run_uniform(move |mut c| async move {
        let mut rng =
            Xoshiro256StarStar::seed_from_u64(seed ^ (c.tid() as u64).wrapping_mul(0x9E37));
        let line = |rng: &mut Xoshiro256StarStar| base + rng.below(n_lines) * 64;
        for i in 0..iters {
            match rng.below(6) {
                0 | 1 => {
                    // A small transaction, retried until it commits. Each
                    // retry re-draws addresses; determinism only requires
                    // that all schedulers see the same abort sequence.
                    loop {
                        c.tx_begin((i % 4) as u32).await;
                        let n_ops = 1 + rng.below(3);
                        let mut ok = true;
                        for j in 0..n_ops {
                            let a = line(&mut rng);
                            let r = if rng.gen_bool() {
                                c.tx_load(a, 0x100 + j).await.map(|_| ())
                            } else {
                                c.tx_store(a, i * 31 + j, 0x200 + j).await
                            };
                            if r.is_err() {
                                ok = false;
                                break;
                            }
                        }
                        if ok && c.tx_commit().await.is_ok() {
                            break;
                        }
                    }
                }
                2 => {
                    let a = line(&mut rng);
                    let v = c.plain_load(a).await;
                    c.plain_store(a, v.wrapping_add(1)).await;
                }
                3 => {
                    let a = line(&mut rng);
                    let old = c.nt_load(a).await;
                    c.nt_cas(a, old, old.wrapping_add(i)).await;
                }
                4 => c.compute(1 + rng.below(7)),
                _ => {
                    // Exercise the non-gated observability path under
                    // speculation (notes are deferred and replayed in
                    // commit order).
                    let w = line(&mut rng);
                    c.note(ObsKind::LockAcquire { word: w, waited: 0 });
                }
            }
        }
    });
    (m.stats(), m.take_trace(), m.take_events())
}

#[test]
fn randomized_runs_are_scheduler_invariant() {
    let mut meta = Xoshiro256StarStar::seed_from_u64(0x5EED_2015);
    for s in 0..SCENARIOS {
        let seed = meta.next_u64();
        // Mostly tiny machines (they maximize conflict density per op),
        // with a steady trickle of 64-core scenarios to exercise the
        // multi-word ownership bitsets past the old u32 boundary.
        let n_cores = if meta.below(16) == 0 {
            64
        } else {
            1 + meta.index(4)
        };
        let iters = 1 + meta.below(8);
        let n_lines = 1 + meta.below(3);
        // Randomized *host* knobs: quantum length and worker count must
        // never change what the simulated machine does.
        let quantum = 1 + meta.index(12);
        let workers = 1 + meta.index(4);
        let run = |sch| run_scenario(seed, n_cores, iters, n_lines, sch, quantum, workers);
        let coop = run(Scheduler::Cooperative);
        let thr = run(Scheduler::Threaded);
        assert_eq!(
            coop, thr,
            "scenario {s} (cores={n_cores} iters={iters} lines={n_lines}): \
             threaded diverged from cooperative"
        );
        let spec = run(Scheduler::Speculative);
        assert_eq!(
            coop, spec,
            "scenario {s} (cores={n_cores} iters={iters} lines={n_lines} \
             q={quantum} workers={workers}): speculative diverged from cooperative"
        );
    }
}
