//! End-to-end Criterion benches: tiny versions of representative
//! benchmarks across all four execution modes. These measure *host* wall
//! time of a full simulated run — useful for tracking simulator/runtime
//! performance regressions; the paper's *simulated-cycle* comparisons come
//! from the `fig7`/`fig8` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stagger_core::Mode;
use std::hint::black_box;
use workloads::Workload;

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("modes");
    g.sample_size(10);

    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(workloads::list::ListBench::tiny(60, 20)),
        Box::new(workloads::kmeans::Kmeans::tiny()),
        Box::new(workloads::memcached::Memcached::tiny()),
    ];
    for w in &workloads {
        for mode in Mode::ALL {
            g.bench_with_input(
                BenchmarkId::new(w.name(), mode.name()),
                &mode,
                |b, &mode| {
                    b.iter(|| {
                        black_box(workloads::run_benchmark(w.as_ref(), mode, 4, 7));
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling");
    g.sample_size(10);
    let w = workloads::ssca2::Ssca2::tiny();
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("ssca2", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(workloads::run_benchmark(&w, Mode::Staggered, threads, 3));
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_modes, bench_thread_scaling);
criterion_main!(benches);
