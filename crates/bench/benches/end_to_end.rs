//! End-to-end timing benches: tiny versions of representative benchmarks
//! across all four execution modes. These measure *host* wall time of a
//! full simulated run — useful for tracking simulator/runtime performance
//! regressions; the paper's *simulated-cycle* comparisons come from the
//! `fig7`/`fig8` binaries.
//!
//! Plain `fn main` harness (no external bench framework): each case runs a
//! warm-up pass plus `ITERS` timed iterations and prints the mean wall
//! time per iteration. Run with `cargo bench --bench end_to_end`.

use std::hint::black_box;
use std::time::Instant;

use stagger_core::Mode;
use workloads::{PreparedWorkload, Workload};

const ITERS: u32 = 10;

/// Time `f` over `ITERS` iterations (after one warm-up call) and print the
/// mean per-iteration wall time.
fn time_case(label: &str, mut f: impl FnMut()) {
    f();
    let t0 = Instant::now();
    for _ in 0..ITERS {
        f();
    }
    let per = t0.elapsed() / ITERS;
    println!("{label:<44} {:>12.3} ms/iter", per.as_secs_f64() * 1e3);
}

fn bench_modes() {
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(workloads::list::ListBench::tiny(60, 20)),
        Box::new(workloads::kmeans::Kmeans::tiny()),
        Box::new(workloads::memcached::Memcached::tiny()),
    ];
    for w in &workloads {
        let p = PreparedWorkload::new(w.as_ref());
        for mode in Mode::ALL {
            time_case(&format!("modes/{}/{}", w.name(), mode.name()), || {
                black_box(p.run(mode, 4, 7));
            });
        }
    }
}

fn bench_thread_scaling() {
    let w = workloads::ssca2::Ssca2::tiny();
    let p = PreparedWorkload::new(&w);
    for threads in [1usize, 2, 4, 8] {
        time_case(&format!("scaling/ssca2/{threads}"), || {
            black_box(p.run(Mode::Staggered, threads, 3));
        });
    }
}

fn main() {
    bench_modes();
    bench_thread_scaling();
}
