//! Microbenches for the mechanism costs the paper argues are negligible
//! (Section 6.1): the ALPoint fast path, abort-history bookkeeping, policy
//! activation, anchor-table lookups, advisory-lock operations, the
//! compiler pass itself, and raw interpreter throughput.
//!
//! Plain `fn main` harness (no external bench framework): each case runs a
//! calibrated number of iterations and prints mean wall time per iteration.
//! Run with `cargo bench --bench mechanisms`.

use std::hint::black_box;
use std::time::Instant;

use htm_sim::{body, Machine, MachineConfig};
use stagger_compiler::compile;
use stagger_core::{
    activate_alpoint, ABContext, AbortHistory, Mode, PolicyConfig, RuntimeConfig, SharedRt,
};
use tm_ir::CodeLayout;
use workloads::Workload;

/// Time `f` over `iters` iterations (after one warm-up call) and print the
/// mean per-iteration wall time.
fn time_case(label: &str, iters: u32, mut f: impl FnMut()) {
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed() / iters;
    if per.as_secs_f64() >= 1e-3 {
        println!("{label:<44} {:>12.3} ms/iter", per.as_secs_f64() * 1e3);
    } else {
        println!("{label:<44} {:>12.0} ns/iter", per.as_secs_f64() * 1e9);
    }
}

fn bench_history() {
    let mut h = AbortHistory::new(8);
    for i in 0..8u64 {
        h.append(0x400 + i, 0x1000 + i * 64);
    }
    time_case("history/append+counts", 1_000_000, || {
        h.append(black_box(0x404), black_box(0x1040));
        black_box(h.count_pc(0x404) + h.count_addr(0x1040));
    });
}

fn bench_policy() {
    let w = workloads::list::ListBench::lo();
    let module = w.build_module();
    let compiled = compile(&module);
    let table = compiled.table(0);
    let anchor = table
        .entries
        .iter()
        .find(|e| e.is_anchor)
        .map(|e| (e.anchor_id, e.pc))
        .unwrap();
    let cfg = PolicyConfig::default();
    time_case("policy/activate_alpoint", 100_000, || {
        let mut ctx = ABContext::new(0, 8);
        for i in 0..8u64 {
            activate_alpoint(
                &cfg,
                table,
                &mut ctx,
                anchor.0,
                anchor.1,
                0x1000 + (i % 3) * 64,
                (i % 5) as u32,
            );
        }
        black_box(ctx.activation);
    });
}

fn bench_anchor_table() {
    let w = workloads::memcached::Memcached::default();
    let module = w.build_module();
    let compiled = compile(&module);
    let table = compiled.table(0);
    let pcs: Vec<u64> = table.entries.iter().map(|e| e.pc).collect();
    let mut i = 0;
    time_case("anchor_table/search_by_pc_tag", 1_000_000, || {
        i = (i + 1) % pcs.len();
        black_box(table.search_by_pc_tag(CodeLayout::truncate_pc(pcs[i])));
    });
}

fn bench_compile_pass() {
    for w in workloads::all_workloads() {
        // One representative small and one large module keep bench time sane.
        if w.name() != "list-lo" && w.name() != "memcached" {
            continue;
        }
        let module = w.build_module();
        time_case(&format!("compiler/compile/{}", w.name()), 200, || {
            black_box(compile(black_box(&module)));
        });
    }
}

fn bench_locks() {
    // Measure the simulated-machine path end to end (host wall time of a
    // sequence of lock ops on one core).
    time_case("locks/acquire_release_uncontended", 200, || {
        let machine = Machine::new(MachineConfig::cores(1).small());
        let cfg = RuntimeConfig::with_mode(Mode::Staggered);
        let shared = SharedRt::new(&machine, &cfg);
        machine.run(vec![body(move |mut core| async move {
            for i in 0..100u64 {
                let w = shared
                    .locks
                    .acquire(&mut core, 0x1000 + i * 64, 1000, 30)
                    .await
                    .unwrap();
                shared.locks.release(&mut core, w).await;
            }
        })]);
    });
}

fn bench_interpreter() {
    // Raw interpreter throughput: single-core counter loop.
    let w = workloads::ssca2::Ssca2 {
        n_nodes: 64,
        max_degree: 7,
        total_ops: 1000,
    };
    time_case("interp/single_thread_counter_1000_txns", 20, || {
        black_box(workloads::run_benchmark(black_box(&w), Mode::Htm, 1, 42));
    });
}

fn main() {
    bench_history();
    bench_policy();
    bench_anchor_table();
    bench_compile_pass();
    bench_locks();
    bench_interpreter();
}
