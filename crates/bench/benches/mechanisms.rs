//! Criterion microbenches for the mechanism costs the paper argues are
//! negligible (Section 6.1): the ALPoint fast path, abort-history
//! bookkeeping, policy activation, anchor-table lookups, advisory-lock
//! operations, the compiler pass itself, and raw interpreter throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use htm_sim::{Machine, MachineConfig};
use stagger_compiler::compile;
use stagger_core::{
    activate_alpoint, ABContext, AbortHistory, Mode, PolicyConfig, RuntimeConfig, SharedRt,
};
use tm_ir::CodeLayout;
use workloads::Workload;

fn bench_history(c: &mut Criterion) {
    c.bench_function("history/append+counts", |b| {
        let mut h = AbortHistory::new(8);
        for i in 0..8u64 {
            h.append(0x400 + i, 0x1000 + i * 64);
        }
        b.iter(|| {
            h.append(black_box(0x404), black_box(0x1040));
            black_box(h.count_pc(0x404) + h.count_addr(0x1040))
        });
    });
}

fn bench_policy(c: &mut Criterion) {
    let w = workloads::list::ListBench::lo();
    let module = w.build_module();
    let compiled = compile(&module);
    let table = compiled.table(0);
    let anchor = table
        .entries
        .iter()
        .find(|e| e.is_anchor)
        .map(|e| (e.anchor_id, e.pc))
        .unwrap();
    let cfg = PolicyConfig::default();
    c.bench_function("policy/activate_alpoint", |b| {
        b.iter_batched(
            || ABContext::new(0, 8),
            |mut ctx| {
                for i in 0..8u64 {
                    activate_alpoint(
                        &cfg,
                        table,
                        &mut ctx,
                        anchor.0,
                        anchor.1,
                        0x1000 + (i % 3) * 64,
                        (i % 5) as u32,
                    );
                }
                black_box(ctx.activation)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_anchor_table(c: &mut Criterion) {
    let w = workloads::memcached::Memcached::default();
    let module = w.build_module();
    let compiled = compile(&module);
    let table = compiled.table(0);
    let pcs: Vec<u64> = table.entries.iter().map(|e| e.pc).collect();
    c.bench_function("anchor_table/search_by_pc_tag", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % pcs.len();
            black_box(table.search_by_pc_tag(CodeLayout::truncate_pc(pcs[i])))
        });
    });
}

fn bench_compile_pass(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiler");
    for w in workloads::all_workloads() {
        // One representative small and one large module keep bench time sane.
        if w.name() != "list-lo" && w.name() != "memcached" {
            continue;
        }
        let module = w.build_module();
        g.bench_function(format!("compile/{}", w.name()), |b| {
            b.iter(|| black_box(compile(black_box(&module))));
        });
    }
    g.finish();
}

fn bench_locks(c: &mut Criterion) {
    c.bench_function("locks/acquire_release_uncontended", |b| {
        // Measure the simulated-machine path end to end (host wall time of
        // a sequence of lock ops on one core).
        b.iter_batched(
            || Machine::new(MachineConfig::small(1)),
            |machine| {
                let cfg = RuntimeConfig::with_mode(Mode::Staggered);
                let shared = SharedRt::new(&machine, &cfg);
                machine.run(vec![Box::new(move |core: &mut htm_sim::Core| {
                    for i in 0..100u64 {
                        let w = shared
                            .locks
                            .acquire(core, 0x1000 + i * 64, 1000, 30)
                            .unwrap();
                        shared.locks.release(core, w);
                    }
                })]);
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_interpreter(c: &mut Criterion) {
    // Raw interpreter throughput: single-core counter loop.
    c.bench_function("interp/single_thread_counter_1000_txns", |b| {
        let w = workloads::ssca2::Ssca2 {
            n_nodes: 64,
            max_degree: 7,
            total_ops: 1000,
        };
        b.iter(|| {
            black_box(workloads::run_benchmark(
                black_box(&w),
                Mode::Htm,
                1,
                42,
            ))
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets =
        bench_history,
        bench_policy,
        bench_anchor_table,
        bench_compile_pass,
        bench_locks,
        bench_interpreter
);
criterion_main!(benches);
