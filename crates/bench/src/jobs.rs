//! A tiny std-only parallel job runner for the exhibit harnesses.
//!
//! Each exhibit submits its simulator runs as closures; [`run_jobs`]
//! executes them on `n_workers` OS threads and returns the results **in
//! submission order**, so tables print identically at any `--jobs` level.
//! Simulated results are unaffected by harness parallelism — every run is
//! an independent (machine, workload) pair and the simulator itself is
//! deterministic — so parallelism only changes host wall-clock time.
//!
//! Workers pull jobs from a shared atomic index (work stealing by
//! oversubscription is unnecessary: jobs are long and similar-sized). A
//! panicking job (e.g. a workload invariant violation) propagates out of
//! the scope, aborting the harness loudly rather than printing a partial
//! table.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `jobs` on up to `n_workers` threads; results come back in
/// submission order. `n_workers <= 1` runs inline on the caller's thread
/// (the deterministic baseline for `--jobs 1`).
pub fn run_jobs<T, F>(jobs: Vec<F>, n_workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n_workers <= 1 || n <= 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..n_workers.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let f = slots[i].lock().unwrap().take().expect("job taken once");
                let r = f();
                *results[i].lock().unwrap() = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("every job ran to completion")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_submission_order() {
        for workers in [1, 2, 4, 7] {
            let jobs: Vec<_> = (0..23u64).map(|i| move || i * i).collect();
            let out = run_jobs(jobs, workers);
            assert_eq!(out, (0..23u64).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<fn() -> u32> = vec![];
        assert!(run_jobs(none, 4).is_empty());
        assert_eq!(run_jobs(vec![|| 9u32], 4), vec![9]);
    }

    #[test]
    fn workers_actually_share_the_queue() {
        // More jobs than workers: each job records which slot it ran in via
        // a shared counter; all jobs must run exactly once.
        let ran = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..64)
            .map(|_| {
                let ran = &ran;
                move || ran.fetch_add(1, Ordering::Relaxed)
            })
            .collect();
        let out = run_jobs(jobs, 4);
        assert_eq!(out.len(), 64);
        assert_eq!(ran.load(Ordering::Relaxed), 64);
        // Every ticket 0..64 handed out exactly once.
        let mut tickets = out;
        tickets.sort_unstable();
        assert_eq!(tickets, (0..64).collect::<Vec<_>>());
    }
}
