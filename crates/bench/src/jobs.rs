//! A tiny std-only parallel job runner for the exhibit harnesses.
//!
//! Each exhibit submits its simulator runs as closures; [`run_jobs`]
//! executes them on `n_workers` OS threads and returns the results **in
//! submission order**, so tables print identically at any `--jobs` level.
//! Simulated results are unaffected by harness parallelism — every run is
//! an independent (machine, workload) pair and the simulator itself is
//! deterministic — so parallelism only changes host wall-clock time.
//!
//! Workers pull jobs from a shared atomic index (work stealing by
//! oversubscription is unnecessary: jobs are long and similar-sized). A
//! panicking job (e.g. a workload invariant violation) propagates out of
//! the scope, aborting the harness loudly rather than printing a partial
//! table. Never more threads than jobs: a pool of 8 workers over 3 jobs
//! spawns 3 threads.
//!
//! [`run_jobs_timed`] additionally reports per-worker utilization
//! ([`WorkerUtil`]): how many jobs each worker pulled and how long it was
//! busy — the numbers behind the `workers` section of the harness `--json`
//! dump, for diagnosing load imbalance across a pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// What one pool worker did: pulled `jobs_run` jobs and spent `busy_secs`
/// of host time executing them (excluding queue waits, which are ~zero for
/// this pull-based pool).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerUtil {
    pub jobs_run: usize,
    pub busy_secs: f64,
}

impl WorkerUtil {
    fn absorb(&mut self, started: Instant) {
        self.jobs_run += 1;
        self.busy_secs += started.elapsed().as_secs_f64();
    }
}

/// Run `jobs` on up to `n_workers` threads; results come back in
/// submission order. `n_workers <= 1` runs inline on the caller's thread
/// (the deterministic baseline for `--jobs 1`).
pub fn run_jobs<T, F>(jobs: Vec<F>, n_workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_jobs_timed(jobs, n_workers).0
}

/// [`run_jobs`] plus per-worker utilization, one [`WorkerUtil`] per worker
/// thread actually spawned (one entry for the inline path). The pool never
/// spawns more threads than jobs.
pub fn run_jobs_timed<T, F>(jobs: Vec<F>, n_workers: usize) -> (Vec<T>, Vec<WorkerUtil>)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n_workers <= 1 || n <= 1 {
        let mut util = WorkerUtil::default();
        let out = jobs
            .into_iter()
            .map(|f| {
                let started = Instant::now();
                let r = f();
                util.absorb(started);
                r
            })
            .collect();
        return (out, vec![util]);
    }
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let spawned = n_workers.min(n);
    let utils: Vec<Mutex<WorkerUtil>> = (0..spawned)
        .map(|_| Mutex::new(WorkerUtil::default()))
        .collect();
    std::thread::scope(|s| {
        for w in 0..spawned {
            let utils = &utils;
            let slots = &slots;
            let results = &results;
            let next = &next;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let f = slots[i].lock().unwrap().take().expect("job taken once");
                let started = Instant::now();
                let r = f();
                utils[w].lock().unwrap().absorb(started);
                *results[i].lock().unwrap() = Some(r);
            });
        }
    });
    let out = results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("every job ran to completion")
        })
        .collect();
    let utils = utils.into_iter().map(|m| m.into_inner().unwrap()).collect();
    (out, utils)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_submission_order() {
        for workers in [1, 2, 4, 7] {
            let jobs: Vec<_> = (0..23u64).map(|i| move || i * i).collect();
            let out = run_jobs(jobs, workers);
            assert_eq!(out, (0..23u64).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<fn() -> u32> = vec![];
        assert!(run_jobs(none, 4).is_empty());
        assert_eq!(run_jobs(vec![|| 9u32], 4), vec![9]);
    }

    #[test]
    fn workers_actually_share_the_queue() {
        // More jobs than workers: each job records which slot it ran in via
        // a shared counter; all jobs must run exactly once.
        let ran = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..64)
            .map(|_| {
                let ran = &ran;
                move || ran.fetch_add(1, Ordering::Relaxed)
            })
            .collect();
        let out = run_jobs(jobs, 4);
        assert_eq!(out.len(), 64);
        assert_eq!(ran.load(Ordering::Relaxed), 64);
        // Every ticket 0..64 handed out exactly once.
        let mut tickets = out;
        tickets.sort_unstable();
        assert_eq!(tickets, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn never_more_workers_than_jobs() {
        // 3 jobs, 16 requested workers: at most 3 utilization entries, and
        // every job is accounted to exactly one worker.
        let jobs: Vec<_> = (0..3u32).map(|i| move || i).collect();
        let (out, utils) = run_jobs_timed(jobs, 16);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(utils.len(), 3);
        assert_eq!(utils.iter().map(|u| u.jobs_run).sum::<usize>(), 3);
    }

    #[test]
    fn inline_path_reports_one_worker() {
        let (out, utils) = run_jobs_timed((0..5u32).map(|i| move || i).collect::<Vec<_>>(), 1);
        assert_eq!(out.len(), 5);
        assert_eq!(utils.len(), 1);
        assert_eq!(utils[0].jobs_run, 5);
        assert!(utils[0].busy_secs >= 0.0);
    }

    #[test]
    fn utilization_accounts_every_job() {
        for workers in [2, 4] {
            let jobs: Vec<_> = (0..10u32).map(|i| move || i).collect();
            let (_, utils) = run_jobs_timed(jobs, workers);
            assert!(utils.len() <= workers);
            assert_eq!(utils.iter().map(|u| u.jobs_run).sum::<usize>(), 10);
        }
    }
}
