//! Reference values transcribed from the paper, printed next to measured
//! numbers by the table/figure binaries.

/// Table 1 rows (baseline eager HTM, 16 threads).
pub struct Table1Ref {
    pub name: &'static str,
    pub speedup: f64,
    pub irrevocable_pct: f64,
    pub wasted_over_useful: f64,
    pub contention_source: &'static str,
    pub la: &'static str,
    pub lp: &'static str,
}

pub const TABLE1: &[Table1Ref] = &[
    Table1Ref {
        name: "list-hi",
        speedup: 1.0,
        irrevocable_pct: 27.0,
        wasted_over_useful: 4.92,
        contention_source: "linked-list",
        la: "N",
        lp: "Y",
    },
    Table1Ref {
        name: "tsp",
        speedup: 3.6,
        irrevocable_pct: 10.0,
        wasted_over_useful: 1.53,
        contention_source: "priority queue",
        la: "Y",
        lp: "Y",
    },
    Table1Ref {
        name: "memcached",
        speedup: 2.6,
        irrevocable_pct: 25.0,
        wasted_over_useful: 3.11,
        contention_source: "statistics information",
        la: "Y",
        lp: "Y",
    },
    Table1Ref {
        name: "intruder",
        speedup: 3.2,
        irrevocable_pct: 32.0,
        wasted_over_useful: 4.02,
        contention_source: "task queue",
        la: "Y",
        lp: "Y",
    },
    Table1Ref {
        name: "kmeans",
        speedup: 4.6,
        irrevocable_pct: 35.0,
        wasted_over_useful: 3.57,
        contention_source: "arrays",
        la: "N",
        lp: "Y",
    },
    Table1Ref {
        name: "vacation",
        speedup: 9.7,
        irrevocable_pct: 1.0,
        wasted_over_useful: 0.34,
        contention_source: "red-black trees",
        la: "N",
        lp: "Y",
    },
];

/// Table 3 rows (static instrumentation stats, single-thread dynamics,
/// 16-thread accuracy).
pub struct Table3Ref {
    pub name: &'static str,
    pub loads_stores: u64,
    pub anchors: u64,
    pub uops_per_txn: f64,
    pub anchors_per_txn: f64,
    /// Single-thread execution-time increase (fraction; the paper reports
    /// "<1%" for most, shown as 0.01 here).
    pub exec_increase: f64,
    pub accuracy: f64,
}

pub const TABLE3: &[Table3Ref] = &[
    Table3Ref {
        name: "genome",
        loads_stores: 82,
        anchors: 19,
        uops_per_txn: 957.0,
        anchors_per_txn: 17.6,
        exec_increase: 0.01,
        accuracy: 1.000,
    },
    Table3Ref {
        name: "intruder",
        loads_stores: 410,
        anchors: 56,
        uops_per_txn: 351.0,
        anchors_per_txn: 8.5,
        exec_increase: 0.01,
        accuracy: 0.972,
    },
    Table3Ref {
        name: "kmeans",
        loads_stores: 13,
        anchors: 6,
        uops_per_txn: 261.0,
        anchors_per_txn: 4.5,
        exec_increase: 0.016,
        accuracy: 0.991,
    },
    Table3Ref {
        name: "labyrinth",
        loads_stores: 418,
        anchors: 18,
        uops_per_txn: 16968.0,
        anchors_per_txn: 89.4,
        exec_increase: 0.01,
        accuracy: 1.000,
    },
    Table3Ref {
        name: "ssca2",
        loads_stores: 33,
        anchors: 7,
        uops_per_txn: 86.0,
        anchors_per_txn: 3.1,
        exec_increase: 0.01,
        accuracy: 0.979,
    },
    Table3Ref {
        name: "vacation",
        loads_stores: 442,
        anchors: 76,
        uops_per_txn: 4621.0,
        anchors_per_txn: 63.9,
        exec_increase: 0.01,
        accuracy: 0.953,
    },
    Table3Ref {
        name: "list-hi",
        loads_stores: 43,
        anchors: 5,
        uops_per_txn: 391.0,
        anchors_per_txn: 32.9,
        exec_increase: 0.051,
        accuracy: 0.987,
    },
    Table3Ref {
        name: "tsp",
        loads_stores: 737,
        anchors: 75,
        uops_per_txn: 2348.0,
        anchors_per_txn: 9.7,
        exec_increase: 0.01,
        accuracy: 0.970,
    },
    Table3Ref {
        name: "memcached",
        loads_stores: 405,
        anchors: 54,
        uops_per_txn: 2520.0,
        anchors_per_txn: 80.9,
        exec_increase: 0.01,
        accuracy: 0.983,
    },
];

/// Table 4 rows (benchmark characteristics on the baseline HTM).
pub struct Table4Ref {
    pub name: &'static str,
    pub atomic_blocks: u64,
    pub tm_pct: f64,
    pub speedup: f64,
    pub aborts_per_commit: f64,
    pub contention: &'static str,
}

pub const TABLE4: &[Table4Ref] = &[
    Table4Ref {
        name: "genome",
        atomic_blocks: 5,
        tm_pct: 61.0,
        speedup: 6.0,
        aborts_per_commit: 0.25,
        contention: "low",
    },
    Table4Ref {
        name: "intruder",
        atomic_blocks: 3,
        tm_pct: 98.0,
        speedup: 3.2,
        aborts_per_commit: 5.28,
        contention: "high",
    },
    Table4Ref {
        name: "kmeans",
        atomic_blocks: 3,
        tm_pct: 42.0,
        speedup: 4.6,
        aborts_per_commit: 4.74,
        contention: "high",
    },
    Table4Ref {
        name: "labyrinth",
        atomic_blocks: 3,
        tm_pct: 91.0,
        speedup: 1.9,
        aborts_per_commit: 3.47,
        contention: "high",
    },
    Table4Ref {
        name: "ssca2",
        atomic_blocks: 10,
        tm_pct: 16.0,
        speedup: 4.8,
        aborts_per_commit: 0.02,
        contention: "low",
    },
    Table4Ref {
        name: "vacation",
        atomic_blocks: 3,
        tm_pct: 87.0,
        speedup: 9.7,
        aborts_per_commit: 0.49,
        contention: "med",
    },
    Table4Ref {
        name: "list-lo",
        atomic_blocks: 4,
        tm_pct: 86.0,
        speedup: 3.6,
        aborts_per_commit: 1.11,
        contention: "med",
    },
    Table4Ref {
        name: "list-hi",
        atomic_blocks: 4,
        tm_pct: 83.0,
        speedup: 1.0,
        aborts_per_commit: 4.05,
        contention: "high",
    },
    Table4Ref {
        name: "tsp",
        atomic_blocks: 3,
        tm_pct: 90.0,
        speedup: 3.6,
        aborts_per_commit: 1.74,
        contention: "med",
    },
    Table4Ref {
        name: "memcached",
        atomic_blocks: 17,
        tm_pct: 85.0,
        speedup: 2.6,
        aborts_per_commit: 4.77,
        contention: "high",
    },
];

/// Qualitative Figure 7 expectations (speedup over baseline HTM at 16
/// threads) distilled from Section 6.2's text: substantial (>30%) for
/// intruder, kmeans, list-hi, tsp, memcached; moderate (6–24%) for genome,
/// list-lo, labyrinth; no significant change for ssca2 and vacation. The
/// harmonic mean of improvements across all benchmarks is 24%.
pub struct Fig7Ref {
    pub name: &'static str,
    /// Expected improvement band for the full Staggered mode.
    pub band: &'static str,
}

pub const FIG7: &[Fig7Ref] = &[
    Fig7Ref {
        name: "genome",
        band: "moderate (6-24%)",
    },
    Fig7Ref {
        name: "intruder",
        band: "substantial (>30%)",
    },
    Fig7Ref {
        name: "kmeans",
        band: "substantial (>30%)",
    },
    Fig7Ref {
        name: "labyrinth",
        band: "moderate (6-24%)",
    },
    Fig7Ref {
        name: "ssca2",
        band: "no significant change",
    },
    Fig7Ref {
        name: "vacation",
        band: "no significant change",
    },
    Fig7Ref {
        name: "list-lo",
        band: "moderate (6-24%)",
    },
    Fig7Ref {
        name: "list-hi",
        band: "substantial (>30%)",
    },
    Fig7Ref {
        name: "tsp",
        band: "substantial (>30%)",
    },
    Fig7Ref {
        name: "memcached",
        band: "substantial (>30%)",
    },
];

/// Figure 8 headline numbers: Staggered Transactions "eliminate up to 89%
/// of the aborts (in intruder) and an average of 64% across the benchmark
/// set (excluding ssca2)", saving "an average of 43% of the wasted CPU
/// cycles".
pub const FIG8_MAX_ABORT_REDUCTION: f64 = 0.89;
pub const FIG8_AVG_ABORT_REDUCTION: f64 = 0.64;
pub const FIG8_AVG_WASTE_REDUCTION: f64 = 0.43;

/// Table 4 reference for a benchmark by name.
pub fn table4_ref(name: &str) -> Option<&'static Table4Ref> {
    TABLE4.iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tables_cover_the_benchmark_set() {
        assert_eq!(TABLE1.len(), 6);
        assert_eq!(TABLE3.len(), 9); // list-lo shares list-hi's binary
        assert_eq!(TABLE4.len(), 10);
        assert_eq!(FIG7.len(), 10);
        assert!(table4_ref("tsp").is_some());
        assert!(table4_ref("nope").is_none());
    }
}
