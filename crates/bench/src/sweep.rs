//! Declarative ablation-sweep engine over a unified, serializable
//! experiment spec.
//!
//! The paper's argument rests on sensitivity knobs the simulator exposes
//! but the hand-written exhibits never swept systematically: the 12-bit
//! conflicting-PC tags of Section 4, the advisory-lock timeout and Polite
//! backoff of Section 2, eager vs lazy conflict resolution. This module
//! turns each question into data:
//!
//! * [`RunSpec`] — one simulator run, fully named: workload, mode,
//!   threads, seed, plus every machine and runtime knob. Serializes to a
//!   canonical `key=value` text (see [`RunSpec::canon`]) that parses back
//!   to an identical run, and hashes to a stable [`RunSpec::run_key`].
//! * [`SweepSpec`] — a base [`RunSpec`] plus [`Axis`] lists that
//!   grid-expand into cells (cartesian product, last axis fastest).
//! * [`run_sweep`] — executes the missing cells through the deterministic
//!   [`crate::jobs::run_jobs`] pool (one [`PreparedWorkload`] per distinct
//!   workload, shared across all its cells) and persists each completed
//!   cell under `<dir>/<sweep>/cells/<run_key>.cell`. A re-run — after an
//!   interrupt, or with new axis values — recomputes only missing cells,
//!   and the final tables are byte-identical to an uninterrupted run
//!   because cells persist only simulated (deterministic) quantities.
//! * [`sweep_json`] / [`sweep_csv`] — deterministic result tables.
//!
//! The built-in sweeps ([`builtin_sweep`]) cover the two headline
//! sensitivity curves: PC-tag width (`pc-tags`) and advisory-lock
//! timeout × backoff (`lock-tuning`). The `sweep` binary drives them.

use crate::{jobs::run_jobs, CommonOpts};
use htm_sim::MachineConfig;
use stagger_core::{Mode, RuntimeConfig};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use workloads::{BenchResult, PreparedWorkload};

/// One fully named simulator run: the single way harnesses describe a
/// configuration. `machine.n_cores` is carried by `threads` and
/// `runtime.mode` by `mode`; the embedded configs' copies of those two
/// fields are overwritten at [`RunSpec::machine_config`] /
/// [`RunSpec::runtime_config`] time.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Workload name, resolved through `workloads::workload_by_name`.
    pub workload: String,
    /// Use the smoke-scale (`--quick`) variant of the workload.
    pub quick: bool,
    /// Execution mode.
    pub mode: Mode,
    /// Simulated cores.
    pub threads: usize,
    /// Base workload seed.
    pub seed: u64,
    /// Machine knobs (`machine.*` keys).
    pub machine: MachineConfig,
    /// Runtime knobs (`runtime.*` keys).
    pub runtime: RuntimeConfig,
}

impl RunSpec {
    /// A spec with default machine and runtime knobs.
    pub fn new(workload: &str, mode: Mode, threads: usize, seed: u64) -> RunSpec {
        RunSpec {
            workload: workload.to_string(),
            quick: false,
            mode,
            threads,
            seed,
            machine: MachineConfig::default(),
            runtime: RuntimeConfig::with_mode(mode),
        }
    }

    /// A spec taking threads, seed, quick and the scheduler/interpreter
    /// pins from the harness's common flags.
    pub fn from_opts(opts: &CommonOpts, workload: &str, mode: Mode) -> RunSpec {
        let mut s = RunSpec::new(workload, mode, opts.threads, opts.seed);
        s.quick = opts.quick;
        if let Some(sched) = opts.scheduler {
            s.machine = s.machine.scheduler(sched);
        }
        // Host-only knob: affects host parallelism, never the simulation,
        // and (like the scheduler) is excluded from canon()/run keys.
        s.machine.host_threads = opts.host_threads;
        if let Some(interp) = opts.interp {
            s.runtime.interp = interp;
        }
        if let Some(fb) = opts.fallback {
            s.machine = s.machine.fallback(fb);
        }
        s
    }

    /// The machine configuration this spec names (`n_cores` = `threads`).
    pub fn machine_config(&self) -> MachineConfig {
        let mut m = self.machine.clone();
        m.n_cores = self.threads;
        m
    }

    /// The runtime configuration this spec names (`mode` = `mode`).
    pub fn runtime_config(&self) -> RuntimeConfig {
        let mut r = self.runtime.clone();
        r.mode = self.mode;
        r
    }

    /// Set one field by key: a top-level key (`workload`, `quick`,
    /// `mode`, `threads`, `seed`) or a prefixed knob (`machine.*`,
    /// `runtime.*`). This is how sweep axes perturb the base spec.
    pub fn set_field(&mut self, key: &str, value: &str) -> Result<(), String> {
        match key {
            "workload" => self.workload = value.to_string(),
            "quick" => {
                self.quick = value
                    .parse()
                    .map_err(|_| format!("quick: invalid value '{value}'"))?;
            }
            "mode" => {
                self.mode =
                    Mode::parse(value).ok_or_else(|| format!("mode: invalid value '{value}'"))?;
            }
            "threads" => {
                self.threads = value
                    .parse()
                    .map_err(|_| format!("threads: invalid value '{value}'"))?;
            }
            "seed" => {
                self.seed = value
                    .parse()
                    .map_err(|_| format!("seed: invalid value '{value}'"))?;
            }
            "machine.n_cores" => {
                return Err("machine.n_cores: set the top-level 'threads' field".to_string());
            }
            // Synthetic sweep-axis key: one protocol-matrix value expands
            // into a bundle of real machine-field mutations. It never
            // appears in canon() — cells serialize only the underlying
            // fields, so run keys stay spelling-independent.
            "variant" => match value {
                "irrevocable" => {
                    self.machine.set_kv("fallback", "irrevocable")?;
                    self.machine.set_kv("max_read_lines", "0")?;
                    self.machine.set_kv("max_write_lines", "0")?;
                }
                "hybrid-stm" | "lazy-subscription" | "lazy-subscription-safe" => {
                    self.machine.set_kv("fallback", value)?;
                    self.machine.set_kv("max_read_lines", "0")?;
                    self.machine.set_kv("max_write_lines", "0")?;
                }
                "bounded-set" => {
                    self.machine.set_kv("fallback", "irrevocable")?;
                    self.machine.set_kv("max_read_lines", "16")?;
                    self.machine.set_kv("max_write_lines", "8")?;
                }
                other => return Err(format!("variant: unknown value '{other}'")),
            },
            _ => {
                if let Some(k) = key.strip_prefix("machine.") {
                    self.machine.set_kv(k, value)?;
                } else if let Some(k) = key.strip_prefix("runtime.") {
                    self.runtime.set_kv(k, value)?;
                } else {
                    return Err(format!("{key}: unknown spec key"));
                }
            }
        }
        Ok(())
    }

    /// Canonical serialization: one `key=value` per line, in a fixed
    /// order (top-level fields, then `machine.*`, then `runtime.*`).
    /// [`RunSpec::parse`] inverts it; [`RunSpec::run_key`] hashes it.
    pub fn canon(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("workload={}\n", self.workload));
        s.push_str(&format!("quick={}\n", self.quick));
        s.push_str(&format!("mode={}\n", self.mode.name()));
        s.push_str(&format!("threads={}\n", self.threads));
        s.push_str(&format!("seed={}\n", self.seed));
        for (k, v) in self.machine.to_kv() {
            if k == "n_cores" {
                continue; // carried by `threads`
            }
            s.push_str(&format!("machine.{k}={v}\n"));
        }
        for (k, v) in self.runtime.to_kv() {
            s.push_str(&format!("runtime.{k}={v}\n"));
        }
        s
    }

    /// Parse a spec from its [`RunSpec::canon`] text. Unknown keys and
    /// malformed lines are errors; omitted keys keep their defaults.
    pub fn parse(text: &str) -> Result<RunSpec, String> {
        let mut spec = RunSpec::new("", Mode::Htm, 16, 2015);
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key=value, got '{line}'", ln + 1))?;
            spec.set_field(key.trim(), value.trim())?;
        }
        if spec.workload.is_empty() {
            return Err("spec has no workload".to_string());
        }
        Ok(spec)
    }

    /// Content-hashed run key: FNV-1a 64 over the canonical
    /// serialization, as 16 hex digits. Identical specs — not identical
    /// spellings — share a key, because [`RunSpec::canon`] is canonical.
    pub fn run_key(&self) -> String {
        format!("{:016x}", fnv1a64(self.canon().as_bytes()))
    }

    /// Execute this spec against an already prepared workload (the
    /// caller guarantees `p` is the workload the spec names).
    pub fn run(&self, p: &PreparedWorkload) -> BenchResult {
        p.run_cfg(self.seed, self.machine_config(), self.runtime_config())
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One sweep dimension: every cell takes each `values` entry for `key`
/// (any key [`RunSpec::set_field`] accepts).
#[derive(Debug, Clone)]
pub struct Axis {
    pub key: String,
    pub values: Vec<String>,
}

impl Axis {
    pub fn new(key: &str, values: &[&str]) -> Axis {
        Axis {
            key: key.to_string(),
            values: values.iter().map(|v| v.to_string()).collect(),
        }
    }
}

/// A declarative parameter grid: `base` perturbed by the cartesian
/// product of `axes` (last axis fastest, like nested loops).
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Sweep name — the results directory and table file stem.
    pub name: String,
    pub base: RunSpec,
    pub axes: Vec<Axis>,
}

/// One grid cell: the expanded spec plus its axis coordinates.
#[derive(Debug, Clone)]
pub struct GridCell {
    pub spec: RunSpec,
    /// `(axis key, value)` in axis order — the cell's grid coordinates.
    pub coords: Vec<(String, String)>,
}

impl SweepSpec {
    /// Grid-expand into cells. Errors if an axis key or value does not
    /// apply to the base spec, or an axis is empty.
    pub fn cells(&self) -> Result<Vec<GridCell>, String> {
        for ax in &self.axes {
            if ax.values.is_empty() {
                return Err(format!("sweep {}: axis '{}' is empty", self.name, ax.key));
            }
        }
        let mut cells = vec![GridCell {
            spec: self.base.clone(),
            coords: Vec::new(),
        }];
        for ax in &self.axes {
            let mut next = Vec::with_capacity(cells.len() * ax.values.len());
            for cell in &cells {
                for v in &ax.values {
                    let mut spec = cell.spec.clone();
                    spec.set_field(&ax.key, v)
                        .map_err(|e| format!("sweep {}: axis {}: {e}", self.name, ax.key))?;
                    let mut coords = cell.coords.clone();
                    coords.push((ax.key.clone(), v.clone()));
                    next.push(GridCell { spec, coords });
                }
            }
            cells = next;
        }
        Ok(cells)
    }
}

/// The deterministic quantities persisted per completed cell — raw
/// simulated counters only (no host timing), so a resumed sweep emits
/// byte-identical tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellMetrics {
    pub sim_cycles: u64,
    pub sim_insts: u64,
    pub commits: u64,
    pub irrevocable_commits: u64,
    pub conflict_aborts: u64,
    pub capacity_aborts: u64,
    pub explicit_aborts: u64,
    pub useful_tx_cycles: u64,
    pub wasted_tx_cycles: u64,
    pub lock_wait_cycles: u64,
    pub backoff_cycles: u64,
    pub locks_acquired: u64,
    pub lock_timeouts: u64,
    /// Contention aborts processed by the policy / of those, correctly
    /// attributed — together the paper's Table 3 accuracy, kept as exact
    /// integers.
    pub contention_aborts: u64,
    pub anchor_correct: u64,
}

impl CellMetrics {
    pub fn from_result(r: &BenchResult) -> CellMetrics {
        let agg = r.out.sim.aggregate();
        CellMetrics {
            sim_cycles: r.cycles(),
            sim_insts: r.sim_insts(),
            commits: agg.commits,
            irrevocable_commits: agg.irrevocable_commits,
            conflict_aborts: agg.conflict_aborts,
            capacity_aborts: agg.capacity_aborts,
            explicit_aborts: agg.explicit_aborts,
            useful_tx_cycles: agg.useful_tx_cycles,
            wasted_tx_cycles: agg.wasted_tx_cycles,
            lock_wait_cycles: agg.lock_wait_cycles,
            backoff_cycles: agg.backoff_cycles,
            locks_acquired: r.out.rt.locks_acquired,
            lock_timeouts: r.out.rt.lock_timeouts,
            contention_aborts: r.out.rt.contention_aborts,
            anchor_correct: r.out.rt.anchor_correct,
        }
    }

    pub fn aborts(&self) -> u64 {
        self.conflict_aborts + self.capacity_aborts + self.explicit_aborts
    }

    /// Aborts per commit (irrevocable executions count as commits).
    pub fn aborts_per_commit(&self) -> f64 {
        let commits = self.commits + self.irrevocable_commits;
        if commits == 0 {
            0.0
        } else {
            self.aborts() as f64 / commits as f64
        }
    }

    /// Anchor-identification accuracy (1.0 with no contention aborts,
    /// matching `RtStats::accuracy`).
    pub fn accuracy(&self) -> f64 {
        if self.contention_aborts == 0 {
            1.0
        } else {
            self.anchor_correct as f64 / self.contention_aborts as f64
        }
    }

    const KEYS: [&'static str; 15] = [
        "sim_cycles",
        "sim_insts",
        "commits",
        "irrevocable_commits",
        "conflict_aborts",
        "capacity_aborts",
        "explicit_aborts",
        "useful_tx_cycles",
        "wasted_tx_cycles",
        "lock_wait_cycles",
        "backoff_cycles",
        "locks_acquired",
        "lock_timeouts",
        "contention_aborts",
        "anchor_correct",
    ];

    fn values(&self) -> [u64; 15] {
        [
            self.sim_cycles,
            self.sim_insts,
            self.commits,
            self.irrevocable_commits,
            self.conflict_aborts,
            self.capacity_aborts,
            self.explicit_aborts,
            self.useful_tx_cycles,
            self.wasted_tx_cycles,
            self.lock_wait_cycles,
            self.backoff_cycles,
            self.locks_acquired,
            self.lock_timeouts,
            self.contention_aborts,
            self.anchor_correct,
        ]
    }

    fn from_map(m: &BTreeMap<&str, u64>) -> Result<CellMetrics, String> {
        let get = |k: &str| -> Result<u64, String> {
            m.get(k)
                .copied()
                .ok_or_else(|| format!("cell missing result.{k}"))
        };
        Ok(CellMetrics {
            sim_cycles: get("sim_cycles")?,
            sim_insts: get("sim_insts")?,
            commits: get("commits")?,
            irrevocable_commits: get("irrevocable_commits")?,
            conflict_aborts: get("conflict_aborts")?,
            capacity_aborts: get("capacity_aborts")?,
            explicit_aborts: get("explicit_aborts")?,
            useful_tx_cycles: get("useful_tx_cycles")?,
            wasted_tx_cycles: get("wasted_tx_cycles")?,
            lock_wait_cycles: get("lock_wait_cycles")?,
            backoff_cycles: get("backoff_cycles")?,
            locks_acquired: get("locks_acquired")?,
            lock_timeouts: get("lock_timeouts")?,
            contention_aborts: get("contention_aborts")?,
            anchor_correct: get("anchor_correct")?,
        })
    }
}

/// A persisted (or freshly computed) cell: its spec plus the metrics.
#[derive(Debug, Clone)]
pub struct CellResult {
    pub spec: RunSpec,
    pub metrics: CellMetrics,
}

impl CellResult {
    /// The on-disk cell format: the spec's canonical text followed by
    /// `result.<counter>=<n>` lines.
    pub fn to_text(&self) -> String {
        let mut s = String::from("# sweep cell v1\n");
        s.push_str(&self.spec.canon());
        for (k, v) in CellMetrics::KEYS.iter().zip(self.metrics.values()) {
            s.push_str(&format!("result.{k}={v}\n"));
        }
        s
    }

    /// Parse a persisted cell, validating that its spec hashes to
    /// `expect_key` (a mismatch means a corrupt or renamed cache file).
    pub fn parse(text: &str, expect_key: &str) -> Result<CellResult, String> {
        let mut spec_text = String::new();
        let mut results: BTreeMap<&str, u64> = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("result.") {
                let (k, v) = rest
                    .split_once('=')
                    .ok_or_else(|| format!("malformed result line '{line}'"))?;
                let k = CellMetrics::KEYS
                    .iter()
                    .find(|&&kk| kk == k.trim())
                    .ok_or_else(|| format!("unknown result counter '{k}'"))?;
                let v = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("result.{k}: invalid value '{v}'"))?;
                results.insert(k, v);
            } else {
                spec_text.push_str(line);
                spec_text.push('\n');
            }
        }
        let spec = RunSpec::parse(&spec_text)?;
        if spec.run_key() != expect_key {
            return Err(format!(
                "cell spec hashes to {}, expected {expect_key} (corrupt cache?)",
                spec.run_key()
            ));
        }
        let metrics = CellMetrics::from_map(&results)?;
        Ok(CellResult { spec, metrics })
    }
}

/// What one [`run_sweep`] invocation did.
pub struct SweepOutcome {
    /// Grid-aligned results; `None` for cells still missing (only when
    /// `max_cells` cut the run short).
    pub cells: Vec<Option<CellResult>>,
    /// Cells loaded from the cache.
    pub cached: usize,
    /// Cells computed (and persisted) by this invocation.
    pub computed: usize,
    /// Cells still missing.
    pub remaining: usize,
}

impl SweepOutcome {
    pub fn is_complete(&self) -> bool {
        self.remaining == 0
    }

    /// The complete, grid-ordered results (panics if incomplete).
    pub fn complete_cells(&self) -> Vec<&CellResult> {
        self.cells
            .iter()
            .map(|c| c.as_ref().expect("sweep incomplete"))
            .collect()
    }
}

/// The cell-cache directory of a sweep under `dir` (the sweep root,
/// conventionally `results/sweeps`).
pub fn cell_dir(dir: &Path, sweep: &str) -> PathBuf {
    dir.join(sweep).join("cells")
}

/// Execute `spec`, reusing every cell already persisted under `dir` and
/// computing at most `max_cells` missing cells (`None` = all) through the
/// job pool. Each distinct workload is compiled once and shared across
/// its cells; freshly computed cells are recorded in `report` (cached
/// cells are not — they cost no simulation time). Cell files are written
/// atomically (tmp + rename), so a killed sweep never leaves a corrupt
/// cache entry.
pub fn run_sweep(
    spec: &SweepSpec,
    dir: &Path,
    jobs: usize,
    max_cells: Option<usize>,
    report: Option<&crate::Report>,
) -> Result<SweepOutcome, String> {
    let grid = spec.cells()?;
    let cache = cell_dir(dir, &spec.name);
    std::fs::create_dir_all(&cache)
        .map_err(|e| format!("cannot create {}: {e}", cache.display()))?;

    // Load what the cache already has; collect the missing cell indices.
    let mut cells: Vec<Option<CellResult>> = Vec::with_capacity(grid.len());
    let mut missing: Vec<usize> = Vec::new();
    let mut cached = 0usize;
    for (i, cell) in grid.iter().enumerate() {
        let key = cell.spec.run_key();
        let path = cache.join(format!("{key}.cell"));
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let parsed = CellResult::parse(&text, &key)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                cached += 1;
                cells.push(Some(parsed));
            }
            Err(_) => {
                missing.push(i);
                cells.push(None);
            }
        }
    }

    // Honor the interruption budget: compute only the first `max_cells`
    // missing cells this invocation.
    let budget = max_cells.unwrap_or(missing.len()).min(missing.len());
    let to_run: Vec<usize> = missing[..budget].to_vec();
    let remaining = missing.len() - budget;

    // One PreparedWorkload per distinct (workload, quick), shared across
    // all that workload's cells.
    let mut names: Vec<(String, bool)> = to_run
        .iter()
        .map(|&i| (grid[i].spec.workload.clone(), grid[i].spec.quick))
        .collect();
    names.sort();
    names.dedup();
    let boxes: Vec<Box<dyn workloads::Workload>> = names
        .iter()
        .map(|(name, quick)| {
            workloads::workload_by_name(name, *quick)
                .ok_or_else(|| format!("sweep {}: unknown workload '{name}'", spec.name))
        })
        .collect::<Result<_, _>>()?;
    let prepared: Vec<PreparedWorkload> = run_jobs(
        boxes
            .iter()
            .map(|w| move || PreparedWorkload::new(w.as_ref()))
            .collect(),
        jobs,
    );
    let index_of = |name: &str, quick: bool| -> usize {
        names
            .iter()
            .position(|(n, q)| n == name && *q == quick)
            .expect("prepared above")
    };

    // Run the missing cells through the pool and persist each one.
    let computed: Vec<CellResult> = run_jobs(
        to_run
            .iter()
            .map(|&i| {
                let cell = &grid[i];
                let p = &prepared[index_of(&cell.spec.workload, cell.spec.quick)];
                let cache = &cache;
                move || {
                    let r = cell.spec.run(p);
                    if let Some(rep) = report {
                        rep.record(&r);
                    }
                    let res = CellResult {
                        spec: cell.spec.clone(),
                        metrics: CellMetrics::from_result(&r),
                    };
                    let key = cell.spec.run_key();
                    let tmp = cache.join(format!("{key}.tmp"));
                    let path = cache.join(format!("{key}.cell"));
                    std::fs::write(&tmp, res.to_text())
                        .and_then(|()| std::fs::rename(&tmp, &path))
                        .unwrap_or_else(|e| panic!("cannot persist {}: {e}", path.display()));
                    res
                }
            })
            .collect(),
        jobs,
    );
    for (slot, res) in to_run.iter().zip(computed) {
        cells[*slot] = Some(res);
    }

    Ok(SweepOutcome {
        cells,
        cached,
        computed: budget,
        remaining,
    })
}

/// Fixed-format float for the deterministic tables.
fn f6(x: f64) -> String {
    format!("{x:.6}")
}

/// The deterministic JSON result table of a completed sweep: sweep name,
/// axes, and one entry per cell in grid order (run key, coordinates,
/// workload/mode/threads/seed, raw counters and derived ratios).
pub fn sweep_json(spec: &SweepSpec, grid: &[GridCell], cells: &[&CellResult]) -> String {
    assert_eq!(grid.len(), cells.len());
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"sweep\": {},\n", json_str(&spec.name)));
    s.push_str("  \"axes\": [\n");
    for (i, ax) in spec.axes.iter().enumerate() {
        let vals: Vec<String> = ax.values.iter().map(|v| json_str(v)).collect();
        s.push_str(&format!(
            "    {{ \"key\": {}, \"values\": [{}] }}{}\n",
            json_str(&ax.key),
            vals.join(", "),
            if i + 1 < spec.axes.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"cells\": [\n");
    for (i, (cell, res)) in grid.iter().zip(cells).enumerate() {
        let coords: Vec<String> = cell
            .coords
            .iter()
            .map(|(k, v)| format!("{}: {}", json_str(k), json_str(v)))
            .collect();
        let m = &res.metrics;
        s.push_str(&format!(
            "    {{ \"run_key\": {}, \"workload\": {}, \"mode\": {}, \
             \"threads\": {}, \"seed\": {}, \"coords\": {{ {} }}, \
             \"sim_cycles\": {}, \"sim_insts\": {}, \"commits\": {}, \
             \"irrevocable_commits\": {}, \"aborts\": {}, \
             \"aborts_per_commit\": {}, \"accuracy\": {}, \
             \"lock_timeouts\": {} }}{}\n",
            json_str(&res.spec.run_key()),
            json_str(&res.spec.workload),
            json_str(res.spec.mode.name()),
            res.spec.threads,
            res.spec.seed,
            coords.join(", "),
            m.sim_cycles,
            m.sim_insts,
            m.commits,
            m.irrevocable_commits,
            m.aborts(),
            f6(m.aborts_per_commit()),
            f6(m.accuracy()),
            m.lock_timeouts,
            if i + 1 < grid.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The deterministic CSV result table: axis coordinates plus the same
/// per-cell metrics as [`sweep_json`], one row per cell in grid order.
pub fn sweep_csv(spec: &SweepSpec, grid: &[GridCell], cells: &[&CellResult]) -> String {
    assert_eq!(grid.len(), cells.len());
    let mut s = String::from("run_key,workload,mode,threads,seed");
    for ax in &spec.axes {
        s.push_str(&format!(",{}", ax.key));
    }
    s.push_str(
        ",sim_cycles,sim_insts,commits,irrevocable_commits,aborts,\
         aborts_per_commit,accuracy,lock_timeouts\n",
    );
    for (cell, res) in grid.iter().zip(cells) {
        let m = &res.metrics;
        s.push_str(&format!(
            "{},{},{},{},{}",
            res.spec.run_key(),
            res.spec.workload,
            res.spec.mode.name(),
            res.spec.threads,
            res.spec.seed
        ));
        for (_, v) in &cell.coords {
            s.push_str(&format!(",{v}"));
        }
        s.push_str(&format!(
            ",{},{},{},{},{},{},{},{}\n",
            m.sim_cycles,
            m.sim_insts,
            m.commits,
            m.irrevocable_commits,
            m.aborts(),
            f6(m.aborts_per_commit()),
            f6(m.accuracy()),
            m.lock_timeouts
        ));
    }
    s
}

/// Write the JSON and CSV tables of a completed sweep under `dir`,
/// returning their paths.
pub fn write_tables(
    spec: &SweepSpec,
    grid: &[GridCell],
    cells: &[&CellResult],
    dir: &Path,
) -> std::io::Result<(PathBuf, PathBuf)> {
    let base = dir.join(&spec.name);
    std::fs::create_dir_all(&base)?;
    let json_path = base.join(format!("{}.json", spec.name));
    let csv_path = base.join(format!("{}.csv", spec.name));
    std::fs::write(&json_path, sweep_json(spec, grid, cells))?;
    std::fs::write(&csv_path, sweep_csv(spec, grid, cells))?;
    Ok((json_path, csv_path))
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Names of the built-in sweeps, in presentation order.
pub fn builtin_sweep_names() -> &'static [&'static str] {
    &["pc-tags", "lock-tuning", "scaling", "serve", "protocols"]
}

/// The built-in sweeps behind the paper's two headline sensitivity
/// questions:
///
/// * `pc-tags` — conflicting-PC tag width (`machine.pc_tag_bits` ∈
///   {4, 8, 12, 16}) × mode (HTM baseline vs Staggered) on the two
///   high-contention workloads; the paper argues 12 bits suffice
///   (Section 4), so accuracy and speedup should degrade only below 12.
/// * `lock-tuning` — advisory-lock acquire timeout × Polite backoff base
///   (`runtime.lock_timeout` × `runtime.backoff_base`) on `list-hi`, the
///   liveness/serialization trade-off of Section 2.
/// * `scaling` — core count (`threads` ∈ {16, 32, 64, 128, 256}) × mode
///   on the two high-contention workloads: how contention metrics evolve
///   past the old 32-core ownership-mask boundary (the `scaling` binary
///   reports the host-side scheduler economics of the same grid).
/// * `serve` — the serving scenario: offered load (the `workload` axis
///   walks a `serve-flash-i<N>` interarrival ladder, open loop) × mode ×
///   core count. Contention metrics of the same grid the `serve` binary
///   reports latency percentiles for.
/// * `protocols` — the protocol matrix: every workload × {HTM, Staggered}
///   × execution variant (`irrevocable` baseline, `hybrid-stm` software
///   fallback, `lazy-subscription-safe` hardware commit validation,
///   `bounded-set` read/write-set-limited HTM). The deliberately unsafe
///   `lazy-subscription` variant is excluded: its torn commits would trip
///   workload validation (it lives in the regression tests instead).
pub fn builtin_sweep(name: &str, opts: &CommonOpts) -> Option<SweepSpec> {
    match name {
        "pc-tags" => Some(SweepSpec {
            name: "pc-tags".to_string(),
            base: RunSpec::from_opts(opts, "list-hi", Mode::Htm),
            axes: vec![
                Axis::new("workload", &["list-hi", "memcached"]),
                Axis::new("mode", &["HTM", "Staggered"]),
                Axis::new("machine.pc_tag_bits", &["4", "8", "12", "16"]),
            ],
        }),
        "lock-tuning" => {
            let mut base = RunSpec::from_opts(opts, "list-hi", Mode::Staggered);
            // Activate the policy readily so the lock path is exercised
            // (the same setting the hand-written timeout ablation used).
            base.runtime.min_conflict_rate = 0.3;
            Some(SweepSpec {
                name: "lock-tuning".to_string(),
                base,
                axes: vec![
                    Axis::new(
                        "runtime.lock_timeout",
                        &["500", "2000", "10000", "50000", "200000"],
                    ),
                    Axis::new("runtime.backoff_base", &["5", "25", "100"]),
                ],
            })
        }
        "scaling" => Some(SweepSpec {
            name: "scaling".to_string(),
            base: RunSpec::from_opts(opts, "list-hi", Mode::Htm),
            axes: vec![
                Axis::new("workload", &["list-hi", "memcached"]),
                Axis::new("mode", &["HTM", "Staggered"]),
                Axis::new("threads", &["16", "32", "64", "128", "256"]),
            ],
        }),
        "serve" => Some(SweepSpec {
            name: "serve".to_string(),
            base: RunSpec::from_opts(opts, "serve-flash-i48000", Mode::Htm),
            axes: vec![
                Axis::new(
                    "workload",
                    &[
                        "serve-flash-i48000",
                        "serve-flash-i36000",
                        "serve-flash-i24000",
                        "serve-flash-i8000",
                    ],
                ),
                Axis::new("mode", &["HTM", "Staggered"]),
                Axis::new("threads", &["16", "64"]),
            ],
        }),
        "protocols" => Some(SweepSpec {
            name: "protocols".to_string(),
            base: RunSpec::from_opts(opts, "genome", Mode::Htm),
            axes: vec![
                Axis::new(
                    "workload",
                    &[
                        "genome",
                        "intruder",
                        "kmeans",
                        "labyrinth",
                        "ssca2",
                        "vacation",
                        "list-lo",
                        "list-hi",
                        "tsp",
                        "memcached",
                    ],
                ),
                Axis::new("mode", &["HTM", "Staggered"]),
                Axis::new(
                    "variant",
                    &[
                        "irrevocable",
                        "hybrid-stm",
                        "lazy-subscription-safe",
                        "bounded-set",
                    ],
                ),
            ],
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canon_round_trips() {
        let mut spec = RunSpec::new("list-hi", Mode::Staggered, 8, 42);
        spec.quick = true;
        spec.machine = spec.machine.pc_tag_bits(6).lazy();
        spec.runtime.lock_timeout = 4321;
        spec.runtime.min_conflict_rate = 0.3;
        let text = spec.canon();
        let back = RunSpec::parse(&text).unwrap();
        assert_eq!(back.canon(), text);
        assert_eq!(back.run_key(), spec.run_key());
        assert_eq!(back.mode, Mode::Staggered);
        assert_eq!(back.machine.pc_tag_bits, 6);
        assert_eq!(back.runtime.lock_timeout, 4321);
    }

    #[test]
    fn run_key_distinguishes_knobs() {
        let a = RunSpec::new("list-hi", Mode::Htm, 8, 42);
        let mut b = a.clone();
        b.set_field("machine.pc_tag_bits", "4").unwrap();
        assert_ne!(a.run_key(), b.run_key());
        let mut c = a.clone();
        c.set_field("runtime.lock_timeout", "999").unwrap();
        assert_ne!(a.run_key(), c.run_key());
        assert_eq!(a.run_key(), a.clone().run_key());
    }

    #[test]
    fn spec_rejects_bad_fields() {
        let mut s = RunSpec::new("list-hi", Mode::Htm, 8, 42);
        assert!(s.set_field("machine.n_cores", "4").is_err());
        assert!(s.set_field("mystery", "1").is_err());
        assert!(s.set_field("mode", "psychic").is_err());
        assert!(RunSpec::parse("no equals sign").is_err());
        assert!(RunSpec::parse("quick=false\n").is_err(), "missing workload");
    }

    #[test]
    fn grid_expansion_order_and_count() {
        let spec = SweepSpec {
            name: "t".to_string(),
            base: RunSpec::new("list-hi", Mode::Htm, 4, 1),
            axes: vec![
                Axis::new("mode", &["HTM", "Staggered"]),
                Axis::new("machine.pc_tag_bits", &["4", "12"]),
            ],
        };
        let cells = spec.cells().unwrap();
        assert_eq!(cells.len(), 4);
        // Last axis fastest.
        assert_eq!(cells[0].spec.mode, Mode::Htm);
        assert_eq!(cells[0].spec.machine.pc_tag_bits, 4);
        assert_eq!(cells[1].spec.mode, Mode::Htm);
        assert_eq!(cells[1].spec.machine.pc_tag_bits, 12);
        assert_eq!(cells[2].spec.mode, Mode::Staggered);
        assert_eq!(
            cells[3].coords,
            vec![
                ("mode".to_string(), "Staggered".to_string()),
                ("machine.pc_tag_bits".to_string(), "12".to_string())
            ]
        );
        // All keys distinct.
        let mut keys: Vec<String> = cells.iter().map(|c| c.spec.run_key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 4);
    }

    #[test]
    fn cell_text_round_trips() {
        let spec = RunSpec::new("ssca2", Mode::Staggered, 4, 7);
        let res = CellResult {
            spec: spec.clone(),
            metrics: CellMetrics {
                sim_cycles: 123,
                sim_insts: 456,
                commits: 7,
                irrevocable_commits: 1,
                conflict_aborts: 3,
                capacity_aborts: 0,
                explicit_aborts: 1,
                useful_tx_cycles: 50,
                wasted_tx_cycles: 20,
                lock_wait_cycles: 5,
                backoff_cycles: 2,
                locks_acquired: 4,
                lock_timeouts: 1,
                contention_aborts: 3,
                anchor_correct: 2,
            },
        };
        let text = res.to_text();
        let back = CellResult::parse(&text, &spec.run_key()).unwrap();
        assert_eq!(back.metrics, res.metrics);
        assert_eq!(back.spec.canon(), spec.canon());
        // Key mismatch is detected.
        assert!(CellResult::parse(&text, "0000000000000000").is_err());
    }

    #[test]
    fn variant_axis_expands_to_real_fields_only() {
        let base = RunSpec::new("genome", Mode::Htm, 8, 42);
        let base_key = base.run_key();
        let mut s = base.clone();
        s.set_field("variant", "bounded-set").unwrap();
        assert_eq!(s.machine.max_read_lines, 16);
        assert_eq!(s.machine.max_write_lines, 8);
        assert!(
            !s.canon().contains("variant"),
            "synthetic key must never serialize"
        );
        assert_ne!(s.run_key(), base_key);
        let mut h = base.clone();
        h.set_field("variant", "hybrid-stm").unwrap();
        assert_eq!(h.machine.fallback, htm_sim::FallbackPolicy::HybridStm);
        assert_ne!(h.run_key(), s.run_key());
        // Re-selecting the baseline restores the default spelling, so the
        // run key collapses back to the pre-protocol-matrix one.
        h.set_field("variant", "irrevocable").unwrap();
        assert_eq!(h.run_key(), base_key);
        assert!(base.clone().set_field("variant", "optimistic").is_err());
    }

    #[test]
    fn fallback_spec_round_trips_and_forks_run_keys() {
        let base = RunSpec::new("list-hi", Mode::Htm, 8, 42);
        let mut keys = vec![base.run_key()];
        for v in ["hybrid-stm", "lazy-subscription", "lazy-subscription-safe"] {
            let mut s = base.clone();
            s.set_field("machine.fallback", v).unwrap();
            let back = RunSpec::parse(&s.canon()).unwrap();
            assert_eq!(back.canon(), s.canon());
            assert_eq!(back.machine.fallback, s.machine.fallback);
            keys.push(s.run_key());
        }
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 4, "every policy names a distinct run");
    }

    #[test]
    fn builtin_sweeps_expand() {
        let opts = CommonOpts::default_for_tests();
        for &name in builtin_sweep_names() {
            let sweep = builtin_sweep(name, &opts).unwrap();
            let cells = sweep.cells().unwrap();
            assert!(!cells.is_empty(), "{name} expands");
        }
        assert_eq!(
            builtin_sweep("pc-tags", &opts)
                .unwrap()
                .cells()
                .unwrap()
                .len(),
            2 * 2 * 4
        );
        assert_eq!(
            builtin_sweep("lock-tuning", &opts)
                .unwrap()
                .cells()
                .unwrap()
                .len(),
            5 * 3
        );
        let scaling = builtin_sweep("scaling", &opts).unwrap();
        let cells = scaling.cells().unwrap();
        assert_eq!(cells.len(), 2 * 2 * 5);
        // The ladder rides the top-level `threads` field, so every cell
        // names a legal core count (1..=MAX_CORES is builder-checked).
        assert!(cells.iter().all(|c| c.spec.threads <= htm_sim::MAX_CORES));
        assert_eq!(cells.last().unwrap().spec.threads, 256);
        let serve = builtin_sweep("serve", &opts).unwrap();
        let cells = serve.cells().unwrap();
        assert_eq!(cells.len(), 4 * 2 * 2);
        // Every rung of the offered-load ladder resolves in the registry.
        assert!(cells
            .iter()
            .all(|c| workloads::workload_by_name(&c.spec.workload, true).is_some()));
        let protocols = builtin_sweep("protocols", &opts).unwrap();
        let cells = protocols.cells().unwrap();
        assert_eq!(cells.len(), 10 * 2 * 4);
        assert!(cells
            .iter()
            .all(|c| workloads::workload_by_name(&c.spec.workload, true).is_some()));
        // Each variant is a distinct spec (the bundle touched real fields).
        let mut keys: Vec<String> = cells.iter().map(|c| c.spec.run_key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 10 * 2 * 4);
        assert!(builtin_sweep("nope", &opts).is_none());
    }
}
