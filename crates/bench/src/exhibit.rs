//! Shared scaffolding for the exhibit binaries.
//!
//! Every exhibit used to open the same way by copy-paste: build a
//! [`Report`], print a banner with the `--quick` suffix, print a column
//! header and its rule, resolve workload names against the registry (each
//! spelling its own "unknown workload" exit), compile the set through the
//! job pool, and — for the event-recording exhibits — hand-roll a
//! `MachineConfig` that re-applied the common `--scheduler` /
//! `--host-threads` pins. The copies drifted: `profile` forgot
//! `--host-threads`, and none of them picked up new common knobs (the
//! `--fallback` policy pin) without editing five binaries.
//!
//! [`Exhibit`] owns that scaffolding once. A new exhibit binary is the
//! interesting part only: construct, `banner`, `header`, resolve/prepare,
//! run through [`Exhibit::report`]'s helpers, `finish`.

use crate::{CommonOpts, Report};
use htm_sim::MachineConfig;
use workloads::{PreparedWorkload, Workload};

/// One exhibit binary's common plumbing: its [`Report`], the parsed
/// common flags, and the banner/header/workload-resolution helpers the
/// bins used to duplicate.
pub struct Exhibit {
    name: String,
    opts: CommonOpts,
    report: Report,
}

impl Exhibit {
    /// `name` is the exhibit stem: the `--json` dump goes to
    /// `results/BENCH_<name>.json`, and resolution errors print as
    /// `<name>: ...`.
    pub fn new(name: &str, opts: &CommonOpts) -> Exhibit {
        Exhibit {
            name: name.to_string(),
            opts: opts.clone(),
            report: Report::new(name, opts),
        }
    }

    /// The common flags this exhibit was invoked with.
    pub fn opts(&self) -> &CommonOpts {
        &self.opts
    }

    /// The exhibit's report; all run/record helpers live there.
    pub fn report(&self) -> &Report {
        &self.report
    }

    /// Print the exhibit banner, appending " (quick)" under `--quick`.
    pub fn banner(&self, text: &str) {
        println!("{text}{}", if self.opts.quick { " (quick)" } else { "" });
    }

    /// Print a column header followed by its underline rule.
    pub fn header(&self, header: &str) {
        println!("{header}");
        crate::rule(header);
    }

    /// Resolve one workload by name at the exhibit's `--quick` scale, or
    /// exit(2) listing the registry.
    pub fn workload(&self, name: &str) -> Box<dyn Workload> {
        workloads::workload_by_name(name, self.opts.quick).unwrap_or_else(|| {
            eprintln!("{}: unknown workload '{name}'", self.name);
            eprintln!("available: {}", workloads::workload_names().join(" "));
            std::process::exit(2);
        })
    }

    /// Resolve a list of workload names (see [`Exhibit::workload`]).
    pub fn workload_list(&self, names: &[&str]) -> Vec<Box<dyn Workload>> {
        names.iter().map(|n| self.workload(n)).collect()
    }

    /// The full built-in benchmark set at the exhibit's scale.
    pub fn workload_set(&self) -> Vec<Box<dyn Workload>> {
        crate::workload_set(self.opts.quick)
    }

    /// Compile + flatten workloads through the report's job pool, each
    /// exactly once; the result is index-aligned with `set`.
    pub fn prepare<'w>(&self, set: &'w [Box<dyn Workload>]) -> Vec<PreparedWorkload<'w>> {
        self.report.pool(
            set.iter()
                .map(|w| move || PreparedWorkload::new(w.as_ref()))
                .collect(),
        )
    }

    /// An event-recording machine configuration at `cores`, honoring the
    /// common `--scheduler`, `--host-threads` and `--fallback` pins — for
    /// exhibits that drive `run_cfg` themselves because they consume the
    /// observability event stream.
    pub fn recording_machine(&self, cores: usize) -> MachineConfig {
        let mut cfg = MachineConfig::cores(cores).record_events();
        if let Some(s) = self.opts.scheduler {
            cfg = cfg.scheduler(s);
        }
        cfg.host_threads = self.opts.host_threads;
        if let Some(fb) = self.opts.fallback {
            cfg = cfg.fallback(fb);
        }
        cfg
    }

    /// Print the report's end-of-exhibit summary (and the `--json` dump).
    pub fn finish(&self) {
        self.report.finish();
    }
}
