//! Harness self-reporting: per-run host wall-clock and simulated
//! instruction throughput, an end-of-exhibit summary line, and an optional
//! machine-readable dump (`--json`) to `results/BENCH_<exhibit>.json`.
//!
//! The JSON is written by hand (no external dependencies — the build must
//! work offline); the schema is flat and stable:
//!
//! ```json
//! {
//!   "exhibit": "fig7", "jobs": 4, "threads": 16, "quick": true,
//!   "seed": 2015, "wall_secs": 12.3, "total_sim_insts": 45600000,
//!   "insts_per_sec": 3700000.0,
//!   "runs": [ { "workload": "genome", "mode": "htm", "threads": 16,
//!               "sim_cycles": 1, "sim_insts": 2, "gated_ops": 1,
//!               "spec_speculated": 0, "spec_committed": 0,
//!               "spec_mismatches": 0, "spec_rebuilds": 0,
//!               "sched_calls": 9, "sched_stale": 3,
//!               "host_secs": 0.5, "insts_per_sec": 4.0,
//!               "ns_per_inst": 250000000.0 }, ... ],
//!   "workers": [ { "worker": 0, "jobs_run": 3, "busy_secs": 1.2,
//!                  "utilization": 0.58 }, ... ]
//! }
//! ```
//!
//! `gated_ops` counts the shared-memory operations admitted through the
//! simulator's scheduler gate and `ns_per_inst` is host nanoseconds per
//! simulated instruction — both scheduler-overhead observability, not
//! paper metrics. The `spec_*` counters are the speculative scheduler's
//! mis-speculation accounting (all zeros under the other schedulers), and
//! `workers` reports per-worker utilization of the harness job pool
//! (busy_secs over wall time) for runs routed through [`Report::pool`].

use crate::jobs::{run_jobs_timed, WorkerUtil};
use crate::{CommonOpts, Measured, RunSpec};
use htm_sim::{histogram_of, txn_latencies, LatencySummary, MachineConfig};
use stagger_core::{Mode, RuntimeConfig};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;
use workloads::{BenchResult, PreparedWorkload};

/// One simulator run, as the harness saw it.
#[derive(Debug, Clone)]
pub struct RunRecord {
    pub workload: &'static str,
    pub mode: &'static str,
    pub threads: usize,
    pub sim_cycles: u64,
    pub sim_insts: u64,
    /// Shared-memory ops admitted through the scheduler gate.
    pub gated_ops: u64,
    /// Gated ops executed optimistically by the speculative scheduler
    /// (zero under the other schedulers), and how they fared.
    pub spec_speculated: u64,
    pub spec_committed: u64,
    pub spec_mismatches: u64,
    pub spec_rebuilds: u64,
    /// Indexed-scheduler overhead: `schedule()` calls and lazy heap
    /// repairs (host-side observability, not simulated quantities).
    pub sched_calls: u64,
    pub sched_stale: u64,
    pub host_secs: f64,
    /// Latency percentile digest, present when the run recorded
    /// observability events (simulated cycles; request-level for the
    /// serving exhibits, transaction-level otherwise).
    pub latency: Option<LatencySummary>,
}

impl RunRecord {
    pub fn insts_per_sec(&self) -> f64 {
        if self.host_secs > 0.0 {
            self.sim_insts as f64 / self.host_secs
        } else {
            0.0
        }
    }

    /// Host nanoseconds spent per simulated instruction.
    pub fn ns_per_inst(&self) -> f64 {
        if self.sim_insts > 0 {
            self.host_secs * 1e9 / self.sim_insts as f64
        } else {
            0.0
        }
    }
}

/// Collects every run of one exhibit. Shareable across harness workers
/// (interior mutability); all run helpers record automatically.
pub struct Report {
    exhibit: String,
    opts: CommonOpts,
    started: Instant,
    records: Mutex<Vec<RunRecord>>,
    /// Job-pool utilization, merged by worker index across every
    /// [`Report::pool`] invocation.
    workers: Mutex<Vec<WorkerUtil>>,
}

impl Report {
    pub fn new(exhibit: &str, opts: &CommonOpts) -> Report {
        Report {
            exhibit: exhibit.to_string(),
            opts: opts.clone(),
            started: Instant::now(),
            records: Mutex::new(Vec::new()),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// Run `jobs` through the harness pool at this exhibit's `--jobs`
    /// level, folding per-worker utilization into the report (the
    /// `workers` section of the JSON dump). Results come back in
    /// submission order, like [`crate::run_jobs`].
    pub fn pool<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let (out, utils) = run_jobs_timed(jobs, self.opts.jobs);
        let mut acc = self.workers.lock().unwrap();
        if acc.len() < utils.len() {
            acc.resize(utils.len(), WorkerUtil::default());
        }
        for (a, u) in acc.iter_mut().zip(&utils) {
            a.jobs_run += u.jobs_run;
            a.busy_secs += u.busy_secs;
        }
        drop(acc);
        out
    }

    /// Record a finished run (the run helpers below call this for you).
    /// Runs that carried observability events get a transaction-level
    /// latency digest for free; exhibits that know request arrivals
    /// (serve) use [`Report::record_with_latency`] instead.
    pub fn record(&self, r: &BenchResult) {
        let latency =
            (!r.events.is_empty()).then(|| histogram_of(&txn_latencies(&r.events)).summary());
        self.record_with(r, latency);
    }

    /// Record a finished run with an exhibit-supplied latency digest
    /// (e.g. request-level, derived against an arrival schedule).
    pub fn record_with_latency(&self, r: &BenchResult, latency: LatencySummary) {
        self.record_with(r, Some(latency));
    }

    fn record_with(&self, r: &BenchResult, latency: Option<LatencySummary>) {
        self.records.lock().unwrap().push(RunRecord {
            workload: r.name,
            mode: r.mode.name(),
            threads: r.n_threads,
            sim_cycles: r.cycles(),
            sim_insts: r.sim_insts(),
            gated_ops: r.gated_ops(),
            spec_speculated: r.out.spec.speculated_ops,
            spec_committed: r.out.spec.committed_ops,
            spec_mismatches: r.out.spec.mismatches,
            spec_rebuilds: r.out.spec.rebuilds,
            sched_calls: r.out.sched.schedule_calls,
            sched_stale: r.out.sched.stale_refreshes,
            host_secs: r.host_secs,
            latency,
        });
    }

    /// The [`RunSpec`] this report's exhibit would use for `p` at
    /// `threads` in `mode` — every run helper below routes through it,
    /// so one exhibit's configuration namings are uniform and carry the
    /// common flags (`--quick`, `--scheduler`, ...).
    pub fn spec(&self, p: &PreparedWorkload, mode: Mode, threads: usize, seed: u64) -> RunSpec {
        let mut spec = RunSpec::from_opts(&self.opts, p.name(), mode);
        spec.threads = threads;
        spec.seed = seed;
        spec
    }

    /// Run `p` at `threads` in `mode` and record it.
    pub fn run(&self, p: &PreparedWorkload, mode: Mode, threads: usize, seed: u64) -> BenchResult {
        let r = self.spec(p, mode, threads, seed).run(p);
        self.record(&r);
        r
    }

    /// Run with explicit machine/runtime configuration (ablations). An
    /// unpinned machine config picks up the exhibit's `--scheduler` flag.
    pub fn run_cfg(
        &self,
        p: &PreparedWorkload,
        seed: u64,
        mut machine_cfg: MachineConfig,
        rt_cfg: RuntimeConfig,
    ) -> BenchResult {
        if let Some(s) = self.opts.scheduler {
            if !machine_cfg.scheduler_pinned {
                machine_cfg = machine_cfg.scheduler(s);
            }
        }
        if machine_cfg.host_threads == 0 {
            machine_cfg.host_threads = self.opts.host_threads;
        }
        let r = p.run_cfg(seed, machine_cfg, rt_cfg);
        self.record(&r);
        r
    }

    /// Sequential (1-thread, baseline-HTM) reference run.
    pub fn run_sequential(&self, p: &PreparedWorkload, seed: u64) -> BenchResult {
        self.run(p, Mode::Htm, 1, seed)
    }

    /// Run and derive the paper's metrics (see [`crate::measure`]).
    pub fn measure(
        &self,
        p: &PreparedWorkload,
        mode: Mode,
        threads: usize,
        seed: u64,
        seq: &BenchResult,
        htm: Option<&BenchResult>,
    ) -> Measured {
        let r = self.spec(p, mode, threads, seed).run(p);
        let m = crate::measured_from(r, seq, htm);
        self.record(&m.result);
        m
    }

    /// Render the machine-readable report. Runs are sorted by
    /// (workload, mode, threads) so the dump is deterministic at any
    /// `--jobs` level.
    pub fn to_json(&self) -> String {
        let mut recs = self.records.lock().unwrap().clone();
        recs.sort_by(|a, b| (a.workload, a.mode, a.threads).cmp(&(b.workload, b.mode, b.threads)));
        let wall = self.started.elapsed().as_secs_f64();
        let total_insts: u64 = recs.iter().map(|r| r.sim_insts).sum();
        let ips = if wall > 0.0 {
            total_insts as f64 / wall
        } else {
            0.0
        };
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"exhibit\": {},\n", json_str(&self.exhibit)));
        s.push_str(&format!("  \"jobs\": {},\n", self.opts.jobs));
        s.push_str(&format!("  \"threads\": {},\n", self.opts.threads));
        s.push_str(&format!("  \"quick\": {},\n", self.opts.quick));
        s.push_str(&format!("  \"seed\": {},\n", self.opts.seed));
        s.push_str(&format!("  \"wall_secs\": {wall:.6},\n"));
        s.push_str(&format!("  \"total_sim_insts\": {total_insts},\n"));
        s.push_str(&format!("  \"insts_per_sec\": {ips:.1},\n"));
        s.push_str("  \"runs\": [\n");
        for (i, r) in recs.iter().enumerate() {
            // Percentile digest of the run's latency distribution, when
            // the run recorded observability events.
            let lat = match &r.latency {
                Some(l) => format!(
                    "\"lat_count\": {}, \"lat_p50\": {}, \"lat_p90\": {}, \
                     \"lat_p99\": {}, \"lat_p999\": {}, \"lat_max\": {}, \
                     \"lat_mean\": {}, ",
                    l.count,
                    l.p50,
                    l.p90,
                    l.p99,
                    l.p999,
                    l.max,
                    l.mean(),
                ),
                None => String::new(),
            };
            s.push_str(&format!(
                "    {{ \"workload\": {}, \"mode\": {}, \"threads\": {}, \
                 \"sim_cycles\": {}, \"sim_insts\": {}, \"gated_ops\": {}, \
                 \"spec_speculated\": {}, \"spec_committed\": {}, \
                 \"spec_mismatches\": {}, \"spec_rebuilds\": {}, \
                 \"sched_calls\": {}, \"sched_stale\": {}, {lat}\
                 \"host_secs\": {:.6}, \"insts_per_sec\": {:.1}, \
                 \"ns_per_inst\": {:.2} }}{}\n",
                json_str(r.workload),
                json_str(r.mode),
                r.threads,
                r.sim_cycles,
                r.sim_insts,
                r.gated_ops,
                r.spec_speculated,
                r.spec_committed,
                r.spec_mismatches,
                r.spec_rebuilds,
                r.sched_calls,
                r.sched_stale,
                r.host_secs,
                r.insts_per_sec(),
                r.ns_per_inst(),
                if i + 1 < recs.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        let workers = self.workers.lock().unwrap().clone();
        s.push_str("  \"workers\": [\n");
        for (i, u) in workers.iter().enumerate() {
            let utilization = if wall > 0.0 { u.busy_secs / wall } else { 0.0 };
            s.push_str(&format!(
                "    {{ \"worker\": {i}, \"jobs_run\": {}, \"busy_secs\": {:.6}, \
                 \"utilization\": {:.4} }}{}\n",
                u.jobs_run,
                u.busy_secs,
                utilization,
                if i + 1 < workers.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Print the throughput summary line; with `--json`, also dump
    /// `results/BENCH_<exhibit>.json`.
    pub fn finish(&self) {
        let recs = self.records.lock().unwrap();
        let n = recs.len();
        let total_insts: u64 = recs.iter().map(|r| r.sim_insts).sum();
        // `.max(0.0)` normalizes the empty-sum -0.0 so a zero-run report
        // prints "0.00" rather than "-0.00".
        let run_secs: f64 = recs.iter().map(|r| r.host_secs).sum::<f64>().max(0.0);
        let sched_calls: u64 = recs.iter().map(|r| r.sched_calls).sum();
        let sched_stale: u64 = recs.iter().map(|r| r.sched_stale).sum();
        let spec_ops: u64 = recs.iter().map(|r| r.spec_speculated).sum();
        let spec_committed: u64 = recs.iter().map(|r| r.spec_committed).sum();
        let spec_mismatches: u64 = recs.iter().map(|r| r.spec_mismatches).sum();
        let spec_rebuilds: u64 = recs.iter().map(|r| r.spec_rebuilds).sum();
        drop(recs);
        let wall = self.started.elapsed().as_secs_f64();
        let ips = if wall > 0.0 {
            total_insts as f64 / wall
        } else {
            0.0
        };
        println!();
        println!(
            "harness: {n} runs in {wall:.2} s wall ({run_secs:.2} s of simulation, \
             jobs={}), {} sim insts, {}/s",
            self.opts.jobs,
            human(total_insts as f64),
            human(ips)
        );
        // Scheduler-overhead counters, previously visible only in the
        // `--json` dump: indexed-scheduler work and (under the
        // speculative driver) mis-speculation accounting.
        if sched_calls > 0 {
            println!(
                "harness: sched {} schedule() calls, {} stale refreshes",
                human(sched_calls as f64),
                human(sched_stale as f64)
            );
        }
        if spec_ops > 0 {
            println!(
                "harness: spec {} ops speculated, {} committed, \
                 {spec_mismatches} mismatches, {spec_rebuilds} rebuilds",
                human(spec_ops as f64),
                human(spec_committed as f64)
            );
        }
        if self.opts.json {
            match self.write_json() {
                Ok(path) => println!("harness: wrote {}", path.display()),
                Err(e) => eprintln!("harness: could not write JSON report: {e}"),
            }
        }
    }

    fn write_json(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.exhibit));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// JSON string literal with minimal escaping (names here are ASCII).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// 12345678 -> "12.3M" — for the human summary line only.
fn human(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}k", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_sorts() {
        let opts = CommonOpts::default_for_tests();
        let rep = Report::new("unit\"test", &opts);
        rep.records.lock().unwrap().push(RunRecord {
            workload: "zeta",
            mode: "htm",
            threads: 4,
            sim_cycles: 10,
            sim_insts: 20,
            gated_ops: 7,
            spec_speculated: 6,
            spec_committed: 5,
            spec_mismatches: 1,
            spec_rebuilds: 1,
            sched_calls: 9,
            sched_stale: 3,
            host_secs: 2.0,
            latency: Some(LatencySummary {
                count: 4,
                p50: 100,
                p90: 200,
                p99: 300,
                p999: 300,
                max: 310,
                total: 800,
            }),
        });
        rep.records.lock().unwrap().push(RunRecord {
            workload: "alpha",
            mode: "htm",
            threads: 4,
            sim_cycles: 1,
            sim_insts: 2,
            gated_ops: 1,
            spec_speculated: 0,
            spec_committed: 0,
            spec_mismatches: 0,
            spec_rebuilds: 0,
            sched_calls: 0,
            sched_stale: 0,
            host_secs: 0.5,
            latency: None,
        });
        let j = rep.to_json();
        assert!(j.contains("\"exhibit\": \"unit\\\"test\""));
        let a = j.find("alpha").unwrap();
        let z = j.find("zeta").unwrap();
        assert!(a < z, "runs sorted by workload name");
        assert!(j.contains("\"total_sim_insts\": 22"));
        // insts_per_sec per run: 20 / 2.0 = 10.0
        assert!(j.contains("\"insts_per_sec\": 10.0"));
        assert!(j.contains("\"gated_ops\": 7"));
        assert!(j.contains("\"spec_speculated\": 6"));
        assert!(j.contains("\"spec_mismatches\": 1"));
        assert!(j.contains("\"sched_calls\": 9"));
        assert!(j.contains("\"sched_stale\": 3"));
        // The latency digest appears only on the run that carried one.
        assert!(j.contains("\"lat_p999\": 300"));
        assert!(j.contains("\"lat_mean\": 200"));
        assert_eq!(j.matches("\"lat_count\"").count(), 1);
        // ns_per_inst for zeta: 2.0 s * 1e9 / 20 = 1e8
        assert!(j.contains("\"ns_per_inst\": 100000000.00"));
        assert!(j.contains("\"workers\": ["));
    }

    #[test]
    fn pool_folds_worker_utilization() {
        let mut opts = CommonOpts::default_for_tests();
        opts.jobs = 2;
        let rep = Report::new("pool", &opts);
        let out = rep.pool((0..6u32).map(|i| move || i * 2).collect::<Vec<_>>());
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
        // A second pool merges into the same worker slots.
        let _ = rep.pool((0..4u32).map(|i| move || i).collect::<Vec<_>>());
        let workers = rep.workers.lock().unwrap();
        assert!(!workers.is_empty() && workers.len() <= 2);
        assert_eq!(workers.iter().map(|u| u.jobs_run).sum::<usize>(), 10);
    }

    #[test]
    fn human_scales() {
        assert_eq!(human(950.0), "950");
        assert_eq!(human(12_345.0), "12.3k");
        assert_eq!(human(12_345_678.0), "12.35M");
        assert_eq!(human(2.5e9), "2.50G");
    }
}
