//! Conflict-attribution analysis over observability event streams: the
//! offline half of the paper's Section 3 profiling pass.
//!
//! The simulator's event stream carries 12-bit PC tags (what the hardware
//! delivers); this module aggregates them per atomic block and resolves
//! them back to IR functions and instructions through the compiled
//! program's unified anchor tables and [`CodeLayout`] — exactly the
//! information an anchor-selection pass would consume.

use htm_sim::obs::{ObsEvent, ObsKind};
use htm_sim::{AbortCause, FxHashMap};
use stagger_compiler::Compiled;
use tm_ir::display::format_inst;
use tm_ir::{Pc, INST_BYTES, TEXT_BASE};

/// One aggregated conflicting-PC-tag pair, keyed by the victim's atomic
/// block (known from the enclosing `TxBegin`, so the victim tag can be
/// resolved through that block's anchor table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictPair {
    /// Atomic block the victim transaction was executing.
    pub ab_id: u32,
    /// 12-bit tag of the victim's first access to the conflicting line.
    pub victim_tag: u16,
    /// 12-bit tag of the access that doomed it (0 = nontransactional).
    pub aborter_tag: u16,
    /// Number of conflict aborts attributed to this pair.
    pub count: u64,
}

/// Aggregate conflict aborts into (atomic block, victim tag, aborter tag)
/// pairs, count-descending (ties by key — deterministic).
pub fn conflict_pairs(streams: &[Vec<ObsEvent>]) -> Vec<ConflictPair> {
    let mut counts: FxHashMap<(u32, u16, u16), u64> = FxHashMap::default();
    for stream in streams {
        let mut ab = 0u32;
        for e in stream {
            match e.kind {
                ObsKind::TxBegin { ab_id } => ab = ab_id,
                ObsKind::TxAbort {
                    cause: AbortCause::Conflict,
                    victim_pc_tag,
                    aborter_pc_tag,
                    ..
                } => {
                    *counts
                        .entry((ab, victim_pc_tag, aborter_pc_tag))
                        .or_insert(0) += 1
                }
                _ => {}
            }
        }
    }
    let mut v: Vec<ConflictPair> = counts
        .into_iter()
        .map(|((ab_id, victim_tag, aborter_tag), count)| ConflictPair {
            ab_id,
            victim_tag,
            aborter_tag,
            count,
        })
        .collect();
    v.sort_by_key(|p| {
        (
            std::cmp::Reverse(p.count),
            p.ab_id,
            p.victim_tag,
            p.aborter_tag,
        )
    });
    v
}

/// A PC tag resolved back to the program: full PC, owning function,
/// instruction text and (when the access sits in an anchor table) its
/// anchor id.
#[derive(Debug, Clone)]
pub struct ResolvedTag {
    pub pc: Pc,
    pub func: String,
    pub offset: u64,
    pub inst: String,
    /// Anchor id from the unified anchor table (0 when the entry has no
    /// anchor or the tag resolved outside any table).
    pub anchor_id: u32,
    pub is_anchor: bool,
}

/// Resolve a 12-bit tag to the program, preferring `ab_id`'s unified
/// anchor table (the lookup the runtime itself performs on abort), then
/// any other block's table (ascending id), then a [`CodeLayout`] scan over
/// the tag's aliasing class. `None` when no laid-out instruction matches
/// (e.g. tag 0 from a nontransactional aborter).
pub fn resolve_tag(c: &Compiled, ab_id: u32, tag: u16) -> Option<ResolvedTag> {
    let from_entry = |pc: Pc, anchor_id: u32, is_anchor: bool| {
        let fid = c.layout.func_at(pc)?;
        let f = c.module.func(fid);
        let inst = c
            .layout
            .inst_at(pc)
            .map(|r| format_inst(&c.module, c.module.inst(r)))
            .unwrap_or_default();
        Some(ResolvedTag {
            pc,
            func: f.name.clone(),
            offset: pc - c.layout.func_start(fid),
            inst,
            anchor_id,
            is_anchor,
        })
    };
    if let Some(t) = c.tables.get(&ab_id) {
        if let Some(e) = t.search_by_pc_tag(tag) {
            return from_entry(e.pc, e.anchor_id, e.is_anchor);
        }
    }
    let mut ab_ids: Vec<u32> = c.tables.keys().copied().filter(|&i| i != ab_id).collect();
    ab_ids.sort_unstable();
    for i in ab_ids {
        if let Some(e) = c.tables[&i].search_by_pc_tag(tag) {
            return from_entry(e.pc, e.anchor_id, e.is_anchor);
        }
    }
    // Fall back to scanning the tag's aliasing class in the layout
    // (TEXT_BASE is 4096-aligned, so candidates step by one page).
    debug_assert_eq!(TEXT_BASE % 4096, 0);
    let mut pc = TEXT_BASE + tag as u64;
    while pc < c.layout.text_end() {
        if pc.is_multiple_of(INST_BYTES) && c.layout.inst_at(pc).is_some() {
            return from_entry(pc, 0, false);
        }
        pc += 4096;
    }
    None
}

/// Human-readable form of a resolved tag: `func+0x10 (anchor #3): inst`.
pub fn describe_tag(c: &Compiled, ab_id: u32, tag: u16) -> String {
    match resolve_tag(c, ab_id, tag) {
        Some(r) => {
            let anchor = if r.is_anchor {
                format!(" [anchor #{}]", r.anchor_id)
            } else if r.anchor_id != 0 {
                format!(" [-> anchor #{}]", r.anchor_id)
            } else {
                String::new()
            };
            format!("{}+{:#x}{}: {}", r.func, r.offset, anchor, r.inst)
        }
        None => "<unresolved>".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::ObsEvent;
    use tm_ir::CodeLayout;

    fn abort(victim: u16, aborter: u16) -> ObsKind {
        ObsKind::TxAbort {
            cause: AbortCause::Conflict,
            conf_addr: 4096,
            victim_pc_tag: victim,
            aborter_pc_tag: aborter,
            aborter: 1,
        }
    }

    #[test]
    fn conflict_pairs_track_enclosing_block() {
        let streams = vec![vec![
            ObsEvent {
                clock: 0,
                kind: ObsKind::TxBegin { ab_id: 7 },
            },
            ObsEvent {
                clock: 10,
                kind: abort(0x100, 0x200),
            },
            ObsEvent {
                clock: 20,
                kind: ObsKind::TxBegin { ab_id: 9 },
            },
            ObsEvent {
                clock: 30,
                kind: abort(0x100, 0x200),
            },
            ObsEvent {
                clock: 40,
                kind: ObsKind::TxBegin { ab_id: 9 },
            },
            ObsEvent {
                clock: 50,
                kind: abort(0x100, 0x200),
            },
        ]];
        let pairs = conflict_pairs(&streams);
        assert_eq!(pairs.len(), 2);
        // Heaviest first; the ab 9 pair saw two aborts.
        assert_eq!(
            pairs[0],
            ConflictPair {
                ab_id: 9,
                victim_tag: 0x100,
                aborter_tag: 0x200,
                count: 2
            }
        );
        assert_eq!(pairs[1].ab_id, 7);
        assert_eq!(pairs[1].count, 1);
    }

    #[test]
    fn resolve_tag_finds_list_traversal() {
        // Compile the real list workload and resolve a tag taken from its
        // own anchor table: the round trip must name the same function.
        let w = workloads::list::ListBench::hi();
        use workloads::Workload;
        let module = w.build_module();
        let c = stagger_compiler::compile(&module);
        let (&ab_id, table) = c
            .tables
            .iter()
            .find(|(_, t)| !t.entries.is_empty())
            .expect("list has an atomic block with accesses");
        let e = &table.entries[0];
        let tag = CodeLayout::truncate_pc(e.pc);
        let r = resolve_tag(&c, ab_id, tag).expect("tag from the table resolves");
        assert_eq!(r.pc, e.pc);
        assert!(!r.func.is_empty());
        assert!(!r.inst.is_empty());
        let d = describe_tag(&c, ab_id, tag);
        assert!(d.contains(&r.func));
    }
}
