//! Diagnostic dump: per-benchmark, per-mode runtime internals (not a paper
//! exhibit; used to tune and debug the policy). `--hist` adds per-mode
//! top lock-word / anchor / conflict-address histograms.

use stagger_bench::{prepare_all, workload_set, Args, CommonOpts, Report};
use stagger_core::Mode;

/// diag's option set: the common flags plus `--hist`.
struct DiagOpts {
    common: CommonOpts,
    hist: bool,
}

impl DiagOpts {
    fn from_args() -> DiagOpts {
        let mut hist = false;
        let common = CommonOpts::parse_with(
            "[--hist]",
            "diag options:\n  --hist           add per-mode top lock-word / anchor / conflict-address histograms",
            |_a: &mut Args, flag: &str| match flag {
                "--hist" => {
                    hist = true;
                    true
                }
                _ => false,
            },
        );
        DiagOpts { common, hist }
    }
}

fn main() {
    let opts = DiagOpts::from_args();
    let report = Report::new("diag", &opts.common);
    let set = workload_set(opts.common.quick);
    let prepared = prepare_all(&set, opts.common.jobs);

    let seqs = report.pool(
        prepared
            .iter()
            .map(|p| {
                let report = &report;
                move || report.run_sequential(p, opts.common.seed)
            })
            .collect(),
    );
    let runs = report.pool(
        prepared
            .iter()
            .flat_map(|p| {
                Mode::ALL.map(|mode| {
                    let report = &report;
                    move || report.run(p, mode, opts.common.threads, opts.common.seed)
                })
            })
            .collect(),
    );

    for ((p, seq), row) in prepared.iter().zip(&seqs).zip(runs.chunks(Mode::ALL.len())) {
        println!("== {} (seq {} cycles)", p.name(), seq.cycles());
        for (mode, r) in Mode::ALL.iter().zip(row) {
            let agg = r.out.sim.aggregate();
            println!(
                "  {:<13} cyc {:>12}  S {:>5.2}  commits {:>6}  irrev {:>4}  abts/c {:>5.2}  w/u {:>5.2}  locks {:>6} (t/o {:>4})  wait {:>10}  act p/c/t {:>5}/{:>5}/{:>5}  acc {:>5.2}",
                mode.name(),
                r.cycles(),
                seq.cycles() as f64 / r.cycles() as f64,
                agg.commits,
                agg.irrevocable_commits,
                r.out.sim.aborts_per_commit(),
                r.out.sim.wasted_over_useful(),
                r.out.rt.locks_acquired,
                r.out.rt.lock_timeouts,
                agg.lock_wait_cycles,
                r.out.rt.act_precise,
                r.out.rt.act_coarse,
                r.out.rt.act_training,
                r.out.rt.accuracy(),
            );
            if opts.hist {
                let mut lw: Vec<_> = r.out.rt.lock_word_hist.iter().collect();
                lw.sort_by_key(|&(_, c)| std::cmp::Reverse(*c));
                let top: Vec<String> = lw
                    .iter()
                    .take(6)
                    .map(|(w, c)| format!("{w:#x}:{c}"))
                    .collect();
                let mut ah: Vec<_> = r.out.rt.anchor_hist.iter().collect();
                ah.sort_by_key(|&(_, c)| std::cmp::Reverse(*c));
                let topa: Vec<String> = ah
                    .iter()
                    .take(6)
                    .map(|(a, c)| format!("#{a}:{c}"))
                    .collect();
                let mut ad: Vec<_> = r.out.rt.addr_hist.iter().collect();
                ad.sort_by_key(|&(_, c)| std::cmp::Reverse(*c));
                let topd: Vec<String> = ad
                    .iter()
                    .take(6)
                    .map(|(a, c)| format!("{a:#x}:{c}"))
                    .collect();
                println!(
                    "      locks: {}  anchors: {}  conf: {}",
                    top.join(" "),
                    topa.join(" "),
                    topd.join(" ")
                );
            }
        }
    }
    report.finish();
}
