//! Table 4 — benchmark characteristics on the baseline eager HTM at 16
//! threads: atomic blocks, %TM, speedup, aborts/commit, contention class.

use stagger_bench::{contention_class, paper, prepare_all, workload_set, CommonOpts, Report};
use stagger_core::Mode;

fn main() {
    let opts = CommonOpts::from_args();
    let report = Report::new("table4", &opts);
    println!(
        "Table 4: benchmark characteristics, {} threads{} (paper values in parentheses)",
        opts.threads,
        if opts.quick { " (quick)" } else { "" }
    );
    let header = format!(
        "{:<10} {:>9} {:>14} {:>12} {:>14} {:>14}",
        "benchmark", "ABs", "%TM", "S", "Abts/C", "contention"
    );
    println!("{header}");
    stagger_bench::rule(&header);

    let set = workload_set(opts.quick);
    let prepared = prepare_all(&set, opts.jobs);

    let seqs = report.pool(
        prepared
            .iter()
            .map(|p| {
                let report = &report;
                move || report.run_sequential(p, opts.seed)
            })
            .collect(),
    );
    let measured = report.pool(
        prepared
            .iter()
            .zip(&seqs)
            .map(|(p, seq)| {
                let report = &report;
                move || report.measure(p, Mode::Htm, opts.threads, opts.seed, seq, None)
            })
            .collect(),
    );

    for (p, m) in prepared.iter().zip(&measured) {
        let abs = p.compile_stats().atomic_blocks;
        let pr = paper::table4_ref(p.name());
        println!(
            "{:<10} {:>3} ({:>2}) {:>6.0}% ({:>3.0}%) {:>5.1} ({:>4.1}) {:>6.2} ({:>5.2}) {:>6} ({})",
            p.name(),
            abs,
            pr.map_or(0, |r| r.atomic_blocks),
            m.tm_frac * 100.0,
            pr.map_or(0.0, |r| r.tm_pct),
            m.speedup_vs_seq,
            pr.map_or(0.0, |r| r.speedup),
            m.aborts_per_commit,
            pr.map_or(0.0, |r| r.aborts_per_commit),
            contention_class(m.aborts_per_commit),
            pr.map_or("", |r| r.contention),
        );
    }
    report.finish();
}
