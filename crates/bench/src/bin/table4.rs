//! Table 4 — benchmark characteristics on the baseline eager HTM at 16
//! threads: atomic blocks, %TM, speedup, aborts/commit, contention class.

use stagger_bench::{contention_class, measure, paper, run_sequential, workload_set, Opts};
use stagger_compiler::compile;
use stagger_core::Mode;

fn main() {
    let opts = Opts::from_args();
    println!(
        "Table 4: benchmark characteristics, {} threads{} (paper values in parentheses)",
        opts.threads,
        if opts.quick { " (quick)" } else { "" }
    );
    let header = format!(
        "{:<10} {:>9} {:>14} {:>12} {:>14} {:>14}",
        "benchmark", "ABs", "%TM", "S", "Abts/C", "contention"
    );
    println!("{header}");
    stagger_bench::rule(&header);

    for w in workload_set(opts.quick) {
        let module = w.build_module();
        let abs = compile(&module).stats.atomic_blocks;
        let seq = run_sequential(w.as_ref(), opts.seed);
        let m = measure(w.as_ref(), Mode::Htm, opts.threads, opts.seed, &seq, None);
        let p = paper::table4_ref(w.name());
        println!(
            "{:<10} {:>3} ({:>2}) {:>6.0}% ({:>3.0}%) {:>5.1} ({:>4.1}) {:>6.2} ({:>5.2}) {:>6} ({})",
            w.name(),
            abs,
            p.map_or(0, |r| r.atomic_blocks),
            m.tm_frac * 100.0,
            p.map_or(0.0, |r| r.tm_pct),
            m.speedup_vs_seq,
            p.map_or(0.0, |r| r.speedup),
            m.aborts_per_commit,
            p.map_or(0.0, |r| r.aborts_per_commit),
            contention_class(m.aborts_per_commit),
            p.map_or("", |r| r.contention),
        );
    }
}
