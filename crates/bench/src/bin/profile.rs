//! profile — conflict-attribution profiler over the observability stream.
//!
//! Runs one workload (`--workload`, default `list-hi`) in one mode
//! (`--mode`, default HTM) with event recording on, then prints what the
//! paper's Section 3 profiling pass consumes: the abort-cause breakdown,
//! the top conflicting PC-tag pairs resolved to IR functions/instructions
//! (via the compiled program's anchor tables and `CodeLayout`), the
//! victim×aborter conflict matrix, and per-lock-word wait histograms.
//! `--trace-out FILE` additionally dumps the raw event stream as JSONL
//! (schema: `htm-sim`'s obs module docs / EXPERIMENTS.md).

use htm_sim::obs::{log2_bucket, write_jsonl, AbortBreakdown, ConflictMatrix, WaitHistogram};
use htm_sim::Machine;
use stagger_bench::profiling::{conflict_pairs, describe_tag};
use stagger_bench::{parse_mode, Args, CommonOpts, Exhibit};
use stagger_core::{Mode, RuntimeConfig};
use workloads::PreparedWorkload;

/// profile's option set: the common flags plus the profiling target.
struct ProfileOpts {
    common: CommonOpts,
    workload: String,
    mode: Mode,
    trace_out: Option<String>,
}

impl ProfileOpts {
    fn from_args() -> ProfileOpts {
        let mut workload = "list-hi".to_string();
        let mut mode = Mode::Htm;
        let mut trace_out: Option<String> = None;
        let common = CommonOpts::parse_with(
            "[--workload W] [--mode M] [--trace-out FILE]",
            "profile options:\n  \
             --workload W     workload to profile (default list-hi)\n  \
             --mode M         execution mode to profile (default HTM)\n  \
             --trace-out FILE also dump the raw event stream as JSONL",
            |a: &mut Args, flag: &str| match flag {
                "--workload" => {
                    workload = a.value("--workload");
                    true
                }
                "--mode" => {
                    let v = a.value("--mode");
                    mode = parse_mode(&v)
                        .unwrap_or_else(|| a.fail(&format!("invalid --mode value '{v}'")));
                    true
                }
                "--trace-out" => {
                    trace_out = Some(a.value("--trace-out"));
                    true
                }
                _ => false,
            },
        );
        ProfileOpts {
            common,
            workload,
            mode,
            trace_out,
        }
    }
}

fn main() {
    let opts = ProfileOpts::from_args();
    let ex = Exhibit::new("profile", &opts.common);
    let name = &opts.workload;
    let mode = opts.mode;

    let w = ex.workload(name);
    let p = PreparedWorkload::new(w.as_ref());

    let machine = Machine::new(ex.recording_machine(opts.common.threads));
    let r = p.run_on(&machine, &RuntimeConfig::with_mode(mode), opts.common.seed);
    ex.report().record(&r);
    let streams = machine.take_events();
    let n_events: usize = streams.iter().map(|s| s.len()).sum();

    ex.banner(&format!(
        "profile: {name} [{}] x{} threads, seed {} — {} cycles, {} events",
        mode.name(),
        opts.common.threads,
        opts.common.seed,
        r.cycles(),
        n_events
    ));

    let b = AbortBreakdown::from_events(&streams);
    println!(
        "aborts: {} conflict, {} capacity, {} explicit, {} subscription \
         ({} commits, {:.2} aborts/commit)",
        b.conflict,
        b.capacity,
        b.explicit,
        b.subscription,
        b.commits,
        b.aborts() as f64 / (b.commits.max(1)) as f64
    );

    // Top conflicting PC pairs, resolved through the compiled program.
    let pairs = conflict_pairs(&streams);
    let c = p.compiled();
    println!();
    println!("top conflicting PC pairs");
    ex.header(&format!(
        "{:<6} {:>6} {:>7} {:>8}   resolution (victim <- aborter)",
        "rank", "count", "ab", "tags"
    ));
    if pairs.is_empty() {
        println!("(no conflict aborts recorded)");
    }
    for (i, pr) in pairs.iter().take(10).enumerate() {
        println!(
            "#{:<5} {:>6} {:>7} {:>#5x}/{:<#5x} {}",
            i + 1,
            pr.count,
            pr.ab_id,
            pr.victim_tag,
            pr.aborter_tag,
            describe_tag(c, pr.ab_id, pr.victim_tag),
        );
        println!("{:36} <- {}", "", describe_tag(c, pr.ab_id, pr.aborter_tag));
    }

    // The raw victim×aborter matrix (top cells).
    let matrix = ConflictMatrix::from_events(&streams);
    println!();
    println!(
        "conflict matrix: {} distinct (victim, aborter) tag cells, {} conflict aborts",
        matrix.len(),
        matrix.total()
    );
    for ((vt, at), count) in matrix.top(10) {
        println!("  victim {vt:>#5x} x aborter {at:>#5x} : {count}");
    }

    // Per-lock-word wait histograms (advisory locks only exist in the
    // staggered modes; HTM runs simply have no lock events).
    let waits = WaitHistogram::from_events(&streams);
    println!();
    if waits.is_empty() {
        println!("lock-wait histograms: no advisory-lock events in this mode");
    } else {
        println!("lock-wait histograms (log2 buckets, cycles)");
        for (word, w) in waits.words_by_traffic().into_iter().take(8) {
            let attempts = w.acquires + w.timeouts;
            print!(
                "  word {word:#8x}: {attempts} attempts ({} timeouts), {} total wait cycles |",
                w.timeouts, w.total_wait
            );
            let hi = w.buckets.iter().rposition(|&n| n != 0).unwrap_or(0);
            for (k, &n) in w.buckets.iter().enumerate().take(hi + 1) {
                if n != 0 {
                    let lo = if k == 0 { 0 } else { 1u64 << (k - 1) };
                    print!(" [{lo}+]:{n}");
                }
            }
            println!();
        }
        debug_assert!(log2_bucket(0) == 0);
    }

    if let Some(path) = &opts.trace_out {
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(path)
                .unwrap_or_else(|e| panic!("profile: cannot create {path}: {e}")),
        );
        write_jsonl(&mut f, &streams)
            .unwrap_or_else(|e| panic!("profile: write to {path} failed: {e}"));
        println!();
        println!("wrote {n_events} events to {path}");
    }

    ex.finish();
}
