//! Table 1 — HTM contention in representative benchmarks (baseline eager
//! HTM at 16 threads): speedup, % irrevocable, wasted/useful ratio, and
//! the LA/LP locality of contention addresses and PCs.

use stagger_bench::{paper, prepare_all, workload_set, yn, CommonOpts, Report};
use stagger_core::Mode;

fn main() {
    let opts = CommonOpts::from_args();
    let report = Report::new("table1", &opts);
    println!(
        "Table 1: baseline HTM contention, {} threads{} (paper values in parentheses)",
        opts.threads,
        if opts.quick { " (quick)" } else { "" }
    );
    let header = format!(
        "{:<10} {:>12} {:>12} {:>12} {:>8} {:>8}   {:<24}",
        "benchmark", "S", "%I", "W/U", "LA", "LP", "contention source"
    );
    println!("{header}");
    stagger_bench::rule(&header);

    // Table 1 lists the paper's representative subset, in its order.
    let set: Vec<_> = workload_set(opts.quick)
        .into_iter()
        .filter(|w| paper::TABLE1.iter().any(|r| r.name == w.name()))
        .collect();
    let prepared = prepare_all(&set, opts.jobs);

    let seqs = report.pool(
        prepared
            .iter()
            .map(|p| {
                let report = &report;
                move || report.run_sequential(p, opts.seed)
            })
            .collect(),
    );
    let measured = report.pool(
        prepared
            .iter()
            .zip(&seqs)
            .map(|(p, seq)| {
                let report = &report;
                move || report.measure(p, Mode::Htm, opts.threads, opts.seed, seq, None)
            })
            .collect(),
    );

    for r in paper::TABLE1 {
        let Some(m) = measured.iter().find(|m| m.name == r.name) else {
            continue;
        };
        println!(
            "{:<10} {:>5.1} ({:>4.1}) {:>5.1} ({:>3.0}%) {:>5.2} ({:>4.2}) {:>3} ({}) {:>3} ({})   {:<24}",
            r.name,
            m.speedup_vs_seq,
            r.speedup,
            m.irrevocable_frac * 100.0,
            r.irrevocable_pct,
            m.wasted_over_useful,
            r.wasted_over_useful,
            yn(m.addr_locality),
            r.la,
            yn(m.pc_locality),
            r.lp,
            r.contention_source,
        );
    }
    println!();
    println!("S: speedup over sequential.  %I: transactions forced irrevocable.");
    println!("W/U: wasted/useful transactional cycles.  LA/LP: locality (>=50% on one");
    println!("address / first-access PC) of contention aborts.");
    report.finish();
}
