//! Table 1 — HTM contention in representative benchmarks (baseline eager
//! HTM at 16 threads): speedup, % irrevocable, wasted/useful ratio, and
//! the LA/LP locality of contention addresses and PCs.

use stagger_bench::{measure, paper, run_sequential, workload_set, yn, Opts};
use stagger_core::Mode;

fn main() {
    let opts = Opts::from_args();
    println!(
        "Table 1: baseline HTM contention, {} threads{} (paper values in parentheses)",
        opts.threads,
        if opts.quick { " (quick)" } else { "" }
    );
    let header = format!(
        "{:<10} {:>12} {:>12} {:>12} {:>8} {:>8}   {:<24}",
        "benchmark", "S", "%I", "W/U", "LA", "LP", "contention source"
    );
    println!("{header}");
    stagger_bench::rule(&header);

    for r in paper::TABLE1 {
        let Some(w) = workload_set(opts.quick).into_iter().find(|w| w.name() == r.name) else {
            continue;
        };
        let seq = run_sequential(w.as_ref(), opts.seed);
        let m = measure(w.as_ref(), Mode::Htm, opts.threads, opts.seed, &seq, None);
        println!(
            "{:<10} {:>5.1} ({:>4.1}) {:>5.1} ({:>3.0}%) {:>5.2} ({:>4.2}) {:>3} ({}) {:>3} ({})   {:<24}",
            r.name,
            m.speedup_vs_seq,
            r.speedup,
            m.irrevocable_frac * 100.0,
            r.irrevocable_pct,
            m.wasted_over_useful,
            r.wasted_over_useful,
            yn(m.addr_locality),
            r.la,
            yn(m.pc_locality),
            r.lp,
            r.contention_source,
        );
    }
    println!();
    println!("S: speedup over sequential.  %I: transactions forced irrevocable.");
    println!("W/U: wasted/useful transactional cycles.  LA/LP: locality (>=50% on one");
    println!("address / first-access PC) of contention aborts.");
}
