//! Table 3 — static and dynamic statistics of instrumentation:
//! loads/stores analyzed, anchors instrumented, µ-ops and anchors per
//! committed transaction (1 thread), single-thread execution-time increase,
//! and anchor-identification accuracy at 16 threads.

use stagger_bench::{paper, run, workload_set, Opts};
use stagger_compiler::compile;
use stagger_core::Mode;

fn main() {
    let opts = Opts::from_args();
    println!(
        "Table 3: instrumentation statistics{} (paper values in parentheses)",
        if opts.quick { " (quick)" } else { "" }
    );
    let header = format!(
        "{:<10} {:>12} {:>11} | {:>14} {:>12} {:>14} | {:>13}",
        "benchmark", "ld/st", "anchors", "uops/txn", "anchs/txn", "exec inc", "accuracy"
    );
    println!("{header}");
    stagger_bench::rule(&header);

    let mut fractions = Vec::new();
    for w in workload_set(opts.quick) {
        // The paper's Table 3 lists list-hi only (list-lo shares the code).
        if w.name() == "list-lo" {
            continue;
        }
        let module = w.build_module();
        let stats = compile(&module).stats;
        fractions.push(stats.anchor_fraction());

        // Dynamic stats, 1 thread: uninstrumented baseline vs Staggered.
        let base1 = run(w.as_ref(), Mode::Htm, 1, opts.seed);
        let stag1 = run(w.as_ref(), Mode::Staggered, 1, opts.seed);
        let inc = stag1.cycles() as f64 / base1.cycles() as f64 - 1.0;

        // Accuracy at full thread count (needs real contention aborts).
        let stag16 = run(w.as_ref(), Mode::Staggered, opts.threads, opts.seed);
        let acc = stag16.out.rt.accuracy();

        let p = paper::TABLE3.iter().find(|r| r.name == w.name());
        println!(
            "{:<10} {:>5} ({:>4}) {:>4} ({:>3}) | {:>6.1} ({:>6.0}) {:>5.1} ({:>4.1}) {:>6.2}% ({:>4.1}%) | {:>5.1}% ({:>5.1}%)",
            w.name(),
            stats.loads_stores,
            p.map_or(0, |r| r.loads_stores),
            stats.anchors,
            p.map_or(0, |r| r.anchors),
            stag1.out.exec.uops_per_txn(),
            p.map_or(0.0, |r| r.uops_per_txn),
            stag1.out.exec.anchors_per_txn(),
            p.map_or(0.0, |r| r.anchors_per_txn),
            inc * 100.0,
            p.map_or(0.0, |r| r.exec_increase * 100.0),
            acc * 100.0,
            p.map_or(0.0, |r| r.accuracy * 100.0),
        );
    }
    let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
    println!();
    println!(
        "mean fraction of loads/stores instrumented as anchors: {:.0}% (paper: 13%)",
        mean * 100.0
    );
}
