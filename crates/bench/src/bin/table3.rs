//! Table 3 — static and dynamic statistics of instrumentation:
//! loads/stores analyzed, anchors instrumented, µ-ops and anchors per
//! committed transaction (1 thread), single-thread execution-time increase,
//! and anchor-identification accuracy at 16 threads.

use stagger_bench::{paper, prepare_all, workload_set, CommonOpts, Report};
use stagger_core::Mode;

fn main() {
    let opts = CommonOpts::from_args();
    let report = Report::new("table3", &opts);
    println!(
        "Table 3: instrumentation statistics{} (paper values in parentheses)",
        if opts.quick { " (quick)" } else { "" }
    );
    let header = format!(
        "{:<10} {:>12} {:>11} | {:>14} {:>12} {:>14} | {:>13}",
        "benchmark", "ld/st", "anchors", "uops/txn", "anchs/txn", "exec inc", "accuracy"
    );
    println!("{header}");
    stagger_bench::rule(&header);

    // The paper's Table 3 lists list-hi only (list-lo shares the code).
    let set: Vec<_> = workload_set(opts.quick)
        .into_iter()
        .filter(|w| w.name() != "list-lo")
        .collect();
    let prepared = prepare_all(&set, opts.jobs);

    // Three runs per workload: uninstrumented and Staggered at 1 thread
    // (dynamic stats + execution increase), Staggered at full threads
    // (accuracy needs real contention aborts).
    let runs = report.pool(
        prepared
            .iter()
            .flat_map(|p| {
                [
                    (Mode::Htm, 1),
                    (Mode::Staggered, 1),
                    (Mode::Staggered, opts.threads),
                ]
                .map(|(mode, threads)| {
                    let report = &report;
                    move || report.run(p, mode, threads, opts.seed)
                })
            })
            .collect(),
    );

    let mut fractions = Vec::new();
    for (p, row) in prepared.iter().zip(runs.chunks(3)) {
        let stats = p.compile_stats();
        fractions.push(stats.anchor_fraction());
        let (base1, stag1, stag16) = (&row[0], &row[1], &row[2]);
        let inc = stag1.cycles() as f64 / base1.cycles() as f64 - 1.0;
        let acc = stag16.out.rt.accuracy();

        let pr = paper::TABLE3.iter().find(|r| r.name == p.name());
        println!(
            "{:<10} {:>5} ({:>4}) {:>4} ({:>3}) | {:>6.1} ({:>6.0}) {:>5.1} ({:>4.1}) {:>6.2}% ({:>4.1}%) | {:>5.1}% ({:>5.1}%)",
            p.name(),
            stats.loads_stores,
            pr.map_or(0, |r| r.loads_stores),
            stats.anchors,
            pr.map_or(0, |r| r.anchors),
            stag1.out.exec.uops_per_txn(),
            pr.map_or(0.0, |r| r.uops_per_txn),
            stag1.out.exec.anchors_per_txn(),
            pr.map_or(0.0, |r| r.anchors_per_txn),
            inc * 100.0,
            pr.map_or(0.0, |r| r.exec_increase * 100.0),
            acc * 100.0,
            pr.map_or(0.0, |r| r.accuracy * 100.0),
        );
    }
    let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
    println!();
    println!(
        "mean fraction of loads/stores instrumented as anchors: {:.0}% (paper: 13%)",
        mean * 100.0
    );
    report.finish();
}
