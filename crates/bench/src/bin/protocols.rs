//! protocols — the protocol-matrix exhibit.
//!
//! Runs every workload in the suite × {HTM, Staggered} × the four
//! execution variants of the fallback/capacity API (`irrevocable`
//! baseline, `hybrid-stm` instrumented software fallback,
//! `lazy-subscription-safe` hardware commit-time lock validation,
//! `bounded-set` read/write-set-limited HTM) and prints, per cell, the
//! simulated cycles, commit/fallback split, abort breakdown by cause and
//! the speedup against the cell's own irrevocable baseline. The grid is
//! the same one the `protocols` built-in sweep persists
//! (`sweep --spec protocols`); this binary renders it as an exhibit and
//! `--json` dumps every run to `results/BENCH_protocols.json`.
//!
//! The deliberately unsafe `lazy-subscription` variant is excluded here
//! exactly as in the sweep: its torn commits would trip workload
//! validation. It lives in the regression tests
//! (`stagger-core/tests/lazy_subscription.rs`).

use stagger_bench::sweep::builtin_sweep;
use stagger_bench::{CommonOpts, Exhibit};

fn main() {
    let opts = CommonOpts::from_args();
    let ex = Exhibit::new("protocols", &opts);
    let spec = builtin_sweep("protocols", &opts).expect("built-in");
    let grid = spec.cells().expect("built-in sweeps expand");
    let n_variants = spec.axes.last().expect("variant axis").values.len();

    ex.banner(&format!(
        "Protocol matrix: {} cells — every workload x {{HTM, Staggered}} x \
         {{irrevocable, hybrid-stm, lazy-subscription-safe, bounded-set}}, {} threads",
        grid.len(),
        opts.threads
    ));
    ex.header(&format!(
        "{:<10} {:<10} {:<22} {:>12} {:>8} {:>7} {:>8} {:>5} {:>5} {:>9}",
        "benchmark",
        "mode",
        "variant",
        "sim_cycles",
        "commits",
        "fallbk",
        "abts/cm",
        "cap",
        "sub",
        "vs irrev"
    ));

    // One prepared workload per suite entry, shared across its cells.
    let names: Vec<&str> = spec.axes[0].values.iter().map(|s| s.as_str()).collect();
    let set = ex.workload_list(&names);
    let prepared = ex.prepare(&set);
    let report = ex.report();

    // One job per grid cell; submission order == grid order, so rows
    // print variant-grouped at any --jobs level.
    let runs = report.pool(
        grid.iter()
            .map(|cell| {
                let p = &prepared[names
                    .iter()
                    .position(|n| *n == cell.spec.workload)
                    .expect("grid workloads come from the axis")];
                move || {
                    let r = cell.spec.run(p);
                    report.record(&r);
                    r
                }
            })
            .collect(),
    );

    // The variant axis is the fastest, so each chunk is one (workload,
    // mode) group with the irrevocable baseline first.
    for (cells, group) in grid.chunks(n_variants).zip(runs.chunks(n_variants)) {
        let base_cycles = group[0].cycles();
        for (cell, r) in cells.iter().zip(group) {
            let agg = r.out.sim.aggregate();
            let commits = agg.commits + agg.irrevocable_commits;
            let aborts = agg.conflict_aborts
                + agg.capacity_aborts
                + agg.explicit_aborts
                + agg.subscription_aborts;
            let apc = if commits > 0 {
                aborts as f64 / commits as f64
            } else {
                0.0
            };
            let variant = &cell.coords.last().expect("variant coordinate").1;
            println!(
                "{:<10} {:<10} {:<22} {:>12} {:>8} {:>7} {:>8.2} {:>5} {:>5} {:>8.2}x",
                r.name,
                r.mode.name(),
                variant,
                r.cycles(),
                agg.commits,
                agg.irrevocable_commits,
                apc,
                agg.capacity_aborts,
                agg.subscription_aborts,
                base_cycles as f64 / r.cycles().max(1) as f64,
            );
        }
    }
    ex.finish();
}
