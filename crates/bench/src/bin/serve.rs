//! serve — serving-scenario latency exhibit.
//!
//! Replays a deterministic open-loop request stream (default: the
//! flash-crowd distribution) against the memcached model on a large core
//! count (default 64), in baseline HTM and Staggered modes, across a
//! ladder of offered loads, and reports per-request latency percentiles
//! against a p99 SLO. Latency is derived purely from the observability
//! event stream (arrival → commit, aborted attempts included), so every
//! table row is a simulated quantity — byte-identical across the
//! cooperative, threaded and speculative schedulers.
//!
//! The final `SLO:` lines show the paper's mechanism from the service
//! owner's seat: under the flash crowd, plain HTM's retry storms blow
//! through the tail budget at loads where staggered transactions still
//! hold it.
//!
//! `--jsonl FILE` exports every request (latency + component breakdown +
//! dominant blame) as JSON Lines; `--json` dumps the harness report to
//! `results/BENCH_serve.json`.

use stagger_bench::{Args, CommonOpts, Exhibit};
use stagger_core::{Mode, RuntimeConfig};
use std::io::Write as _;
use workloads::serve::Serve;

struct ServeOpts {
    common: CommonOpts,
    cores: usize,
    dist: String,
    /// Mean interarrival cycles per core, one run per value.
    loads: Vec<u64>,
    /// p99 latency budget, simulated cycles.
    slo: u64,
    jsonl: Option<String>,
}

impl ServeOpts {
    fn from_args() -> ServeOpts {
        let mut cores = 64usize;
        let mut dist = "flash".to_string();
        let mut loads: Vec<u64> = vec![48_000, 36_000, 24_000, 8_000];
        // 250k cycles = 100 us at the simulated 2.5 GHz — a realistic
        // tail budget for an in-memory cache service.
        let mut slo = 250_000u64;
        let mut jsonl = None;
        let common = CommonOpts::parse_with(
            "[--cores N] [--dist NAME] [--loads LIST] [--slo CYCLES] [--jsonl FILE]",
            "serve options:\n  \
             --cores N        simulated cores (default 64)\n  \
             --dist NAME      key distribution: zipf | hot | flash (default flash)\n  \
             --loads LIST     comma-separated mean interarrival cycles per core,\n                   \
             one run per value (default 48000,36000,24000,8000)\n  \
             --slo CYCLES     p99 latency budget in simulated cycles (default 250000)\n  \
             --jsonl FILE     export every request as JSON Lines",
            |a: &mut Args, flag: &str| match flag {
                "--cores" => {
                    cores = a.parsed("--cores");
                    if !(1..=htm_sim::MAX_CORES).contains(&cores) {
                        a.fail(&format!("--cores must be in 1..={}", htm_sim::MAX_CORES));
                    }
                    true
                }
                "--dist" => {
                    dist = a.value("--dist");
                    if !["zipf", "hot", "flash"].contains(&dist.as_str()) {
                        a.fail(&format!("invalid --dist '{dist}'"));
                    }
                    true
                }
                "--loads" => {
                    let v = a.value("--loads");
                    loads = v
                        .split(',')
                        .map(|t| {
                            let n: u64 = t.trim().parse().unwrap_or_else(|_| {
                                a.fail(&format!("invalid --loads value '{v}'"))
                            });
                            if n == 0 {
                                a.fail("--loads values must be positive");
                            }
                            n
                        })
                        .collect();
                    if loads.is_empty() {
                        a.fail("--loads needs at least one value");
                    }
                    true
                }
                "--slo" => {
                    slo = a.parsed("--slo");
                    true
                }
                "--jsonl" => {
                    jsonl = Some(a.value("--jsonl"));
                    true
                }
                _ => false,
            },
        );
        ServeOpts {
            common,
            cores,
            dist,
            loads,
            slo,
            jsonl,
        }
    }
}

const MODES: [Mode; 2] = [Mode::Htm, Mode::Staggered];

fn main() {
    let opts = ServeOpts::from_args();
    let ex = Exhibit::new("serve", &opts.common);
    let report = ex.report();
    ex.banner(&format!(
        "Serving scenario: serve-{} open-loop ramp x {{HTM, Staggered}} on {} cores, \
         p99 SLO {} cycles",
        opts.dist, opts.cores, opts.slo
    ));
    ex.header(&format!(
        "{:<16} {:<10} {:>6} {:>8} {:>6} {:>12} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "workload",
        "mode",
        "cores",
        "load/core",
        "reqs",
        "sim_cycles",
        "req/Mcyc",
        "p50",
        "p90",
        "p99",
        "p999",
        "max",
        "p99<=SLO"
    ));

    // One workload (and one compile) per offered-load rung.
    let rung_names: Vec<String> = opts
        .loads
        .iter()
        .map(|ia| format!("serve-{}-i{ia}", opts.dist))
        .collect();
    let rung_workloads: Vec<Box<dyn workloads::Workload>> =
        rung_names.iter().map(|name| ex.workload(name)).collect();
    let prepared = ex.prepare(&rung_workloads);

    // Regenerate each rung's arrival schedule (a pure function of the
    // workload config) so request latency is measured from *arrival*,
    // queueing included.
    let arrivals: Vec<Vec<Vec<u64>>> = rung_names
        .iter()
        .map(|name| {
            let cfg = Serve::parse_name(name, opts.common.quick).expect("serve names parse");
            (0..opts.cores)
                .map(|c| cfg.schedule(c).iter().map(|r| r.arrival).collect())
                .collect()
        })
        .collect();

    // Run every (mode, load) cell through the pool; event recording on.
    let runs = report.pool(
        MODES
            .iter()
            .flat_map(|&mode| {
                let ex = &ex;
                let opts = &opts;
                prepared.iter().map(move |p| {
                    move || {
                        p.run_cfg(
                            opts.common.seed,
                            ex.recording_machine(opts.cores),
                            RuntimeConfig::with_mode(mode),
                        )
                    }
                })
            })
            .collect(),
    );

    let mut jsonl = opts.jsonl.as_ref().map(|path| {
        let f = std::fs::File::create(path)
            .unwrap_or_else(|e| panic!("serve: cannot create {path}: {e}"));
        std::io::BufWriter::new(f)
    });

    // Highest load (smallest interarrival) each mode sustains within SLO.
    let mut sustained: Vec<(Mode, Option<u64>)> = MODES.iter().map(|&m| (m, None)).collect();

    for (i, r) in runs.iter().enumerate() {
        let rung = i % opts.loads.len();
        let ia = opts.loads[rung];
        let reqs = htm_sim::request_latencies(&r.events, &arrivals[rung]);
        let hist = htm_sim::histogram_of(&reqs);
        let s = hist.summary();
        report.record_with_latency(r, s);

        if let Some(w) = jsonl.as_mut() {
            for q in &reqs {
                writeln!(
                    w,
                    "{{\"workload\":\"{}\",\"mode\":\"{}\",\"core\":{},\"index\":{},\
                     \"arrival\":{},\"completion\":{},\"latency\":{},\"queue\":{},\
                     \"lock_wait\":{},\"backoff\":{},\"retry\":{},\"irrevocable\":{},\
                     \"service\":{},\"aborts\":{},\"dominant\":\"{}\"}}",
                    r.name,
                    r.mode.name(),
                    q.core,
                    q.index,
                    q.arrival,
                    q.completion,
                    q.total(),
                    q.queue,
                    q.lock_wait,
                    q.backoff,
                    q.retry,
                    q.irrevocable,
                    q.service,
                    q.aborted_attempts,
                    q.dominant().0,
                )
                .expect("serve: jsonl write");
            }
        }

        // Blame the tail: the dominant component among requests at or
        // above p99 (deterministic — derived from simulated quantities).
        let ok = s.p99 <= opts.slo;
        if ok {
            let entry = &mut sustained[i / opts.loads.len()].1;
            *entry = Some(entry.map_or(ia, |best: u64| best.min(ia)));
        }
        let cycles = r.cycles().max(1);
        let req_per_mcyc = s.count * 1_000_000 / cycles;
        println!(
            "{:<16} {:<10} {:>6} {:>8} {:>6} {:>12} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}",
            r.name,
            r.mode.name(),
            r.n_threads,
            ia,
            s.count,
            r.cycles(),
            req_per_mcyc,
            s.p50,
            s.p90,
            s.p99,
            s.p999,
            s.max,
            if ok { "ok" } else { "VIOLATED" },
        );
    }

    if let Some(mut w) = jsonl {
        w.flush().expect("serve: jsonl flush");
        println!("serve: wrote {}", opts.jsonl.as_deref().unwrap());
    }

    println!();
    for (mode, best) in &sustained {
        match best {
            Some(ia) => println!(
                "SLO: {} holds p99 <= {} down to interarrival {} cycles/core",
                mode.name(),
                opts.slo,
                ia
            ),
            None => println!(
                "SLO: {} violates p99 <= {} at every offered load",
                mode.name(),
                opts.slo
            ),
        }
    }
    ex.finish();
}
