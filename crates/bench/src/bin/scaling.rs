//! scaling — simulator core-count scaling exhibit.
//!
//! Runs the two high-contention workloads (`list-hi`, `memcached`) in the
//! baseline-HTM and Staggered modes across a core-count ladder (default
//! 16..256, the range ROADMAP item 1 targets), and reports both simulated
//! contention (abort rate) and *host-side* scheduler economics:
//! `ns_per_inst`, simulated instructions per host second, `schedule()`
//! calls and lazy-heap stale repairs. The per-resumption scheduling cost
//! is O(log n) in cores (an indexed min-heap over per-core clocks, versus
//! the old O(n) scan that made 256-core scheduling quadratic over a run);
//! the residual growth in `ns_per_inst` up the ladder tracks simulated
//! contention — the abort rate — not the scheduler, and `sched_stale` /
//! `sched_calls` ~= 1 shows each resumption repairs only the one entry
//! whose clock advanced.
//!
//! `--json` dumps every run to `results/BENCH_scaling.json`.

use stagger_bench::{Args, CommonOpts, Exhibit};
use stagger_core::Mode;

/// scaling's option set: the common flags plus the core-count ladder.
struct ScalingOpts {
    common: CommonOpts,
    cores: Vec<usize>,
}

impl ScalingOpts {
    fn from_args() -> ScalingOpts {
        let mut cores: Vec<usize> = vec![16, 32, 64, 128, 256];
        let common = CommonOpts::parse_with(
            "[--cores LIST]",
            "scaling options:\n  \
             --cores LIST     comma-separated core counts to sweep\n                   \
             (default 16,32,64,128,256)",
            |a: &mut Args, flag: &str| match flag {
                "--cores" => {
                    let v = a.value("--cores");
                    cores = v
                        .split(',')
                        .map(|t| {
                            let n: usize = t.trim().parse().unwrap_or_else(|_| {
                                a.fail(&format!("invalid --cores value '{v}'"))
                            });
                            if !(1..=htm_sim::MAX_CORES).contains(&n) {
                                a.fail(&format!(
                                    "--cores values must be in 1..={}, got {n}",
                                    htm_sim::MAX_CORES
                                ));
                            }
                            n
                        })
                        .collect();
                    if cores.is_empty() {
                        a.fail("--cores needs at least one core count");
                    }
                    true
                }
                _ => false,
            },
        );
        ScalingOpts { common, cores }
    }
}

/// The exhibit's workload pair: the two highest-contention benchmarks.
const WORKLOADS: [&str; 2] = ["list-hi", "memcached"];
const MODES: [Mode; 2] = [Mode::Htm, Mode::Staggered];

fn main() {
    let opts = ScalingOpts::from_args();
    let ex = Exhibit::new("scaling", &opts.common);
    ex.banner(&format!(
        "Core-count scaling: {} x {{HTM, Staggered}} at n_cores in {:?}",
        WORKLOADS.join(", "),
        opts.cores
    ));
    ex.header(&format!(
        "{:<10} {:<10} {:>6} {:>14} {:>10} {:>9} {:>10} {:>12} {:>11}",
        "benchmark",
        "mode",
        "cores",
        "sim_cycles",
        "aborts/cm",
        "ns/inst",
        "Minsts/s",
        "sched_calls",
        "sched_stale"
    ));

    let set = ex.workload_list(&WORKLOADS);
    let prepared = ex.prepare(&set);
    let report = ex.report();

    // One job per (workload, mode, cores) cell; the pool keeps results in
    // submission order, so rows print ladder-ordered at any --jobs level.
    let runs = report.pool(
        prepared
            .iter()
            .flat_map(|p| {
                let cores = &opts.cores;
                let seed = opts.common.seed;
                MODES.into_iter().flat_map(move |mode| {
                    cores
                        .iter()
                        .map(move |&n| move || report.run(p, mode, n, seed))
                })
            })
            .collect(),
    );

    for r in &runs {
        let agg = r.out.sim.aggregate();
        let commits = agg.commits + agg.irrevocable_commits;
        let aborts = agg.conflict_aborts
            + agg.capacity_aborts
            + agg.explicit_aborts
            + agg.subscription_aborts;
        let apc = if commits > 0 {
            aborts as f64 / commits as f64
        } else {
            0.0
        };
        println!(
            "{:<10} {:<10} {:>6} {:>14} {:>10.3} {:>9.1} {:>10.2} {:>12} {:>11}",
            r.name,
            r.mode.name(),
            r.n_threads,
            r.cycles(),
            apc,
            r.ns_per_inst(),
            r.insts_per_sec() / 1e6,
            r.out.sched.schedule_calls,
            r.out.sched.stale_refreshes,
        );
    }
    ex.finish();
}
