//! sweep — declarative ablation sweeps over serialized experiment specs.
//!
//! Grid-expands a built-in [`SweepSpec`] (`--spec`, default: all) into
//! [`RunSpec`] cells, runs the missing cells through the parallel job
//! runner, and caches every completed cell under a content-hashed run key
//! in `--dir` (default `results/sweeps`). Interrupted sweeps — `--max-cells`
//! bounds how many new cells one invocation computes — resume where they
//! left off, and the final JSON/CSV tables are byte-identical to an
//! uninterrupted run because cells persist only simulated quantities.
//!
//! Built-in sweeps: `pc-tags` (conflicting-PC tag width × mode on the
//! high-contention workloads — the paper's "12 bits suffice" claim),
//! `lock-tuning` (advisory-lock timeout × Polite backoff base — the
//! Section 2 liveness/serialization trade-off), `scaling` and `serve`
//! (contention metrics of the core-count and offered-load grids),
//! `protocols` (the protocol matrix: workload × mode × execution
//! variant — the `protocols` binary renders the same grid as an
//! exhibit), and `smoke` (a two-cell sweep for CI cache checks).

use stagger_bench::sweep::{
    builtin_sweep, builtin_sweep_names, cell_dir, run_sweep, write_tables, SweepSpec,
};
use stagger_bench::{Args, CommonOpts, Exhibit, RunSpec};
use stagger_core::Mode;
use std::path::PathBuf;

struct SweepOpts {
    common: CommonOpts,
    /// Sweep names to run (empty = every built-in except `smoke`).
    specs: Vec<String>,
    max_cells: Option<usize>,
    dir: PathBuf,
    list: bool,
}

impl SweepOpts {
    fn from_args() -> SweepOpts {
        let mut specs: Vec<String> = Vec::new();
        let mut max_cells: Option<usize> = None;
        let mut dir = PathBuf::from("results/sweeps");
        let mut list = false;
        let common = CommonOpts::parse_with(
            "[--spec NAME]... [--max-cells N] [--dir PATH] [--list]",
            "sweep options:\n  \
             --spec NAME      built-in sweep to run (repeatable; default: every built-in)\n  \
             --max-cells N    compute at most N new cells this invocation (resume later)\n  \
             --dir PATH       sweep cache/table directory (default results/sweeps)\n  \
             --list           list the built-in sweeps and their grids, then exit",
            |a: &mut Args, flag: &str| match flag {
                "--spec" => {
                    specs.push(a.value("--spec"));
                    true
                }
                "--max-cells" => {
                    max_cells = Some(a.parsed("--max-cells"));
                    true
                }
                "--dir" => {
                    dir = PathBuf::from(a.value("--dir"));
                    true
                }
                "--list" => {
                    list = true;
                    true
                }
                _ => false,
            },
        );
        SweepOpts {
            common,
            specs,
            max_cells,
            dir,
            list,
        }
    }
}

/// The CI smoke sweep: two cells (mode × ssca2), small enough to run in
/// seconds and exercise the whole cache/resume machinery.
fn smoke_sweep(opts: &CommonOpts) -> SweepSpec {
    SweepSpec {
        name: "smoke".to_string(),
        base: RunSpec::from_opts(opts, "ssca2", Mode::Htm),
        axes: vec![stagger_bench::sweep::Axis::new(
            "mode",
            &["HTM", "Staggered"],
        )],
    }
}

fn resolve(name: &str, opts: &CommonOpts) -> Option<SweepSpec> {
    if name == "smoke" {
        Some(smoke_sweep(opts))
    } else {
        builtin_sweep(name, opts)
    }
}

fn main() {
    let opts = SweepOpts::from_args();
    let ex = Exhibit::new("sweep", &opts.common);

    if opts.list {
        for &name in builtin_sweep_names().iter().chain(&["smoke"]) {
            let spec = resolve(name, &opts.common).expect("built-in");
            let cells = spec.cells().expect("built-in sweeps expand");
            println!("{name}: {} cells", cells.len());
            println!("  base: {} [{}]", spec.base.workload, spec.base.mode.name());
            for ax in &spec.axes {
                println!("  axis {} = {{{}}}", ax.key, ax.values.join(", "));
            }
        }
        return;
    }

    let names: Vec<String> = if opts.specs.is_empty() {
        builtin_sweep_names()
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        opts.specs.clone()
    };

    let mut all_complete = true;
    for name in &names {
        let Some(spec) = resolve(name, &opts.common) else {
            eprintln!("sweep: unknown sweep '{name}'");
            eprintln!("available: {} smoke", builtin_sweep_names().join(" "));
            std::process::exit(2);
        };
        let grid = spec.cells().expect("built-in sweeps expand");
        println!(
            "== sweep {name}: {} cells ({} axes) -> {}",
            grid.len(),
            spec.axes.len(),
            cell_dir(&opts.dir, name).display()
        );
        let outcome = run_sweep(
            &spec,
            &opts.dir,
            opts.common.jobs,
            opts.max_cells,
            Some(ex.report()),
        )
        .unwrap_or_else(|e| {
            eprintln!("sweep: {e}");
            std::process::exit(1);
        });
        println!(
            "sweep {name}: {} cells total, {} cached, {} computed, {} remaining",
            grid.len(),
            outcome.cached,
            outcome.computed,
            outcome.remaining
        );
        if !outcome.is_complete() {
            all_complete = false;
            println!(
                "sweep {name}: incomplete — re-run to resume ({} cells left)",
                outcome.remaining
            );
            continue;
        }
        let cells = outcome.complete_cells();
        let (json_path, csv_path) =
            write_tables(&spec, &grid, &cells, &opts.dir).unwrap_or_else(|e| {
                eprintln!("sweep: cannot write tables: {e}");
                std::process::exit(1);
            });
        println!("sweep {name}: wrote {}", json_path.display());
        println!("sweep {name}: wrote {}", csv_path.display());

        // Human-readable grid summary.
        println!();
        let coord_hdr: Vec<String> = spec.axes.iter().map(|ax| ax.key.clone()).collect();
        ex.header(&format!(
            "{:<44} {:>12} {:>8} {:>8} {:>9} {:>8}",
            coord_hdr.join(" / "),
            "cycles",
            "commits",
            "abts/c",
            "accuracy",
            "lk t/o"
        ));
        for (cell, res) in grid.iter().zip(&cells) {
            let coords: Vec<String> = cell.coords.iter().map(|(_, v)| v.clone()).collect();
            let m = &res.metrics;
            println!(
                "{:<44} {:>12} {:>8} {:>8.2} {:>9.2} {:>8}",
                coords.join(" / "),
                m.sim_cycles,
                m.commits + m.irrevocable_commits,
                m.aborts_per_commit(),
                m.accuracy(),
                m.lock_timeouts
            );
        }

        if name == "pc-tags" {
            pc_tag_analysis(&spec, &grid, &cells);
        }
        println!();
    }

    ex.finish();
    if !all_complete {
        std::process::exit(3);
    }
}

/// The paper's Section 4 claim, checked against the grid: anchor
/// identification degrades as tags narrow below 12 bits, and 12 bits is
/// already within noise of 16.
fn pc_tag_analysis(
    spec: &SweepSpec,
    grid: &[stagger_bench::sweep::GridCell],
    cells: &[&stagger_bench::sweep::CellResult],
) {
    println!();
    println!("PC-tag sensitivity (Staggered cells, accuracy by width):");
    // Group staggered cells by workload; axis order guarantees bits ascend.
    let mut by_workload: Vec<(String, Vec<(u32, f64)>)> = Vec::new();
    for (cell, res) in grid.iter().zip(cells) {
        if res.spec.mode != Mode::Staggered {
            continue;
        }
        let bits = res.spec.machine.pc_tag_bits;
        let acc = res.metrics.accuracy();
        match by_workload
            .iter_mut()
            .find(|(w, _)| *w == res.spec.workload)
        {
            Some((_, v)) => v.push((bits, acc)),
            None => by_workload.push((res.spec.workload.clone(), vec![(bits, acc)])),
        }
        let _ = cell;
    }
    for (w, curve) in &by_workload {
        let pts: Vec<String> = curve
            .iter()
            .map(|(b, a)| format!("{b}b:{:.3}", a))
            .collect();
        let monotone = curve.windows(2).all(|p| p[0].1 <= p[1].1 + 1e-9);
        println!(
            "  {w:<10} {}  {}",
            pts.join("  "),
            if monotone {
                "(degrades only as tags narrow)"
            } else {
                "(non-monotonic — inspect)"
            }
        );
    }
    let _ = spec;
}
